// The `whirlpool` command-line tool, as a testable library: argument
// parsing and command execution write to a stream and return Status, and
// tools/main.cc is a thin wrapper.
//
// Commands:
//   whirlpool generate --bytes=N [--seed=S] [--out=FILE]
//       Emit an XMark-style document (stdout by default).
//   whirlpool query (--xml=FILE | --generate-kb=N) --xpath=EXPR
//       [--k=N] [--engine=ws|wm|lockstep|noprun] [--semantics=relaxed|exact]
//       [--aggregation=max|sum] [--norm=sparse|dense|none]
//       [--routing=static|max_score|min_score|min_alive] [--format=text|csv]
//       [--show-metrics] [--show-fragments]
//       [--trace=FILE] [--metrics-json=FILE]
//       Run a top-k query and print ranked answers. --trace writes a Chrome
//       trace_event JSON of the execution (Perfetto-loadable);
//       --metrics-json writes the MetricsSnapshot (counters + p50/p95/p99
//       latency percentiles) as JSON.
//   whirlpool inspect (--xml=FILE | --generate-kb=N)
//       Print document statistics (node count, depth, top tags).
//   whirlpool explain (--xml=FILE | --generate-kb=N) --xpath=EXPR
//       Print the parsed pattern, the tf*idf scoring model and per-server
//       plan statistics without running the query.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace whirlpool::cli {

/// Runs the CLI with `args` (argv[1..]); writes human output to `out` and
/// problems to the returned Status. Never calls exit().
Status RunCli(const std::vector<std::string>& args, std::ostream& out);

/// Renders usage help.
std::string UsageText();

}  // namespace whirlpool::cli
