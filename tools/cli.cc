#include "tools/cli.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "whirlpool/whirlpool.h"
#include "xml/snapshot.h"
#include "xmlgen/xmark.h"

namespace whirlpool::cli {

namespace {

/// Parsed --key=value flags plus positional arguments.
struct Flags {
  std::map<std::string, std::string> kv;
  std::vector<std::string> positional;

  static Result<Flags> Parse(const std::vector<std::string>& args) {
    Flags f;
    for (const std::string& a : args) {
      if (a.rfind("--", 0) == 0) {
        size_t eq = a.find('=');
        if (eq == std::string::npos) {
          f.kv[a.substr(2)] = "true";
        } else {
          f.kv[a.substr(2, eq - 2)] = a.substr(eq + 1);
        }
      } else {
        f.positional.push_back(a);
      }
    }
    return f;
  }

  bool Has(const std::string& key) const { return kv.count(key) > 0; }
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): (key, default).
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : std::atoll(it->second.c_str());
  }

  /// Errors on flags the command does not know (catches typos).
  Status CheckKnown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : kv) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        return Status::InvalidArgument("unknown flag --" + key);
      }
    }
    return Status::OK();
  }
};

/// Loads a document from --xml=FILE, --snapshot=FILE or --generate-kb=N.
Result<std::unique_ptr<xml::Document>> LoadDocument(const Flags& flags) {
  const int sources = (flags.Has("xml") ? 1 : 0) + (flags.Has("generate-kb") ? 1 : 0) +
                      (flags.Has("snapshot") ? 1 : 0);
  if (sources != 1) {
    return Status::InvalidArgument(
        "provide exactly one of --xml=FILE, --snapshot=FILE or --generate-kb=N");
  }
  if (flags.Has("xml")) return xml::ParseFile(flags.Get("xml"));
  if (flags.Has("snapshot")) return xml::LoadSnapshot(flags.Get("snapshot"));
  xmlgen::XMarkOptions gen;
  gen.target_bytes = static_cast<size_t>(flags.GetInt("generate-kb", 256)) << 10;
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  return Result<std::unique_ptr<xml::Document>>(xmlgen::GenerateXMark(gen));
}

Result<exec::ExecOptions> ParseExecOptions(const Flags& flags) {
  exec::ExecOptions options;
  options.k = static_cast<uint32_t>(flags.GetInt("k", 10));
  if (options.k == 0) return Status::InvalidArgument("--k must be positive");

  const std::string engine = flags.Get("engine", "ws");
  if (engine == "ws") options.engine = exec::EngineKind::kWhirlpoolS;
  else if (engine == "wm") options.engine = exec::EngineKind::kWhirlpoolM;
  else if (engine == "lockstep") options.engine = exec::EngineKind::kLockStep;
  else if (engine == "noprun") options.engine = exec::EngineKind::kLockStepNoPrun;
  else return Status::InvalidArgument("--engine must be ws|wm|lockstep|noprun");

  const std::string semantics = flags.Get("semantics", "relaxed");
  if (semantics == "relaxed") options.semantics = exec::MatchSemantics::kRelaxed;
  else if (semantics == "exact") options.semantics = exec::MatchSemantics::kExact;
  else return Status::InvalidArgument("--semantics must be relaxed|exact");

  const std::string aggregation = flags.Get("aggregation", "max");
  if (aggregation == "max") options.aggregation = exec::ScoreAggregation::kMaxTuple;
  else if (aggregation == "sum") options.aggregation = exec::ScoreAggregation::kSumWitnesses;
  else return Status::InvalidArgument("--aggregation must be max|sum");

  const std::string routing = flags.Get("routing", "min_alive");
  if (routing == "static") options.routing = exec::RoutingStrategy::kStatic;
  else if (routing == "max_score") options.routing = exec::RoutingStrategy::kMaxScore;
  else if (routing == "min_score") options.routing = exec::RoutingStrategy::kMinScore;
  else if (routing == "min_alive") options.routing = exec::RoutingStrategy::kMinAlive;
  else {
    return Status::InvalidArgument("--routing must be static|max_score|min_score|min_alive");
  }
  options.cache_server_joins = flags.Get("cache", "false") == "true";
  // Sync knobs: a number, or "auto" (0 internally — the controller in
  // exec/adaptive.h picks the value at run time).
  if (flags.Has("topk-shards")) {
    if (flags.Get("topk-shards") == "auto") {
      options.topk_shards = 0;
    } else if ((options.topk_shards =
                    static_cast<int>(flags.GetInt("topk-shards", 0))) < 1) {
      return Status::InvalidArgument("--topk-shards must be >= 1 or auto");
    }
  }
  if (flags.Has("queue-drain-batch")) {
    if (flags.Get("queue-drain-batch") == "auto") {
      options.queue_drain_batch = 0;
    } else if ((options.queue_drain_batch = static_cast<int>(
                    flags.GetInt("queue-drain-batch", 0))) < 1) {
      return Status::InvalidArgument("--queue-drain-batch must be >= 1 or auto");
    }
  }
  if (flags.Has("threshold")) {
    options.min_score_threshold = std::atof(flags.Get("threshold").c_str());
    // "All answers above T": lift the k cap unless the user set one.
    if (!flags.Has("k")) options.k = 1u << 30;
  }
  if (flags.Has("deadline-ms")) {
    options.deadline_ms = std::atof(flags.Get("deadline-ms").c_str());
    if (!(options.deadline_ms >= 0.0)) {
      return Status::InvalidArgument("--deadline-ms must be >= 0");
    }
  }
  // The plan string itself is validated by ValidateOptions / ValidatePlan.
  options.failpoints = flags.Get("failpoints");
  options.failpoint_seed = static_cast<uint64_t>(flags.GetInt("failpoint-seed", 0));
  // Flight recorder: --telemetry enables the default 1 ms sampler;
  // --telemetry-interval-us overrides the interval (and implies enablement).
  if (flags.Has("telemetry-interval-us")) {
    const int64_t us = flags.GetInt("telemetry-interval-us", 0);
    if (us <= 0) {
      return Status::InvalidArgument("--telemetry-interval-us must be positive");
    }
    options.telemetry_interval_us = static_cast<uint64_t>(us);
  } else if (flags.Has("telemetry")) {
    options.telemetry_interval_us = 1000;
  }
  options.postmortem_path = flags.Get("postmortem");
  return options;
}

Result<score::Normalization> ParseNorm(const Flags& flags) {
  const std::string norm = flags.Get("norm", "sparse");
  if (norm == "sparse") return score::Normalization::kSparse;
  if (norm == "dense") return score::Normalization::kDense;
  if (norm == "none") return score::Normalization::kNone;
  return Status::InvalidArgument("--norm must be sparse|dense|none");
}

Status CmdGenerate(const Flags& flags, std::ostream& out) {
  WHIRLPOOL_RETURN_NOT_OK(flags.CheckKnown({"bytes", "seed", "out", "snapshot-out"}));
  xmlgen::XMarkOptions gen;
  gen.target_bytes = static_cast<size_t>(flags.GetInt("bytes", 1 << 20));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto doc = xmlgen::GenerateXMark(gen);
  if (flags.Has("snapshot-out")) {
    WHIRLPOOL_RETURN_NOT_OK(xml::SaveSnapshot(*doc, flags.Get("snapshot-out")));
    out << "wrote snapshot (" << doc->num_nodes() << " nodes) to "
        << flags.Get("snapshot-out") << "\n";
    if (!flags.Has("out")) return Status::OK();
  }
  const std::string text = xml::SerializeDocument(*doc);
  if (flags.Has("out")) {
    std::ofstream file(flags.Get("out"), std::ios::binary);
    if (!file) return Status::Internal("cannot write " + flags.Get("out"));
    file << text;
    out << "wrote " << text.size() << " bytes (" << doc->num_nodes() << " nodes) to "
        << flags.Get("out") << "\n";
  } else {
    out << text;
  }
  return Status::OK();
}

Status CmdInspect(const Flags& flags, std::ostream& out) {
  WHIRLPOOL_RETURN_NOT_OK(flags.CheckKnown({"xml", "snapshot", "generate-kb", "seed", "top"}));
  auto doc = LoadDocument(flags);
  if (!doc.ok()) return doc.status();
  const xml::Document& d = **doc;
  index::TagIndex idx(d);

  uint32_t max_depth = 0;
  for (xml::NodeId i = 0; i < d.num_nodes(); ++i) {
    max_depth = std::max(max_depth, d.node(i).depth);
  }
  out << "nodes:      " << d.num_nodes() << "\n";
  out << "tags:       " << d.tags().size() << "\n";
  out << "max depth:  " << max_depth << "\n";
  out << "approx size:" << d.ApproxContentBytes() / 1024 << " KB\n";

  std::vector<std::pair<uint64_t, std::string>> counts;
  for (xml::TagId t = 0; t < d.tags().size(); ++t) {
    const std::string& name = d.tags().Name(t);
    if (name == "#root") continue;
    counts.emplace_back(idx.Nodes(t).size(), name);
  }
  std::sort(counts.rbegin(), counts.rend());
  const size_t top = static_cast<size_t>(flags.GetInt("top", 15));
  out << "top tags:\n";
  for (size_t i = 0; i < std::min(top, counts.size()); ++i) {
    out << "  " << counts[i].second << ": " << counts[i].first << "\n";
  }
  return Status::OK();
}

Status CmdExplain(const Flags& flags, std::ostream& out) {
  WHIRLPOOL_RETURN_NOT_OK(
      flags.CheckKnown({"xml", "snapshot", "generate-kb", "seed", "xpath", "norm"}));
  if (!flags.Has("xpath")) return Status::InvalidArgument("--xpath is required");
  auto doc = LoadDocument(flags);
  if (!doc.ok()) return doc.status();
  index::TagIndex idx(**doc);
  auto pattern = query::ParseXPath(flags.Get("xpath"));
  if (!pattern.ok()) return pattern.status();
  auto norm = ParseNorm(flags);
  if (!norm.ok()) return norm.status();

  out << "pattern: " << pattern->ToString() << "\n\n";
  auto scoring = score::ScoringModel::ComputeTfIdf(idx, *pattern, *norm);
  out << "scoring model (" << flags.Get("norm", "sparse") << "):\n"
      << scoring.ToString(*pattern);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  if (!plan.ok()) return plan.status();
  out << "\nservers:\n";
  for (int s = 0; s < plan->num_servers(); ++s) {
    const exec::ServerSpec& spec = plan->server(s);
    out << "  [" << s << "] " << pattern->node(spec.pattern_node).tag
        << "  avg_candidates/root=" << spec.avg_candidates_per_root
        << "  P(exact/edge/promoted)=" << spec.level_prob[0] << "/"
        << spec.level_prob[1] << "/" << spec.level_prob[2]
        << "  max_contribution=" << plan->MaxContribution(s) << "\n";
  }
  out << "root candidates: " << query::RootCandidates(idx, *pattern).size() << "\n";
  return Status::OK();
}

Status CmdQuery(const Flags& flags, std::ostream& out) {
  WHIRLPOOL_RETURN_NOT_OK(flags.CheckKnown(
      {"xml", "snapshot", "generate-kb", "seed", "xpath", "k", "engine", "semantics",
       "aggregation", "norm", "routing", "format", "show-metrics", "threshold",
       "show-fragments", "cache", "trace", "metrics-json", "topk-shards",
       "queue-drain-batch", "deadline-ms", "failpoints", "failpoint-seed",
       "telemetry", "telemetry-interval-us", "postmortem"}));
  if (!flags.Has("xpath")) return Status::InvalidArgument("--xpath is required");
  auto doc = LoadDocument(flags);
  if (!doc.ok()) return doc.status();
  index::TagIndex idx(**doc);
  auto pattern = query::ParseXPath(flags.Get("xpath"));
  if (!pattern.ok()) return pattern.status();
  auto norm = ParseNorm(flags);
  if (!norm.ok()) return norm.status();
  auto options = ParseExecOptions(flags);
  if (!options.ok()) return options.status();

  exec::Tracer tracer;
  if (flags.Has("trace")) {
    options->tracer = &tracer;
    options->collect_latencies = true;
  }
  if (flags.Has("metrics-json")) options->collect_latencies = true;

  auto scoring = score::ScoringModel::ComputeTfIdf(idx, *pattern, *norm);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  if (!plan.ok()) return plan.status();
  auto result = exec::RunTopK(*plan, *options);
  if (!result.ok()) return result.status();

  if (flags.Has("trace")) {
    std::ofstream file(flags.Get("trace"), std::ios::binary);
    if (!file) return Status::Internal("cannot write " + flags.Get("trace"));
    tracer.WriteChromeTrace(file);
    out << "wrote " << tracer.NumEvents() << " trace events to " << flags.Get("trace")
        << "\n";
  }
  if (flags.Has("metrics-json")) {
    std::ofstream file(flags.Get("metrics-json"), std::ios::binary);
    if (!file) return Status::Internal("cannot write " + flags.Get("metrics-json"));
    file << result->metrics.ToJson() << "\n";
    out << "wrote metrics to " << flags.Get("metrics-json") << "\n";
  }

  const std::string format = flags.Get("format", "text");
  xml::DeweyIndex dewey(**doc);
  if (format == "csv") {
    out << "rank,score,dewey";
    for (size_t qi = 1; qi < pattern->size(); ++qi) {
      out << "," << pattern->node(static_cast<int>(qi)).tag << "_level";
    }
    out << "\n";
    int rank = 1;
    for (const auto& a : result->answers) {
      out << rank++ << "," << a.score << "," << dewey.label(a.root).ToString();
      for (size_t qi = 1; qi < pattern->size(); ++qi) {
        out << "," << score::MatchLevelName(a.levels[qi]);
      }
      out << "\n";
    }
  } else if (format == "text") {
    int rank = 1;
    for (const auto& a : result->answers) {
      out << "#" << rank++ << " score=" << a.score << " node=" << a.root
          << " dewey=" << dewey.label(a.root).ToString() << "\n";
      for (size_t qi = 1; qi < pattern->size(); ++qi) {
        out << "    " << pattern->node(static_cast<int>(qi)).tag << " -> "
            << score::MatchLevelName(a.levels[qi]) << "\n";
      }
      if (flags.Has("show-fragments")) {
        out << xml::SerializeSubtree(**doc, a.root, 2);
      }
    }
    if (result->answers.empty()) out << "(no answers)\n";
  } else {
    return Status::InvalidArgument("--format must be text|csv");
  }
  if (result->approximate) {
    out << "approximate: deadline expired; threshold=" << result->threshold
        << " score_bound=" << result->score_bound << "\n";
  }
  if (flags.Has("show-metrics")) {
    out << "metrics: " << result->metrics.ToString() << "\n";
  }
  return Status::OK();
}

}  // namespace

std::string UsageText() {
  return
      "usage: whirlpool <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --bytes=N [--seed=S] [--out=FILE] [--snapshot-out=FILE]\n"
      "  inspect   (--xml=FILE | --snapshot=FILE | --generate-kb=N) [--top=N]\n"
      "  explain   (--xml | --snapshot | --generate-kb) --xpath=EXPR [--norm=...]\n"
      "  query     (--xml | --snapshot | --generate-kb) --xpath=EXPR [--k=N]\n"
      "            [--engine=ws|wm|lockstep|noprun] [--semantics=relaxed|exact]\n"
      "            [--aggregation=max|sum] [--norm=sparse|dense|none]\n"
      "            [--routing=static|max_score|min_score|min_alive]\n"
      "            [--threshold=T] [--format=text|csv] [--cache=true] [--show-metrics]\n"
      "            [--show-fragments] [--trace=FILE] [--metrics-json=FILE]\n"
      "            [--topk-shards=N|auto] [--queue-drain-batch=N|auto]\n"
      "            [--deadline-ms=T] [--failpoints=PLAN] [--failpoint-seed=S]\n"
      "            [--telemetry] [--telemetry-interval-us=N] [--postmortem=FILE]\n"
      "\n"
      "  --trace=FILE writes a Chrome trace_event JSON (open in Perfetto or\n"
      "  chrome://tracing); --metrics-json=FILE writes the run's MetricsSnapshot\n"
      "  as JSON, including p50/p95/p99 latency percentiles.\n"
      "\n"
      "  --telemetry samples the flight recorder every 1 ms (threshold, queue\n"
      "  depths, counter rates; --telemetry-interval-us=N overrides). The series\n"
      "  land in --metrics-json (\"timeseries\") and as Perfetto counter tracks in\n"
      "  --trace; degraded runs (deadline, injected error) print a post-mortem to\n"
      "  stderr or --postmortem=FILE.\n"
      "\n"
      "  --deadline-ms=T stops the run after T ms and returns the current top-k\n"
      "  flagged approximate, with its threshold and max-possible-score bound.\n"
      "  --failpoints=\"name=action(args)[,...]\" arms fault-injection sites, e.g.\n"
      "  \"queue.pop_batch=sleep(200,every=8),topk.update=error(once)\"; actions:\n"
      "  yield|sleep(us)|wake|error|stall(us); modes: once, every=N, p=F.\n";
}

Status RunCli(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return Status::OK();
  }
  auto flags = Flags::Parse(std::vector<std::string>(args.begin() + 1, args.end()));
  if (!flags.ok()) return flags.status();
  const std::string& command = args[0];
  if (command == "generate") return CmdGenerate(*flags, out);
  if (command == "inspect") return CmdInspect(*flags, out);
  if (command == "explain") return CmdExplain(*flags, out);
  if (command == "query") return CmdQuery(*flags, out);
  return Status::InvalidArgument("unknown command '" + command + "' (try help)");
}

}  // namespace whirlpool::cli
