#!/usr/bin/env python3
"""check_trace.py — structural validator for whirlpool Chrome traces.

Stage 7 of the static/dynamic check suite (CheckTraceSelfTest /
CheckTraceCliRun ctest entries, and the CI differential leg): loads a
Chrome trace_event JSON produced by `whirlpool query --trace=FILE` and
verifies the invariants Perfetto relies on but silently forgives:

  CT001  json-shape       Top level is an object with a "traceEvents" list;
                          every event is an object with string "name"/"ph"
                          and integer "pid"/"tid".
  CT002  known-phases     Every "ph" is one of X (complete span), i
                          (instant), C (counter), M (metadata) — the only
                          phases the tracer emits.
  CT003  span-sanity      "X" events carry numeric ts >= 0 and dur >= 0.
  CT004  counter-shape    "C" events carry {"args": {"value": number}} and a
                          "telemetry" cat.
  CT005  counter-order    Per counter name, timestamps are non-decreasing
                          (the sampler appends in time order; decimation
                          preserves it).
  CT006  thread-names     Every tid that owns span/instant events has a
                          thread_name metadata event, and a process_name
                          exists (Perfetto track labels).

Modes:
  check_trace.py TRACE.json [TRACE2.json ...]   validate existing files
  check_trace.py --run-cli BIN                  run `BIN query --generate-kb
                                                --trace --telemetry` for each
                                                engine into a temp dir, then
                                                validate the traces with
                                                --require-counters
  check_trace.py --self-test                    validate the checker against
                                                embedded good/bad traces

--require-counters additionally demands at least one "threshold" and one
"queue_depth.*" / "wave_size" counter track (the ISSUE 10 acceptance bar).

Exit code 0 = clean, 1 = findings (listed one per line), 2 = usage/IO error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

ALLOWED_PHASES = {"X", "i", "C", "M"}


def check_trace(obj, label, require_counters=False):
    """Returns a list of 'label: CTnnn message' finding strings."""
    findings = []

    def bad(rule, msg):
        findings.append(f"{label}: {rule} {msg}")

    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        bad("CT001", "top level must be an object with a traceEvents list")
        return findings

    counter_last_ts = {}   # counter name -> last seen ts
    counter_names = set()
    event_tids = set()     # tids owning span/instant events
    named_tids = set()     # tids with a thread_name metadata event
    saw_process_name = False

    for i, e in enumerate(obj["traceEvents"]):
        where = f"event[{i}]"
        if not isinstance(e, dict):
            bad("CT001", f"{where} is not an object")
            continue
        name = e.get("name")
        ph = e.get("ph")
        if not isinstance(name, str) or not isinstance(ph, str):
            bad("CT001", f"{where} lacks string name/ph")
            continue
        if not isinstance(e.get("pid"), int) or not isinstance(e.get("tid"), int):
            bad("CT001", f"{where} ({name}) lacks integer pid/tid")
            continue
        if ph not in ALLOWED_PHASES:
            bad("CT002", f"{where} ({name}) has unknown phase {ph!r}")
            continue

        if ph == "M":
            args = e.get("args")
            if name == "process_name":
                saw_process_name = True
            elif name == "thread_name":
                if isinstance(args, dict) and isinstance(args.get("name"), str):
                    named_tids.add(e["tid"])
                else:
                    bad("CT006", f"{where} thread_name lacks args.name")
            continue

        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            bad("CT003", f"{where} ({name}, ph={ph}) has invalid ts {ts!r}")
            continue

        if ph == "X":
            event_tids.add(e["tid"])
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                bad("CT003", f"{where} ({name}) has invalid dur {dur!r}")
        elif ph == "i":
            event_tids.add(e["tid"])
        elif ph == "C":
            args = e.get("args")
            value = args.get("value") if isinstance(args, dict) else None
            if not isinstance(value, (int, float)):
                bad("CT004", f"{where} ({name}) lacks numeric args.value")
                continue
            if e.get("cat") != "telemetry":
                bad("CT004", f"{where} ({name}) counter cat is not 'telemetry'")
            counter_names.add(name)
            last = counter_last_ts.get(name)
            if last is not None and ts < last:
                bad("CT005",
                    f"{where} counter {name!r} ts {ts} < previous {last}")
            counter_last_ts[name] = ts

    if event_tids and not saw_process_name:
        bad("CT006", "no process_name metadata event")
    for tid in sorted(event_tids - named_tids):
        bad("CT006", f"tid {tid} owns events but has no thread_name metadata")

    if require_counters:
        if "threshold" not in counter_names:
            bad("CT004", "no 'threshold' counter track (telemetry not attached?)")
        if not any(n.startswith("queue_depth") or n == "wave_size"
                   for n in counter_names):
            bad("CT004", "no queue-depth/wave-size counter track")
    return findings


def check_file(path, require_counters=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: CT001 cannot load trace JSON: {e}"]
    return check_trace(obj, path, require_counters)


def run_cli(binary):
    """Runs the CLI for each engine with --trace --telemetry and validates."""
    findings = []
    with tempfile.TemporaryDirectory(prefix="whirlpool_trace.") as tmp:
        for engine in ("ws", "wm", "lockstep"):
            trace = os.path.join(tmp, f"trace_{engine}.json")
            cmd = [
                binary, "query", "--generate-kb=64", "--seed=7",
                "--xpath=//item[./description/parlist and ./name]", "--k=5",
                f"--engine={engine}", f"--trace={trace}",
                "--telemetry-interval-us=200",
            ]
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True)
            if proc.returncode != 0:
                findings.append(
                    f"{trace}: CT001 CLI run failed ({proc.returncode}): "
                    f"{proc.stdout.strip()[:400]}")
                continue
            findings.extend(check_file(trace, require_counters=True))
    return findings


# --- self-test corpus -------------------------------------------------------

GOOD_TRACE = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "whirlpool"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "whirlpool-s"}},
        {"name": "server_op", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
         "dur": 2.5, "cat": "exec", "args": {"server": 0, "match_seq": 1}},
        {"name": "route", "ph": "i", "s": "t", "pid": 1, "tid": 0, "ts": 4.0,
         "cat": "exec", "args": {"server": 1, "match_seq": 1}},
        {"name": "threshold", "ph": "C", "pid": 1, "tid": 0, "ts": 2.0,
         "cat": "telemetry", "args": {"value": 0.0}},
        {"name": "threshold", "ph": "C", "pid": 1, "tid": 0, "ts": 3.0,
         "cat": "telemetry", "args": {"value": 1.5}},
        {"name": "queue_depth.router", "ph": "C", "pid": 1, "tid": 0,
         "ts": 2.0, "cat": "telemetry", "args": {"value": 7}},
    ],
}

# (trace mutation, expected rule id) pairs; each is GOOD_TRACE with one break.
def _mutate(drop_name=None, **event_override):
    bad = json.loads(json.dumps(GOOD_TRACE))
    if drop_name is not None:
        bad["traceEvents"] = [e for e in bad["traceEvents"]
                              if e["name"] != drop_name]
    if event_override:
        bad["traceEvents"].append(event_override)
    return bad


SELF_TEST_BAD = [
    (_mutate(name="odd", ph="Q", pid=1, tid=0, ts=1.0), "CT002"),
    (_mutate(name="span", ph="X", pid=1, tid=0, ts=5.0, dur=-1.0), "CT003"),
    (_mutate(name="span", ph="X", pid=1, tid=0, ts=-2.0, dur=1.0), "CT003"),
    (_mutate(name="c", ph="C", pid=1, tid=0, ts=1.0, cat="telemetry",
             args={}), "CT004"),
    (_mutate(name="threshold", ph="C", pid=1, tid=0, ts=1.0,
             cat="telemetry", args={"value": 2.0}), "CT005"),
    (_mutate(drop_name="thread_name"), "CT006"),
    (_mutate(drop_name="process_name"), "CT006"),
    ({"traceEvents": {}}, "CT001"),
]


def self_test():
    failures = []
    good = check_trace(GOOD_TRACE, "good", require_counters=True)
    if good:
        failures.append(f"good trace produced findings: {good}")
    no_counters = json.loads(json.dumps(GOOD_TRACE))
    no_counters["traceEvents"] = [
        e for e in no_counters["traceEvents"] if e["ph"] != "C"]
    if not any("CT004" in f for f in
               check_trace(no_counters, "nc", require_counters=True)):
        failures.append("missing counter tracks not flagged under "
                        "--require-counters")
    for i, (bad, rule) in enumerate(SELF_TEST_BAD):
        found = check_trace(bad, f"bad[{i}]", require_counters=False)
        if not any(rule in f for f in found):
            failures.append(f"bad[{i}] expected {rule}, got {found}")
    for f in failures:
        print(f"check_trace self-test FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"check_trace self-test OK "
              f"({1 + len(SELF_TEST_BAD) + 1} cases)")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", help="trace JSON files to validate")
    ap.add_argument("--run-cli", metavar="BIN",
                    help="run BIN query --trace --telemetry per engine, then "
                         "validate the traces")
    ap.add_argument("--require-counters", action="store_true",
                    help="demand threshold + queue-depth counter tracks")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the checker against embedded traces")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.run_cli:
        if not os.path.exists(args.run_cli):
            print(f"check_trace: no such binary: {args.run_cli}",
                  file=sys.stderr)
            return 2
        findings = run_cli(args.run_cli)
    elif args.traces:
        findings = []
        for path in args.traces:
            findings.extend(check_file(path, args.require_counters))
    else:
        ap.print_usage(sys.stderr)
        return 2

    for f in findings:
        print(f, file=sys.stderr)
    if not findings:
        print("check_trace: OK")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
