#!/usr/bin/env python3
"""wp-alint: AST-level whole-program lock-order and atomics analyzer.

Stage 6 of tools/run_static_analysis.sh (and the WpAlint* ctest entries).
Where wp_lint.py (stage 4) is a regex pass, this analyzer parses real C++
through libclang (clang.cindex) and reasons across translation units. Seven
rules, continuing wp_lint.py's numbering:

  WP005  lock-order       Static verification of the DESIGN.md §10 lock
                          hierarchy: every MutexLock / .lock() site is
                          resolved to its mutex's declared LockRank, a
                          may-hold-while-acquiring graph is built across the
                          call graph (REQUIRES annotations count as held on
                          entry), and any edge that does not strictly
                          increase in rank — or any cycle among kUnranked
                          mutexes, which the runtime checker cannot see —
                          is reported with both source sites.
  WP006  atomics-audit    Classifies every memory_order use: non-relaxed
                          orders need a nearby justification comment (same
                          line or up to 3 lines above, arguing for the
                          ordering they buy); relaxed RMWs must not feed
                          control flow; atomic ops with an implicit
                          (seq_cst) order must spell it; std::atomic fields
                          of Mutex-owning classes must be GUARDED_BY or in
                          wp_lint.py's ATOMIC_ALLOWLIST.
  WP007  annotation-gap   Cross-TU annotation coverage: a function taking a
                          whirlpool::Mutex (&/*) or an open holding-state
                          struct (one that exposes a Mutex plus public
                          GUARDED_BY fields, e.g. Tracer::Buffer) must carry
                          a thread-safety annotation (REQUIRES / EXCLUDES /
                          ACQUIRE / ...), otherwise callers in other TUs
                          are unchecked by -Wthread-safety.
  WP008  check-side-effect  No side effects inside WP_CHECK / WP_DCHECK
                          arguments (WP_DCHECK compiles out in release
                          builds): ++/--, assignments, and calls to
                          non-const methods — with an allowlist of benign
                          accessors whose non-const overload resolution is
                          not a mutation (front, back, operator[], ...).
  WP009  blocking-under-lock  No call that may block — CondVar::Wait on a
                          foreign mutex (self-mutex waits release the lock
                          and are fine), the sleep family, file/stream I/O,
                          SyncMatchQueue::Pop*, semaphore acquisition,
                          failpoint/cancel sites — while a *ranked*
                          whirlpool::Mutex is held, directly or through any
                          call chain. A justification comment on the site
                          (or up to 3 lines above, arguing the block is
                          bounded/deliberate) waives it, mirroring WP006;
                          sites inside WP_CHECK/WP_DCHECK argument ranges
                          are exempt (the stream only runs on the way to
                          abort).
  WP010  guarded-escape  References/pointers/iterators to GUARDED_BY fields
                          must not outlive their critical section: returned
                          from a pointer/reference-returning function,
                          bound to a local inside a MutexLock scope and
                          used after it closes, captured in a lambda handed
                          to std::thread/std::async, or stored into an
                          unguarded pointer field.
  WP011  cancel-coverage Every loop reachable from an engine entry
                          (RunWhirlpool*/RunLockStep/RunTopK) that contains
                          WP009-blocking work (failpoint-conditional sites
                          excluded — they only block under an armed chaos
                          plan) must contain a reachable CancelToken::Poll,
                          in its own extent or an enclosing loop's. Also
                          cross-checks the failpoint site registry
                          (util/failpoint.h `sites::` constants) against
                          actual uses: a registered-but-unused site or a
                          raw site-string literal that matches no
                          registered site is drift, in either direction.

Escape hatch: identical to wp_lint.py — `// wp-lint: disable(WP005)` on the
offending line or `// wp-lint: disable-file(WP005)` anywhere in the file
(the hatch parser is literally imported from wp_lint.py, as is the
ATOMIC_ALLOWLIST, so the two linters cannot drift).

Degradation: when clang.cindex or the libclang shared library is missing,
every mode prints `SKIPPED: ...` and exits with --skip-exit-code (default 0
for the shell gate; the ctest entries pass 77 so ctest reports SKIP, not
PASS). The module / library probe is driven by the same CLANG_VERSIONS list
the shell gate uses (--clang-versions), covering Debian's /usr/lib/llvm-N
layouts for both the python binding and libclang-N.so.1.

Baseline mode: `--baseline tools/wp_alint_baseline.json` fails only on
findings not present in the committed baseline (keyed on path/rule/message,
line-insensitive so unrelated edits don't churn it); `--write-baseline`
rewrites that file from the current findings. The committed baseline is
empty — src/ is finding-clean — so the mechanism exists for incident
triage, not as a parking lot.

Usage:
  wp_alint.py [--root DIR] [--json OUT] PATH...   analyze .cc TUs under PATH
                                                  (exit 1 on findings)
  wp_alint.py [--root DIR] --self-test   run tests/lint_corpus/ files with a
                                         `// wp-alint-expect:` header, assert
                                         each trips exactly its declared
                                         rules and that every
                                         `// wp-alint-expect-substr:` line
                                         appears in some finding
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import wp_lint  # shared: disable-hatch syntax, ATOMIC_ALLOWLIST, skip dirs

RULE_IDS = ("WP005", "WP006", "WP007", "WP008", "WP009", "WP010", "WP011")

# Fallback only: the authoritative list lives in tools/clang_probe.sh
# (shared with run_static_analysis.sh); clang_versions_from_probe() parses
# it at startup and the shell gate additionally passes --clang-versions.
DEFAULT_CLANG_VERSIONS = (21, 20, 19, 18, 17, 16, 15, 14)


def clang_versions_from_probe():
    """Parse CLANG_VERSIONS=(...) out of tools/clang_probe.sh so the python
    and shell probes cannot drift; falls back to DEFAULT_CLANG_VERSIONS."""
    probe = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "clang_probe.sh")
    try:
        with open(probe, encoding="utf-8") as f:
            m = re.search(r"^CLANG_VERSIONS=\(([^)]*)\)", f.read(),
                          re.MULTILINE)
        if m:
            versions = tuple(int(v) for v in m.group(1).split())
            if versions:
                return versions
    except (OSError, ValueError):
        pass
    return DEFAULT_CLANG_VERSIONS

# Thread-safety annotation macros (util/thread_annotations.h). Any of these
# on a declaration satisfies WP007; REQUIRES args additionally seed WP005's
# entry-held set.
ANNOTATION_MACROS = {
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
    "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
}

# WP006: a comment within this many lines above (or on) a non-relaxed order
# must argue for it. Deliberately loose on wording — the goal is a written
# argument, not a shibboleth.
JUSTIFY_CONTEXT_LINES = 3
JUSTIFY_RE = re.compile(
    r"acquir|releas|acq_rel|seq_cst|synchroniz|happens.before|publish|"
    r"visib|order|fence|barrier|pairs with", re.IGNORECASE)

# std::atomic member functions. libstdc++ defines the integral ops on
# __atomic_base, so parent-class matching needs both spellings.
ATOMIC_PARENTS = {"atomic", "__atomic_base", "__atomic_float", "__atomic_ref",
                  "atomic_flag"}
ATOMIC_RMW_NAMES = {"fetch_add", "fetch_sub", "fetch_and", "fetch_or",
                    "fetch_xor", "exchange", "compare_exchange_weak",
                    "compare_exchange_strong"}
ATOMIC_ORDERED_NAMES = ATOMIC_RMW_NAMES | {"load", "store", "wait",
                                           "test_and_set", "clear"}
# Implicitly seq_cst whatever the argument: the sugar operators.
ATOMIC_SUGAR_NAMES = {"operator++", "operator--", "operator+=", "operator-=",
                      "operator&=", "operator|=", "operator^=", "operator="}

# WP008: non-const methods that overload resolution picks on a non-const
# object but that are reads for our purposes (container element access,
# smart-pointer deref, functor application).
BENIGN_NONCONST_METHODS = {
    "front", "back", "top", "at", "begin", "end", "rbegin", "rend", "data",
    "get", "operator[]", "operator*", "operator->", "operator()",
}

SOURCE_EXTENSIONS = (".cc", ".cpp")

CHECK_MACRO_NAMES = {"WP_CHECK", "WP_DCHECK"}

# --- WP009/WP011 blocking-call model ---
#
# Direct blocking operations recognized at a call site, by callee identity.
# Deliberately NOT blocking: Mutex::lock (that's WP005's domain),
# thread::join (engines join at shutdown, outside every lock and loop),
# CondVar::Notify* (wakes, never sleeps), snprintf/sprintf (memory, not I/O).
SLEEP_FN_NAMES = {"sleep", "usleep", "nanosleep", "sleep_for", "sleep_until"}
C_IO_FN_NAMES = {"printf", "fprintf", "vfprintf", "fputs", "fputc", "fwrite",
                 "fread", "fgets", "fgetc", "fscanf", "scanf", "puts",
                 "putchar", "getchar", "fopen", "fclose", "fflush"}
FSTREAM_PARENTS = {"basic_fstream", "basic_ifstream", "basic_ofstream",
                   "basic_filebuf", "fstream", "ifstream", "ofstream"}
STD_SEMAPHORE_PARENTS = {"counting_semaphore", "binary_semaphore"}
# Failpoint/cancel entry points: call sites to these are blocking only under
# an armed chaos plan (kind "failpoint"), and their *bodies* are the chaos
# injector itself — their internal sleeps must not leak upward as
# unconditional blocking, so the whole-program closure freezes them empty.
FAILPOINT_IDENTITY_DISPLAYS = {"Hit", "InjectedError", "CancelToken::Poll",
                               "CancelToken::Check"}
POLL_DISPLAYS = {"CancelToken::Poll", "CancelToken::Check"}

# WP009's justification escape hatch (mirrors WP006's): a comment on the
# blocking site or up to JUSTIFY_CONTEXT_LINES above arguing the block is
# bounded/deliberate waives the finding and stops chain propagation.
BLOCK_JUSTIFY_RE = re.compile(
    r"block|stall|sleep|chaos|deliberat|intention|bounded|uncontended|"
    r"benign|justif", re.IGNORECASE)

# Severity order for picking the headline kind of a may-block call chain.
BLOCK_KIND_ORDER = ("wait", "pop", "semaphore", "sleep", "io", "failpoint")

# WP011 engine entry points (exec/ public Run* functions).
ENTRY_RE = re.compile(r"^Run(Whirlpool|LockStep|TopK)")

EXPECT_RE = re.compile(r"//\s*wp-alint-expect:\s*([A-Za-z0-9,\s]+)")
EXPECT_SUBSTR_RE = re.compile(r"//\s*wp-alint-expect-substr:\s*(.+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- libclang discovery -----------------------------------------------------

def _candidate_module_dirs(versions):
    import glob
    dirs = []
    for v in versions:
        for pat in (f"/usr/lib/llvm-{v}/lib/python3*/dist-packages",
                    f"/usr/lib/llvm-{v}/lib/python3*/site-packages",
                    f"/usr/lib/llvm-{v}/lib/python3/dist-packages"):
            dirs += sorted(glob.glob(pat))
    return dirs


def _candidate_library_files(versions):
    import glob
    out = []
    for v in versions:
        pats = [f"/usr/lib/llvm-{v}/lib/libclang-{v}.so.1",
                f"/usr/lib/llvm-{v}/lib/libclang.so.1",
                f"/usr/lib/x86_64-linux-gnu/libclang-{v}.so.1"]
        pats += sorted(glob.glob(f"/usr/lib/llvm-{v}/lib/libclang*.so*"))
        pats += sorted(glob.glob(f"/usr/lib/*/libclang-{v}.so*"))
        for p in pats:
            # libclang-cpp is the C++ dylib; it lacks the C API cindex needs.
            if "libclang-cpp" not in p and p not in out:
                out.append(p)
    return out


def load_libclang(versions):
    """Returns (cindex module, None) or (None, reason). Never raises."""
    cindex = None
    try:
        from clang import cindex  # pip `libclang` or python3-clang on path
    except ImportError:
        # Debian/Ubuntu python3-clang-N installs under the LLVM prefix, off
        # sys.path; probe the layouts the CLANG_VERSIONS list implies.
        for d in _candidate_module_dirs(versions):
            if d not in sys.path:
                sys.path.append(d)
        try:
            from clang import cindex
        except ImportError:
            return None, "python module clang.cindex is not installed"
    try:
        if not cindex.Config.loaded:
            lib = os.environ.get("WP_ALINT_LIBCLANG")
            if not lib:
                for cand in _candidate_library_files(versions):
                    if os.path.isfile(cand):
                        lib = cand
                        break
            if lib:
                cindex.Config.set_library_file(lib)
        cindex.Index.create()
    except Exception as e:  # LibclangError, OSError: no usable shared lib
        return None, f"libclang shared library unavailable ({e})"
    return cindex, None


# --- fact model -------------------------------------------------------------

class MutexDecl:
    """A whirlpool::Mutex field or variable, with its declared LockRank."""

    def __init__(self, usr, qualified, rank_name, file, line, class_usr):
        self.usr = usr
        self.qualified = qualified
        self.rank_name = rank_name or "kUnranked"
        self.file = file
        self.line = line
        self.class_usr = class_usr


class Acquisition:
    """One MutexLock / .lock() site and the range over which it is held."""

    def __init__(self, musr, off, end_off, file, line):
        self.musr = musr
        self.off = off
        self.end_off = end_off
        self.file = file
        self.line = line


class Call:
    def __init__(self, callee_usr, callee_name, off, file, line):
        self.callee_usr = callee_usr
        self.callee_name = callee_name
        self.off = off
        self.file = file
        self.line = line


class BlockingOp:
    """A direct WP009-blocking operation inside a function body."""

    def __init__(self, kind, desc, off, file, line, musr=None):
        self.kind = kind      # one of BLOCK_KIND_ORDER
        self.desc = desc
        self.off = off
        self.file = file
        self.line = line
        self.musr = musr      # waited-on mutex USR for kind "wait"


class Loop:
    def __init__(self, off, end_off, file, line):
        self.off = off
        self.end_off = end_off
        self.file = file
        self.line = line


class FnInfo:
    def __init__(self, usr, display, file, line):
        self.usr = usr
        self.display = display
        self.file = file
        self.line = line
        self.annotations = set()   # annotation macro names from any decl
        self.requires_args = []    # raw REQUIRES(...) argument strings
        self.class_usr = None      # semantic parent class, if a method
        self.params = None         # [(name, ("mutex", None)
                                   #         | ("class", usr) | None)]
        self.acquires = []         # [Acquisition] — from the definition
        self.calls = []            # [Call]        — from the definition
        self.body_done = False
        self.is_deleted = False
        # WP009/WP011:
        self.blocking = []         # [BlockingOp]
        self.loops = []            # [Loop]
        self.polls = []            # [offset] — CancelToken::Poll/Check sites
        # WP010:
        self.result_ptrish = False  # canonical result is T* / T&
        self.ret_guarded = []      # [(field qualified, file, line)]
        self.ptr_binds = {}        # var usr -> (name, field qual, off,
                                   #             file, line)
        self.ptr_uses = []         # [(var usr, off, file, line)]
        self.lambda_escapes = []   # [(field qual, sink, file, line)]
        self.field_stores = []     # [(lhs field, field qual, file, line)]


class ClassInfo:
    def __init__(self, usr, name, file, line):
        self.usr = usr
        self.name = name
        self.file = file
        self.line = line
        self.mutex_field_names = {}  # field name -> mutex usr
        self.has_mutex = False
        self.open_guarded = False    # public GUARDED_BY field present
        self.atomic_fields = []      # (field name, guarded, file, line)


class Facts:
    """Whole-program facts merged across every parsed TU. Everything stored
    here is plain Python data — no clang cursors/types survive a TU."""

    def __init__(self):
        self.mutexes = {}       # usr -> MutexDecl
        self.classes = {}       # usr -> ClassInfo
        self.fns = {}           # usr -> FnInfo
        self.lock_ranks = {}    # enumerator name -> int value (from the AST)
        self.check_ranges = {}  # file -> [(start_off, end_off, macro, line)]
        self.cond_ranges = {}   # file -> [(start_off, end_off)]
        self.order_uses = []    # (file, line, order_name)
        self.rmw_relaxed = []   # (file, line, off, call_name)
        self.implicit_seq_cst = []  # (file, line, op_name)
        self.side_effects = []  # (file, off, line, description)
        self.parse_errors = []  # Finding(WP000)
        self.files_parsed = 0
        # WP010: GUARDED_BY field registry (field usr -> "Class::field").
        self.guarded_fields = {}
        # WP011 failpoint-registry drift model.
        self.failpoint_sites = {}  # site const name -> (value, file, line)
        self.site_uses = set()     # site const names referenced outside
                                   # KnownSites()
        self.site_literals = []    # (string value, file, line) passed to
                                   # Hit/InjectedError/Poll


# --- AST extraction ---------------------------------------------------------

class TuExtractor:
    """Walks one translation unit at a time, appending to shared Facts."""

    def __init__(self, cindex, facts, root):
        self.ci = cindex
        self.facts = facts
        self.root = root + os.sep
        ck = cindex.CursorKind
        self.FN_KINDS = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                         ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE,
                         ck.CONVERSION_FUNCTION}
        self.CLASS_KINDS = {ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE}
        self.COND_PARENTS = {ck.IF_STMT, ck.WHILE_STMT, ck.SWITCH_STMT,
                             ck.CONDITIONAL_OPERATOR, ck.DO_STMT}
        self.LOOP_KINDS = {ck.WHILE_STMT, ck.FOR_STMT, ck.DO_STMT,
                           ck.CXX_FOR_RANGE_STMT}

    # - location / type helpers -

    def _under_root(self, cursor):
        f = cursor.location.file
        return f is not None and os.path.abspath(f.name).startswith(self.root)

    def _relfile(self, cursor):
        return os.path.relpath(os.path.abspath(cursor.location.file.name),
                               self.root[:-1])

    @staticmethod
    def _canonical(type_obj):
        try:
            return type_obj.get_canonical()
        except Exception:
            return type_obj

    def _deref(self, type_obj):
        """Canonical type behind T, T&, T&&, T* (one level)."""
        tk = self.ci.TypeKind
        t = self._canonical(type_obj)
        if t.kind in (tk.POINTER, tk.LVALUEREFERENCE, tk.RVALUEREFERENCE):
            t = self._canonical(t.get_pointee())
        return t

    def _is_mutex_type(self, type_obj):
        s = self._canonical(type_obj).spelling.replace("const ", "")
        return s == "Mutex" or s.endswith("::Mutex")

    def _pack_param(self, parm):
        """PARM_DECL -> (name, tag) with only plain data in the tag (clang
        Type objects must not outlive their TU)."""
        t = self._deref(parm.type)
        spelling = t.spelling.replace("const ", "")
        if spelling == "Mutex" or spelling.endswith("::Mutex"):
            return (parm.spelling, ("mutex", None))
        try:
            decl = t.get_declaration()
            if decl is not None and \
                    decl.kind != self.ci.CursorKind.NO_DECL_FOUND:
                return (parm.spelling, ("class", decl.get_usr()))
        except Exception:
            pass
        return (parm.spelling, None)

    # - declaration helpers -

    @staticmethod
    def _tokens_before_body(cursor):
        body_start = None
        for ch in cursor.get_children():
            if ch.kind.is_statement():
                body_start = ch.extent.start.offset
                break
        toks = []
        for t in cursor.get_tokens():
            if body_start is not None and t.location.offset >= body_start:
                break
            toks.append(t.spelling)
        return toks

    @staticmethod
    def _annotation_scan(tokens):
        """(annotation macro names, REQUIRES arg strings, is_deleted)."""
        names, requires, deleted = set(), [], False
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok == "delete" and i > 0 and tokens[i - 1] == "=":
                deleted = True
            if tok in ANNOTATION_MACROS:
                names.add(tok)
                if tok in ("REQUIRES", "REQUIRES_SHARED") and \
                        i + 1 < len(tokens) and tokens[i + 1] == "(":
                    depth, j, arg = 1, i + 2, []
                    while j < len(tokens) and depth > 0:
                        if tokens[j] == "(":
                            depth += 1
                        elif tokens[j] == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        arg.append(tokens[j])
                        j += 1
                    for part in "".join(arg).split(","):
                        if part and part not in requires:
                            requires.append(part)
                    i = j
            i += 1
        return names, requires, deleted

    @staticmethod
    def _rank_from_tokens(tokens):
        for i, tok in enumerate(tokens):
            if tok == "LockRank" and i + 2 < len(tokens) and \
                    tokens[i + 1] == "::":
                return tokens[i + 2]
        return None

    def _first_mutex_ref(self, cursor):
        """First DECL_REF/MEMBER_REF in the subtree resolving to a Mutex
        field or variable; returns the referenced cursor or None."""
        ck = self.ci.CursorKind
        stack = list(cursor.get_children())
        while stack:
            cur = stack.pop(0)
            if cur.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR):
                ref = cur.referenced
                if ref is not None and \
                        ref.kind in (ck.FIELD_DECL, ck.VAR_DECL) and \
                        self._is_mutex_type(ref.type):
                    return ref
            stack[:0] = list(cur.get_children())
        return None

    def _register_mutex_decl(self, cur):
        """FIELD_DECL or VAR_DECL of type whirlpool::Mutex."""
        musr = cur.get_usr()
        if musr in self.facts.mutexes or not self._under_root(cur):
            return
        toks = [t.spelling for t in cur.get_tokens()]
        parent = cur.semantic_parent
        qual, class_usr = cur.spelling, None
        if parent is not None and parent.kind in self.CLASS_KINDS:
            qual = f"{parent.spelling}::{cur.spelling}"
            class_usr = parent.get_usr()
        self.facts.mutexes[musr] = MutexDecl(
            musr, qual, self._rank_from_tokens(toks), self._relfile(cur),
            cur.location.line, class_usr)

    def _order_name(self, ref_cursor):
        """Normalized memory_order name for a DECL_REF, or None. Handles
        both the C++17 enumerators (memory_order_acquire) and the C++20
        compat constants / scoped enumerators (memory_order::acquire)."""
        s = ref_cursor.spelling
        if s.startswith("memory_order_"):
            return s
        if s in ("relaxed", "consume", "acquire", "release", "acq_rel",
                 "seq_cst"):
            t = ref_cursor.type.spelling
            if t == "std::memory_order" or t.endswith("memory_order"):
                return "memory_order_" + s
        return None

    def _iter_order_refs(self, call_cursor):
        ck = self.ci.CursorKind
        stack = list(call_cursor.get_children())
        while stack:
            cur = stack.pop()
            if cur.kind == ck.DECL_REF_EXPR:
                name = self._order_name(cur)
                if name:
                    yield name
            stack += list(cur.get_children())

    def _in_check_range(self, rel, off):
        for (s, e, _, _) in self.facts.check_ranges.get(rel, ()):
            if s < off <= e:
                return True
        return False

    def _in_sites_namespace(self, cur):
        parent = cur.semantic_parent
        return parent is not None and \
            parent.kind == self.ci.CursorKind.NAMESPACE and \
            parent.spelling == "sites"

    def _guarded_field_ref(self, cursor):
        """Qualified name of the first GUARDED_BY field referenced anywhere
        in the subtree (including the node itself), or None."""
        ck = self.ci.CursorKind
        stack = [cursor]
        while stack:
            cur = stack.pop(0)
            if cur.kind in (ck.MEMBER_REF_EXPR, ck.DECL_REF_EXPR):
                ref = cur.referenced
                if ref is not None and ref.kind == ck.FIELD_DECL:
                    qual = self.facts.guarded_fields.get(ref.get_usr())
                    if qual is not None:
                        return qual
            stack += list(cur.get_children())
        return None

    def _find_lambda(self, cursor):
        ck = self.ci.CursorKind
        stack = list(cursor.get_children())
        while stack:
            cur = stack.pop(0)
            if cur.kind == ck.LAMBDA_EXPR:
                return cur
            stack += list(cur.get_children())
        return None

    def _blocking_call_kind(self, name, ref, ref_parent):
        """Classify a call site as a direct blocking op: (kind, desc) or
        None. CondVar::Wait is handled separately (needs the mutex arg)."""
        parent_name = ref_parent.spelling if ref_parent is not None else ""
        if name in SLEEP_FN_NAMES:
            return ("sleep", f"sleep call '{name}'")
        if name in C_IO_FN_NAMES:
            return ("io", f"C stdio call '{name}'")
        if parent_name in FSTREAM_PARENTS:
            return ("io", f"file-stream operation '{parent_name}::{name}'")
        if parent_name == "SyncMatchQueue" and name.startswith("Pop"):
            return ("pop", f"blocking queue drain "
                           f"'SyncMatchQueue::{name}'")
        if (parent_name == "ProcessorCap" and name == "Acquire") or \
                (parent_name in STD_SEMAPHORE_PARENTS and
                 name in ("acquire", "try_acquire_for", "try_acquire_until")):
            return ("semaphore", f"semaphore acquisition "
                                 f"'{parent_name}::{name}'")
        if ref is not None:
            display = name
            if ref_parent is not None and \
                    ref_parent.kind in self.CLASS_KINDS:
                display = f"{parent_name}::{name}"
            if display in FAILPOINT_IDENTITY_DISPLAYS:
                return ("failpoint", f"failpoint/cancel site '{display}'")
        return None

    # - per-TU entry point -

    def extract(self, tu):
        ck = self.ci.CursorKind
        # Pass 1: preprocessing record — WP_CHECK/WP_DCHECK instantiations
        # (their extents bound the WP008 audit and position-filter the
        # expansion scaffolding, which all carries the instantiation's own
        # start offset, out of the argument range).
        for cur in tu.cursor.get_children():
            if cur.kind == ck.MACRO_INSTANTIATION and \
                    cur.spelling in CHECK_MACRO_NAMES and \
                    self._under_root(cur):
                rel = self._relfile(cur)
                entry = (cur.extent.start.offset, cur.extent.end.offset,
                         cur.spelling, cur.location.line)
                ranges = self.facts.check_ranges.setdefault(rel, [])
                if entry not in ranges:
                    ranges.append(entry)
        # Pass 2: declarations and function bodies.
        for cur in tu.cursor.get_children():
            if cur.kind in (ck.MACRO_INSTANTIATION, ck.MACRO_DEFINITION,
                            ck.INCLUSION_DIRECTIVE):
                continue
            if not self._under_root(cur):
                continue
            self._walk(cur, fn=None, compounds=[])

    # - recursive walk -

    def _walk(self, cur, fn, compounds):
        ck = self.ci.CursorKind
        try:
            kind = cur.kind
        except ValueError:
            return  # kind unknown to this cindex version: skip subtree
        if kind == ck.ENUM_DECL and cur.spelling == "LockRank":
            for ch in cur.get_children():
                if ch.kind == ck.ENUM_CONSTANT_DECL:
                    self.facts.lock_ranks[ch.spelling] = ch.enum_value
        elif kind in self.CLASS_KINDS and cur.is_definition():
            self._record_class(cur)
        elif kind == ck.FIELD_DECL and self._is_mutex_type(cur.type):
            self._register_mutex_decl(cur)
        elif kind == ck.VAR_DECL and self._is_mutex_type(cur.type):
            self._register_mutex_decl(cur)
        elif kind == ck.VAR_DECL and self._in_sites_namespace(cur) and \
                cur.spelling not in self.facts.failpoint_sites:
            value = None
            for t in cur.get_tokens():
                if t.spelling.startswith('"'):
                    value = t.spelling.strip('"')
                    break
            if value is not None:
                self.facts.failpoint_sites[cur.spelling] = (
                    value, self._relfile(cur), cur.location.line)
        if kind in self.FN_KINDS:
            fn = self._record_fn(cur)
            compounds = []
        elif kind == ck.COMPOUND_STMT:
            compounds = compounds + [cur.extent.end.offset]
        if fn is not None:
            self._body_node(cur, kind, fn, compounds)
        for ch in cur.get_children():
            self._walk(ch, fn, compounds)

    def _record_class(self, cur):
        ck = self.ci.CursorKind
        usr = cur.get_usr()
        if usr in self.facts.classes:
            return  # already recorded from another TU
        info = ClassInfo(usr, cur.spelling, self._relfile(cur),
                         cur.location.line)
        self.facts.classes[usr] = info
        public = self.ci.AccessSpecifier.PUBLIC
        for ch in cur.get_children():
            if ch.kind != ck.FIELD_DECL:
                continue
            toks = [t.spelling for t in ch.get_tokens()]
            guarded = "GUARDED_BY" in toks or "PT_GUARDED_BY" in toks
            canon = self._canonical(ch.type).spelling
            if guarded and not self._is_mutex_type(ch.type):
                self.facts.guarded_fields[ch.get_usr()] = \
                    f"{cur.spelling}::{ch.spelling}"
            if self._is_mutex_type(ch.type):
                info.has_mutex = True
                info.mutex_field_names[ch.spelling] = ch.get_usr()
                self._register_mutex_decl(ch)
            elif "atomic<" in canon or canon.startswith("std::atomic"):
                info.atomic_fields.append(
                    (ch.spelling, guarded, self._relfile(ch),
                     ch.location.line))
            if guarded and ch.access_specifier == public and \
                    not self._is_mutex_type(ch.type):
                info.open_guarded = True

    def _record_fn(self, cur):
        """Registers/updates the function; returns an FnInfo iff this cursor
        is a definition whose body has not been processed yet (header-inline
        bodies appear in many TUs — extract once)."""
        usr = cur.get_usr()
        fn = self.facts.fns.get(usr)
        if fn is None:
            parent = cur.semantic_parent
            display = cur.spelling
            class_usr = None
            if parent is not None and parent.kind in self.CLASS_KINDS:
                display = f"{parent.spelling}::{cur.spelling}"
                class_usr = parent.get_usr()
            fn = FnInfo(usr, display, self._relfile(cur), cur.location.line)
            fn.class_usr = class_usr
            self.facts.fns[usr] = fn
        toks = self._tokens_before_body(cur)
        names, requires, deleted = self._annotation_scan(toks)
        fn.annotations |= names
        for r in requires:
            if r not in fn.requires_args:
                fn.requires_args.append(r)
        fn.is_deleted = fn.is_deleted or deleted
        is_def = cur.is_definition()
        if fn.params is None or is_def:
            ck = self.ci.CursorKind
            fn.params = [self._pack_param(p) for p in cur.get_children()
                         if p.kind == ck.PARM_DECL]
        if is_def and not fn.body_done:
            fn.body_done = True
            tk = self.ci.TypeKind
            try:
                rk = self._canonical(cur.result_type).kind
                fn.result_ptrish = rk in (tk.POINTER, tk.LVALUEREFERENCE)
            except Exception:
                pass
            return fn
        return None

    def _body_node(self, cur, kind, fn, compounds):
        ck = self.ci.CursorKind

        # WP005: MutexLock RAII acquisition — held until the end of the
        # enclosing compound statement.
        if kind == ck.VAR_DECL and \
                self._canonical(cur.type).spelling.endswith("MutexLock"):
            ref = self._first_mutex_ref(cur)
            if ref is not None:
                self._register_mutex_decl(ref)
                end = compounds[-1] if compounds else cur.extent.end.offset
                fn.acquires.append(Acquisition(
                    ref.get_usr(), cur.location.offset, end,
                    self._relfile(cur), cur.location.line))

        # WP010: pointer/reference/iterator local bound from a GUARDED_BY
        # field — flagged later if used after its critical section closes.
        elif kind == ck.VAR_DECL:
            tk = self.ci.TypeKind
            ptrish = self._canonical(cur.type).kind in \
                (tk.POINTER, tk.LVALUEREFERENCE) or \
                "iterator" in cur.type.spelling
            if ptrish:
                qual = self._guarded_field_ref(cur)
                if qual is not None:
                    fn.ptr_binds[cur.get_usr()] = (
                        cur.spelling, qual, cur.location.offset,
                        self._relfile(cur), cur.location.line)

        # WP011: loop extents for the cancellation-coverage check.
        if kind in self.LOOP_KINDS:
            fn.loops.append(Loop(
                cur.extent.start.offset, cur.extent.end.offset,
                self._relfile(cur), cur.location.line))

        # WP010: guarded state escaping through a return statement (only
        # flagged when the function's result type is a pointer/reference).
        if kind == ck.RETURN_STMT:
            qual = self._guarded_field_ref(cur)
            if qual is not None:
                fn.ret_guarded.append(
                    (qual, self._relfile(cur), cur.location.line))

        # WP010: pointer to guarded state stored into an unguarded field.
        if kind == ck.BINARY_OPERATOR:
            children = list(cur.get_children())
            if len(children) == 2 and \
                    children[0].kind == ck.MEMBER_REF_EXPR:
                lref = children[0].referenced
                tk = self.ci.TypeKind
                if lref is not None and lref.kind == ck.FIELD_DECL and \
                        lref.get_usr() not in self.facts.guarded_fields and \
                        self._canonical(lref.type).kind == tk.POINTER and \
                        "=" in (t.spelling for t in cur.get_tokens()):
                    qual = self._guarded_field_ref(children[1])
                    if qual is not None:
                        fn.field_stores.append(
                            (lref.spelling, qual, self._relfile(cur),
                             cur.location.line))

        if kind == ck.CALL_EXPR:
            ref = cur.referenced
            name = cur.spelling or (ref.spelling if ref is not None else "")
            ref_parent = ref.semantic_parent if ref is not None else None

            # WP005: explicit m.lock()/m.unlock() on a whirlpool::Mutex.
            if name in ("lock", "unlock") and ref_parent is not None and \
                    ref_parent.spelling == "Mutex":
                mref = self._first_mutex_ref(cur)
                if mref is not None:
                    self._register_mutex_decl(mref)
                    if name == "lock":
                        end = compounds[-1] if compounds \
                            else cur.extent.end.offset
                        fn.acquires.append(Acquisition(
                            mref.get_usr(), cur.location.offset, end,
                            self._relfile(cur), cur.location.line))
                    else:
                        for a in reversed(fn.acquires):
                            if a.musr == mref.get_usr() and \
                                    a.off < cur.location.offset < a.end_off:
                                a.end_off = cur.location.offset
                                break

            # WP005: project-internal call edges for the whole-program graph.
            if ref is not None and ref.kind in self.FN_KINDS and \
                    self._under_root(ref):
                fn.calls.append(Call(
                    ref.get_usr(), ref.spelling, cur.location.offset,
                    self._relfile(cur), cur.location.line))

            # WP009: direct blocking operations, by callee identity.
            if name == "Wait" and ref_parent is not None and \
                    ref_parent.spelling == "CondVar":
                wref = self._first_mutex_ref(cur)
                if wref is not None:
                    self._register_mutex_decl(wref)
                fn.blocking.append(BlockingOp(
                    "wait", "condition wait 'CondVar::Wait'",
                    cur.location.offset, self._relfile(cur),
                    cur.location.line,
                    wref.get_usr() if wref is not None else None))
            elif name in ("operator<<", "operator>>") and (
                    "basic_ostream" in self._canonical(cur.type).spelling or
                    "basic_istream" in self._canonical(cur.type).spelling):
                fn.blocking.append(BlockingOp(
                    "io", f"stream I/O '{name}'", cur.location.offset,
                    self._relfile(cur), cur.location.line))
            else:
                bk = self._blocking_call_kind(name, ref, ref_parent)
                if bk is not None:
                    fn.blocking.append(BlockingOp(
                        bk[0], bk[1], cur.location.offset,
                        self._relfile(cur), cur.location.line))
                    if bk[0] == "failpoint":
                        display = name
                        if ref_parent is not None and \
                                ref_parent.kind in self.CLASS_KINDS:
                            display = f"{ref_parent.spelling}::{name}"
                        if display in POLL_DISPLAYS:
                            fn.polls.append(cur.location.offset)
                        for t in cur.get_tokens():
                            if t.spelling.startswith('"'):
                                self.facts.site_literals.append(
                                    (t.spelling.strip('"'),
                                     self._relfile(cur),
                                     cur.location.line))
                                break

            # WP010: lambda referencing guarded state handed to a thread.
            sink = None
            if ref is not None and ref.kind == ck.CONSTRUCTOR and \
                    ref_parent is not None and \
                    ref_parent.spelling in ("thread", "jthread"):
                sink = f"std::{ref_parent.spelling}"
            elif name == "async":
                sink = "std::async"
            if sink is not None:
                lam = self._find_lambda(cur)
                if lam is not None:
                    qual = self._guarded_field_ref(lam)
                    if qual is not None:
                        fn.lambda_escapes.append(
                            (qual, sink, self._relfile(cur),
                             cur.location.line))

            # WP006: std::atomic operations.
            if ref_parent is not None and \
                    ref_parent.spelling in ATOMIC_PARENTS:
                rel = self._relfile(cur)
                implicit = (name in ATOMIC_SUGAR_NAMES or
                            name.startswith("operator ") or
                            (name in ATOMIC_ORDERED_NAMES and
                             not any(True
                                     for _ in self._iter_order_refs(cur))))
                if implicit:
                    self.facts.implicit_seq_cst.append(
                        (rel, cur.location.line, name))
                elif name in ATOMIC_RMW_NAMES and "memory_order_relaxed" in \
                        set(self._iter_order_refs(cur)):
                    self.facts.rmw_relaxed.append(
                        (rel, cur.location.line, cur.location.offset, name))

            # WP008 candidate: call to a non-const, non-static method inside
            # a WP_CHECK/WP_DCHECK argument range.
            if ref is not None and ref.kind == ck.CXX_METHOD and \
                    not ref.is_const_method() and \
                    not ref.is_static_method() and \
                    name not in BENIGN_NONCONST_METHODS:
                rel = self._relfile(cur)
                if self._in_check_range(rel, cur.location.offset):
                    self.facts.side_effects.append(
                        (rel, cur.location.offset, cur.location.line,
                         f"call to non-const method '{name}'"))

        # WP006: non-relaxed memory_order references.
        if kind == ck.DECL_REF_EXPR:
            order = self._order_name(cur)
            if order is not None and order != "memory_order_relaxed":
                self.facts.order_uses.append(
                    (self._relfile(cur), cur.location.line, order))
            ref = cur.referenced
            if ref is not None and ref.kind == ck.VAR_DECL:
                # WP010: use of a pointer/iterator bound from guarded state.
                if ref.get_usr() in fn.ptr_binds:
                    fn.ptr_uses.append(
                        (ref.get_usr(), cur.location.offset,
                         self._relfile(cur), cur.location.line))
                # WP011: failpoint site constant referenced outside the
                # registry's own KnownSites() listing.
                elif self._in_sites_namespace(ref) and \
                        "KnownSites" not in fn.display:
                    self.facts.site_uses.add(ref.spelling)

        # WP006: control-flow condition ranges.
        if kind in self.COND_PARENTS:
            cond = self._condition_child(cur, kind)
            if cond is not None and cond.location.file is not None and \
                    self._under_root(cond):
                rel = self._relfile(cond)
                entry = (cond.extent.start.offset, cond.extent.end.offset)
                ranges = self.facts.cond_ranges.setdefault(rel, [])
                if entry not in ranges:
                    ranges.append(entry)

        # WP008: ++/-- and assignments inside check argument ranges.
        if kind in (ck.UNARY_OPERATOR, ck.BINARY_OPERATOR,
                    ck.COMPOUND_ASSIGNMENT_OPERATOR):
            rel = self._relfile(cur)
            if self._in_check_range(rel, cur.location.offset):
                desc = None
                if kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                    desc = "compound assignment"
                else:
                    toks = [t.spelling for t in cur.get_tokens()]
                    if kind == ck.UNARY_OPERATOR:
                        if toks and toks[0] in ("++", "--"):
                            desc = f"'{toks[0]}' increment/decrement"
                        elif toks and toks[-1] in ("++", "--"):
                            desc = f"'{toks[-1]}' increment/decrement"
                    elif "=" in toks:
                        desc = "assignment"
                if desc is not None:
                    self.facts.side_effects.append(
                        (rel, cur.location.offset, cur.location.line, desc))

    def _condition_child(self, cur, kind):
        ck = self.ci.CursorKind
        children = list(cur.get_children())
        if not children:
            return None
        if kind == ck.DO_STMT:
            return children[-1]
        for ch in children:
            if ch.kind not in (ck.DECL_STMT, ck.COMPOUND_STMT):
                return ch
        return None


# --- whole-program analysis -------------------------------------------------

def _resolve_requires(fn, facts):
    """REQUIRES argument strings -> mutex USRs. Best effort: `mu_`,
    `scores_mu_`, `this->mu_` resolve through the method's class, bare names
    through namespace-scope mutexes; parameter-based arguments (`b.mu`) are
    call-site-dependent and skipped."""
    out = []
    for raw in fn.requires_args:
        name = raw.replace("this->", "").lstrip("!&*")
        if "." in name or "->" in name:
            continue
        cls = facts.classes.get(fn.class_usr) if fn.class_usr else None
        if cls is not None and name in cls.mutex_field_names:
            out.append(cls.mutex_field_names[name])
            continue
        for m in facts.mutexes.values():
            if m.class_usr is None and m.qualified == name:
                out.append(m.usr)
                break
    return out


def analyze_lock_order(facts):
    """WP005: rank-order violations and kUnranked cycles, whole-program."""
    findings = []
    # Transitive acquires: fn usr -> {mutex usr: (file, line)} — seeded with
    # direct acquisitions, closed over the call graph.
    trans = {usr: {a.musr: (a.file, a.line) for a in fn.acquires}
             for usr, fn in facts.fns.items()}
    changed = True
    while changed:
        changed = False
        for usr, fn in facts.fns.items():
            mine = trans[usr]
            for call in fn.calls:
                for musr, site in trans.get(call.callee_usr, {}).items():
                    if musr not in mine:
                        mine[musr] = site
                        changed = True

    def rank_of(musr):
        m = facts.mutexes.get(musr)
        if m is None:
            return None, "?"
        return facts.lock_ranks.get(m.rank_name, 0), m.rank_name

    def describe(musr):
        m = facts.mutexes.get(musr)
        _, rank_name = rank_of(musr)
        return f"'{m.qualified if m else musr}' (rank {rank_name})"

    def decl_site(musr):
        m = facts.mutexes.get(musr)
        return f"{m.file}:{m.line}" if m else "?"

    unranked_edges = {}
    reported = set()

    def emit(anchor, msg):
        key = (anchor[0], anchor[1], msg)
        if key not in reported:
            reported.add(key)
            findings.append(Finding(anchor[0], anchor[1], "WP005", msg))

    def check_edge(held_musr, held_site, acq_musr, acq_site, anchor):
        if held_musr == acq_musr:
            emit(anchor,
                 f"re-entrant acquisition of {describe(acq_musr)}: held "
                 f"since {held_site}, reacquired at {acq_site} — "
                 f"whirlpool::Mutex is non-recursive (and equal ranks "
                 f"conflict), so this deadlocks")
            return
        held_rank, _ = rank_of(held_musr)
        acq_rank, _ = rank_of(acq_musr)
        if held_rank is None or acq_rank is None:
            return
        if held_rank == 0 or acq_rank == 0:
            if held_rank == 0 and acq_rank == 0:
                unranked_edges.setdefault((held_musr, acq_musr),
                                          (held_site, acq_site, anchor))
            return
        if acq_rank <= held_rank:
            emit(anchor,
                 f"lock-order violation: acquiring {describe(acq_musr)} at "
                 f"{acq_site} while holding {describe(held_musr)} (held "
                 f"since {held_site}) — LockRank requires strictly "
                 f"increasing ranks (DESIGN.md §10); mutexes declared at "
                 f"{decl_site(acq_musr)} and {decl_site(held_musr)}")

    for usr, fn in facts.fns.items():
        if not fn.body_done:
            continue
        entry_held = [
            (musr, f"REQUIRES on '{fn.display}' at {fn.file}:{fn.line}")
            for musr in _resolve_requires(fn, facts)]
        for acq in fn.acquires:
            acq_site = f"{acq.file}:{acq.line}"
            anchor = (acq.file, acq.line)
            for held in fn.acquires:
                if held is not acq and held.off < acq.off <= held.end_off:
                    check_edge(held.musr, f"{held.file}:{held.line}",
                               acq.musr, acq_site, anchor)
            for musr, held_site in entry_held:
                check_edge(musr, held_site, acq.musr, acq_site, anchor)
        for call in fn.calls:
            callee_acqs = trans.get(call.callee_usr, {})
            if not callee_acqs:
                continue
            held_here = [(a.musr, f"{a.file}:{a.line}") for a in fn.acquires
                         if a.off < call.off <= a.end_off] + entry_held
            if not held_here:
                continue
            for musr, (af, al) in callee_acqs.items():
                acq_site = (f"{af}:{al} (reached via call to "
                            f"'{call.callee_name}' at "
                            f"{call.file}:{call.line})")
                for held_musr, held_site in held_here:
                    check_edge(held_musr, held_site, musr, acq_site,
                               (call.file, call.line))

    # Cycle detection among kUnranked mutexes (the runtime rank checker
    # skips them entirely, so this is the only net that catches it).
    adj = {}
    for (h, a) in unranked_edges:
        if h != a:
            adj.setdefault(h, set()).add(a)
    state = {}

    def dfs(node, path):
        state[node] = 1
        for nxt in sorted(adj.get(node, ())):
            if state.get(nxt) == 1 and nxt in path:
                cycle = path[path.index(nxt):] + [nxt]
                edges = []
                for i in range(len(cycle) - 1):
                    held_site, acq_site, _ = \
                        unranked_edges[(cycle[i], cycle[i + 1])]
                    edges.append(
                        f"{describe(cycle[i])} held at {held_site} -> "
                        f"{describe(cycle[i + 1])} acquired at {acq_site}")
                _, _, anchor = unranked_edges[(cycle[0], cycle[1])]
                emit(anchor,
                     "cycle among kUnranked mutexes (exempt from the "
                     "runtime rank checker, so only this analyzer sees "
                     "it): " + "; ".join(edges))
            elif state.get(nxt, 0) == 0:
                dfs(nxt, path + [nxt])
        state[node] = 2

    for node in sorted(adj):
        if state.get(node, 0) == 0:
            dfs(node, [node])
    return findings


def analyze_atomics(facts, file_lines):
    """WP006: justification comments, relaxed RMWs in control flow, implicit
    seq_cst, and the atomic-field allowlist (shared with wp_lint)."""
    findings = []
    for (rel, line, order) in facts.order_uses:
        lines = file_lines(rel)
        lo = max(0, line - 1 - JUSTIFY_CONTEXT_LINES)
        justified = any(
            "//" in text and JUSTIFY_RE.search(text.split("//", 1)[1])
            for text in lines[lo:line])
        if not justified:
            findings.append(Finding(
                rel, line, "WP006",
                f"{order} without a justification comment — non-relaxed "
                f"orders cost fences on weakly-ordered hardware; say what "
                f"this one synchronizes (comment on the same line or within "
                f"{JUSTIFY_CONTEXT_LINES} lines above)"))
    for (rel, line, off, name) in facts.rmw_relaxed:
        if any(s <= off <= e for (s, e) in facts.cond_ranges.get(rel, ())):
            findings.append(Finding(
                rel, line, "WP006",
                f"relaxed RMW '{name}' feeds control flow — "
                f"memory_order_relaxed gives the gated code no ordering "
                f"with other threads' writes; use acq_rel or justify with "
                f"a comment plus a disable hatch"))
    for (rel, line, name) in facts.implicit_seq_cst:
        findings.append(Finding(
            rel, line, "WP006",
            f"atomic '{name}' with an implicit memory order (seq_cst) — "
            f"spell the order explicitly (fetch_add/store/load with "
            f"std::memory_order_*) so the strongest-order cost is a "
            f"reviewed decision"))
    for cls in facts.classes.values():
        if not cls.has_mutex:
            continue
        for (fname, guarded, rel, line) in cls.atomic_fields:
            if guarded:
                continue
            qualified = f"{cls.name}::{fname}"
            if qualified in wp_lint.ATOMIC_ALLOWLIST:
                continue
            findings.append(Finding(
                rel, line, "WP006",
                f"atomic member {qualified} of a Mutex-owning class is "
                f"neither GUARDED_BY nor in wp_lint.py's ATOMIC_ALLOWLIST — "
                f"guard it, or allowlist it with a written correctness "
                f"argument"))
    return findings


def analyze_annotations(facts):
    """WP007: Mutex / open-holding-state parameters without annotations."""
    findings = []
    open_structs = {usr for usr, c in facts.classes.items()
                    if c.has_mutex and c.open_guarded}
    for fn in facts.fns.values():
        if fn.annotations or fn.is_deleted or not fn.params:
            continue
        for (pname, tag) in fn.params:
            if tag is None:
                continue
            tag_kind, cls_usr = tag
            label = None
            if tag_kind == "mutex":
                label = "a whirlpool::Mutex"
            elif tag_kind == "class" and cls_usr in open_structs:
                label = (f"holding-state struct "
                         f"'{facts.classes[cls_usr].name}' (exposes a Mutex "
                         f"and public GUARDED_BY fields)")
            if label is not None:
                findings.append(Finding(
                    fn.file, fn.line, "WP007",
                    f"'{fn.display}' takes {label} via parameter '{pname}' "
                    f"but carries no thread-safety annotation "
                    f"(REQUIRES/EXCLUDES/ACQUIRE/...) — callers in other "
                    f"TUs are unchecked by -Wthread-safety"))
                break
    return findings


def analyze_check_side_effects(facts):
    """WP008: side effects positioned inside WP_CHECK/WP_DCHECK argument
    ranges. Macro-expansion scaffolding all carries the instantiation's
    start offset, while argument nodes keep their true source offsets — so
    `start < off` filters the scaffolding out."""
    findings = []
    for rel, ranges in facts.check_ranges.items():
        for (start, end, macro, _) in ranges:
            for (sf, off, sline, desc) in facts.side_effects:
                if sf == rel and start < off <= end:
                    extra = (" — WP_DCHECK compiles out in release builds, "
                             "so the side effect silently vanishes"
                             if macro == "WP_DCHECK" else
                             " — checks must observe state, not mutate it")
                    findings.append(Finding(
                        rel, sline, "WP008",
                        f"side effect inside {macro} argument: "
                        f"{desc}{extra}"))
    return findings


# --- WP009/WP010/WP011 ------------------------------------------------------

def _mutex_ranked(facts, musr):
    m = facts.mutexes.get(musr)
    return m is not None and facts.lock_ranks.get(m.rank_name, 0) != 0


def _mutex_desc(facts, musr):
    m = facts.mutexes.get(musr)
    if m is None:
        return f"'{musr}'"
    return f"'{m.qualified}' (rank {m.rank_name})"


def _in_check_incl(facts, rel, off):
    """Inclusive-start variant of the WP008 range test. Macro-expansion
    scaffolding carries the instantiation's own start offset, and WP009 must
    exempt those expansion-carried calls too — the WP_CHECK failure stream
    (`<<` into CheckFailure) only ever runs on the way to abort."""
    return any(s <= off <= e
               for (s, e, _, _) in facts.check_ranges.get(rel, ()))


def _make_justified(file_lines):
    """(rel, line) -> bool predicate with the WP009 justification-comment
    escape hatch (comment on the line or within JUSTIFY_CONTEXT_LINES above
    matching BLOCK_JUSTIFY_RE), cached per site."""
    cache = {}

    def justified(rel, line):
        key = (rel, line)
        if key not in cache:
            lines = file_lines(rel)
            lo = max(0, line - 1 - JUSTIFY_CONTEXT_LINES)
            cache[key] = any(
                "//" in text and
                BLOCK_JUSTIFY_RE.search(text.split("//", 1)[1])
                for text in lines[lo:line])
        return cache[key]

    return justified


def _live_blocking_ops(facts, justified):
    """fn usr -> direct blocking ops surviving the check-range and
    justification filters (a justified site neither fires nor propagates)."""
    out = {}
    for usr, fn in facts.fns.items():
        out[usr] = [
            op for op in fn.blocking
            if not _in_check_incl(facts, op.file, op.off)
            and not justified(op.file, op.line)]
    return out


def _blocking_summary(facts, live_ops, justified):
    """fn usr -> {kind: chain description}: every way a call to this
    function may block, closed over the call graph. Failpoint/cancel entry
    points are frozen empty — their internal sleeps run only under an armed
    chaos plan, and the call *sites* to them are already classified as
    direct ops of kind 'failpoint'."""
    frozen = {usr for usr, fn in facts.fns.items()
              if fn.display in FAILPOINT_IDENTITY_DISPLAYS}
    summary = {usr: {} for usr in facts.fns}
    for usr, ops in live_ops.items():
        if usr in frozen:
            continue
        for op in ops:
            summary[usr].setdefault(op.kind,
                                    f"{op.desc} at {op.file}:{op.line}")
    changed = True
    while changed:
        changed = False
        for usr, fn in facts.fns.items():
            if usr in frozen:
                continue
            mine = summary[usr]
            for call in fn.calls:
                if _in_check_incl(facts, call.file, call.off) or \
                        justified(call.file, call.line):
                    continue
                for bkind, desc in summary.get(call.callee_usr, {}).items():
                    if bkind not in mine:
                        mine[bkind] = (f"call to '{call.callee_name}' at "
                                       f"{call.file}:{call.line} -> {desc}")
                        changed = True
    return summary


def analyze_blocking_under_lock(facts, live_ops, summary, justified):
    """WP009: direct or chained blocking calls under a ranked mutex."""
    findings = []
    reported = set()

    def emit(file, line, msg):
        key = (file, line, msg)
        if key not in reported:
            reported.add(key)
            findings.append(Finding(file, line, "WP009", msg))

    for usr, fn in facts.fns.items():
        if not fn.body_done:
            continue
        entry_held = [
            (musr, f"REQUIRES on '{fn.display}' at {fn.file}:{fn.line}")
            for musr in _resolve_requires(fn, facts)]

        def held_at(off):
            return [(a.musr, f"{a.file}:{a.line}") for a in fn.acquires
                    if a.off < off <= a.end_off] + entry_held

        for op in live_ops[usr]:
            for (musr, site) in held_at(op.off):
                if not _mutex_ranked(facts, musr):
                    continue
                if op.kind == "wait" and op.musr == musr:
                    # Wait(mu) atomically releases mu while sleeping — only
                    # a *second* held mutex blocks other threads.
                    continue
                emit(op.file, op.line,
                     f"{op.desc} while holding ranked mutex "
                     f"{_mutex_desc(facts, musr)} (held since {site}) — "
                     f"move the blocking call outside the critical section "
                     f"or justify it with a comment")
        op_sites = {(op.file, op.off) for op in fn.blocking}
        for call in fn.calls:
            if (call.file, call.off) in op_sites:
                continue  # site already classified as a direct blocking op
            if _in_check_incl(facts, call.file, call.off) or \
                    justified(call.file, call.line):
                continue
            kinds = summary.get(call.callee_usr, {})
            if not kinds:
                continue
            bkind = next(k for k in BLOCK_KIND_ORDER if k in kinds)
            for (musr, site) in held_at(call.off):
                if not _mutex_ranked(facts, musr):
                    continue
                emit(call.file, call.line,
                     f"call to '{call.callee_name}' may block "
                     f"({bkind}: {kinds[bkind]}) while holding ranked "
                     f"mutex {_mutex_desc(facts, musr)} (held since "
                     f"{site})")
    return findings


def analyze_guarded_escape(facts):
    """WP010: guarded-state references outliving their critical section."""
    findings = []
    for usr, fn in facts.fns.items():
        if not fn.body_done:
            continue
        # A REQUIRES-annotated accessor hands the reference to a caller that
        # provably holds the lock — that is a lock-transfer contract, not an
        # escape (-Wthread-safety checks the caller's side).
        if fn.result_ptrish and not fn.requires_args:
            for (qual, f, l) in fn.ret_guarded:
                findings.append(Finding(
                    f, l, "WP010",
                    f"'{fn.display}' returns a pointer/reference derived "
                    f"from GUARDED_BY field '{qual}' — the caller keeps it "
                    f"after the critical section that guards it closes"))
        for vusr, (name, qual, off, bf, bl) in fn.ptr_binds.items():
            cover = [a for a in fn.acquires if a.off <= off <= a.end_off]
            if not cover:
                continue  # REQUIRES-held or unlocked: the caller's problem
            acq = max(cover, key=lambda a: a.off)
            for (uusr, uoff, uf, ul) in fn.ptr_uses:
                if uusr == vusr and uoff > acq.end_off:
                    findings.append(Finding(
                        uf, ul, "WP010",
                        f"'{name}' (bound to GUARDED_BY field '{qual}' at "
                        f"{bf}:{bl} inside the critical section from "
                        f"{acq.file}:{acq.line}) is used after the lock is "
                        f"released"))
                    break
        for (qual, sink, f, l) in fn.lambda_escapes:
            findings.append(Finding(
                f, l, "WP010",
                f"lambda handed to {sink} references GUARDED_BY field "
                f"'{qual}' — it runs on another thread, outside the "
                f"critical section"))
        for (lhs, qual, f, l) in fn.field_stores:
            findings.append(Finding(
                f, l, "WP010",
                f"pointer to GUARDED_BY field '{qual}' stored into "
                f"unguarded field '{lhs}' — the guarded state escapes its "
                f"mutex"))
    return findings


def analyze_cancellation_coverage(facts, live_ops, summary, justified):
    """WP011 part 1: engine loops with (non-failpoint) blocking work must
    contain a reachable CancelToken::Poll, in their own extent or an
    enclosing loop's."""
    findings = []
    reach = {}  # fn usr -> engine entry display it is reachable from
    work = []
    for usr, fn in facts.fns.items():
        if ENTRY_RE.match(fn.display):
            reach[usr] = fn.display
            work.append(usr)
    while work:
        usr = work.pop()
        for call in facts.fns[usr].calls:
            if call.callee_usr in facts.fns and \
                    call.callee_usr not in reach:
                reach[call.callee_usr] = reach[usr]
                work.append(call.callee_usr)

    for usr in sorted(reach, key=lambda u: facts.fns[u].display):
        fn = facts.fns[usr]
        if not fn.body_done or \
                "failpoint" in os.path.basename(fn.file):
            continue  # the chaos injector's own stalls ARE the mechanism
        for loop in fn.loops:
            blockers = [
                f"{op.desc} at {op.file}:{op.line}"
                for op in live_ops[usr]
                if loop.off <= op.off <= loop.end_off
                and op.kind != "failpoint"]
            for call in fn.calls:
                if not (loop.off <= call.off <= loop.end_off):
                    continue
                if _in_check_incl(facts, call.file, call.off) or \
                        justified(call.file, call.line):
                    continue
                kinds = {k: d for k, d in
                         summary.get(call.callee_usr, {}).items()
                         if k != "failpoint"}
                if kinds:
                    bkind = next(k for k in BLOCK_KIND_ORDER if k in kinds)
                    blockers.append(
                        f"call to '{call.callee_name}' at "
                        f"{call.file}:{call.line} ({bkind}: "
                        f"{kinds[bkind]})")
            if not blockers:
                continue

            def polls_in(lo, hi):
                return any(lo <= p <= hi for p in fn.polls)

            covered = polls_in(loop.off, loop.end_off) or any(
                l2.off <= loop.off and loop.end_off <= l2.end_off and
                polls_in(l2.off, l2.end_off)
                for l2 in fn.loops if l2 is not loop)
            if not covered:
                findings.append(Finding(
                    loop.file, loop.line, "WP011",
                    f"loop in '{fn.display}' (reachable from engine entry "
                    f"'{reach[usr]}') contains blocking work "
                    f"({blockers[0]}) but no reachable CancelToken::Poll — "
                    f"a deadline cannot interrupt it"))
    return findings


def analyze_failpoint_drift(facts):
    """WP011 part 2: the failpoint site registry (namespace sites::) and the
    sites actually used must match exactly, in both directions."""
    findings = []
    registered = facts.failpoint_sites
    if not registered:
        return findings
    by_value = {v: n for n, (v, _, _) in registered.items()}
    used = set(facts.site_uses)
    for (lit, f, l) in facts.site_literals:
        if lit in by_value:
            used.add(by_value[lit])
        else:
            findings.append(Finding(
                f, l, "WP011",
                f'raw failpoint site string "{lit}" matches no registered '
                f"site — register it in the sites:: namespace (and "
                f"KnownSites) or fix the name"))
    for name in sorted(registered):
        value, f, l = registered[name]
        if name not in used:
            findings.append(Finding(
                f, l, "WP011",
                f"failpoint site '{name}' (\"{value}\") is registered but "
                f"never used by any WHIRLPOOL_FAILPOINT/Poll site in the "
                f"analyzed sources — registry drift"))
    return findings


# --- driver -----------------------------------------------------------------

def parse_tu(cindex, index, path, root, extra_args):
    args = ["-x", "c++", "-std=c++20", f"-I{os.path.join(root, 'src')}",
            "-Wno-everything"] + extra_args
    options = cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD
    return index.parse(path, args=args, options=options)


def collect_facts(cindex, root, files, extra_args):
    facts = Facts()
    index = cindex.Index.create()
    extractor = TuExtractor(cindex, facts, root)
    for path in files:
        rel = os.path.relpath(path, root)
        try:
            tu = parse_tu(cindex, index, path, root, extra_args)
        except Exception as e:
            facts.parse_errors.append(Finding(
                rel, 0, "WP000", f"libclang failed to parse: {e}"))
            continue
        errors = [d for d in tu.diagnostics if d.severity >= 3]
        if errors:
            sample = "; ".join(
                f"{d.location.line}: {d.spelling}" for d in errors[:5])
            facts.parse_errors.append(Finding(
                rel, errors[0].location.line, "WP000",
                f"{len(errors)} parse error(s) — analysis would be "
                f"unreliable: {sample}"))
            continue
        facts.files_parsed += 1
        extractor.extract(tu)
    return facts


def analyze(cindex, root, files, extra_args):
    facts = collect_facts(cindex, root, files, extra_args)

    text_cache = {}

    def file_lines(rel):
        if rel not in text_cache:
            try:
                with open(os.path.join(root, rel), encoding="utf-8",
                          errors="replace") as f:
                    text_cache[rel] = f.read().splitlines()
            except OSError:
                text_cache[rel] = []
        return text_cache[rel]

    findings = list(facts.parse_errors)
    findings += analyze_lock_order(facts)
    findings += analyze_atomics(facts, file_lines)
    findings += analyze_annotations(facts)
    findings += analyze_check_side_effects(facts)
    justified = _make_justified(file_lines)
    live_ops = _live_blocking_ops(facts, justified)
    summary = _blocking_summary(facts, live_ops, justified)
    findings += analyze_blocking_under_lock(facts, live_ops, summary,
                                            justified)
    findings += analyze_guarded_escape(facts)
    findings += analyze_cancellation_coverage(facts, live_ops, summary,
                                              justified)
    findings += analyze_failpoint_drift(facts)
    return facts, findings


def filter_findings(findings, root, allowed_paths):
    """Scope to the requested paths, apply the shared wp-lint disable
    hatches, and de-duplicate."""
    prefixes = [os.path.abspath(p) for p in allowed_paths]
    kept, seen, disables = [], set(), {}
    for f in sorted(findings,
                    key=lambda f: (f.path, f.line, f.rule, f.message)):
        ap = os.path.abspath(os.path.join(root, f.path))
        if prefixes and not any(ap == p or ap.startswith(p + os.sep)
                                for p in prefixes):
            continue
        if f.rule != "WP000":  # parse failures are not waivable
            if f.path not in disables:
                try:
                    with open(ap, encoding="utf-8", errors="replace") as fh:
                        disables[f.path] = wp_lint.collect_disables(fh.read())
                except OSError:
                    disables[f.path] = ({}, set())
            per_line, file_wide = disables[f.path]
            if f.rule in file_wide or f.rule in per_line.get(f.line, set()):
                continue
        key = (f.path, f.line, f.rule, f.message)
        if key not in seen:
            seen.add(key)
            kept.append(f)
    return kept


def iter_sources(paths, root):
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = [d for d in dirnames
                           if d not in wp_lint.SKIP_DIR_PARTS
                           and not d.startswith("build")]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def write_report(path, payload):
    if not path:
        return
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def run_self_test(cindex, root, extra_args):
    corpus = os.path.join(root, "tests", "lint_corpus")
    files = sorted(
        os.path.join(corpus, f) for f in os.listdir(corpus)
        if f.endswith((".cc", ".cpp", ".h", ".hpp")))
    cases = failures = 0
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        m = EXPECT_RE.search(text)
        if not m:
            continue  # wp-lint-only corpus file
        cases += 1
        raw = {t.strip() for t in m.group(1).split(",") if t.strip()}
        expected = set() if raw == {"none"} else raw
        bogus = expected - set(RULE_IDS)
        if bogus:
            print(f"FAIL {rel}: unknown rule ids in expectation: "
                  f"{sorted(bogus)}")
            failures += 1
            continue
        _, findings = analyze(cindex, root, [path], extra_args)
        kept = filter_findings(findings, root, [path])
        got = {f.rule for f in kept}
        missing_substrs = [
            sm.group(1).strip() for sm in EXPECT_SUBSTR_RE.finditer(text)
            if not any(sm.group(1).strip() in str(f) for f in kept)]
        if got == expected and not missing_substrs:
            label = ",".join(sorted(expected)) if expected else "clean"
            print(f"ok   {rel}: {label}")
        else:
            if got != expected:
                print(f"FAIL {rel}: expected {sorted(expected) or 'none'}, "
                      f"got {sorted(got) or 'none'}")
            for want in missing_substrs:
                print(f"FAIL {rel}: no finding contains expected substring "
                      f"'{want}'")
            for f in kept:
                print(f"       {f}")
            failures += 1
    if cases == 0:
        print(f"wp-alint self-test: no corpus files with a "
              f"'// wp-alint-expect:' header under {corpus}",
              file=sys.stderr)
        return 1
    print(f"wp-alint self-test: {cases - failures}/{cases} corpus files "
          f"behaved as declared")
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the tests/lint_corpus/ wp-alint expectations")
    ap.add_argument("--json", default=None, metavar="OUT",
                    help="write a machine-readable findings report")
    ap.add_argument("--baseline", default=None, metavar="REPORT",
                    help="committed baseline report: only findings absent "
                         "from it fail the run (keyed on path/rule/message, "
                         "line-insensitive)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite --baseline from the current findings "
                         "instead of failing on them")
    ap.add_argument("--clang-versions", default=None, metavar="LIST",
                    help="space/comma-separated clang majors to probe for "
                         "libclang (default: "
                         + " ".join(str(v) for v in DEFAULT_CLANG_VERSIONS)
                         + ")")
    ap.add_argument("--skip-exit-code", type=int, default=0,
                    help="exit code when libclang is unavailable "
                         "(ctest passes 77 = SKIP)")
    ap.add_argument("--extra-arg", action="append", default=[],
                    help="extra compiler argument for parsing (repeatable)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories with .cc translation units")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    versions = list(clang_versions_from_probe())
    if args.clang_versions:
        versions = [int(v) for v in
                    re.split(r"[,\s]+", args.clang_versions.strip()) if v]

    sys.setrecursionlimit(100000)
    cindex, why = load_libclang(versions)
    if cindex is None:
        print(f"wp-alint SKIPPED: {why} (probed clang versions: "
              f"{' '.join(str(v) for v in versions)})")
        write_report(args.json, {"tool": "wp-alint", "skipped": True,
                                 "reason": why, "findings": []})
        return args.skip_exit_code

    if args.self_test:
        return run_self_test(cindex, root, args.extra_arg)

    if not args.paths:
        ap.error("no paths given (or use --self-test)")

    files = list(iter_sources(args.paths, root))
    allowed = [p if os.path.isabs(p) else os.path.join(root, p)
               for p in args.paths]
    facts, findings = analyze(cindex, root, files, args.extra_arg)
    kept = filter_findings(findings, root, allowed)

    def as_dicts(fs):
        return [{"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message} for f in fs]

    if args.write_baseline:
        if not args.baseline:
            ap.error("--write-baseline requires --baseline PATH")
        write_report(args.baseline, {"tool": "wp-alint-baseline",
                                     "findings": as_dicts(kept)})
        print(f"wp-alint: baseline written to {args.baseline} "
              f"({len(kept)} finding(s))")
        return 0

    baseline_keys = set()
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as f:
                for entry in json.load(f).get("findings", []):
                    baseline_keys.add((entry.get("path"), entry.get("rule"),
                                       entry.get("message")))
        except (OSError, ValueError) as e:
            print(f"wp-alint: unreadable baseline {args.baseline}: {e} — "
                  f"treating as empty", file=sys.stderr)
    new = [f for f in kept
           if (f.path, f.rule, f.message) not in baseline_keys]
    suppressed = len(kept) - len(new)
    for f in new:
        print(f)
    if suppressed:
        print(f"wp-alint: {suppressed} baselined finding(s) suppressed "
              f"(see {args.baseline})")
    write_report(args.json, {
        "tool": "wp-alint",
        "skipped": False,
        "rules": list(RULE_IDS),
        "files_parsed": facts.files_parsed,
        "mutexes": sorted(m.qualified for m in facts.mutexes.values()),
        "lock_ranks": facts.lock_ranks,
        "baseline_suppressed": suppressed,
        "findings": as_dicts(kept),
        "new_findings": as_dicts(new),
    })
    if new:
        print(f"wp-alint: {len(new)} new finding(s) in "
              f"{facts.files_parsed} translation units", file=sys.stderr)
        return 1
    checks = sum(len(v) for v in facts.check_ranges.values())
    print(f"wp-alint: {facts.files_parsed} translation units clean "
          f"({len(facts.mutexes)} mutexes, {checks} WP_CHECK sites audited)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
