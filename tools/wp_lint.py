#!/usr/bin/env python3
"""wp-lint: project-aware static checks clang-tidy cannot express.

Stage 4 of tools/run_static_analysis.sh (and the WpLint* ctest entries).
Four rules, each with an ID and an escape hatch:

  WP001  raw-sync        No raw std::mutex / std::lock_guard / std::unique_lock
                         / std::scoped_lock / std::condition_variable outside
                         src/util/mutex.h. Everything locks through the
                         annotated whirlpool::Mutex so Clang Thread Safety
                         Analysis and the runtime LockRank checker both see it.
  WP002  guarded-fields  Every mutable data member of a class that directly
                         owns a whirlpool::Mutex must be GUARDED_BY-annotated.
                         std::atomic members are allowed only when listed in
                         ATOMIC_ALLOWLIST (each entry records why the atomic is
                         intentionally unguarded); structurally-immutable
                         non-const members go in UNGUARDED_FIELD_ALLOWLIST.
  WP003  banned-function No rand / strtok / gets calls, no bare `new T[n]`
                         (engine code uses util/rng.h and std containers /
                         make_unique).
  WP004  unused-include  IWYU-lite: a quoted project include none of whose
                         exported names (classes, enums, functions, macros,
                         aliases, constants) appear in the including file.
                         System includes are out of scope.

Escape hatch: append `// wp-lint: disable(WP001)` (comma-separate several
IDs; trailing justification text is encouraged) to the offending line, or put
`// wp-lint: disable-file(WP004)` anywhere in a file to waive a rule for the
whole file.

Heuristics, deliberately: this is a source-level checker with no real C++
parser. It errs toward false negatives (e.g. a data member whose initializer
contains parentheses may be taken for a function declaration) — the
compile-time thread-safety analysis and the runtime rank checker backstop it.
What it must never do is flag correct idiomatic code; the self-test corpus
(tests/lint_corpus/, --self-test) pins both directions.

Usage:
  wp_lint.py [--root DIR] PATH...   lint files / directories (exit 1 on findings)
  wp_lint.py [--root DIR] --self-test   run the corpus, assert each snippet
                                        trips exactly its declared rule IDs
"""

import argparse
import os
import re
import sys

# --- configuration ---------------------------------------------------------

LINT_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")

# Directories never linted in tree mode (corpus is deliberately bad).
SKIP_DIR_PARTS = {"lint_corpus", "build", "third_party"}

# WP001: the one place raw std primitives are allowed — the annotated wrapper.
RAW_SYNC_EXEMPT_FILES = {"src/util/mutex.h"}

# WP002: atomics that are *intentionally* unguarded although their class owns
# a Mutex. Every entry carries the argument for why no lock is needed.
ATOMIC_ALLOWLIST = {
    # One-sided-stale threshold cache: all stores under scores_mu_, monotone;
    # lock-free readers can only under-prune (DESIGN.md §9).
    "TopKSet::cached_threshold_",
    # Mirrors min_score_mode_ for the lock-free Alive(); set-once mode flag.
    "TopKSet::min_score_mode_flag_",
    # In-flight match count; the mutex exists only to order the empty->notify
    # handoff against a waiter's predicate check (whirlpool_m.cc).
    "InFlightTracker::count_",
    # Queue-depth high-water mark: monotone, all stores under mu_; lock-free
    # readers (metrics export) see a valid lower bound.
    "SyncMatchQueue::depth_peak_",
    # Live queue depth mirror: all stores under mu_; the lock-free reader is
    # the telemetry sampler, which tolerates a stale instantaneous value.
    "SyncMatchQueue::depth_",
    # Total drain adjustments, incremented lock-free by DrainGovernors on
    # consumer threads; mu_ guards only the governor registry.
    "DrainController::adjustments_",
    # Published plan pointer: release-stored under mu_ (Configure/Clear),
    # acquire-loaded lock-free on the hit path; retired plans are kept alive
    # until process exit so a stale read can never dangle (DESIGN.md §12).
    "FailpointRegistry::active_",
    # Sticky cancellation flag: release-stored after the reason is recorded
    # under mu_; acquire-loaded by workers. Monotone (false->true only), so
    # a stale read just delays — never corrupts — shutdown (DESIGN.md §12).
    "CancelToken::cancelled_",
}

# WP002: non-const, non-atomic members that are structurally immutable after
# construction and therefore safely read without the class's mutex.
UNGUARDED_FIELD_ALLOWLIST = {
    # Shard vector is filled in the constructor and never resized; only the
    # pointed-to Shards mutate, under their own locks.
    "TopKSet::shards_",
}

# WP002: sync-primitive member types that are self-synchronizing.
SYNC_MEMBER_TYPES = ("Mutex", "CondVar", "ProcessorCap")

# WP003 banned call patterns.
BANNED_CALLS = [
    (re.compile(r"(?<![\w:.])rand\s*\("), "rand() — use util/rng.h (seeded, thread-safe)"),
    (re.compile(r"(?<![\w:.])srand\s*\("), "srand() — use util/rng.h (seeded, thread-safe)"),
    (re.compile(r"(?<![\w:.])strtok\s*\("), "strtok() — not reentrant; use util/string_util.h Split"),
    (re.compile(r"(?<![\w:.])gets\s*\("), "gets() — unbounded write; removed from the language"),
    (re.compile(r"\bnew\s+[A-Za-z_][\w:<>, ]*\s*\["), "bare new[] — use std::vector or std::make_unique<T[]>"),
]

RULE_IDS = ("WP001", "WP002", "WP003", "WP004")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- source mangling -------------------------------------------------------

DISABLE_RE = re.compile(r"//\s*wp-lint:\s*disable\(([A-Z0-9,\s]+)\)")
DISABLE_FILE_RE = re.compile(r"//\s*wp-lint:\s*disable-file\(([A-Z0-9,\s]+)\)")


def collect_disables(text):
    """Returns (per-line {lineno: {rules}}, file-wide {rules})."""
    per_line = {}
    file_wide = set()
    for i, line in enumerate(text.splitlines(), start=1):
        m = DISABLE_RE.search(line)
        if m:
            per_line[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
        m = DISABLE_FILE_RE.search(line)
        if m:
            file_wide |= {r.strip() for r in m.group(1).split(",") if r.strip()}
    return per_line, file_wide


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure so
    line numbers computed on the result match the original file."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = None
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --- WP001: raw sync primitives -------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)


def check_raw_sync(relpath, stripped):
    if relpath.replace(os.sep, "/") in RAW_SYNC_EXEMPT_FILES:
        return []
    findings = []
    for m in RAW_SYNC_RE.finditer(stripped):
        findings.append(Finding(
            relpath, line_of(stripped, m.start()), "WP001",
            f"raw std::{m.group(1)} — use whirlpool::Mutex / MutexLock / "
            f"CondVar (util/mutex.h) so thread-safety analysis and the "
            f"LockRank checker see the lock"))
    return findings


# --- WP002: guarded fields -------------------------------------------------

CLASS_RE = re.compile(r"\b(class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?\{")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:whirlpool\s*::\s*)?Mutex\s+[A-Za-z_]\w*\s*(?:\{[^}]*\}|=[^;]*)?$"
)

MEMBER_SKIP_PREFIXES = (
    "public", "private", "protected", "using", "typedef", "friend",
    "static", "constexpr", "enum", "template", "explicit", "virtual",
    "operator", "return", "class", "struct", "union",
)


def matching_brace(text, open_idx):
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return -1


def blank_nested_braces(body):
    """Blanks every brace-balanced region inside the class body (function
    bodies, nested classes, member brace-initializers), leaving top-level
    member declarations as `type name ;` statements. Each blanked region's
    closing brace becomes a ';' so a function definition (`void F() { ... }`,
    no trailing semicolon) still terminates its statement."""
    out = list(body)
    depth = 0
    for i, c in enumerate(body):
        if c == "{":
            depth += 1
        if depth > 0 and c != "\n":
            out[i] = " "
        if c == "}":
            depth -= 1
            if depth == 0:
                out[i] = ";"
    return "".join(out)


def check_guarded_fields(relpath, stripped):
    findings = []
    for cm in CLASS_RE.finditer(stripped):
        cls = cm.group(2)
        open_idx = cm.end() - 1
        close_idx = matching_brace(stripped, open_idx)
        if close_idx < 0:
            continue
        body = stripped[open_idx + 1:close_idx]
        flat = blank_nested_braces(body)
        # Does this class directly own an annotated Mutex member?
        statements = []
        pos = 0
        for part in flat.split(";"):
            statements.append((part, open_idx + 1 + pos))
            pos += len(part) + 1
        owns_mutex = any(
            MUTEX_MEMBER_RE.match(re.sub(
                r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                " ".join(stmt.split())))
            for stmt, _ in statements)
        if not owns_mutex:
            continue
        for stmt, stmt_off in statements:
            text = " ".join(stmt.split())
            if not text:
                continue
            lineno = line_of(stripped, stmt_off + len(stmt) - len(stmt.lstrip()))
            # Access specifiers arrive glued to the next statement ("public:
            # int x") — strip the label prefix first.
            text = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", text)
            if not text or any(text.startswith(p) for p in MEMBER_SKIP_PREFIXES):
                continue
            if "GUARDED_BY" in text or "PT_GUARDED_BY" in text:
                continue
            # Sync-primitive members synchronize themselves.
            first_tok = re.sub(r"^(?:mutable|volatile)\s+", "", text)
            if any(re.match(rf"(?:whirlpool\s*::\s*)?{t}\b", first_tok)
                   for t in SYNC_MEMBER_TYPES):
                continue
            is_atomic = re.match(r"(?:mutable\s+)?(?:std\s*::\s*)?atomic\s*<", first_tok)
            # Anything else with parens is (heuristically) a function
            # declaration — except atomics, whose common `atomic<T> x{0}`
            # form was already flattened to parenless text above.
            if "(" in text and not is_atomic:
                continue
            # `const` members (or pointers declared `* const`) are immutable.
            toks = text.replace("*", " * ").split()
            if "const" in toks and not (
                    toks[0] == "const" and "*" in toks and toks[-1] != "const"
                    and toks.index("const") < toks.index("*")):
                # `const T x` or `T* const x` or `const T* const x`: immutable.
                # The one mutable shape, `const T* x`, falls through.
                if not ("*" in toks and toks[-2] != "const"
                        and toks.count("const") == 1 and toks[0] == "const"):
                    continue
            name_m = re.search(r"([A-Za-z_]\w*)\s*(?:=[^;]*)?$", text)
            if not name_m:
                continue
            field = name_m.group(1)
            qualified = f"{cls}::{field}"
            if is_atomic:
                if qualified in ATOMIC_ALLOWLIST:
                    continue
                findings.append(Finding(
                    relpath, lineno, "WP002",
                    f"atomic member {qualified} in a Mutex-owning class is not "
                    f"in wp_lint.py's ATOMIC_ALLOWLIST — either guard it, or "
                    f"allowlist it with a written correctness argument"))
            else:
                if qualified in UNGUARDED_FIELD_ALLOWLIST:
                    continue
                findings.append(Finding(
                    relpath, lineno, "WP002",
                    f"mutable member {qualified} of a Mutex-owning class has "
                    f"no GUARDED_BY annotation"))
    return findings


# --- WP003: banned functions ----------------------------------------------

def check_banned(relpath, stripped):
    findings = []
    for pattern, why in BANNED_CALLS:
        for m in pattern.finditer(stripped):
            findings.append(Finding(
                relpath, line_of(stripped, m.start()), "WP003",
                f"banned function/pattern: {why}"))
    return findings


# --- WP004: IWYU-lite unused project includes ------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"', re.MULTILINE)

HEADER_NAME_RES = [
    re.compile(r"\b(?:class|struct|union)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+)?([A-Za-z_]\w*)"),
    re.compile(r"^[ \t]*#[ \t]*define[ \t]+([A-Za-z_]\w*)", re.MULTILINE),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    # using-declaration re-exports: `using score::MatchLevel;` makes
    # MatchLevel part of this header's interface.
    re.compile(r"\busing\s+(?!namespace\b)(?:[\w ]*::\s*)?([A-Za-z_]\w*)\s*;"),
    re.compile(r"\btypedef\s+[^;]*?\b([A-Za-z_]\w*)\s*;"),
    # Function declarations/definitions: an identifier directly before '('
    # on a line that plausibly declares something. Overcapture is safe — it
    # only makes the pass more conservative about "unused".
    re.compile(r"\b([A-Za-z_]\w*)\s*\("),
    # constants / inline globals
    re.compile(r"\b(?:constexpr|extern|inline)\b[^;(){]*?\b([A-Za-z_]\w*)\s*(?:=|;)"),
]

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "decltype",
    "static_assert", "defined", "noexcept", "catch", "new", "delete",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
}


def header_exported_names(header_text):
    stripped = strip_header_for_names(header_text)
    names = set()
    for rx in HEADER_NAME_RES:
        for m in rx.finditer(stripped):
            name = m.group(1)
            if name not in CPP_KEYWORDS:
                names.add(name)
    return names


def strip_header_for_names(text):
    # Keep #define lines intact (strip_comments... keeps them anyway).
    return strip_comments_and_strings(text)


def resolve_include(inc, includer_path, root):
    candidates = [
        os.path.join(root, "src", inc),
        os.path.join(root, inc),
        os.path.join(os.path.dirname(includer_path), inc),
    ]
    for c in candidates:
        if os.path.isfile(c):
            return c
    return None


def check_unused_includes(relpath, abspath, text, stripped, root):
    # Include paths are string literals, which the comment/string stripper
    # blanks — so includes come from the original text, while name search
    # runs over the stripped body (strings/comments must not count as uses).
    findings = []
    own_stem = os.path.splitext(os.path.basename(relpath))[0]
    includes = list(INCLUDE_RE.finditer(text))
    body = stripped
    for m in includes:
        inc = m.group(1)
        inc_stem = os.path.splitext(os.path.basename(inc))[0]
        if inc_stem == own_stem:
            continue  # foo.cc includes foo.h: always its interface
        target = resolve_include(inc, abspath, root)
        if target is None:
            continue  # not a project header (or generated elsewhere)
        try:
            with open(target, encoding="utf-8", errors="replace") as f:
                names = header_exported_names(f.read())
        except OSError:
            continue
        if not names:
            continue  # umbrella / macro-free config header: unknowable
        used = any(re.search(rf"\b{re.escape(n)}\b", body) for n in names)
        if not used:
            findings.append(Finding(
                relpath, line_of(text, m.start()), "WP004",
                f'include "{inc}" is never referenced: none of its '
                f"{len(names)} exported names appear in this file"))
    return findings


# --- driver ----------------------------------------------------------------

def lint_file(abspath, root):
    relpath = os.path.relpath(abspath, root)
    try:
        with open(abspath, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "WP000", f"unreadable: {e}")]
    per_line, file_wide = collect_disables(text)
    stripped = strip_comments_and_strings(text)

    findings = []
    findings += check_raw_sync(relpath, stripped)
    findings += check_guarded_fields(relpath, stripped)
    findings += check_banned(relpath, stripped)
    findings += check_unused_includes(relpath, abspath, text, stripped, root)

    kept = []
    for f in findings:
        if f.rule in file_wide:
            continue
        if f.rule in per_line.get(f.line, set()):
            continue
        kept.append(f)
    return kept


def iter_lint_targets(paths, root):
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIR_PARTS
                           and not d.startswith("build")]
            for fn in sorted(filenames):
                if fn.endswith(LINT_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


EXPECT_RE = re.compile(r"//\s*wp-lint-expect:\s*([A-Za-z0-9,\s]+)")


def run_self_test(root):
    corpus = os.path.join(root, "tests", "lint_corpus")
    files = sorted(
        os.path.join(corpus, f) for f in os.listdir(corpus)
        if f.endswith(LINT_EXTENSIONS))
    if not files:
        print(f"wp-lint self-test: no corpus files under {corpus}", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        m = EXPECT_RE.search(text)
        if not m:
            print(f"FAIL {rel}: missing '// wp-lint-expect: <RULES|none>' header")
            failures += 1
            continue
        raw = {t.strip() for t in m.group(1).split(",") if t.strip()}
        expected = set() if raw == {"none"} else raw
        bogus = expected - set(RULE_IDS)
        if bogus:
            print(f"FAIL {rel}: unknown rule ids in expectation: {sorted(bogus)}")
            failures += 1
            continue
        got = {f.rule for f in lint_file(path, root)}
        if got == expected:
            label = ",".join(sorted(expected)) if expected else "clean"
            print(f"ok   {rel}: {label}")
        else:
            print(f"FAIL {rel}: expected {sorted(expected) or 'none'}, "
                  f"got {sorted(got) or 'none'}")
            for f in lint_file(path, root):
                print(f"       {f}")
            failures += 1
    print(f"wp-lint self-test: {len(files) - failures}/{len(files)} corpus "
          f"files behaved as declared")
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the tests/lint_corpus/ expectations")
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return run_self_test(root)

    if not args.paths:
        ap.error("no paths given (or use --self-test)")

    findings = []
    nfiles = 0
    for path in iter_lint_targets(args.paths, root):
        nfiles += 1
        findings += lint_file(path, root)
    for f in findings:
        print(f)
    if findings:
        print(f"wp-lint: {len(findings)} finding(s) in {nfiles} files", file=sys.stderr)
        return 1
    print(f"wp-lint: {nfiles} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
