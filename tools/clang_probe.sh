# Shared clang-family probe data, sourced by tools/run_static_analysis.sh
# and parsed by tools/wp_alint.py (clang_versions_from_probe), so the two
# can no longer drift. Keep this file trivially greppable: wp_alint.py
# reads the CLANG_VERSIONS=(...) line below with a regex, not a shell.
#
# One version list feeds every clang-family probe so adding a release is a
# one-line change.
CLANG_VERSIONS=(21 20 19 18 17 16 15 14)

# probe_clang_tool <base>: resolve `base` or `base-N` for each N in
# CLANG_VERSIONS, preferring the unsuffixed distro default. Prints the
# resolved path (empty if none found); never fails the caller. Requires a
# `find_tool` function in the sourcing script.
probe_clang_tool() {
  local base=$1 v names=()
  names=("$base")
  for v in "${CLANG_VERSIONS[@]}"; do
    names+=("$base-$v")
  done
  find_tool "${names[@]}" || true
}
