// Self-test for the thread-safety annotation toolchain, driven by
// tools/run_static_analysis.sh. Compiled two ways with Clang:
//
//   1. as-is: must COMPILE cleanly under -Werror=thread-safety (positive
//      control — the annotated primitives admit correct code);
//   2. with -DWP_SELFTEST_EXPECT_FAIL: must FAIL to compile (negative
//      control — touching a GUARDED_BY field without its mutex, and calling
//      a REQUIRES method unlocked, are build errors, proving the analysis
//      actually fires rather than silently no-op'ing).
//
// It is also built as a normal executable by every compiler (GCC included)
// so the no-op macro expansion path stays compiling, and its main() checks
// the primitives' runtime behavior.
#include <cstdio>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class AnnotatedCounter {
 public:
  void Increment() {
    whirlpool::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const {
    whirlpool::MutexLock lock(&mu_);
    return GetLocked();
  }

#if defined(WP_SELFTEST_EXPECT_FAIL)
  /// Both statements below are lock-discipline violations the analysis must
  /// reject: an unguarded read of a GUARDED_BY field, and an unlocked call
  /// of a REQUIRES method.
  int GetRacy() const {
    int v = value_;     // error: reading value_ requires holding mu_
    v += GetLocked();   // error: calling GetLocked() requires holding mu_
    return v;
  }
#endif

 private:
  int GetLocked() const REQUIRES(mu_) { return value_; }

  mutable whirlpool::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  AnnotatedCounter counter;
  for (int i = 0; i < 3; ++i) counter.Increment();
  WP_CHECK(counter.Get() == 3) << "annotated counter miscounted";
  WP_DCHECK(counter.Get() == 3);
  std::printf("annotations_selftest: ok\n");
  return 0;
}
