#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer and ASan+UBSan.
# The concurrency tests (Whirlpool-M, SyncMatchQueue, the tracer's
# thread-local buffers, the latency histograms) are the main target.
#
# Usage: tools/run_sanitizers.sh [tsan|asan|all] [ctest-regex]
#   tools/run_sanitizers.sh                 # both sanitizers, full suite
#   tools/run_sanitizers.sh tsan            # TSan only
#   tools/run_sanitizers.sh tsan Concurrency  # TSan, concurrency tests only
set -euo pipefail

cd "$(dirname "$0")/.."

which=${1:-all}
filter=${2:-}
ctest_args=(--output-on-failure)
if [[ -n "$filter" ]]; then ctest_args+=(-R "$filter"); fi

run_one() {
  local name=$1 sanitize=$2 dir=$3
  echo "=== $name ($sanitize) ==="
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DWHIRLPOOL_SANITIZE="$sanitize" \
    -DWHIRLPOOL_BUILD_BENCHMARKS=OFF \
    -DWHIRLPOOL_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j "$(nproc)"
  (cd "$dir" && ctest "${ctest_args[@]}")
}

case "$which" in
  tsan) run_one TSan thread build-tsan ;;
  asan) run_one ASan+UBSan address,undefined build-asan ;;
  all)
    run_one TSan thread build-tsan
    run_one ASan+UBSan address,undefined build-asan
    ;;
  *)
    echo "usage: $0 [tsan|asan|all] [ctest-regex]" >&2
    exit 2
    ;;
esac
echo "sanitizer runs passed"
