#!/usr/bin/env bash
# Static-analysis gate, next to tools/run_sanitizers.sh:
#
#   1. negative-compile self-test — tools/annotations_selftest.cc must
#      compile cleanly under -Werror=thread-safety and must FAIL when
#      -DWP_SELFTEST_EXPECT_FAIL injects lock-discipline violations,
#      proving Clang Thread Safety Analysis actually fires;
#   2. thread-safety build — the whole tree under the `tidy` preset
#      (clang++, -Wthread-safety -Werror=thread-safety -Werror);
#   3. clang-tidy — the curated .clang-tidy check set over src/ and tools/,
#      using the preset's compile_commands.json;
#   4. wp-lint — project-aware source checks (tools/wp_lint.py): raw-sync
#      ban, GUARDED_BY coverage, banned functions, IWYU-lite — self-test
#      over tests/lint_corpus/ first, then the full tree;
#   5. clang-analyzer — clang++ --analyze (path-sensitive core checks) over
#      every src/ translation unit in parallel, warnings promoted to errors;
#   6. wp-alint — AST-level whole-program analysis (tools/wp_alint.py via
#      libclang): static lock-order verification, atomics audit, cross-TU
#      annotation coverage, WP_CHECK side-effect ban — corpus self-test
#      first, then src/, with a JSON findings report under build-wpalint/.
#
# Clang, clang-tidy and python3 are found by probing common names. On a host
# missing a tool its stages are SKIPPED (reported, exit 0); stage 2 falls
# back to a strict GCC -Werror build so the gate still fails on any ordinary
# diagnostic. CI always has all three, so the skip paths are a local-dev
# convenience, not a hole in the gate.
#
# Usage: tools/run_static_analysis.sh [all|selftest|build|tidy|wplint|analyze|wpalint]
set -euo pipefail

cd "$(dirname "$0")/.."

stage=${1:-all}

find_tool() {
  local name
  for name in "$@"; do
    if command -v "$name" > /dev/null 2>&1; then
      command -v "$name"
      return 0
    fi
  done
  return 1
}

# CLANG_VERSIONS and probe_clang_tool live in tools/clang_probe.sh, shared
# with wp_alint.py's python-side probe so the two lists cannot drift.
# shellcheck source=tools/clang_probe.sh
source tools/clang_probe.sh

CLANGXX=$(probe_clang_tool clang++)
CLANG_TIDY=$(probe_clang_tool clang-tidy)
PYTHON=$(find_tool python3 python || true)

tool_version() {  # one-line version banner, or "not found"
  local tool=$1
  if [[ -z "$tool" ]]; then
    echo "not found"
  else
    "$tool" --version 2> /dev/null | head -n 1
  fi
}

echo "=== static-analysis gate: tool inventory ==="
echo "clang++:    $(tool_version "$CLANGXX")"
echo "clang-tidy: $(tool_version "$CLANG_TIDY")"
echo "python3:    $(tool_version "$PYTHON")"

TS_FLAGS=(-std=c++20 -Isrc -Wthread-safety -Werror=thread-safety -Wall -Wextra -Werror)

run_selftest() {
  echo "=== [1/6] thread-safety negative-compile self-test ==="
  if [[ -z "$CLANGXX" ]]; then
    echo "SKIPPED: no clang++ found (analysis is Clang-only)"
    return 0
  fi
  echo "--- positive control: annotated code must compile"
  "$CLANGXX" "${TS_FLAGS[@]}" -fsyntax-only tools/annotations_selftest.cc
  echo "ok"
  echo "--- negative control: guarded-field misuse must NOT compile"
  local out
  if out=$("$CLANGXX" "${TS_FLAGS[@]}" -DWP_SELFTEST_EXPECT_FAIL \
           -fsyntax-only tools/annotations_selftest.cc 2>&1); then
    echo "FAIL: lock-discipline violations compiled cleanly — the analysis"
    echo "      is not firing (macros expanding to no-ops under Clang?)"
    return 1
  fi
  if ! grep -q "thread-safety" <<< "$out"; then
    echo "FAIL: compile failed but not with thread-safety diagnostics:"
    echo "$out"
    return 1
  fi
  echo "ok (rejected with $(grep -c 'error:' <<< "$out") thread-safety errors)"
}

run_build() {
  echo "=== [2/6] full-tree -Werror=thread-safety build (tidy preset) ==="
  if [[ -z "$CLANGXX" ]]; then
    echo "SKIPPED: no clang++ found; running strict GCC -Werror build instead"
    cmake -B build-strict -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DWHIRLPOOL_WERROR=ON \
      -DWHIRLPOOL_BUILD_TESTS=OFF \
      -DWHIRLPOOL_BUILD_BENCHMARKS=OFF > /dev/null
    cmake --build build-strict -j "$(nproc)"
    echo "ok (gcc -Werror)"
    return 0
  fi
  cmake --preset tidy -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null
  cmake --build --preset tidy -j "$(nproc)"
  echo "ok"
}

run_tidy() {
  echo "=== [3/6] clang-tidy (curated .clang-tidy check set) ==="
  if [[ -z "$CLANG_TIDY" ]]; then
    echo "SKIPPED: no clang-tidy found"
    return 0
  fi
  if [[ ! -f build-tidy/compile_commands.json ]]; then
    if [[ -z "$CLANGXX" ]]; then
      echo "SKIPPED: no clang++ to generate compile_commands.json"
      return 0
    fi
    cmake --preset tidy -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null
  fi
  # Library + tool sources; generated/third-party code never lands here.
  local files
  mapfile -t files < <(find src tools -name '*.cc' | sort)
  "$CLANG_TIDY" -p build-tidy --quiet "${files[@]}"
  echo "ok (${#files[@]} files)"
}

run_wplint() {
  echo "=== [4/6] wp-lint (project-aware source checks) ==="
  if [[ -z "$PYTHON" ]]; then
    echo "SKIPPED: no python3 found"
    return 0
  fi
  echo "--- self-test: tests/lint_corpus/ expectations"
  "$PYTHON" tools/wp_lint.py --self-test
  echo "--- tree lint: src tools bench tests"
  "$PYTHON" tools/wp_lint.py src tools bench tests
  echo "ok"
}

run_analyze() {
  echo "=== [5/6] clang-analyzer (clang++ --analyze over src/) ==="
  if [[ -z "$CLANGXX" ]]; then
    echo "SKIPPED: no clang++ found (analyzer is Clang-only)"
    return 0
  fi
  local files logdir failed=0
  mapfile -t files < <(find src -name '*.cc' | sort)
  # The analyzer is by far the slowest stage and every TU is independent:
  # fan the loop out across nproc jobs, one log per TU, and only dump the
  # logs of the TUs that failed so interleaved output stays readable.
  logdir=$(mktemp -d)
  analyze_one() {  # $1 = TU path; log name encodes the path
    local log="$ANALYZE_LOGDIR/$(echo "$1" | tr '/' '_').log"
    if ! "$ANALYZE_CLANGXX" --analyze -Xclang -analyzer-werror \
        -std=c++20 -Isrc -o /dev/null "$1" > "$log" 2>&1; then
      mv "$log" "$log.failed"
      return 1
    fi
  }
  export -f analyze_one
  export ANALYZE_CLANGXX="$CLANGXX" ANALYZE_LOGDIR="$logdir"
  if ! printf '%s\0' "${files[@]}" | \
      xargs -0 -n 1 -P "$(nproc)" bash -c 'analyze_one "$1"' _; then
    failed=1
    local log
    for log in "$logdir"/*.failed; do
      [[ -e "$log" ]] || continue
      echo "--- $(basename "$log" .log.failed | tr '_' '/')"
      cat "$log"
    done
  fi
  rm -rf "$logdir"
  if [[ $failed -ne 0 ]]; then
    echo "FAIL: clang-analyzer reported errors (see logs above)"
    return 1
  fi
  echo "ok (${#files[@]} translation units, $(nproc) jobs)"
}

run_wpalint() {
  echo "=== [6/6] wp-alint (libclang whole-program lock/atomics analysis) ==="
  if [[ -z "$PYTHON" ]]; then
    echo "SKIPPED: no python3 found"
    return 0
  fi
  echo "--- self-test: tests/lint_corpus/ wp-alint expectations"
  "$PYTHON" tools/wp_alint.py --self-test \
    --clang-versions "${CLANG_VERSIONS[*]}"
  echo "--- tree analysis: src (vs committed baseline)"
  "$PYTHON" tools/wp_alint.py src \
    --clang-versions "${CLANG_VERSIONS[*]}" \
    --baseline tools/wp_alint_baseline.json \
    --json build-wpalint/wp_alint_report.json
  echo "ok"
}

# Per-stage bookkeeping so a CI failure names the stage without scrolling:
# every stage is run through run_stage, which records wall-clock seconds and
# pass/fail, and the gate ends with a summary table plus one failed-stage
# line (the grep target).
STAGE_NAMES=()
STAGE_SECS=()
STAGE_STATUS=()
FAILED_STAGES=()

run_stage() {
  local name=$1 fn=$2 rc=0 t0 t1
  t0=$SECONDS
  "$fn" || rc=$?
  t1=$SECONDS
  STAGE_NAMES+=("$name")
  STAGE_SECS+=($((t1 - t0)))
  if [[ $rc -eq 0 ]]; then
    STAGE_STATUS+=("ok")
  else
    STAGE_STATUS+=("FAIL")
    FAILED_STAGES+=("$name")
  fi
  return 0
}

print_summary() {
  local i
  echo
  echo "=== static-analysis gate: per-stage wall clock ==="
  printf '%-10s %8s  %s\n' "stage" "seconds" "status"
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-10s %8s  %s\n' \
      "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}" "${STAGE_STATUS[$i]}"
  done
  if [[ ${#FAILED_STAGES[@]} -ne 0 ]]; then
    echo "FAILED STAGES: ${FAILED_STAGES[*]}"
    return 1
  fi
  echo "static analysis passed"
}

case "$stage" in
  selftest) run_stage selftest run_selftest ;;
  build) run_stage build run_build ;;
  tidy) run_stage tidy run_tidy ;;
  wplint) run_stage wplint run_wplint ;;
  analyze) run_stage analyze run_analyze ;;
  wpalint) run_stage wpalint run_wpalint ;;
  all)
    run_stage selftest run_selftest
    run_stage build run_build
    run_stage tidy run_tidy
    run_stage wplint run_wplint
    run_stage analyze run_analyze
    run_stage wpalint run_wpalint
    ;;
  *)
    echo "usage: $0 [all|selftest|build|tidy|wplint|analyze|wpalint]" >&2
    exit 2
    ;;
esac
print_summary
