#!/usr/bin/env bash
# Static-analysis gate, next to tools/run_sanitizers.sh:
#
#   1. negative-compile self-test — tools/annotations_selftest.cc must
#      compile cleanly under -Werror=thread-safety and must FAIL when
#      -DWP_SELFTEST_EXPECT_FAIL injects lock-discipline violations,
#      proving Clang Thread Safety Analysis actually fires;
#   2. thread-safety build — the whole tree under the `tidy` preset
#      (clang++, -Wthread-safety -Werror=thread-safety -Werror);
#   3. clang-tidy — the curated .clang-tidy check set over src/ and tools/,
#      using the preset's compile_commands.json.
#
# Clang and clang-tidy are found by probing common names (clang++,
# clang++-20..14). On a host with no Clang at all the Clang stages are
# SKIPPED (reported, exit 0) and a strict GCC -Werror build runs instead so
# the gate still fails on any ordinary diagnostic; CI always has Clang, so
# the skip path is a local-dev convenience, not a hole in the gate.
#
# Usage: tools/run_static_analysis.sh [all|selftest|build|tidy]
set -euo pipefail

cd "$(dirname "$0")/.."

stage=${1:-all}

find_tool() {
  local name
  for name in "$@"; do
    if command -v "$name" > /dev/null 2>&1; then
      command -v "$name"
      return 0
    fi
  done
  return 1
}

CLANGXX=$(find_tool clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                    clang++-16 clang++-15 clang++-14 || true)
CLANG_TIDY=$(find_tool clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                       clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14 || true)

TS_FLAGS=(-std=c++20 -Isrc -Wthread-safety -Werror=thread-safety -Wall -Wextra -Werror)

run_selftest() {
  echo "=== [1/3] thread-safety negative-compile self-test ==="
  if [[ -z "$CLANGXX" ]]; then
    echo "SKIPPED: no clang++ found (analysis is Clang-only)"
    return 0
  fi
  echo "--- positive control: annotated code must compile"
  "$CLANGXX" "${TS_FLAGS[@]}" -fsyntax-only tools/annotations_selftest.cc
  echo "ok"
  echo "--- negative control: guarded-field misuse must NOT compile"
  local out
  if out=$("$CLANGXX" "${TS_FLAGS[@]}" -DWP_SELFTEST_EXPECT_FAIL \
           -fsyntax-only tools/annotations_selftest.cc 2>&1); then
    echo "FAIL: lock-discipline violations compiled cleanly — the analysis"
    echo "      is not firing (macros expanding to no-ops under Clang?)"
    return 1
  fi
  if ! grep -q "thread-safety" <<< "$out"; then
    echo "FAIL: compile failed but not with thread-safety diagnostics:"
    echo "$out"
    return 1
  fi
  echo "ok (rejected with $(grep -c 'error:' <<< "$out") thread-safety errors)"
}

run_build() {
  echo "=== [2/3] full-tree -Werror=thread-safety build (tidy preset) ==="
  if [[ -z "$CLANGXX" ]]; then
    echo "SKIPPED: no clang++ found; running strict GCC -Werror build instead"
    cmake -B build-strict -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DWHIRLPOOL_WERROR=ON \
      -DWHIRLPOOL_BUILD_TESTS=OFF \
      -DWHIRLPOOL_BUILD_BENCHMARKS=OFF > /dev/null
    cmake --build build-strict -j "$(nproc)"
    echo "ok (gcc -Werror)"
    return 0
  fi
  cmake --preset tidy -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null
  cmake --build --preset tidy -j "$(nproc)"
  echo "ok"
}

run_tidy() {
  echo "=== [3/3] clang-tidy (curated .clang-tidy check set) ==="
  if [[ -z "$CLANG_TIDY" ]]; then
    echo "SKIPPED: no clang-tidy found"
    return 0
  fi
  if [[ ! -f build-tidy/compile_commands.json ]]; then
    if [[ -z "$CLANGXX" ]]; then
      echo "SKIPPED: no clang++ to generate compile_commands.json"
      return 0
    fi
    cmake --preset tidy -DCMAKE_CXX_COMPILER="$CLANGXX" > /dev/null
  fi
  # Library + tool sources; generated/third-party code never lands here.
  local files
  mapfile -t files < <(find src tools -name '*.cc' | sort)
  "$CLANG_TIDY" -p build-tidy --quiet "${files[@]}"
  echo "ok (${#files[@]} files)"
}

case "$stage" in
  selftest) run_selftest ;;
  build) run_build ;;
  tidy) run_tidy ;;
  all)
    run_selftest
    run_build
    run_tidy
    ;;
  *)
    echo "usage: $0 [all|selftest|build|tidy]" >&2
    exit 2
    ;;
esac
echo "static analysis passed"
