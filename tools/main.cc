// Entry point for the `whirlpool` CLI; all logic lives in tools/cli.cc so
// it is unit-testable.
#include <cstdio>
#include <iostream>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  whirlpool::Status status = whirlpool::cli::RunCli(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n%s", status.ToString().c_str(),
                 whirlpool::cli::UsageText().c_str());
    return 1;
  }
  return 0;
}
