// Ablation (paper Sec 6.3.3 future work): bulk routing. Whirlpool-S reuses
// one adaptive routing decision for queue neighbours that have visited the
// same set of servers, amortizing the router's per-tuple overhead. This
// bench sweeps the batch size and reports routing decisions, work and time.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.MediumBytes(), args.seed);
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(3));
  std::printf("Bulk-routing ablation (Q3, k=15, ~%zu KB, Whirlpool-S)\n\n",
              w.approx_bytes >> 10);
  std::printf("%-8s %14s %12s %12s %12s\n", "batch", "route_decisions", "ops",
              "created", "time(ms)");

  const int batches[] = {1, 4, 16, 64};
  uint64_t decisions[4], ops[4];
  double score_check = -1;
  bool answers_stable = true;
  for (int bi = 0; bi < 4; ++bi) {
    exec::ExecOptions options;
    options.k = 15;
    options.bulk_batch = batches[bi];
    auto r = exec::RunTopK(*c.plan, options);
    if (!r.ok()) return 1;
    decisions[bi] = r->metrics.routing_decisions;
    ops[bi] = r->metrics.server_operations;
    std::printf("%-8d %14llu %12llu %12llu %12.2f\n", batches[bi],
                static_cast<unsigned long long>(r->metrics.routing_decisions),
                static_cast<unsigned long long>(r->metrics.server_operations),
                static_cast<unsigned long long>(r->metrics.matches_created),
                r->metrics.wall_seconds * 1e3);
    const double top = r->answers.empty() ? 0.0 : r->answers[0].score;
    if (score_check < 0) score_check = top;
    else answers_stable &= std::abs(top - score_check) < 1e-9;
  }

  bool ok = bench::ShapeCheck("bulk.answers_invariant", answers_stable,
                              "top score " + std::to_string(score_check));
  ok &= bench::ShapeCheck("bulk.fewer_decisions_with_batching",
                          decisions[3] < decisions[0],
                          std::to_string(decisions[0]) + " -> " +
                              std::to_string(decisions[3]));
  ok &= bench::ShapeCheck(
      "bulk.work_stays_comparable", ops[3] <= ops[0] * 2,
      "ops " + std::to_string(ops[0]) + " -> " + std::to_string(ops[3]));
  return ok ? 0 : 1;
}
