// Figure 9 (paper Sec 6.3.4): speedup of Whirlpool-M over Whirlpool-S as a
// function of available parallelism (1, 2, 4, infinity processors), for
// Q1/Q2/Q3 at k=15 with the paper's ~1.8 msec per-operation cost.
//
// Parallelism is simulated with a counting semaphore capping how many
// server threads may execute an operation concurrently (see
// util/semaphore.h); injected operation costs sleep, so capped threads
// genuinely overlap like the paper's multiprocessor runs.
//
// Paper findings: Q1 (3 servers) gains little and is hurt by threading
// overhead; larger queries gain more; speedup saturates once processors
// exceed servers + 2.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  // Fixed small corpus: the per-operation cost dominates, as in the paper.
  const size_t bytes = static_cast<size_t>(args.scale * (256 << 10));
  const double op_cost = 0.0018;
  bench::Workload w = bench::MakeXMark(bytes, args.seed);
  std::printf("Figure 9: Whirlpool-M speedup over Whirlpool-S by processor count "
              "(~%zu KB, k=15, op cost %.1f ms)\n\n", w.approx_bytes >> 10,
              op_cost * 1e3);
  std::printf("%-4s %14s | %10s %10s %10s %10s\n", "Q", "W-S time(s)", "P=1", "P=2",
              "P=4", "P=inf");

  const int caps[] = {1, 2, 4, 0};  // 0 = unlimited
  double speedup[4][4];
  for (int qn = 1; qn <= 3; ++qn) {
    bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
    exec::ExecOptions base;
    base.k = 15;
    base.op_cost_seconds = op_cost;
    base.engine = exec::EngineKind::kWhirlpoolS;
    auto ws = bench::Run(*c.plan, base);
    std::printf("Q%-3d %14.2f |", qn, ws.wall_seconds);
    for (int pi = 0; pi < 4; ++pi) {
      exec::ExecOptions options = base;
      options.engine = exec::EngineKind::kWhirlpoolM;
      options.processor_cap = caps[pi];
      auto wm = bench::Run(*c.plan, options);
      speedup[qn][pi] = ws.wall_seconds / wm.wall_seconds;
      std::printf(" %10.2f", speedup[qn][pi]);
    }
    std::printf("\n");
  }

  bool ok = true;
  // (1) More processors never hurt (within 10% noise), for each query.
  for (int qn = 1; qn <= 3; ++qn) {
    bool monotone = speedup[qn][1] >= speedup[qn][0] * 0.9 &&
                    speedup[qn][2] >= speedup[qn][1] * 0.9 &&
                    speedup[qn][3] >= speedup[qn][2] * 0.9;
    ok &= bench::ShapeCheck("fig9.speedup_grows_with_processors_Q" + std::to_string(qn),
                            monotone,
                            std::to_string(speedup[qn][0]) + " -> " +
                                std::to_string(speedup[qn][3]));
  }
  // (2) With parallelism available, the larger queries benefit more than Q1.
  ok &= bench::ShapeCheck(
      "fig9.larger_queries_gain_more",
      speedup[3][3] > speedup[1][3] && speedup[2][3] > speedup[1][3] * 0.9,
      "Q1=" + std::to_string(speedup[1][3]) + " Q2=" + std::to_string(speedup[2][3]) +
          " Q3=" + std::to_string(speedup[3][3]));
  // (3) Multi-processor Whirlpool-M beats Whirlpool-S for the large query.
  ok &= bench::ShapeCheck("fig9.wm_beats_ws_for_q3_at_inf", speedup[3][3] > 1.0,
                          std::to_string(speedup[3][3]) + "x");
  // (4) Serialized (P=1) Whirlpool-M cannot beat Whirlpool-S by much: the
  // threading overhead shows.
  ok &= bench::ShapeCheck("fig9.no_free_lunch_at_one_processor",
                          speedup[1][0] < 1.3,
                          "Q1 P=1 speedup " + std::to_string(speedup[1][0]));
  return ok ? 0 : 1;
}
