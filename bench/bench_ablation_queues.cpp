// Ablation (paper Sec 6.1.3): server priority-queue policies. The paper
// reports that "for all configurations tested, a queue based on the maximum
// possible final score performed better than the other queues" — this bench
// sweeps all four policies for Whirlpool-M and LockStep on Q2 and Q3 and
// reports work and time per policy.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.MediumBytes(), args.seed);
  std::printf("Queue-policy ablation (k=15, ~%zu KB)\n\n", w.approx_bytes >> 10);
  std::printf("%-4s %-14s %-26s %12s %12s %12s\n", "Q", "engine", "queue policy",
              "time(ms)", "ops", "created");

  const exec::QueuePolicy policies[] = {
      exec::QueuePolicy::kFifo, exec::QueuePolicy::kCurrentScore,
      exec::QueuePolicy::kMaxNextScore, exec::QueuePolicy::kMaxFinalScore};

  bool ok = true;
  for (int qn = 2; qn <= 3; ++qn) {
    bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
    for (exec::EngineKind kind :
         {exec::EngineKind::kWhirlpoolM, exec::EngineKind::kLockStep}) {
      uint64_t created[4];
      int pi = 0;
      for (exec::QueuePolicy policy : policies) {
        exec::ExecOptions options;
        options.engine = kind;
        options.k = 15;
        options.queue_policy = policy;
        auto m = bench::Run(*c.plan, options);
        created[pi++] = m.matches_created;
        std::printf("Q%-3d %-14s %-26s %12.2f %12llu %12llu\n", qn,
                    exec::EngineKindName(kind), exec::QueuePolicyName(policy),
                    m.wall_seconds * 1e3,
                    static_cast<unsigned long long>(m.server_operations),
                    static_cast<unsigned long long>(m.matches_created));
      }
      // Max-final must be no worse (in matches created) than FIFO, the
      // policy with no score information at all. Whirlpool-M's counts are
      // schedule-dependent on small machines, so its tolerance is wider.
      const double tol = kind == exec::EngineKind::kWhirlpoolM ? 1.35 : 1.05;
      ok &= bench::ShapeCheck(
          "queues.max_final_no_worse_than_fifo_Q" + std::to_string(qn) + "_" +
              exec::EngineKindName(kind),
          static_cast<double>(created[3]) <= static_cast<double>(created[0]) * tol,
          "max_final=" + std::to_string(created[3]) + " fifo=" +
              std::to_string(created[0]));
    }
  }
  return ok ? 0 : 1;
}
