// Figure 7 (paper Sec 6.3.2): the companion of Figure 6 measured in number
// of server operations (the parallelism-independent workload measure) for
// LockStep, Whirlpool-S and Whirlpool-M — static min/median/max vs adaptive.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.MediumBytes(), args.seed);
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(2));
  std::printf("Figure 7: number of server operations, static min/median/max vs "
              "adaptive (Q2, ~%zu KB, k=15)\n\n", w.approx_bytes >> 10);
  std::printf("%-18s %12s %12s %12s %12s\n", "technique", "min", "median", "max",
              "adaptive");

  struct Row {
    bench::MinMedMax stat;
    uint64_t adaptive;
    bool has_adaptive;
  };
  std::vector<Row> rows;
  for (exec::EngineKind kind : {exec::EngineKind::kLockStep,
                                exec::EngineKind::kWhirlpoolS,
                                exec::EngineKind::kWhirlpoolM}) {
    bench::SweepResult r = bench::PermutationSweep(*c.plan, kind, 15);
    std::vector<double> ops(r.static_ops.begin(), r.static_ops.end());
    bench::MinMedMax s = bench::Summarize(ops);
    bool has_adaptive = r.adaptive_time >= 0;
    rows.push_back({s, r.adaptive_ops, has_adaptive});
    if (has_adaptive) {
      std::printf("%-18s %12.0f %12.0f %12.0f %12llu\n", exec::EngineKindName(kind),
                  s.min, s.median, s.max,
                  static_cast<unsigned long long>(r.adaptive_ops));
    } else {
      std::printf("%-18s %12.0f %12.0f %12.0f %12s\n", exec::EngineKindName(kind),
                  s.min, s.median, s.max, "n/a");
    }
  }

  bool ok = true;
  // (1) Whirlpool-S performs fewer operations than LockStep at the median
  // static order (letting matches progress at different rates pays off).
  ok &= bench::ShapeCheck("fig7.whirlpool_s_fewer_ops_than_lockstep",
                          rows[1].stat.median < rows[0].stat.median,
                          std::to_string(rows[1].stat.median) + " vs " +
                              std::to_string(rows[0].stat.median));
  // (2) Adaptive routing needs no more operations than the median static
  // order for both Whirlpool engines.
  ok &= bench::ShapeCheck(
      "fig7.adaptive_ops_beat_median_static",
      static_cast<double>(rows[1].adaptive) < rows[1].stat.median &&
          static_cast<double>(rows[2].adaptive) < rows[2].stat.median,
      "W-S " + std::to_string(rows[1].adaptive) + " / W-M " +
          std::to_string(rows[2].adaptive));
  return ok ? 0 : 1;
}
