// Figure 3 (motivating example, paper Sec 2): six static join plans over
// "book (d)" — a book with 3 title matches (score 0.3 each), 5 location
// matches (0.3/0.2/0.1/0.1/0.1) and 1 price match (0.2) — evaluated for
// increasing values of currentTopK with the top-k threshold frozen. The
// figure plots the number of join-predicate comparisons per plan and shows
// that no plan is best everywhere: plans joining location first are by far
// the worst at low currentTopK but become best as the threshold rises.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  bench::BenchArgs::Parse(argc, argv);  // accepts the shared flags; unused

  // Build book (d).
  xml::Document doc;
  xml::NodeId book = doc.AddChild(doc.root(), "book");
  std::vector<xml::NodeId> titles, locations, prices;
  for (int i = 0; i < 3; ++i) {
    xml::NodeId t = doc.AddChild(book, "title");
    doc.SetText(t, "wodehouse");
    titles.push_back(t);
  }
  for (int i = 0; i < 5; ++i) locations.push_back(doc.AddChild(book, "location"));
  prices.push_back(doc.AddChild(book, "price"));
  doc.Finalize();
  index::TagIndex idx(doc);

  // Query: top-1 book with title, location and price children (Sec 2).
  auto q = query::ParseXPath("/book[./title and ./location and ./price]");
  if (!q.ok()) return 1;

  // Per-binding scores from the paper's example.
  std::map<xml::NodeId, double> binding_score;
  for (auto t : titles) binding_score[t] = 0.3;
  const double loc_scores[5] = {0.3, 0.2, 0.1, 0.1, 0.1};
  for (int i = 0; i < 5; ++i) binding_score[locations[static_cast<size_t>(i)]] = loc_scores[i];
  binding_score[prices[0]] = 0.2;

  auto scoring = score::ScoringModel::ComputeTfIdf(idx, *q, score::Normalization::kNone);
  auto plan_r = exec::QueryPlan::Build(idx, *q, scoring);
  if (!plan_r.ok()) return 1;
  exec::QueryPlan plan = std::move(plan_r).value();
  plan.SetScoreOverride(
      [&binding_score](int, xml::NodeId node, score::MatchLevel) {
        auto it = binding_score.find(node);
        return it == binding_score.end() ? 0.0 : it->second;
      },
      /*per_server_max=*/{0.3, 0.3, 0.2});  // title, location, price

  // Six plans: all permutations of (title=0, location=1, price=2); book is
  // always evaluated first (it seeds the matches).
  const std::vector<std::vector<int>> plans = bench::AllPermutations(3);
  auto plan_name = [&](const std::vector<int>& order) {
    std::string s = "book";
    for (int srv : order) {
      s += "-";
      s += q->node(plan.server(srv).pattern_node).tag;
    }
    return s;
  };

  std::printf("Figure 3: join-predicate comparisons vs currentTopK (k=1)\n\n");
  std::printf("%-10s", "topk");
  for (const auto& p : plans) std::printf(" %22s", plan_name(p).c_str());
  std::printf("\n");

  std::map<double, std::vector<uint64_t>> table;
  for (double topk = 0.0; topk <= 1.001; topk += 0.05) {
    std::printf("%-10.2f", topk);
    std::vector<uint64_t> row;
    for (const auto& order : plans) {
      exec::ExecOptions options;
      options.engine = exec::EngineKind::kLockStep;
      options.k = 1;
      options.static_order = order;
      options.frozen_threshold = topk;
      auto m = bench::Run(plan, options);
      row.push_back(m.predicate_comparisons);
      std::printf(" %22llu", static_cast<unsigned long long>(m.predicate_comparisons));
    }
    table[topk] = row;
    std::printf("\n");
  }

  // ---- Shape checks against the paper's observations -----------------------
  // Plan indices: orders are lexicographic permutations of (t=0, l=1, p=2):
  //   0: t,l,p  1: t,p,l  2: l,t,p  3: l,p,t  4: p,t,l  5: p,l,t
  const auto& low = table[0.0];     // currentTopK < 0.6
  const auto& mid = table.lower_bound(0.65)->second;
  bool ok = true;
  // (1) At low currentTopK, a location-first plan is the single worst plan
  // (location produces the most intermediate tuples), and location-first
  // plans cost more on average than price-first ones.
  uint64_t global_worst = *std::max_element(low.begin(), low.end());
  bool loc_first_is_worst = low[2] == global_worst || low[3] == global_worst;
  double loc_avg = (static_cast<double>(low[2]) + static_cast<double>(low[3])) / 2;
  double price_avg = (static_cast<double>(low[4]) + static_cast<double>(low[5])) / 2;
  ok &= bench::ShapeCheck(
      "fig3.location_first_worst_at_low_topk",
      loc_first_is_worst && loc_avg > price_avg,
      "loc-first avg=" + std::to_string(loc_avg) + " price-first avg=" +
          std::to_string(price_avg));
  // (2) At 0.6<=topk<=0.7, price-location-title (plan 5) is among the best.
  uint64_t best_mid = *std::min_element(mid.begin(), mid.end());
  ok &= bench::ShapeCheck("fig3.price_location_title_best_at_mid",
                          mid[5] == best_mid,
                          "plan5=" + std::to_string(mid[5]) + " best=" +
                              std::to_string(best_mid));
  // (3) No plan dominates: the argmin changes across the sweep.
  std::set<size_t> argmins;
  for (const auto& [t, row] : table) {
    argmins.insert(static_cast<size_t>(
        std::min_element(row.begin(), row.end()) - row.begin()));
  }
  ok &= bench::ShapeCheck("fig3.no_plan_dominates", argmins.size() >= 2,
                          std::to_string(argmins.size()) + " distinct best plans");
  // (4) Location-first plans improve (strictly fewer ops) as topk grows.
  ok &= bench::ShapeCheck("fig3.location_first_improves",
                          table[0.0][2] > table.lower_bound(0.75)->second[2],
                          std::to_string(table[0.0][2]) + " -> " +
                              std::to_string(table.lower_bound(0.75)->second[2]));
  return ok ? 0 : 1;
}
