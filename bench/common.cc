#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "xmlgen/xmark.h"

namespace whirlpool::bench {

namespace {

// Metrics-JSON export state: every Run() appends its snapshot's JSON here;
// the array is flushed by an atexit handler so each bench's main() needs no
// changes. Benches are effectively single-threaded but Run() is guarded
// anyway.
Mutex g_metrics_mu{LockRank::kBenchGlobal, "bench::g_metrics_mu"};
std::string g_metrics_json_path GUARDED_BY(g_metrics_mu);  // empty = disabled
std::vector<std::string> g_metrics_json
    GUARDED_BY(g_metrics_mu);  // pre-rendered snapshot objects

void FlushMetricsJson() {
  MutexLock lock(&g_metrics_mu);
  if (g_metrics_json_path.empty()) return;
  std::ofstream file(g_metrics_json_path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", g_metrics_json_path.c_str());
    return;
  }
  file << "[\n";
  for (size_t i = 0; i < g_metrics_json.size(); ++i) {
    file << g_metrics_json[i] << (i + 1 < g_metrics_json.size() ? ",\n" : "\n");
  }
  file << "]\n";
}

}  // namespace

void EnableMetricsJson(const std::string& path) {
  MutexLock lock(&g_metrics_mu);
  const bool first = g_metrics_json_path.empty();
  g_metrics_json_path = path;
  if (first) std::atexit(FlushMetricsJson);
}

const char* QueryXPath(int qnum) {
  switch (qnum) {
    case 1:
      return "//item[./description/parlist]";
    case 2:
      return "//item[./description/parlist and ./mailbox/mail/text]";
    case 3:
      return "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and "
             "./incategory]";
  }
  std::fprintf(stderr, "bad query number %d\n", qnum);
  std::exit(1);
}

int QueryServers(int qnum) {
  switch (qnum) {
    case 1: return 2;
    case 2: return 5;
    case 3: return 7;
  }
  return 0;
}

Workload MakeXMark(size_t target_bytes, uint64_t seed) {
  Workload w;
  xmlgen::XMarkOptions opts;
  opts.seed = seed;
  opts.target_bytes = target_bytes;
  w.doc = xmlgen::GenerateXMark(opts);
  w.idx = std::make_unique<index::TagIndex>(*w.doc);
  w.approx_bytes = w.doc->ApproxContentBytes();
  return w;
}

Compiled Compile(const index::TagIndex& idx, const char* xpath,
                 score::Normalization norm) {
  Compiled c;
  auto q = query::ParseXPath(xpath);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse error: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  c.pattern = std::move(q).value();
  c.scoring = score::ScoringModel::ComputeTfIdf(idx, c.pattern, norm);
  auto plan = exec::QueryPlan::Build(idx, c.pattern, c.scoring);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  c.plan = std::make_unique<exec::QueryPlan>(std::move(plan).value());
  return c;
}

exec::MetricsSnapshot Run(const exec::QueryPlan& plan, const exec::ExecOptions& options) {
  bool record = false;
  {
    MutexLock lock(&g_metrics_mu);
    record = !g_metrics_json_path.empty();
  }
  exec::ExecOptions opts = options;
  if (record) opts.collect_latencies = true;
  auto r = exec::RunTopK(plan, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "exec error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  if (record) {
    MutexLock lock(&g_metrics_mu);
    g_metrics_json.push_back(r->metrics.ToJson());
  }
  return r->metrics;
}

std::vector<std::vector<int>> AllPermutations(int n) {
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::vector<std::vector<int>> out;
  do {
    out.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

MinMedMax Summarize(std::vector<double> values) {
  MinMedMax s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values[values.size() / 2];
  return s;
}

uint64_t AnalyticNoPrunCreated(const exec::QueryPlan& plan,
                               const std::vector<int>& order) {
  return exec::NoPruningTupleCount(plan, order);
}

SweepResult PermutationSweep(const exec::QueryPlan& plan, exec::EngineKind kind,
                             uint32_t k) {
  SweepResult r;
  for (const auto& order : AllPermutations(plan.num_servers())) {
    exec::ExecOptions options;
    options.engine = kind;
    options.k = k;
    options.routing = exec::RoutingStrategy::kStatic;
    options.static_order = order;
    auto m = Run(plan, options);
    r.static_times.push_back(m.wall_seconds);
    r.static_ops.push_back(m.server_operations);
  }
  if (kind == exec::EngineKind::kWhirlpoolS || kind == exec::EngineKind::kWhirlpoolM) {
    exec::ExecOptions options;
    options.engine = kind;
    options.k = k;
    options.routing = exec::RoutingStrategy::kMinAlive;
    auto m = Run(plan, options);
    r.adaptive_time = m.wall_seconds;
    r.adaptive_ops = m.server_operations;
  }
  return r;
}

bool ShapeCheck(const std::string& name, bool ok, const std::string& detail) {
  std::printf("SHAPE-CHECK %s: %s (%s)\n", name.c_str(), ok ? "OK" : "FAIL",
              detail.c_str());
  return ok;
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strcmp(a, "--full") == 0) {
      args.full = true;
    } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
      args.metrics_json = a + 15;
      EnableMetricsJson(args.metrics_json);
    } else if (std::strncmp(a, "--topk-shards=", 14) == 0) {
      if (std::strcmp(a + 14, "auto") == 0) args.topk_shards_auto = true;
      else args.topk_shards = std::atoi(a + 14);
    } else if (std::strncmp(a, "--queue-drain-batch=", 20) == 0) {
      if (std::strcmp(a + 20, "auto") == 0) args.queue_drain_auto = true;
      else args.queue_drain_batch = std::atoi(a + 20);
    } else if (std::strncmp(a, "--threads-per-server=", 21) == 0) {
      args.threads_per_server = std::atoi(a + 21);
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf("flags: --scale=F --seed=N --full --metrics-json=FILE "
                  "--topk-shards=N|auto --queue-drain-batch=N|auto "
                  "--threads-per-server=N\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      std::exit(1);
    }
  }
  if (args.scale <= 0) args.scale = 1.0;
  return args;
}

void BenchArgs::ApplyTo(exec::ExecOptions* options) const {
  if (topk_shards_auto) options->topk_shards = 0;
  else if (topk_shards > 0) options->topk_shards = topk_shards;
  if (queue_drain_auto) options->queue_drain_batch = 0;
  else if (queue_drain_batch > 0) options->queue_drain_batch = queue_drain_batch;
  if (threads_per_server > 0) options->threads_per_server = threads_per_server;
}

size_t BenchArgs::SmallBytes() const {
  return static_cast<size_t>(scale * (full ? (1 << 20) : (1 << 20)));
}
size_t BenchArgs::MediumBytes() const {
  return static_cast<size_t>(scale * (full ? (10 << 20) : (4 << 20)));
}
size_t BenchArgs::LargeBytes() const {
  return static_cast<size_t>(scale * (full ? (50 << 20) : (16 << 20)));
}

}  // namespace whirlpool::bench
