// Figure 11 (paper Sec 6.3.5): query execution time for Whirlpool-S and
// Whirlpool-M as a function of document size (the paper's 1/10/50 MB; the
// default mapping here is 1/4/16 MB — pass --full for the paper's sizes)
// across Q1-Q3 at k=15 and the paper's ~1.8 msec per-operation cost.
// Execution time grows with document size, and Whirlpool-M's relative
// advantage grows with the workload (paper: up to 92% faster at 50 MB).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  const std::vector<std::pair<const char*, size_t>> sizes = {
      {"1M-class", args.SmallBytes()},
      {"10M-class", args.MediumBytes()},
      {"50M-class", args.LargeBytes()},
  };
  const double op_cost = 0.0018;
  std::printf("Figure 11: exec time vs document size and query (k=15, op cost "
              "%.1fms)\n\n", op_cost * 1e3);
  std::printf("%-4s %-10s %10s %10s %16s %16s %16s %12s\n", "Q", "size", "nodes(k)",
              "items", "W-S time(ms)", "W-M time(ms)", "W-S 0cost(ms)", "W-S ops");

  double ws_time[4][3], wm_time[4][3], ws_base[4][3];
  for (size_t si = 0; si < sizes.size(); ++si) {
    bench::Workload w = bench::MakeXMark(sizes[si].second, args.seed);
    for (int qn = 1; qn <= 3; ++qn) {
      bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
      exec::ExecOptions options;
      options.k = 15;
      options.op_cost_seconds = op_cost;
      args.ApplyTo(&options);  // --topk-shards / --queue-drain-batch / threads
      options.engine = exec::EngineKind::kWhirlpoolS;
      auto ws = bench::Run(*c.plan, options);
      options.engine = exec::EngineKind::kWhirlpoolM;
      auto wm = bench::Run(*c.plan, options);
      if (args.queue_drain_auto || args.topk_shards_auto) {
        // Controller decisions for the auto knobs (exec/adaptive.h): final
        // per-consumer drain depths and the resolved shard count.
        const auto& a = wm.adaptive;
        std::printf("  [adaptive Q%d/%s] shards=%d%s drains(max=%d,adjusted %d):",
                    qn, sizes[si].first, a.chosen_shards,
                    a.shards_auto ? "(auto)" : "", a.drain_max, a.adjustments);
        for (const auto& cdr : a.consumers) {
          std::printf(" %s=%d", cdr.queue < 0 ? "router" :
                      ("s" + std::to_string(cdr.queue)).c_str(), cdr.drain);
        }
        std::printf("\n");
      }
      // Zero-cost run isolates the engine's own work (index scans, joins,
      // queue churn), which scales with the corpus.
      exec::ExecOptions base = options;
      base.engine = exec::EngineKind::kWhirlpoolS;
      base.op_cost_seconds = 0;
      std::vector<double> reps;
      for (int rep = 0; rep < 3; ++rep) reps.push_back(bench::Run(*c.plan, base).wall_seconds);
      ws_time[qn][si] = ws.wall_seconds;
      wm_time[qn][si] = wm.wall_seconds;
      ws_base[qn][si] = bench::Summarize(reps).median;
      std::printf("Q%-3d %-10s %10zu %10zu %16.2f %16.2f %16.2f %12llu\n", qn,
                  sizes[si].first, w.doc->num_nodes() / 1000,
                  w.idx->Nodes("item").size(), ws.wall_seconds * 1e3,
                  wm.wall_seconds * 1e3, ws_base[qn][si] * 1e3,
                  static_cast<unsigned long long>(ws.server_operations));
    }
  }

  bool ok = true;
  for (int qn = 1; qn <= 3; ++qn) {
    // The engine's own work grows with document size (more root matches,
    // larger candidate scans). Note an honest divergence from the paper:
    // our operation COUNTS can shrink on larger corpora because richer
    // top-k answers raise the pruning threshold earlier (EXPERIMENTS.md).
    const double growth = ws_base[qn][2] / std::max(1e-9, ws_base[qn][0]);
    ok &= bench::ShapeCheck("fig11.work_grows_with_doc_size_Q" + std::to_string(qn),
                            growth > 1.5,
                            "x" + std::to_string(growth) + " from small to large");
  }
  // Whirlpool-M's advantage is largest on the biggest workload (Q3, large
  // document) — the paper's 92%-faster-at-50MB observation.
  const double small_ratio = ws_time[1][0] / wm_time[1][0];
  const double large_ratio = ws_time[3][2] / wm_time[3][2];
  ok &= bench::ShapeCheck("fig11.wm_advantage_grows_with_size",
                          large_ratio > small_ratio && large_ratio > 1.0,
                          "W-S/W-M " + std::to_string(small_ratio) + " (Q1 small) -> " +
                              std::to_string(large_ratio) + " (Q3 large)");
  return ok ? 0 : 1;
}
