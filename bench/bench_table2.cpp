// Table 2 (paper Sec 6.3.6, scalability): percentage of the maximum
// possible number of partial matches actually created by Whirlpool-M, per
// query and document size. The maximum is the number a no-pruning run
// creates, computed analytically from per-root candidate counts (identical
// to LockStep-NoPrun's matches_created metric; validated in the tests).
//
// Paper shape: ~100% for Q1 on 1MB, decreasing sharply with query and
// document size (Q3/50MB: ~31%).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  const std::vector<std::pair<const char*, size_t>> sizes = {
      {"1M-class", args.SmallBytes()},
      {"10M-class", args.MediumBytes()},
      {"50M-class", args.LargeBytes()},
  };
  std::printf("Table 2: %% of max possible partial matches created by Whirlpool-M "
              "(k=15)\n\n");
  std::printf("%-4s %-10s %14s %14s %9s\n", "Q", "size", "created", "max_possible",
              "percent");

  double pct[4][3];
  for (size_t si = 0; si < sizes.size(); ++si) {
    bench::Workload w = bench::MakeXMark(sizes[si].second, args.seed);
    for (int qn = 1; qn <= 3; ++qn) {
      bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
      // Max possible: identity order (any order gives the same total for
      // full enumeration only up to stage bookkeeping; use the default
      // LockStep order, matching the NoPrun metric).
      std::vector<int> order(static_cast<size_t>(c.plan->num_servers()));
      for (int s = 0; s < c.plan->num_servers(); ++s) order[static_cast<size_t>(s)] = s;
      const uint64_t max_possible = bench::AnalyticNoPrunCreated(*c.plan, order);

      exec::ExecOptions options;
      options.engine = exec::EngineKind::kWhirlpoolM;
      options.k = 15;
      auto m = bench::Run(*c.plan, options);
      pct[qn][si] =
          100.0 * static_cast<double>(m.matches_created) / static_cast<double>(max_possible);
      std::printf("Q%-3d %-10s %14llu %14llu %8.2f%%\n", qn, sizes[si].first,
                  static_cast<unsigned long long>(m.matches_created),
                  static_cast<unsigned long long>(max_possible), pct[qn][si]);
    }
  }

  bool ok = true;
  // (1) Larger queries prune relatively more (Q3 < Q1 at every size).
  for (int si = 0; si < 3; ++si) {
    ok &= bench::ShapeCheck(
        "table2.larger_queries_prune_more_size" + std::to_string(si),
        pct[3][si] < pct[1][si],
        "Q1=" + std::to_string(pct[1][si]) + "% Q3=" + std::to_string(pct[3][si]) + "%");
  }
  // (2) For the large query, bigger documents prune relatively more.
  ok &= bench::ShapeCheck("table2.q3_prunes_more_on_bigger_docs",
                          pct[3][2] < pct[3][0],
                          std::to_string(pct[3][0]) + "% -> " +
                              std::to_string(pct[3][2]) + "%");
  // (3) Q3 on the large document prunes away the majority of tuples.
  ok &= bench::ShapeCheck("table2.q3_large_majority_pruned", pct[3][2] < 60.0,
                          std::to_string(pct[3][2]) + "%");
  return ok ? 0 : 1;
}
