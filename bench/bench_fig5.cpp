// Figure 5 (paper Sec 6.3.1): query execution time of Whirlpool-S and
// Whirlpool-M under the three adaptive routing strategies (max_score,
// min_score, min_alive_partial_matches) at the default setting (Q2, k=15,
// sparse scoring) and the paper's ~1.8 msec per-operation cost (Sec 6.3.3:
// all reported results assume join operations cost around 1.8 msec).
//
// Paper finding: max_score is slowest (it destroys pruning opportunities),
// min_score is reasonable, the size-based min_alive strategy wins for both
// engines.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  // Small corpus: with 1.8 ms per operation the op cost dominates, as in
  // the paper; the doc size only scales total time.
  bench::Workload w = bench::MakeXMark(args.SmallBytes() / 2, args.seed);
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(2));
  const double op_cost = 0.0018;
  std::printf("Figure 5: exec time by adaptive routing strategy "
              "(Q2, ~%zu KB doc, k=15, op cost %.1fms)\n\n",
              w.approx_bytes >> 10, op_cost * 1e3);

  const exec::RoutingStrategy strategies[] = {exec::RoutingStrategy::kMaxScore,
                                              exec::RoutingStrategy::kMinScore,
                                              exec::RoutingStrategy::kMinAlive};
  std::printf("%-14s %-28s %12s %12s %12s\n", "engine", "routing", "time(s)",
              "server_ops", "created");
  double results[2][3];
  uint64_t ops[2][3];
  int ei = 0;
  for (exec::EngineKind kind :
       {exec::EngineKind::kWhirlpoolS, exec::EngineKind::kWhirlpoolM}) {
    int si = 0;
    for (exec::RoutingStrategy strategy : strategies) {
      exec::ExecOptions options;
      options.engine = kind;
      options.routing = strategy;
      options.k = 15;
      options.op_cost_seconds = op_cost;
      auto m = bench::Run(*c.plan, options);
      results[ei][si] = m.wall_seconds;
      ops[ei][si] = m.server_operations;
      std::printf("%-14s %-28s %12.2f %12llu %12llu\n", exec::EngineKindName(kind),
                  exec::RoutingStrategyName(strategy), m.wall_seconds,
                  static_cast<unsigned long long>(m.server_operations),
                  static_cast<unsigned long long>(m.matches_created));
      ++si;
    }
    ++ei;
  }

  bool ok = true;
  // Deterministic workload claim for the sequential engine: the size-based
  // router does the least work.
  ok &= bench::ShapeCheck(
      "fig5.min_alive_fewest_ops_WhirlpoolS",
      ops[0][2] <= ops[0][0] && ops[0][2] <= ops[0][1],
      "min_alive=" + std::to_string(ops[0][2]) + " min_score=" +
          std::to_string(ops[0][1]) + " max_score=" + std::to_string(ops[0][0]));
  for (int e = 0; e < 2; ++e) {
    const char* name = e == 0 ? "WhirlpoolS" : "WhirlpoolM";
    // Allow more scheduling noise for the multi-threaded engine.
    const double tol = e == 0 ? 1.05 : 1.25;
    ok &= bench::ShapeCheck(
        std::string("fig5.min_alive_fastest_") + name,
        results[e][2] <= results[e][0] * tol && results[e][2] <= results[e][1] * tol,
        "min_alive=" + std::to_string(results[e][2]) + "s max_score=" +
            std::to_string(results[e][0]) + "s min_score=" +
            std::to_string(results[e][1]) + "s");
  }
  return ok ? 0 : 1;
}
