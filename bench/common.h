// Shared harness for the per-figure/table benches: workload construction,
// plan compilation, run helpers, permutation sweeps, the analytic
// no-pruning tuple count (Table 2 denominator), and SHAPE-CHECK reporting.
//
// Every bench accepts:
//   --scale=F     multiply all document sizes by F (default 1.0)
//   --seed=N      generator seed (default 42)
//   --full        run at the paper's full document sizes (1/10/50 MB)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "whirlpool/whirlpool.h"

namespace whirlpool::bench {

/// The paper's three queries (Sec 6.2.1).
const char* QueryXPath(int qnum);

/// Number of servers (non-root pattern nodes) of Q1/Q2/Q3.
int QueryServers(int qnum);

/// \brief A generated document plus its index.
struct Workload {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  size_t approx_bytes = 0;
};

Workload MakeXMark(size_t target_bytes, uint64_t seed = 42);

/// \brief A compiled query against one workload.
struct Compiled {
  query::TreePattern pattern;
  score::ScoringModel scoring;
  std::unique_ptr<exec::QueryPlan> plan;
};

Compiled Compile(const index::TagIndex& idx, const char* xpath,
                 score::Normalization norm = score::Normalization::kSparse);

/// Runs and returns metrics; aborts the bench on error. When metrics-JSON
/// export is enabled (--metrics-json=FILE / EnableMetricsJson), every run's
/// snapshot is also recorded (with latency histograms on) and the whole
/// series is written as a JSON array when the bench exits.
exec::MetricsSnapshot Run(const exec::QueryPlan& plan, const exec::ExecOptions& options);

/// Turns on metrics-JSON export to `path` for all subsequent Run() calls.
/// Registered automatically by BenchArgs::Parse for --metrics-json=FILE.
void EnableMetricsJson(const std::string& path);

/// All permutations of [0, n). n <= 6 expected.
std::vector<std::vector<int>> AllPermutations(int n);

/// Min / median / max of a non-empty vector.
struct MinMedMax {
  double min = 0, median = 0, max = 0;
};
MinMedMax Summarize(std::vector<double> values);

/// \brief Exact number of partial matches LockStep-NoPrun creates for
/// `order` (computed analytically from per-root candidate counts: roots plus
/// one extension per candidate — or one deletion row — at every stage).
/// Validated against real NoPrun runs in tests/bench_support_test.cpp.
uint64_t AnalyticNoPrunCreated(const exec::QueryPlan& plan, const std::vector<int>& order);

/// Prints "SHAPE-CHECK <name>: OK|FAIL (<detail>)" and returns ok.
bool ShapeCheck(const std::string& name, bool ok, const std::string& detail);

/// \brief Static-permutation sweep results for one technique (Figures 6/7):
/// one sample per server permutation, plus the adaptive run where the
/// technique supports it.
struct SweepResult {
  std::vector<double> static_times;
  std::vector<uint64_t> static_ops;
  double adaptive_time = -1;   // <0: technique has no adaptive mode
  uint64_t adaptive_ops = 0;
};

/// Runs every static permutation (and min_alive adaptive for the Whirlpool
/// engines) of `kind` over `plan` with k answers.
SweepResult PermutationSweep(const exec::QueryPlan& plan, exec::EngineKind kind,
                             uint32_t k);

/// \brief Tiny argv parser for the flags shared by all benches.
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  bool full = false;
  /// --metrics-json=FILE: dump every Run()'s MetricsSnapshot (JSON array,
  /// one object per run, with latency percentiles) when the bench exits.
  std::string metrics_json;
  /// --topk-shards=N|auto / --queue-drain-batch=N|auto: Whirlpool-M
  /// synchronization knobs (ExecOptions::topk_shards / queue_drain_batch).
  /// 0 = engine default; "auto" sets the matching *_auto flag and ApplyTo
  /// passes the controller's 0 = auto sentinel (exec/adaptive.h). Benches
  /// that run Whirlpool-M apply them via ApplyTo().
  int topk_shards = 0;
  int queue_drain_batch = 0;
  bool topk_shards_auto = false;
  bool queue_drain_auto = false;
  /// --threads-per-server=N for the Whirlpool-M runs. 0 = engine default.
  int threads_per_server = 0;

  /// Copies the Whirlpool-M knobs (when set) onto an ExecOptions.
  void ApplyTo(exec::ExecOptions* options) const;

  static BenchArgs Parse(int argc, char** argv);
  /// target bytes for the paper's "1Mb" / "10Mb" / "50Mb" documents: the
  /// default mapping is 1/4/16 MB (shape-preserving, laptop-scale);
  /// --full restores 1/10/50 MB.
  size_t SmallBytes() const;
  size_t MediumBytes() const;
  size_t LargeBytes() const;
};

}  // namespace whirlpool::bench
