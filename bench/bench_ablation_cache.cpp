// Ablation: the per-(server, root) join cache (exec/join_cache.h). In
// relaxed max-tuple mode the tuple explosion re-classifies the same
// candidate lists; memoizing them trades memory for predicate comparisons.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.MediumBytes(), args.seed);
  std::printf("Join-cache ablation (k=15, ~%zu KB)\n\n", w.approx_bytes >> 10);
  std::printf("%-4s %-16s %-6s %14s %12s %12s\n", "Q", "engine", "cache", "cmps",
              "ops", "time(ms)");

  bool ok = true;
  for (int qn = 2; qn <= 3; ++qn) {
    bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
    for (exec::EngineKind kind :
         {exec::EngineKind::kWhirlpoolS, exec::EngineKind::kLockStep}) {
      uint64_t cmps[2];
      double top_score[2];
      for (int cached = 0; cached < 2; ++cached) {
        exec::ExecOptions options;
        options.engine = kind;
        options.k = 15;
        options.cache_server_joins = cached == 1;
        auto r = exec::RunTopK(*c.plan, options);
        if (!r.ok()) return 1;
        cmps[cached] = r->metrics.predicate_comparisons;
        top_score[cached] = r->answers.empty() ? 0 : r->answers[0].score;
        std::printf("Q%-3d %-16s %-6s %14llu %12llu %12.2f\n", qn,
                    exec::EngineKindName(kind), cached ? "on" : "off",
                    static_cast<unsigned long long>(r->metrics.predicate_comparisons),
                    static_cast<unsigned long long>(r->metrics.server_operations),
                    r->metrics.wall_seconds * 1e3);
      }
      ok &= bench::ShapeCheck(
          "cache.same_answers_Q" + std::to_string(qn) + "_" + exec::EngineKindName(kind),
          std::abs(top_score[0] - top_score[1]) < 1e-9,
          "top " + std::to_string(top_score[0]));
      ok &= bench::ShapeCheck(
          "cache.fewer_comparisons_Q" + std::to_string(qn) + "_" +
              exec::EngineKindName(kind),
          cmps[1] <= cmps[0],
          std::to_string(cmps[0]) + " -> " + std::to_string(cmps[1]));
    }
  }
  return ok ? 0 : 1;
}
