// Ablation (paper Sec 3 related work): plan-relaxation vs rewriting.
// EDBT'02 showed that encoding relaxations in one outer-join plan beats
// enumerating relaxed queries "due to the exponential number of relaxed
// queries" — this bench runs both on the same corpus and shows the gap.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "exec/rewriting_baseline.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.SmallBytes(), args.seed);
  std::printf("Plan-relaxation vs rewriting (k=75, ~%zu KB)\n\n",
              w.approx_bytes >> 10);
  std::printf("%-8s %10s | %-8s %12s %12s | %-6s %12s %14s\n", "case", "relaxed_qs",
              "engine", "ops", "time(ms)", "rewrit", "evaluated", "time(ms)");

  // Queries ranging from easy (many exact matches: the rewriting baseline's
  // best-first early exit stops after ONE relaxed query) to hard (exact
  // matches are rare, so rewriting must walk down the relaxation lattice —
  // the regime the paper's comparison is about).
  struct Case {
    const char* name;
    const char* xpath;
  };
  const Case cases[] = {
      {"Q1-easy", bench::QueryXPath(1)},
      {"Q2-easy", bench::QueryXPath(2)},
      {"hard-kw",
       "//item[./description/parlist/listitem/text and "
       "./mailbox/mail/text/keyword = 'bargain']"},
  };
  bool ok = true;
  double engine_hard = 0, rewriting_hard = 0;
  for (const Case& cs : cases) {
    bench::Compiled c = bench::Compile(*w.idx, cs.xpath);
    exec::ExecOptions opts;
    opts.k = 75;
    auto engine = bench::Run(*c.plan, opts);
    exec::RewritingStats stats;
    auto rewriting = exec::RunRewritingBaseline(*c.plan, opts, &stats);
    if (!rewriting.ok()) return 1;
    std::printf("%-8s %10llu | %-8s %12llu %12.2f | %-6s %12llu %14.2f\n", cs.name,
                static_cast<unsigned long long>(stats.queries_enumerated), "",
                static_cast<unsigned long long>(engine.server_operations),
                engine.wall_seconds * 1e3, "",
                static_cast<unsigned long long>(stats.queries_evaluated),
                rewriting->metrics.wall_seconds * 1e3);
    if (std::string(cs.name) == "hard-kw") {
      engine_hard = engine.wall_seconds;
      rewriting_hard = rewriting->metrics.wall_seconds;
      ok &= bench::ShapeCheck("rewriting.descends_lattice_on_hard_query",
                              stats.queries_evaluated > 10,
                              std::to_string(stats.queries_evaluated) +
                                  " relaxed queries evaluated");
    }
  }
  ok &= bench::ShapeCheck(
      "rewriting.plan_relaxation_faster_on_hard_query",
      engine_hard < rewriting_hard,
      "whirlpool " + std::to_string(engine_hard * 1e3) + "ms vs rewriting " +
          std::to_string(rewriting_hard * 1e3) + "ms");

  // The Q3 blow-up: the enumeration alone is 4^7; just report the count.
  {
    bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(3));
    const uint64_t enumerated = 1ull << (2 * (c.plan->num_servers()));
    std::printf("\nQ3 would enumerate %llu relaxed queries (4^%d) before evaluating "
                "any of them.\n",
                static_cast<unsigned long long>(enumerated), c.plan->num_servers());
    ok &= bench::ShapeCheck("rewriting.exponential_blowup", enumerated > 10000,
                            std::to_string(enumerated) + " relaxed queries for Q3");
  }
  return ok ? 0 : 1;
}
