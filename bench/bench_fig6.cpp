// Figure 6 (paper Sec 6.3.2): query execution time for LockStep-NoPrun,
// LockStep, Whirlpool-S and Whirlpool-M under (a) every static routing
// permutation — reported as min/median/max — and (b) the adaptive
// (min_alive) strategy for the Whirlpool engines, at the default setting
// (Q2, k=15, sparse) and the paper's ~1.8 msec per-operation cost.
//
// Running all 120 permutations x 4 techniques with a real 1.8 ms sleep per
// operation would take hours, so the sequential techniques use the
// fig8-validated linear model time(c) = wall0 + ops * c over a zero-cost
// sweep, while Whirlpool-M (whose operations overlap, so the linear model
// does not apply) runs its best/median/worst permutations and the adaptive
// strategy with the cost injected for real.
//
// Paper findings reproduced: Whirlpool-S beats LockStep for any given
// static order; pruning beats no pruning; the adaptive strategy is at least
// as good as the best static one; Whirlpool-M is fastest overall.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

namespace {
constexpr double kOpCost = 0.0018;
}

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.SmallBytes() / 2, args.seed);
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(2));
  const auto perms = bench::AllPermutations(c.plan->num_servers());
  std::printf("Figure 6: exec time at %.1fms/op, static (min/median/max over %zu "
              "permutations) vs adaptive (Q2, ~%zu KB, k=15)\n\n",
              kOpCost * 1e3, perms.size(), w.approx_bytes >> 10);
  std::printf("%-18s %12s %12s %12s %12s\n", "technique", "min(s)", "median(s)",
              "max(s)", "adaptive(s)");

  struct Row {
    bench::MinMedMax stat;
    double adaptive = -1;
  };
  std::vector<Row> rows;

  // Sequential techniques: zero-cost sweep + linear model. The Whirlpool-S
  // per-permutation op counts double as a deterministic plan-quality
  // ordering reused for Whirlpool-M below.
  std::vector<uint64_t> ws_ops_per_perm;
  for (exec::EngineKind kind :
       {exec::EngineKind::kLockStepNoPrun, exec::EngineKind::kLockStep,
        exec::EngineKind::kWhirlpoolS}) {
    std::vector<double> modeled;
    for (const auto& order : perms) {
      exec::ExecOptions options;
      options.engine = kind;
      options.k = 15;
      options.routing = exec::RoutingStrategy::kStatic;
      options.static_order = order;
      auto m = bench::Run(*c.plan, options);
      if (kind == exec::EngineKind::kWhirlpoolS) {
        ws_ops_per_perm.push_back(m.server_operations);
      }
      modeled.push_back(m.wall_seconds +
                        static_cast<double>(m.server_operations) * kOpCost);
    }
    Row row;
    row.stat = bench::Summarize(modeled);
    if (kind == exec::EngineKind::kWhirlpoolS) {
      exec::ExecOptions options;
      options.engine = kind;
      options.k = 15;
      options.routing = exec::RoutingStrategy::kMinAlive;
      options.op_cost_seconds = kOpCost;  // cheap enough to run for real
      row.adaptive = bench::Run(*c.plan, options).wall_seconds;
    }
    rows.push_back(row);
    std::printf("%-18s %12.2f %12.2f %12.2f", exec::EngineKindName(kind),
                row.stat.min, row.stat.median, row.stat.max);
    if (row.adaptive >= 0) std::printf(" %12.2f\n", row.adaptive);
    else std::printf(" %12s\n", "n/a");
  }

  // Whirlpool-M: real injected-cost runs at the best/median/worst
  // permutations (ranked by the deterministic Whirlpool-S sweep above;
  // Whirlpool-M's own zero-cost op counts are scheduling noise on small
  // machines) plus the adaptive strategy.
  {
    std::vector<std::pair<uint64_t, size_t>> by_ops;
    for (size_t i = 0; i < perms.size(); ++i) {
      by_ops.emplace_back(ws_ops_per_perm[i], i);
    }
    std::sort(by_ops.begin(), by_ops.end());
    auto real_run = [&](size_t perm_idx, bool adaptive) {
      exec::ExecOptions options;
      options.engine = exec::EngineKind::kWhirlpoolM;
      options.k = 15;
      options.op_cost_seconds = kOpCost;
      if (adaptive) {
        options.routing = exec::RoutingStrategy::kMinAlive;
      } else {
        options.routing = exec::RoutingStrategy::kStatic;
        options.static_order = perms[perm_idx];
      }
      return bench::Run(*c.plan, options).wall_seconds;
    };
    Row row;
    row.stat.min = real_run(by_ops.front().second, false);
    row.stat.median = real_run(by_ops[by_ops.size() / 2].second, false);
    row.stat.max = real_run(by_ops.back().second, false);
    row.adaptive = real_run(0, true);
    rows.push_back(row);
    std::printf("%-18s %12.2f %12.2f %12.2f %12.2f\n",
                exec::EngineKindName(exec::EngineKind::kWhirlpoolM), row.stat.min,
                row.stat.median, row.stat.max, row.adaptive);
  }

  bool ok = true;
  // (1) Pruning beats no pruning across the board.
  ok &= bench::ShapeCheck("fig6.pruning_beats_noprun",
                          rows[1].stat.median < rows[0].stat.median,
                          "LockStep median " + std::to_string(rows[1].stat.median) +
                              "s vs NoPrun " + std::to_string(rows[0].stat.median) + "s");
  // (2) Per-tuple progress (Whirlpool-S) beats lock-step for the median
  // static order.
  ok &= bench::ShapeCheck(
      "fig6.whirlpool_s_beats_lockstep",
      rows[2].stat.median < rows[1].stat.median,
      "W-S median " + std::to_string(rows[2].stat.median) + "s vs LockStep " +
          std::to_string(rows[1].stat.median) + "s");
  // (3) Adaptive routing is close to the best static order. The "best
  // static" is a post-hoc oracle over all 120 plans; the paper reports
  // parity, our estimator lands within ~1.6x of the oracle while needing no
  // foreknowledge (see EXPERIMENTS.md).
  ok &= bench::ShapeCheck(
      "fig6.adaptive_close_to_best_static",
      rows[2].adaptive <= rows[2].stat.min * 1.6,
      "W-S adaptive " + std::to_string(rows[2].adaptive) + "s vs best static " +
          std::to_string(rows[2].stat.min) + "s");
  // (4) Adaptive far below the median static plan (what a non-oracle
  // optimizer risks); Whirlpool-M gets a noise allowance.
  ok &= bench::ShapeCheck(
      "fig6.adaptive_beats_median_static",
      rows[2].adaptive < rows[2].stat.median &&
          rows[3].adaptive < rows[3].stat.median * 1.15,
      "W-S " + std::to_string(rows[2].adaptive) + " < " +
          std::to_string(rows[2].stat.median) + "; W-M " +
          std::to_string(rows[3].adaptive) + " ~ " + std::to_string(rows[3].stat.median));
  // (5) With the op cost dominating, Whirlpool-M's parallelism makes it the
  // fastest technique at the median static order.
  ok &= bench::ShapeCheck("fig6.whirlpool_m_fastest_at_median",
                          rows[3].stat.median <= rows[2].stat.median * 1.1,
                          "W-M " + std::to_string(rows[3].stat.median) + "s vs W-S " +
                              std::to_string(rows[2].stat.median) + "s");
  return ok ? 0 : 1;
}
