// Figure 10 (paper Sec 6.3.5): query execution time for Whirlpool-S and
// Whirlpool-M as a function of k (3, 15, 75) and query size (Q1, Q2, Q3),
// at the paper's ~1.8 msec per-operation cost. Paper findings: time grows
// roughly linearly with k, exponentially with query size, and Whirlpool-M's
// advantage over Whirlpool-S grows with both k and query size.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  const size_t bytes = static_cast<size_t>(args.scale * (512 << 10));
  const double op_cost = 0.0018;
  bench::Workload w = bench::MakeXMark(bytes, args.seed);
  std::printf("Figure 10: exec time vs k and query size (~%zu KB doc, op cost "
              "%.1fms)\n\n", w.approx_bytes >> 10, op_cost * 1e3);
  std::printf("%-4s %-5s %14s %14s %12s %12s\n", "Q", "k", "W-S time(s)",
              "W-M time(s)", "W-S ops", "W-M ops");

  const uint32_t ks[] = {3, 15, 75};
  double ws_time[4][3], wm_time[4][3];
  for (int qn = 1; qn <= 3; ++qn) {
    bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(qn));
    for (int ki = 0; ki < 3; ++ki) {
      exec::ExecOptions options;
      options.k = ks[ki];
      options.op_cost_seconds = op_cost;
      uint64_t ops[2];
      double times[2];
      int ei = 0;
      for (exec::EngineKind kind :
           {exec::EngineKind::kWhirlpoolS, exec::EngineKind::kWhirlpoolM}) {
        options.engine = kind;
        auto m = bench::Run(*c.plan, options);
        times[ei] = m.wall_seconds;
        ops[ei] = m.server_operations;
        ++ei;
      }
      ws_time[qn][ki] = times[0];
      wm_time[qn][ki] = times[1];
      std::printf("Q%-3d %-5u %14.2f %14.2f %12llu %12llu\n", qn, ks[ki], times[0],
                  times[1], static_cast<unsigned long long>(ops[0]),
                  static_cast<unsigned long long>(ops[1]));
    }
  }

  bool ok = true;
  // (1) Time grows with k for every query.
  for (int qn = 1; qn <= 3; ++qn) {
    ok &= bench::ShapeCheck("fig10.time_grows_with_k_Q" + std::to_string(qn),
                            ws_time[qn][2] > ws_time[qn][0],
                            std::to_string(ws_time[qn][0]) + "s -> " +
                                std::to_string(ws_time[qn][2]) + "s");
  }
  // (2) Time grows sharply with query size at the default k=15.
  ok &= bench::ShapeCheck("fig10.time_grows_with_query_size",
                          ws_time[3][1] > 2 * ws_time[1][1] &&
                              ws_time[2][1] > ws_time[1][1],
                          "Q1=" + std::to_string(ws_time[1][1]) + "s Q2=" +
                              std::to_string(ws_time[2][1]) + "s Q3=" +
                              std::to_string(ws_time[3][1]) + "s");
  // (3) Whirlpool-M's advantage over Whirlpool-S is larger for the largest
  // query/k than for the smallest (paper: W-S 20% faster on Q1, W-M up to
  // 60% faster on Q3/k=75).
  const double small_ratio = ws_time[1][0] / wm_time[1][0];
  const double large_ratio = ws_time[3][2] / wm_time[3][2];
  ok &= bench::ShapeCheck("fig10.wm_advantage_grows",
                          large_ratio > small_ratio,
                          "W-S/W-M ratio Q1k3=" + std::to_string(small_ratio) +
                              " -> Q3k75=" + std::to_string(large_ratio));
  return ok ? 0 : 1;
}
