// Figure 8 (paper Sec 6.3.3, "Cost of Adaptivity"): ratio of each
// technique's query execution time over the best LockStep-NoPrun execution
// time, as a function of the per-operation cost (the paper sweeps
// 0.00001s .. 1s and finds adaptivity only pays off once operations cost
// more than ~0.5 msec).
//
// Method: execution time decomposes as  time(c) = overhead + ops * c  where
// `overhead` is the measured zero-injected-cost wall time (it contains the
// adaptivity/scheduling overhead) and `ops` is the measured operation
// count. We measure both per technique, validate the model against real
// injected-cost runs at two points, and print the modeled curve across the
// paper's full cost range (running every point for real at cost=1s would
// take hours without changing the shape).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace whirlpool;

namespace {

struct Technique {
  std::string name;
  exec::EngineKind kind;
  exec::RoutingStrategy routing;
  double overhead = 0;  // zero-cost wall seconds (median of 5)
  uint64_t ops = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.SmallBytes(), args.seed);
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(2));
  std::printf("Figure 8: time ratio over best LockStep-NoPrun vs per-operation "
              "cost (Q2, ~%zu KB, k=15)\n\n", w.approx_bytes >> 10);

  // Best static order for the static techniques, found by ops.
  bench::SweepResult lockstep_sweep =
      bench::PermutationSweep(*c.plan, exec::EngineKind::kLockStep, 15);
  size_t best_idx = 0;
  for (size_t i = 1; i < lockstep_sweep.static_ops.size(); ++i) {
    if (lockstep_sweep.static_ops[i] < lockstep_sweep.static_ops[best_idx]) best_idx = i;
  }
  const std::vector<int> best_order =
      bench::AllPermutations(c.plan->num_servers())[best_idx];

  std::vector<Technique> techniques = {
      {"Whirlpool-S-ADAPTIVE", exec::EngineKind::kWhirlpoolS,
       exec::RoutingStrategy::kMinAlive},
      {"Whirlpool-S-STATIC", exec::EngineKind::kWhirlpoolS,
       exec::RoutingStrategy::kStatic},
      {"LockStep", exec::EngineKind::kLockStep, exec::RoutingStrategy::kStatic},
      {"LockStep-NoPrun", exec::EngineKind::kLockStepNoPrun,
       exec::RoutingStrategy::kStatic},
  };

  for (auto& t : techniques) {
    exec::ExecOptions options;
    options.engine = t.kind;
    options.routing = t.routing;
    if (t.routing == exec::RoutingStrategy::kStatic) options.static_order = best_order;
    options.k = 15;
    std::vector<double> times;
    exec::MetricsSnapshot m{};
    for (int rep = 0; rep < 5; ++rep) {
      m = bench::Run(*c.plan, options);
      times.push_back(m.wall_seconds);
    }
    t.overhead = bench::Summarize(times).median;
    t.ops = m.server_operations;
    std::printf("measured %-22s overhead=%8.2fms ops=%llu\n", t.name.c_str(),
                t.overhead * 1e3, static_cast<unsigned long long>(t.ops));
  }

  // Model validation at two real injected costs.
  std::printf("\nmodel validation (real runs with injected cost):\n");
  bool model_ok = true;
  for (double cost : {0.0002, 0.001}) {
    for (const auto& t : techniques) {
      exec::ExecOptions options;
      options.engine = t.kind;
      options.routing = t.routing;
      if (t.routing == exec::RoutingStrategy::kStatic) options.static_order = best_order;
      options.k = 15;
      options.op_cost_seconds = cost;
      auto m = bench::Run(*c.plan, options);
      const double predicted = t.overhead + static_cast<double>(t.ops) * cost;
      const double err = m.wall_seconds / predicted;
      std::printf("  cost=%.4fs %-22s real=%8.1fms predicted=%8.1fms (x%.2f)\n", cost,
                  t.name.c_str(), m.wall_seconds * 1e3, predicted * 1e3, err);
      model_ok &= err > 0.5 && err < 2.0;
    }
  }

  // The modeled Figure 8 curve.
  const double noprun_base = techniques[3].overhead;
  const uint64_t noprun_ops = techniques[3].ops;
  std::printf("\nratio over best LockStep-NoPrun (modeled):\n%-12s", "cost(s)");
  for (const auto& t : techniques) std::printf(" %22s", t.name.c_str());
  std::printf("\n");
  std::vector<double> adaptive_ratio, static_ratio, costs;
  for (double cost : {1e-5, 1e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    const double noprun_time = noprun_base + static_cast<double>(noprun_ops) * cost;
    std::printf("%-12g", cost);
    for (size_t i = 0; i < techniques.size(); ++i) {
      const double time =
          techniques[i].overhead + static_cast<double>(techniques[i].ops) * cost;
      const double ratio = time / noprun_time;
      if (i == 0) adaptive_ratio.push_back(ratio);
      if (i == 1) static_ratio.push_back(ratio);
      std::printf(" %22.3f", ratio);
    }
    costs.push_back(cost);
    std::printf("\n");
  }

  bool ok = bench::ShapeCheck("fig8.model_within_2x_of_real_runs", model_ok, "see above");
  // (1) With pruning, both Whirlpool variants stay below NoPrun for
  // non-trivial op costs.
  ok &= bench::ShapeCheck("fig8.pruning_wins_at_high_cost",
                          adaptive_ratio.back() < 1.0 && static_ratio.back() < 1.0,
                          "adaptive=" + std::to_string(adaptive_ratio.back()) +
                              " static=" + std::to_string(static_ratio.back()));
  // (2) The ratio over NoPrun falls as op cost rises: savings in server
  // operations dominate once operations are expensive (the figure's main
  // visual trend).
  ok &= bench::ShapeCheck("fig8.ratio_declines_with_cost",
                          adaptive_ratio.back() < adaptive_ratio.front(),
                          std::to_string(adaptive_ratio.front()) + " -> " +
                              std::to_string(adaptive_ratio.back()));
  // (3) At high op cost the adaptive version is at least as good as the
  // best static plan (the paper reports ~10% better past the ~0.5 msec
  // tipping point). NOTE an honest divergence, recorded in EXPERIMENTS.md:
  // our min_alive router is cheap enough that the paper's low-cost regime
  // where adaptivity LOSES to static does not materialize here.
  ok &= bench::ShapeCheck("fig8.adaptive_at_least_as_good_at_high_cost",
                          adaptive_ratio.back() <= static_ratio.back() * 1.05,
                          "adaptive=" + std::to_string(adaptive_ratio.back()) +
                              " static=" + std::to_string(static_ratio.back()));
  return ok ? 0 : 1;
}
