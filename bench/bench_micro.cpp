// Conventional google-benchmark microbenchmarks for the substrates: XML
// parsing, index construction, Dewey labeling, structural predicates, chain
// classification, top-k set maintenance and single server operations.
#include <benchmark/benchmark.h>

#include "whirlpool/whirlpool.h"
#include "xmlgen/xmark.h"

using namespace whirlpool;

namespace {

std::string& CorpusText() {
  static std::string text = [] {
    xmlgen::XMarkOptions opts;
    opts.seed = 42;
    opts.target_bytes = 1 << 20;
    auto doc = xmlgen::GenerateXMark(opts);
    return xml::SerializeDocument(*doc);
  }();
  return text;
}

xml::Document& CorpusDoc() {
  static std::unique_ptr<xml::Document> doc = [] {
    auto r = xml::ParseDocument(CorpusText());
    return std::move(r).value();
  }();
  return *doc;
}

index::TagIndex& CorpusIndex() {
  static index::TagIndex idx(CorpusDoc());
  return idx;
}

void BM_ParseXMark1MB(benchmark::State& state) {
  const std::string& text = CorpusText();
  for (auto _ : state) {
    auto r = xml::ParseDocument(text);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseXMark1MB);

void BM_GenerateXMark(benchmark::State& state) {
  xmlgen::XMarkOptions opts;
  opts.target_bytes = static_cast<size_t>(state.range(0)) << 10;
  for (auto _ : state) {
    auto doc = xmlgen::GenerateXMark(opts);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_GenerateXMark)->Arg(64)->Arg(512);

void BM_BuildTagIndex(benchmark::State& state) {
  xml::Document& doc = CorpusDoc();
  for (auto _ : state) {
    index::TagIndex idx(doc);
    benchmark::DoNotOptimize(idx.num_tags());
  }
}
BENCHMARK(BM_BuildTagIndex);

void BM_BuildDeweyIndex(benchmark::State& state) {
  xml::Document& doc = CorpusDoc();
  for (auto _ : state) {
    xml::DeweyIndex dewey(doc);
    benchmark::DoNotOptimize(dewey.size());
  }
}
BENCHMARK(BM_BuildDeweyIndex);

void BM_StructuralPredicates(benchmark::State& state) {
  xml::Document& doc = CorpusDoc();
  const xml::NodeId n = static_cast<xml::NodeId>(doc.num_nodes());
  uint64_t acc = 0;
  xml::NodeId a = 1, b = 2;
  for (auto _ : state) {
    acc += doc.IsDescendant(a, b);
    a = (a * 2654435761u) % n;
    b = (b * 40503u + 1) % n;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StructuralPredicates);

void BM_DescendantScan(benchmark::State& state) {
  index::TagIndex& idx = CorpusIndex();
  const auto& items = idx.Nodes("item");
  xml::TagId text = CorpusDoc().tags().Lookup("text");
  size_t i = 0;
  for (auto _ : state) {
    auto v = idx.DescendantsWithTag(items[i % items.size()], text);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_DescendantScan);

void BM_ChainClassify(benchmark::State& state) {
  index::TagIndex& idx = CorpusIndex();
  auto q = query::ParseXPath("//item[./description/parlist]");
  auto chain = q->Chain(0, 2);
  const auto& items = idx.Nodes("item");
  xml::TagId parlist = CorpusDoc().tags().Lookup("parlist");
  // Precompute (item, parlist) pairs.
  std::vector<std::pair<xml::NodeId, xml::NodeId>> pairs;
  for (xml::NodeId item : items) {
    for (xml::NodeId p : idx.DescendantsWithTag(item, parlist)) {
      pairs.emplace_back(item, p);
    }
  }
  if (pairs.empty()) {
    state.SkipWithError("no parlist candidates");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto level = score::ClassifyBinding(idx, pairs[i % pairs.size()].first,
                                        pairs[i % pairs.size()].second, chain);
    benchmark::DoNotOptimize(level);
    ++i;
  }
}
BENCHMARK(BM_ChainClassify);

void BM_TfIdfModel(benchmark::State& state) {
  index::TagIndex& idx = CorpusIndex();
  auto q = query::ParseXPath(
      "//item[./description/parlist and ./mailbox/mail/text]");
  for (auto _ : state) {
    auto m = score::ScoringModel::ComputeTfIdf(idx, *q, score::Normalization::kSparse);
    benchmark::DoNotOptimize(m.MaxTotalScore());
  }
}
BENCHMARK(BM_TfIdfModel);

void BM_TopKSetUpdate(benchmark::State& state) {
  exec::TopKSet set(15);
  exec::PartialMatch m;
  m.bindings = {0};
  m.levels = {score::MatchLevel::kExact};
  uint64_t i = 0;
  for (auto _ : state) {
    m.bindings[0] = static_cast<xml::NodeId>(i % 4096);
    m.current_score = static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
    m.max_final_score = m.current_score + 1;
    set.Update(m, false);
    benchmark::DoNotOptimize(set.Threshold());
    ++i;
  }
}
BENCHMARK(BM_TopKSetUpdate);

void BM_EndToEndTopK(benchmark::State& state) {
  index::TagIndex& idx = CorpusIndex();
  auto q = query::ParseXPath("//item[./description/parlist]");
  auto scoring = score::ScoringModel::ComputeTfIdf(idx, *q, score::Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *q, scoring).value();
  exec::ExecOptions options;
  options.k = 15;
  for (auto _ : state) {
    auto r = exec::RunTopK(plan, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EndToEndTopK);

// Instrumentation overhead study. Compare against BM_EndToEndTopK: mode 0
// (tracer null, latencies off — the default ExecOptions) is the
// ≤5%-overhead budget for the disabled trace hooks; mode 1 adds the
// histogram clock reads; mode 2 additionally records every span.
void BM_EndToEndTopKInstrumented(benchmark::State& state) {
  index::TagIndex& idx = CorpusIndex();
  auto q = query::ParseXPath("//item[./description/parlist]");
  auto scoring = score::ScoringModel::ComputeTfIdf(idx, *q, score::Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *q, scoring).value();
  const int mode = static_cast<int>(state.range(0));
  exec::ExecOptions options;
  options.k = 15;
  options.collect_latencies = mode >= 1;
  for (auto _ : state) {
    exec::Tracer tracer;
    if (mode >= 2) options.tracer = &tracer;
    auto r = exec::RunTopK(plan, options);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(tracer.NumEvents());
  }
}
BENCHMARK(BM_EndToEndTopKInstrumented)->ArgName("mode")->Arg(0)->Arg(1)->Arg(2);

}  // namespace
