// Ablation (paper Sec 6.2.2 and 6.3.5): scoring-function shape and match
// semantics.
//  - sparse vs dense normalization: sparse gives a few high-scoring answers
//    and early pruning; dense clusters final scores and prunes less.
//  - relaxed vs exact semantics: the extra work the outer-join/approximate
//    machinery costs over inner-join exact matching.
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::Parse(argc, argv);
  bench::Workload w = bench::MakeXMark(args.MediumBytes(), args.seed);
  std::printf("Scoring/semantics ablation (Q2, k=15, ~%zu KB)\n\n",
              w.approx_bytes >> 10);

  // ---- Scoring-shape sweep ---------------------------------------------------
  // Like the paper (Sec 6.2.2), we also use randomly generated sparse and
  // dense scoring functions: sparse spreads per-predicate weights so a few
  // answers score very high (early pruning); dense makes one predicate
  // dominate so final scores cluster (late pruning).
  std::printf("%-10s %12s %12s %12s\n", "scoring", "ops", "created", "pruned");
  uint64_t created_by_norm[2];
  int ni = 0;
  auto qpattern = query::ParseXPath(bench::QueryXPath(2));
  if (!qpattern.ok()) return 1;
  for (auto [name, norm] :
       {std::pair<const char*, score::Normalization>{"sparse",
                                                     score::Normalization::kSparse},
        {"dense", score::Normalization::kDense}}) {
    Rng rng(args.seed);
    auto scoring = score::ScoringModel::Synthetic(*qpattern, &rng, norm);
    auto plan = exec::QueryPlan::Build(*w.idx, *qpattern, scoring);
    if (!plan.ok()) return 1;
    exec::ExecOptions options;
    options.k = 15;
    auto m = bench::Run(*plan, options);
    created_by_norm[ni++] = m.matches_created;
    std::printf("%-10s %12llu %12llu %12llu\n", name,
                static_cast<unsigned long long>(m.server_operations),
                static_cast<unsigned long long>(m.matches_created),
                static_cast<unsigned long long>(m.matches_pruned));
  }
  bool ok = bench::ShapeCheck(
      "semantics.sparse_prunes_no_worse_than_dense",
      created_by_norm[0] <= created_by_norm[1] * 1.05,
      "sparse=" + std::to_string(created_by_norm[0]) + " dense=" +
          std::to_string(created_by_norm[1]));

  // ---- Relaxed vs exact ------------------------------------------------------
  std::printf("\n%-10s %12s %12s %12s %10s\n", "semantics", "ops", "created",
              "pruned", "answers");
  bench::Compiled c = bench::Compile(*w.idx, bench::QueryXPath(2));
  size_t answers_by_sem[2];
  int si = 0;
  for (auto [name, sem] :
       {std::pair<const char*, exec::MatchSemantics>{"relaxed",
                                                     exec::MatchSemantics::kRelaxed},
        {"exact", exec::MatchSemantics::kExact}}) {
    exec::ExecOptions options;
    options.k = 15;
    options.semantics = sem;
    auto r = exec::RunTopK(*c.plan, options);
    if (!r.ok()) return 1;
    answers_by_sem[si] = r->answers.size();
    std::printf("%-10s %12llu %12llu %12llu %10zu\n", name,
                static_cast<unsigned long long>(r->metrics.server_operations),
                static_cast<unsigned long long>(r->metrics.matches_created),
                static_cast<unsigned long long>(r->metrics.matches_pruned),
                r->answers.size());
    ++si;
  }
  ok &= bench::ShapeCheck("semantics.relaxed_always_fills_k",
                          answers_by_sem[0] == 15,
                          std::to_string(answers_by_sem[0]) + " answers");
  ok &= bench::ShapeCheck("semantics.exact_no_more_answers_than_relaxed",
                          answers_by_sem[1] <= answers_by_sem[0],
                          std::to_string(answers_by_sem[1]) + " exact answers");
  return ok ? 0 : 1;
}
