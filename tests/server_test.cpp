#include <gtest/gtest.h>

#include "exec/server.h"
#include "query/tree_pattern.h"
#include "util/stopwatch.h"
#include "score/scoring.h"
#include "xml/parser.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct Harness {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan_storage;
  ExecOptions options;
  std::unique_ptr<ExecMetrics> metrics = std::make_unique<ExecMetrics>();
  std::unique_ptr<std::atomic<uint64_t>> seq =
      std::make_unique<std::atomic<uint64_t>>(0);

  static Harness Make(std::string_view xml_text, std::string_view xpath,
                      Normalization norm = Normalization::kSparse) {
    Harness h;
    auto doc = xml::ParseDocument(xml_text);
    EXPECT_TRUE(doc.ok()) << doc.status();
    h.doc = std::move(doc).value();
    h.idx = std::make_unique<index::TagIndex>(*h.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    h.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*h.idx, h.pattern, norm);
    auto plan = QueryPlan::Build(*h.idx, h.pattern, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    h.plan_storage = std::make_unique<QueryPlan>(std::move(plan).value());
    return h;
  }

  const QueryPlan& plan() const { return *plan_storage; }
};

TEST(GenerateRootMatchesTest, OneMatchPerRootCandidate) {
  Harness h = Harness::Make("<lib><book/><book/><book/></lib>", "/book[./title]");
  TopKSet topk(10);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  ASSERT_EQ(roots.size(), 3u);
  for (const auto& m : roots) {
    EXPECT_EQ(m.current_score, 0.0);
    EXPECT_EQ(m.max_final_score, h.plan().RemainingMax(0));
    EXPECT_EQ(m.visited_mask, 0u);
    EXPECT_NE(m.root_binding(), xml::kInvalidNode);
  }
  EXPECT_EQ(h.metrics->matches_created.load(), 3u);
  EXPECT_EQ(topk.NumRoots(), 3u);  // partials recorded in relaxed mode
}

TEST(GenerateRootMatchesTest, SingleNodePatternCompletesImmediately) {
  Harness h = Harness::Make("<lib><book/><book/></lib>", "/book");
  TopKSet topk(10);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  EXPECT_TRUE(roots.empty());
  EXPECT_EQ(h.metrics->matches_completed.load(), 2u);
  EXPECT_EQ(topk.Finalize().size(), 2u);
}

TEST(ProcessAtServerTest, ExtensionPerCandidate) {
  Harness h = Harness::Make(
      "<lib><book><title>a</title><title>b</title></book></lib>",
      "/book[./title and ./isbn]");
  TopKSet topk(10);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  ASSERT_EQ(roots.size(), 1u);
  std::vector<PartialMatch> out;
  ProcessAtServer(h.plan(), h.options, roots[0], /*s=*/0, &topk, h.metrics.get(), h.seq.get(), &out);
  ASSERT_EQ(out.size(), 2u);  // one per title, neither complete (isbn missing)
  for (const auto& ext : out) {
    EXPECT_TRUE(ext.Visited(0));
    EXPECT_FALSE(ext.Visited(1));
    EXPECT_EQ(ext.levels[1], MatchLevel::kExact);
    EXPECT_GT(ext.current_score, 0.0);
    EXPECT_NE(ext.bindings[1], xml::kInvalidNode);
  }
  EXPECT_NE(out[0].bindings[1], out[1].bindings[1]);
}

TEST(ProcessAtServerTest, DeletionRowWhenNoCandidates) {
  Harness h = Harness::Make("<lib><book><title>a</title></book></lib>",
                            "/book[./title and ./isbn]");
  TopKSet topk(10);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  std::vector<PartialMatch> out;
  // Server 1 = isbn; the book has none.
  ProcessAtServer(h.plan(), h.options, roots[0], 1, &topk, h.metrics.get(), h.seq.get(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].levels[2], MatchLevel::kDeleted);
  EXPECT_EQ(out[0].bindings[2], xml::kInvalidNode);
  EXPECT_TRUE(out[0].Visited(1));
  EXPECT_EQ(out[0].current_score, 0.0);
  // Max final dropped by the isbn headroom.
  EXPECT_NEAR(out[0].max_final_score,
              roots[0].max_final_score - h.plan().MaxContribution(1), 1e-12);
}

TEST(ProcessAtServerTest, ExactSemanticsKillsOnNoCandidates) {
  Harness h = Harness::Make("<lib><book><title>a</title></book></lib>",
                            "/book[./title and ./isbn]");
  h.options.semantics = MatchSemantics::kExact;
  TopKSet topk(10, /*update_partials=*/false);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  std::vector<PartialMatch> out;
  ProcessAtServer(h.plan(), h.options, roots[0], 1, &topk, h.metrics.get(), h.seq.get(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(ProcessAtServerTest, RelaxedLevelsScoredDifferently) {
  // Two books: title as direct child vs nested under info.
  Harness h = Harness::Make(
      "<lib>"
      "<book><title>t</title></book>"
      "<book><info><title>t</title></info></book>"
      "</lib>",
      "/book[./title]");
  TopKSet topk(10);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  ASSERT_EQ(roots.size(), 2u);
  std::vector<PartialMatch> out;
  for (const auto& r : roots) {
    ProcessAtServer(h.plan(), h.options, r, 0, &topk, h.metrics.get(), h.seq.get(), &out);
  }
  // Both complete after the single server; read scores from the set.
  auto answers = topk.Finalize();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_GT(answers[0].score, answers[1].score);
  EXPECT_EQ(answers[0].levels[1], MatchLevel::kExact);
  // pc(book,title) fails but the one-step ad chain holds => edge-gen level.
  EXPECT_EQ(answers[1].levels[1], MatchLevel::kEdgeGeneralized);
}

TEST(ProcessAtServerTest, PruningAgainstFullTopKSet) {
  Harness h = Harness::Make(
      "<lib><book><title>a</title></book><book/></lib>",
      "/book[./title and ./isbn]");
  TopKSet topk(1);
  topk.FreezeThreshold(1000.0);  // nothing can beat this
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  EXPECT_TRUE(roots.empty());  // pruned at generation
  EXPECT_EQ(h.metrics->matches_pruned.load(), 2u);
}

TEST(ProcessAtServerTest, CompleteMatchesGoToTopKNotSurvivors) {
  Harness h = Harness::Make("<lib><book><title>a</title></book></lib>",
                            "/book[./title]");
  TopKSet topk(5);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  std::vector<PartialMatch> out;
  ProcessAtServer(h.plan(), h.options, roots[0], 0, &topk, h.metrics.get(), h.seq.get(), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(h.metrics->matches_completed.load(), 1u);
  auto answers = topk.Finalize();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_GT(answers[0].score, 0.0);
}

TEST(ProcessAtServerTest, MetricsCountOperationsAndComparisons) {
  Harness h = Harness::Make(
      "<lib><book><title>a</title><title>b</title><title>c</title></book></lib>",
      "/book[./title and ./isbn]");
  TopKSet topk(5);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  const uint64_t base_created = h.metrics->matches_created.load();
  std::vector<PartialMatch> out;
  ProcessAtServer(h.plan(), h.options, roots[0], 0, &topk, h.metrics.get(), h.seq.get(), &out);
  EXPECT_EQ(h.metrics->server_operations.load(), 1u);
  EXPECT_EQ(h.metrics->predicate_comparisons.load(), 3u);  // one per title
  EXPECT_EQ(h.metrics->matches_created.load(), base_created + 3);
}

TEST(ProcessAtServerTest, ExactPairwiseParentCheckKillsWrongCombos) {
  // Two infos; title under the first only. Pattern: /book[./info/title].
  Harness h = Harness::Make(
      "<lib><book>"
      "<info><title>t</title></info>"
      "<info/>"
      "</book></lib>",
      "/book[./info/title]");
  h.options.semantics = MatchSemantics::kExact;
  TopKSet topk(5, false);
  auto roots = GenerateRootMatches(h.plan(), h.options, &topk, h.metrics.get(), h.seq.get());
  ASSERT_EQ(roots.size(), 1u);
  // Bind title first (server 1), then info (server 0).
  std::vector<PartialMatch> after_title;
  ProcessAtServer(h.plan(), h.options, roots[0], 1, &topk, h.metrics.get(), h.seq.get(),
                  &after_title);
  ASSERT_EQ(after_title.size(), 1u);
  std::vector<PartialMatch> after_info;
  ProcessAtServer(h.plan(), h.options, after_title[0], 0, &topk, h.metrics.get(), h.seq.get(),
                  &after_info);
  // Both infos are pc-children of book, but only the first contains the
  // bound title; the combination with the second info must be killed.
  EXPECT_TRUE(after_info.empty());  // both extensions complete -> in topk
  auto answers = topk.Finalize();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].levels[1], MatchLevel::kExact);
}

TEST(SpinForTest, WaitsApproximately) {
  Stopwatch sw;
  SpinFor(0.001);
  EXPECT_GE(sw.ElapsedSeconds(), 0.001);
  SpinFor(0.0);  // no-op
}

}  // namespace
}  // namespace whirlpool::exec
