#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xmlgen/xmark.h"

namespace whirlpool::xml {
namespace {

std::unique_ptr<Document> MustParse(std::string_view text, ParseOptions opts = {}) {
  auto r = ParseDocument(text, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(ParserTest, SingleElement) {
  auto doc = MustParse("<a/>");
  auto kids = doc->Children(doc->root());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(doc->tag_name(kids[0]), "a");
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = MustParse("<book><title>wodehouse</title><isbn>1234</isbn></book>");
  NodeId book = doc->Children(doc->root())[0];
  auto kids = doc->Children(book);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc->tag_name(kids[0]), "title");
  EXPECT_EQ(doc->text(kids[0]), "wodehouse");
  EXPECT_EQ(doc->tag_name(kids[1]), "isbn");
  EXPECT_EQ(doc->text(kids[1]), "1234");
}

TEST(ParserTest, AttributesBecomeAtChildren) {
  auto doc = MustParse(R"(<item id="item0" featured="yes"/>)");
  NodeId item = doc->Children(doc->root())[0];
  auto kids = doc->Children(item);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc->tag_name(kids[0]), "@id");
  EXPECT_EQ(doc->text(kids[0]), "item0");
  EXPECT_EQ(doc->tag_name(kids[1]), "@featured");
  EXPECT_EQ(doc->text(kids[1]), "yes");
}

TEST(ParserTest, AttributesDroppedWhenDisabled) {
  ParseOptions opts;
  opts.keep_attributes = false;
  auto doc = MustParse(R"(<item id="item0"/>)", opts);
  EXPECT_TRUE(doc->Children(doc->Children(doc->root())[0]).empty());
}

TEST(ParserTest, EntityDecoding) {
  auto doc = MustParse("<t>a &lt; b &amp;&amp; c &gt; d &quot;x&quot; &apos;y&apos;</t>");
  NodeId t = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->text(t), "a < b && c > d \"x\" 'y'");
}

TEST(ParserTest, NumericCharacterReferences) {
  auto doc = MustParse("<t>&#65;&#x42;&#233;</t>");
  NodeId t = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->text(t), "AB\xC3\xA9");  // "ABé" in UTF-8
}

TEST(ParserTest, CommentsAndPIsSkipped) {
  auto doc = MustParse(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/><?pi data?></a>");
  NodeId a = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->tag_name(a), "a");
  ASSERT_EQ(doc->Children(a).size(), 1u);
}

TEST(ParserTest, DoctypeWithInternalSubsetSkipped) {
  auto doc = MustParse("<!DOCTYPE site [ <!ELEMENT a (b)> ]><a><b/></a>");
  EXPECT_EQ(doc->tag_name(doc->Children(doc->root())[0]), "a");
}

TEST(ParserTest, CdataPreserved) {
  auto doc = MustParse("<t><![CDATA[<not> & parsed]]></t>");
  EXPECT_EQ(doc->text(doc->Children(doc->root())[0]), "<not> & parsed");
}

TEST(ParserTest, MixedContentConcatenated) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  auto doc = MustParse("<t>one <b>bold</b> two</t>", opts);
  NodeId t = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->text(t), "one two");
  EXPECT_EQ(doc->text(doc->Children(t)[0]), "bold");
}

TEST(ParserTest, WhitespaceOnlyTextSkippedByDefault) {
  auto doc = MustParse("<a>\n  <b/>\n</a>");
  NodeId a = doc->Children(doc->root())[0];
  EXPECT_FALSE(doc->has_text(a));
}

TEST(ParserTest, MultipleTopLevelElements) {
  auto doc = MustParse("<a/><b/><c/>");
  EXPECT_EQ(doc->Children(doc->root()).size(), 3u);
}

TEST(ParserTest, SingleQuotedAttributes) {
  auto doc = MustParse("<a x='1'/>");
  NodeId a = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->text(doc->Children(a)[0]), "1");
}

// -- Error cases -------------------------------------------------------------

TEST(ParserTest, MismatchedClosingTagFails) {
  auto r = ParseDocument("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, UnterminatedElementFails) {
  EXPECT_FALSE(ParseDocument("<a><b/>").ok());
}

TEST(ParserTest, StrayClosingTagFails) {
  EXPECT_FALSE(ParseDocument("</a>").ok());
}

TEST(ParserTest, EmptyInputFails) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("   just text   ").ok());
}

TEST(ParserTest, UnknownEntityFails) {
  EXPECT_FALSE(ParseDocument("<a>&nope;</a>").ok());
}

TEST(ParserTest, UnterminatedCommentFails) {
  EXPECT_FALSE(ParseDocument("<!-- never closed <a/>").ok());
}

TEST(ParserTest, MalformedAttributeFails) {
  EXPECT_FALSE(ParseDocument("<a x=1/>").ok());
  EXPECT_FALSE(ParseDocument("<a x></a>").ok());
}

TEST(ParserTest, ParseFileMissingReturnsNotFound) {
  auto r = ParseFile("/nonexistent/path/to/file.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// -- Serialization round trip -------------------------------------------------

TEST(SerializerTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(SerializerTest, RoundTripSimple) {
  const char* text = "<book><title>wodehouse &amp; co</title><info x=\"1\"><isbn>12</isbn></info></book>";
  auto doc = MustParse(text);
  std::string serialized = SerializeDocument(*doc);
  auto doc2 = MustParse(serialized);
  // Compare structure: same tags in document order, same texts.
  ASSERT_EQ(doc->num_nodes(), doc2->num_nodes());
  auto d1 = doc->Descendants(doc->root());
  auto d2 = doc2->Descendants(doc2->root());
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(doc->tag_name(d1[i]), doc2->tag_name(d2[i]));
    EXPECT_EQ(doc->text(d1[i]), doc2->text(d2[i]));
  }
}

TEST(SerializerTest, RoundTripGeneratedXMark) {
  xmlgen::XMarkOptions opts;
  opts.seed = 11;
  opts.target_bytes = 40 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  std::string serialized = SerializeDocument(*doc);
  auto reparsed = MustParse(serialized);
  ASSERT_EQ(doc->num_nodes(), reparsed->num_nodes());
  auto d1 = doc->Descendants(doc->root());
  auto d2 = reparsed->Descendants(reparsed->root());
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    ASSERT_EQ(doc->tag_name(d1[i]), reparsed->tag_name(d2[i])) << "at index " << i;
    ASSERT_EQ(doc->text(d1[i]), reparsed->text(d2[i])) << "at index " << i;
  }
}

}  // namespace
}  // namespace whirlpool::xml
