// Unit tests for the failpoint registry (util/failpoint.h): plan parsing
// and validation, deterministic activation (every=N / once / p=F under a
// seed), counter snapshots, the ScopedConfig install/uninstall contract,
// and the disabled-gate fast path. The multi-threaded / whole-engine
// behaviour is covered by tests/chaos_test.cpp.
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace whirlpool::failpoint {
namespace {

// Every test runs with the registry disarmed on entry and must leave it
// disarmed (the registry is process-global).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Clear(); }
  void TearDown() override { Clear(); }
};

const Stats& FindStats(const std::vector<Stats>& all, const std::string& name) {
  auto it = std::find_if(all.begin(), all.end(),
                         [&](const Stats& s) { return s.name == name; });
  EXPECT_NE(it, all.end()) << "no stats for " << name;
  return *it;
}

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(Hit(sites::kWsStep), Effect::kNone);
  EXPECT_TRUE(InjectedError(sites::kWsStep).ok());
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(FailpointTest, ValidatePlanAcceptsAllActionsAndModes) {
  EXPECT_TRUE(ValidatePlan("").ok());
  EXPECT_TRUE(ValidatePlan("ws.step=yield").ok());
  EXPECT_TRUE(ValidatePlan("queue.pop_batch=sleep(50)").ok());
  EXPECT_TRUE(ValidatePlan("wm.server_drain=stall(200,every=4)").ok());
  EXPECT_TRUE(ValidatePlan("queue.push_batch=wake(p=0.25)").ok());
  EXPECT_TRUE(ValidatePlan("lockstep.wave=error(once)").ok());
  EXPECT_TRUE(
      ValidatePlan("ws.step=yield(every=3),topk.update=sleep(10,once)").ok());
}

TEST_F(FailpointTest, ValidatePlanRejectsMalformedPlans) {
  // Unknown site: the message lists the valid ones (typo debugging aid).
  Status st = ValidatePlan("nope.site=yield");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("queue.push_batch"), std::string::npos) << st.message();

  EXPECT_FALSE(ValidatePlan("ws.step").ok());                  // no '='
  EXPECT_FALSE(ValidatePlan("ws.step=explode").ok());          // unknown action
  EXPECT_FALSE(ValidatePlan("ws.step=sleep").ok());            // missing duration
  EXPECT_FALSE(ValidatePlan("ws.step=sleep(abc)").ok());       // non-numeric
  EXPECT_FALSE(ValidatePlan("ws.step=sleep(2000000)").ok());   // > 1s cap
  EXPECT_FALSE(ValidatePlan("ws.step=yield(every=0)").ok());   // N must be >= 1
  EXPECT_FALSE(ValidatePlan("ws.step=yield(p=1.5)").ok());     // p outside [0,1]
  EXPECT_FALSE(ValidatePlan("ws.step=yield(once,every=2)").ok());  // two modes
  EXPECT_FALSE(ValidatePlan("ws.step=yield,ws.step=sleep(1)").ok());  // dup name
}

TEST_F(FailpointTest, ConfigureArmsAndClearDisarms) {
  ASSERT_TRUE(Configure("ws.step=yield", 1).ok());
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(Snapshot().size(), 1u);
  Clear();
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(FailpointTest, ConfigureRejectsBadPlanAndKeepsPrevious) {
  ASSERT_TRUE(Configure("ws.step=yield", 1).ok());
  EXPECT_FALSE(Configure("bogus=yield", 1).ok());
  ASSERT_TRUE(Enabled());
  ASSERT_EQ(Snapshot().size(), 1u);
  EXPECT_EQ(Snapshot()[0].name, "ws.step");
}

TEST_F(FailpointTest, EveryNthFiresExactlyEveryNth) {
  ASSERT_TRUE(Configure("ws.step=yield(every=3)", 0).ok());
  for (int i = 0; i < 12; ++i) EXPECT_EQ(Hit(sites::kWsStep), Effect::kNone);
  const Stats s = FindStats(Snapshot(), "ws.step");
  EXPECT_EQ(s.hits, 12u);
  EXPECT_EQ(s.triggers, 4u);  // hits 3, 6, 9, 12
}

TEST_F(FailpointTest, OnceFiresOnFirstHitOnly) {
  ASSERT_TRUE(Configure("ws.step=error(once)", 0).ok());
  EXPECT_FALSE(InjectedError(sites::kWsStep).ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(InjectedError(sites::kWsStep).ok());
  const Stats s = FindStats(Snapshot(), "ws.step");
  EXPECT_EQ(s.hits, 6u);
  EXPECT_EQ(s.triggers, 1u);
}

TEST_F(FailpointTest, WakeActionSurfacesAsEffect) {
  ASSERT_TRUE(Configure("queue.pop_batch=wake(every=2)", 0).ok());
  EXPECT_EQ(Hit(sites::kQueuePopBatch), Effect::kNone);
  EXPECT_EQ(Hit(sites::kQueuePopBatch), Effect::kWake);
  // A wake action carries no error.
  EXPECT_TRUE(InjectedError(sites::kQueuePopBatch).ok());  // hit 3: no trigger
  EXPECT_TRUE(InjectedError(sites::kQueuePopBatch).ok());  // hit 4: wake, not error
}

TEST_F(FailpointTest, InjectedErrorNamesTheSite) {
  ASSERT_TRUE(Configure("cache.lookup=error", 0).ok());
  const Status st = InjectedError(sites::kCacheLookup);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cache.lookup"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("injected error"), std::string::npos) << st.message();
}

TEST_F(FailpointTest, UnmentionedSitesAreUntouched) {
  ASSERT_TRUE(Configure("ws.step=yield", 0).ok());
  EXPECT_EQ(Hit(sites::kTopkUpdate), Effect::kNone);
  EXPECT_TRUE(InjectedError(sites::kLockstepWave).ok());
  // Only the plan's own entries appear in Snapshot, all hit-counts intact.
  const std::vector<Stats> all = Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "ws.step");
  EXPECT_EQ(all[0].hits, 0u);
}

TEST_F(FailpointTest, ProbabilityIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    EXPECT_TRUE(Configure("ws.step=yield(p=0.5)", seed).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      const uint64_t before = FindStats(Snapshot(), "ws.step").triggers;
      (void)Hit(sites::kWsStep);
      fired.push_back(FindStats(Snapshot(), "ws.step").triggers > before);
    }
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b) << "same seed must reproduce the same activation sequence";
  EXPECT_NE(a, c) << "different seeds should perturb the activation sequence";
  // p=0.5 over 64 hits: both outcomes must occur (binomial tail < 1e-19).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FailpointTest, SnapshotCarriesSpecText) {
  ASSERT_TRUE(Configure("ws.step=sleep(10,every=2),topk.update=yield", 0).ok());
  const std::vector<Stats> all = Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(FindStats(all, "ws.step").spec, "sleep(10,every=2)");
  EXPECT_EQ(FindStats(all, "topk.update").spec, "yield");
}

TEST_F(FailpointTest, ScopedConfigInstallsAndUninstalls) {
  {
    ScopedConfig cfg("ws.step=yield", 1);
    ASSERT_TRUE(cfg.status().ok());
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}

TEST_F(FailpointTest, ScopedConfigEmptyPlanIsInert) {
  // An engine run with no --failpoints must not disturb an installed plan
  // (e.g. a concurrent chaos run's): empty ScopedConfig neither arms nor
  // clears.
  ASSERT_TRUE(Configure("ws.step=yield", 1).ok());
  {
    ScopedConfig cfg("", 0);
    ASSERT_TRUE(cfg.status().ok());
    EXPECT_TRUE(Enabled());
  }
  EXPECT_TRUE(Enabled());
}

TEST_F(FailpointTest, ScopedConfigReportsParseError) {
  ScopedConfig cfg("ws.step=explode", 0);
  EXPECT_FALSE(cfg.status().ok());
}

TEST_F(FailpointTest, KnownSitesMatchesHeaderConstants) {
  const std::vector<std::string>& known = KnownSites();
  for (const char* s :
       {sites::kQueuePushBatch, sites::kQueuePopBatch, sites::kTopkUpdate,
        sites::kTopkThresholdRefresh, sites::kWmServerDrain,
        sites::kWmRouterHandoff, sites::kWsStep, sites::kLockstepWave,
        sites::kCacheLookup, sites::kAdaptiveSample, sites::kTracerRecord,
        sites::kTelemetrySample}) {
    EXPECT_NE(std::find(known.begin(), known.end(), s), known.end()) << s;
  }
  EXPECT_EQ(known.size(), 12u);
}

}  // namespace
}  // namespace whirlpool::failpoint
