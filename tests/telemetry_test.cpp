// Flight-recorder telemetry (exec/telemetry.h): the decimating ring
// contracts (counter mass preservation, gauge newest-wins, uniform stride),
// the background sampler's interval/shutdown behaviour, the engine-level
// "timeseries" wiring for every engine, and the post-mortem writer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#include "exec/cancel.h"
#include "exec/engine.h"
#include "exec/telemetry.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

const TelemetrySnapshot::Series* FindSeries(const TelemetrySnapshot& ts,
                                            const std::string& name) {
  for (const auto& s : ts.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Ring / decimation contracts (driven synchronously via SampleNow — no
// sampler thread, no clocks in the assertions).

TEST(TelemetryRecorderTest, RetainsEverySampleBeforeCapacity) {
  TelemetryRecorder rec(/*interval_us=*/1000, /*capacity=*/8);
  uint64_t total = 0;
  rec.AddCounter("c", [&total] { return total; });
  rec.AddGauge("g", [&total] { return static_cast<double>(total); });
  for (int i = 0; i < 5; ++i) {
    total += 10;
    rec.SampleNow();
  }
  TelemetrySnapshot ts = rec.Snapshot();
  EXPECT_EQ(ts.ticks, 5u);
  EXPECT_EQ(ts.decimations, 0u);
  EXPECT_EQ(ts.stride_us, 1000u);  // no decimation: stride == interval
  ASSERT_EQ(ts.t_ns.size(), 5u);
  const auto* c = FindSeries(ts, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->counter);
  // Counter rows are deltas: first row absorbs the pre-start total.
  EXPECT_EQ(c->values, (std::vector<double>{10, 10, 10, 10, 10}));
  const auto* g = FindSeries(ts, "g");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->counter);
  EXPECT_EQ(g->values, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(TelemetryRecorderTest, DecimationPreservesCounterMass) {
  constexpr size_t kCapacity = 8;
  TelemetryRecorder rec(/*interval_us=*/100, kCapacity);
  uint64_t total = 0;
  rec.AddCounter("c", [&total] { return total; });
  // 50 samples with a varying per-sample increment forces multiple
  // decimations; the invariant is that the retained deltas still sum to the
  // probe's final total, no matter how many rows were merged away.
  for (int i = 1; i <= 50; ++i) {
    total += static_cast<uint64_t>(i);
    rec.SampleNow();
  }
  TelemetrySnapshot ts = rec.Snapshot();
  EXPECT_EQ(ts.ticks, 50u);
  EXPECT_GE(ts.decimations, 3u);  // 50 samples through an 8-row ring
  EXPECT_LE(ts.t_ns.size(), kCapacity);
  EXPECT_EQ(ts.stride_us, 100u << ts.decimations);
  const auto* c = FindSeries(ts, "c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->values.size(), ts.t_ns.size());
  const double mass = std::accumulate(c->values.begin(), c->values.end(), 0.0);
  EXPECT_EQ(mass, static_cast<double>(total));
}

TEST(TelemetryRecorderTest, DecimationKeepsNewestGaugeValue) {
  TelemetryRecorder rec(/*interval_us=*/100, /*capacity=*/4);
  double value = 0.0;
  rec.AddGauge("g", [&value] { return value; });
  for (int i = 1; i <= 9; ++i) {
    value = i;
    rec.SampleNow();
  }
  TelemetrySnapshot ts = rec.Snapshot();
  const auto* g = FindSeries(ts, "g");
  ASSERT_NE(g, nullptr);
  ASSERT_FALSE(g->values.empty());
  // The newest sample survives every decimation (odd-index retention).
  EXPECT_EQ(g->values.back(), 9.0);
  // Timestamps stay strictly ascending through any number of halvings.
  for (size_t i = 1; i < ts.t_ns.size(); ++i) {
    EXPECT_LT(ts.t_ns[i - 1], ts.t_ns[i]) << "row " << i;
  }
}

TEST(TelemetryRecorderTest, OddCapacityRoundsUpToEven) {
  // capacity 3 -> 4: four samples fit without decimation, the fifth halves.
  TelemetryRecorder rec(/*interval_us=*/100, /*capacity=*/3);
  rec.AddGauge("g", [] { return 1.0; });
  for (int i = 0; i < 4; ++i) rec.SampleNow();
  EXPECT_EQ(rec.Snapshot().decimations, 0u);
  rec.SampleNow();
  TelemetrySnapshot ts = rec.Snapshot();
  EXPECT_EQ(ts.decimations, 1u);
  EXPECT_EQ(ts.t_ns.size(), 3u);  // 4 halved to 2, plus the new row
}

// ---------------------------------------------------------------------------
// Sampler thread.

TEST(TelemetryRecorderTest, SamplerTicksAtInterval) {
  TelemetryRecorder rec(/*interval_us=*/1000);
  std::atomic<uint64_t> total{0};
  rec.AddCounter("c", [&total] { return total.load(std::memory_order_relaxed); });
  rec.Start(/*token=*/nullptr);
  total.fetch_add(7, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rec.Stop();
  const TelemetrySnapshot ts = rec.Snapshot();
  // ~50 ticks expected; demand only a loose lower bound (CI schedulers) and
  // that Stop()'s final sample landed.
  EXPECT_GE(ts.ticks, 5u);
  EXPECT_EQ(ts.t_ns.size(), ts.ticks);  // well under capacity: all retained
  const auto* c = FindSeries(ts, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(std::accumulate(c->values.begin(), c->values.end(), 0.0), 7.0);
  // Stop is idempotent; ticks must not advance after it.
  rec.Stop();
  EXPECT_EQ(rec.ticks(), ts.ticks);
}

TEST(TelemetryRecorderTest, StopWithinFirstIntervalStillRecordsEndState) {
  TelemetryRecorder rec(/*interval_us=*/1'000'000);  // 1 s: never fires
  double value = 42.0;
  rec.AddGauge("g", [&value] { return value; });
  rec.Start(nullptr);
  rec.Stop();  // joins, then takes the final synchronous sample
  TelemetrySnapshot ts = rec.Snapshot();
  ASSERT_GE(ts.t_ns.size(), 1u);
  EXPECT_EQ(FindSeries(ts, "g")->values.back(), 42.0);
}

TEST(TelemetryRecorderTest, FiredTokenShutsSamplerDown) {
  CancelToken token(/*deadline_ms=*/1.0);
  TelemetryRecorder rec(/*interval_us=*/500);
  rec.AddGauge("cancelled", [&token] { return token.Cancelled() ? 1.0 : 0.0; });
  rec.Start(&token);
  // Well past the deadline: the sampler must have observed the fired token
  // at a sample boundary and exited on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const uint64_t ticks_after_fire = rec.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rec.ticks(), ticks_after_fire) << "sampler kept running";
  rec.Stop();
  // The last pre-shutdown row saw the fired state (Poll happens after the
  // sample, so the final rows record cancelled == 1).
  const TelemetrySnapshot ts = rec.Snapshot();
  EXPECT_EQ(FindSeries(ts, "cancelled")->values.back(), 1.0);
}

// ---------------------------------------------------------------------------
// Engine integration.

struct Workload {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;
};

Workload MakeWorkload() {
  Workload w;
  xmlgen::XMarkOptions gen;
  gen.seed = 99;
  gen.target_bytes = 16 << 10;
  w.doc = xmlgen::GenerateXMark(gen);
  w.idx = std::make_unique<index::TagIndex>(*w.doc);
  auto q = ParseXPath("//item[./description/parlist and ./name]");
  EXPECT_TRUE(q.ok()) << q.status();
  w.pattern = std::move(q).value();
  auto scoring = ScoringModel::ComputeTfIdf(*w.idx, w.pattern, Normalization::kSparse);
  auto plan = QueryPlan::Build(*w.idx, w.pattern, scoring);
  EXPECT_TRUE(plan.ok()) << plan.status();
  w.plan = std::make_unique<QueryPlan>(std::move(plan).value());
  return w;
}

class EngineTelemetryTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineTelemetryTest, TimeseriesOffByDefault) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.engine = GetParam();
  opts.k = 5;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const TelemetrySnapshot& ts = r->metrics.timeseries;
  EXPECT_EQ(ts.interval_us, 0u);
  EXPECT_EQ(ts.ticks, 0u);
  EXPECT_TRUE(ts.t_ns.empty());
  EXPECT_TRUE(ts.series.empty());
}

TEST_P(EngineTelemetryTest, TimeseriesCoversRun) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.engine = GetParam();
  opts.k = 5;
  opts.telemetry_interval_us = 200;
  // Stretch the run so the sampler observes it mid-flight too, not only via
  // Stop()'s final sample.
  opts.op_cost_seconds = 20e-6;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const TelemetrySnapshot& ts = r->metrics.timeseries;
  EXPECT_EQ(ts.interval_us, 200u);
  EXPECT_GE(ts.ticks, 1u);
  ASSERT_FALSE(ts.t_ns.empty());
  ASSERT_FALSE(ts.series.empty());
  for (const auto& s : ts.series) {
    EXPECT_EQ(s.values.size(), ts.t_ns.size()) << s.name;
  }
  // The common probes are present, and the counter deltas agree with the
  // final counters (Stop()'s last sample lands post-quiesce).
  ASSERT_NE(FindSeries(ts, "threshold"), nullptr);
  const auto* created = FindSeries(ts, "created");
  ASSERT_NE(created, nullptr);
  EXPECT_TRUE(created->counter);
  EXPECT_EQ(std::accumulate(created->values.begin(), created->values.end(), 0.0),
            static_cast<double>(r->metrics.matches_created));
  const auto* ops = FindSeries(ts, "server_ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(std::accumulate(ops->values.begin(), ops->values.end(), 0.0),
            static_cast<double>(r->metrics.server_operations));
  // A clean run never observes a fired token.
  const auto* cancelled = FindSeries(ts, "cancelled");
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->values.back(), 0.0);
  // Per-engine queue-shape series.
  switch (GetParam()) {
    case EngineKind::kWhirlpoolS:
      EXPECT_NE(FindSeries(ts, "queue_depth.router"), nullptr);
      break;
    case EngineKind::kWhirlpoolM:
      EXPECT_NE(FindSeries(ts, "queue_depth.router"), nullptr);
      EXPECT_NE(FindSeries(ts, "queue_depth.s0"), nullptr);
      EXPECT_NE(FindSeries(ts, "in_flight"), nullptr);
      EXPECT_NE(FindSeries(ts, "drain.router"), nullptr);
      break;
    case EngineKind::kLockStep:
    case EngineKind::kLockStepNoPrun:
      EXPECT_NE(FindSeries(ts, "wave_size"), nullptr);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTelemetryTest,
                         ::testing::Values(EngineKind::kWhirlpoolS,
                                           EngineKind::kWhirlpoolM,
                                           EngineKind::kLockStep,
                                           EngineKind::kLockStepNoPrun));

TEST(EngineTelemetryTest, QueuePeakDepthPopulatedByAllEngines) {
  Workload w = MakeWorkload();
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    auto r = RunTopK(*w.plan, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    const auto& peaks = r->metrics.adaptive.queue_peak_depth;
    ASSERT_FALSE(peaks.empty()) << EngineKindName(kind);
    // Every engine enqueues at least the root matches somewhere.
    uint64_t max_peak = 0;
    for (uint64_t p : peaks) max_peak = std::max(max_peak, p);
    EXPECT_GT(max_peak, 0u) << EngineKindName(kind);
    if (kind == EngineKind::kWhirlpoolM) {
      // [router, server 0, ..., server n-1]
      EXPECT_EQ(peaks.size(),
                1u + static_cast<size_t>(w.plan->num_servers()));
    } else {
      EXPECT_EQ(peaks.size(), 1u);
    }
  }
}

TEST(EngineTelemetryTest, TelemetrySampleFailpointInjectsError) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.k = 5;
  opts.telemetry_interval_us = 10;
  // Stretch the run well past several sampler wakeups so the injected error
  // deterministically lands mid-run.
  opts.op_cost_seconds = 100e-6;
  opts.failpoints = "telemetry.sample=error(once)";
  auto r = RunTopK(*w.plan, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal) << r.status();
}

// ---------------------------------------------------------------------------
// Post-mortem.

TEST(PostMortemTest, WriterFormatsReasonCountersAndSeriesTails) {
  MetricsSnapshot snap;
  snap.server_operations = 123;
  snap.adaptive.queue_peak_depth = {9, 4};
  snap.timeseries.interval_us = 100;
  snap.timeseries.stride_us = 200;
  snap.timeseries.ticks = 20;
  snap.timeseries.decimations = 1;
  for (uint64_t i = 0; i < 10; ++i) snap.timeseries.t_ns.push_back(1000 * i);
  TelemetrySnapshot::Series s;
  s.name = "threshold";
  for (int i = 0; i < 10; ++i) s.values.push_back(i * 0.5);
  snap.timeseries.series.push_back(s);

  std::ostringstream os;
  WritePostMortem(os, "deadline expired (approximate result)", snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("post-mortem: deadline expired"), std::string::npos) << text;
  EXPECT_NE(text.find("ops=123"), std::string::npos) << text;
  EXPECT_NE(text.find("queue_peak_depth: 9 4"), std::string::npos) << text;
  EXPECT_NE(text.find("threshold (gauge) tail:"), std::string::npos) << text;
  // The tail is capped at 8 rows: the first two of the 10 are absent.
  EXPECT_EQ(text.find("t+0us=0"), std::string::npos) << text;
  EXPECT_NE(text.find("t+9us=4.5"), std::string::npos) << text;
}

TEST(PostMortemTest, DegradedRunWritesPostMortemFile) {
  Workload w = MakeWorkload();
  const std::string path =
      ::testing::TempDir() + "/whirlpool_postmortem_test.txt";
  std::remove(path.c_str());
  ExecOptions opts;
  opts.k = 5;
  opts.telemetry_interval_us = 50;
  opts.op_cost_seconds = 100e-6;
  opts.deadline_ms = 0.5;  // expires mid-run under the injected op cost
  opts.postmortem_path = path;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->approximate);
  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "post-mortem file not written: " << path;
  std::stringstream buf;
  buf << file.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("whirlpool post-mortem: deadline expired"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("=== end post-mortem ==="), std::string::npos) << text;
  std::remove(path.c_str());
}

TEST(PostMortemTest, CleanRunWritesNothing) {
  Workload w = MakeWorkload();
  const std::string path =
      ::testing::TempDir() + "/whirlpool_postmortem_clean.txt";
  std::remove(path.c_str());
  ExecOptions opts;
  opts.k = 5;
  opts.telemetry_interval_us = 200;
  opts.postmortem_path = path;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->approximate);
  std::ifstream file(path);
  EXPECT_FALSE(file.good()) << "clean run must not write a post-mortem";
}

}  // namespace
}  // namespace whirlpool::exec
