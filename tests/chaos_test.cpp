// Seeded chaos harness for the failpoint layer and deadline-degraded top-k
// (DESIGN.md §12): 4 blocks x 52 = 208 seeded (engine x failpoint-plan)
// trials, each comparing a faulted run against the same engine
// configuration run clean. Three fault modes cycle through the sweep:
//
//   perturb   schedule-only plans (yield / sleep / stall / spurious wake)
//             must not change the exact top-k: same count, same scores rank
//             by rank, same roots above the boundary tie chain.
//   deadline  a deadline plus forced per-step stalls: the run must stop
//             cleanly and return a subset-consistent prefix flagged
//             `approximate`, whose score_bound really bounds anything the
//             completed run returned.
//   error     injected errors at error-capable sites must propagate as a
//             clean Status naming the failpoint — no hang, no partial
//             answer, and the registry must come back disarmed.
//
// Deterministic and reproducible: every assertion message carries the
// (base_seed, block, trial) triple plus the plan. Re-run a failure with
//   WHIRLPOOL_CHAOS_SEED=<base_seed> ctest -L chaos
// CI runs this suite under TSan (the perturbation plans shake out ordering
// bugs that a quiet scheduler never exposes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "xmlgen/xmark.h"

namespace whirlpool {
namespace {

using exec::EngineKind;
using exec::ExecOptions;
using exec::RunTopK;
using exec::TopKResult;
using query::Axis;
using query::TreePattern;
using score::Normalization;
using score::ScoringModel;

constexpr uint64_t kDefaultBaseSeed = 20260808;
constexpr int kBlocks = 4;
constexpr int kTrialsPerBlock = 52;  // 4 * 52 = 208 trials
constexpr double kEps = 1e-9;

uint64_t BaseSeed() {
  if (const char* env = std::getenv("WHIRLPOOL_CHAOS_SEED")) {
    const uint64_t v = static_cast<uint64_t>(std::atoll(env));
    if (v != 0) return v;
  }
  return kDefaultBaseSeed;
}

/// Random tree pattern over the XMark vocabulary (same shape space as
/// differential_test.cpp, slightly narrower so trials stay fast).
TreePattern RandomPattern(Rng* rng) {
  static const char* const kTags[] = {"description", "parlist", "text",
                                      "mailbox",     "keyword", "bold",
                                      "name",        "listitem", "emph"};
  TreePattern p = TreePattern::Root("item");
  const int extra = 1 + static_cast<int>(rng->Uniform(4));
  for (int i = 0; i < extra; ++i) {
    const int parent = static_cast<int>(rng->Uniform(p.size()));
    const Axis axis = rng->Chance(0.6) ? Axis::kChild : Axis::kDescendant;
    p.AddNode(parent, axis, kTags[rng->Uniform(9)], std::nullopt);
  }
  return p;
}

/// Same tolerance contract as differential_test.cpp: scores must agree at
/// every rank; root identity is a set comparison over the ranks strictly
/// above the k-boundary tie chain (which root represents a tied group is
/// schedule-dependent and any choice is a valid top-k).
void ExpectSameAnswers(const TopKResult& ref, const TopKResult& got,
                       const std::string& who, const std::string& repro) {
  ASSERT_EQ(got.answers.size(), ref.answers.size()) << who << " " << repro;
  if (ref.answers.empty()) return;
  for (size_t i = 0; i < ref.answers.size(); ++i) {
    ASSERT_NEAR(got.answers[i].score, ref.answers[i].score, kEps)
        << who << " rank " << i << " " << repro;
  }
  size_t tail = ref.answers.size() - 1;
  while (tail > 0 &&
         ref.answers[tail - 1].score - ref.answers[tail].score <= kEps) {
    --tail;
  }
  std::vector<xml::NodeId> ref_roots, got_roots;
  for (size_t i = 0; i < tail; ++i) {
    ref_roots.push_back(ref.answers[i].root);
    got_roots.push_back(got.answers[i].root);
  }
  std::sort(ref_roots.begin(), ref_roots.end());
  std::sort(got_roots.begin(), got_roots.end());
  ASSERT_EQ(got_roots, ref_roots)
      << who << " roots above the boundary tie chain differ " << repro;
}

/// One engine configuration of the rotation. `tps` only applies to W-M.
struct EngineChoice {
  EngineKind kind;
  int threads_per_server;
  const char* label;
};

constexpr EngineChoice kEngines[] = {
    {EngineKind::kWhirlpoolS, 1, "ws"},
    {EngineKind::kWhirlpoolM, 1, "wm1"},
    {EngineKind::kWhirlpoolM, 2, "wm2"},
    {EngineKind::kWhirlpoolM, 4, "wm4"},
    {EngineKind::kLockStep, 1, "lockstep"},
    {EngineKind::kWhirlpoolS, 1, "ws+cache"},
};

/// Schedule-only perturbation plans (no error actions). Sites an engine
/// never executes are legal in a plan — they just record zero hits — so one
/// pool serves every engine. Durations stay in the tens-of-microseconds
/// range: enough to reshuffle thread interleavings, cheap enough for 208
/// trials under TSan on one core.
const char* const kPerturbPlans[] = {
    "queue.push_batch=yield(every=3),topk.update=yield(every=5)",
    "queue.pop_batch=sleep(50,every=7),tracer.record=yield(p=0.25)",
    "wm.server_drain=stall(100,every=9),topk.threshold_refresh=yield(every=4)",
    "queue.pop_batch=wake(every=4),queue.push_batch=wake(every=5)",
    "ws.step=yield(every=2),lockstep.wave=sleep(40,once)",
    "adaptive.sample=sleep(20,p=0.5),topk.update=sleep(10,every=11),"
    "telemetry.sample=yield",
    "wm.router_handoff=stall(80,every=6),cache.lookup=yield",
};

class ChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosTest, SeededFaultPlans) {
  const uint64_t base_seed = BaseSeed();
  const int block = GetParam();
  Rng rng(base_seed * 9176237 + static_cast<uint64_t>(block) * 131);

  // A small per-block pool of documents (8-16 KB keeps a single trial in
  // the low milliseconds even under TSan).
  struct Doc {
    std::unique_ptr<xml::Document> doc;
    std::unique_ptr<index::TagIndex> idx;
  };
  std::vector<Doc> docs;
  const size_t kDocBytes[] = {8 << 10, 12 << 10, 16 << 10};
  for (size_t di = 0; di < 3; ++di) {
    xmlgen::XMarkOptions gen;
    gen.seed = base_seed + static_cast<uint64_t>(block) * 31 + di;
    gen.target_bytes = kDocBytes[di];
    Doc d;
    d.doc = xmlgen::GenerateXMark(gen);
    d.idx = std::make_unique<index::TagIndex>(*d.doc);
    docs.push_back(std::move(d));
  }

  int approximate_runs = 0;
  for (int trial = 0; trial < kTrialsPerBlock; ++trial) {
    const Doc& d = docs[rng.Uniform(docs.size())];
    const TreePattern pattern = RandomPattern(&rng);
    const Normalization norm =
        rng.Chance(0.5) ? Normalization::kSparse : Normalization::kDense;
    const ScoringModel scoring = ScoringModel::ComputeTfIdf(*d.idx, pattern, norm);
    auto plan = exec::QueryPlan::Build(*d.idx, pattern, scoring);
    ASSERT_TRUE(plan.ok()) << pattern.ToString();

    const EngineChoice& eng = kEngines[trial % 6];
    ExecOptions base;
    base.engine = eng.kind;
    base.threads_per_server = eng.threads_per_server;
    base.k = 1 + static_cast<uint32_t>(rng.Uniform(12));
    base.semantics = rng.Chance(0.8) ? exec::MatchSemantics::kRelaxed
                                     : exec::MatchSemantics::kExact;
    base.cache_server_joins = std::string(eng.label) == "ws+cache";
    base.failpoint_seed = base_seed + static_cast<uint64_t>(trial) * 977;
    // Flight-recorder dimension: every fourth trial samples telemetry in the
    // clean AND faulted runs, so the chaos schedules (and the TSan CI leg)
    // cover the sampler thread racing every engine, failpoint plan and
    // cancellation path. Degraded trials write their post-mortem to a
    // scratch file instead of spamming the test log via stderr.
    const bool telemetry_on = trial % 4 == 0;
    if (telemetry_on) {
      base.telemetry_interval_us = 100;
      base.postmortem_path = ::testing::TempDir() + "/chaos_postmortem.txt";
    }

    // The per-engine cancellation-poll site: the only sites where an
    // `error` action can surface (plus cache.lookup when the cache is on).
    // W-M arms both its poll sites: the router handoff is guaranteed to see
    // the seeded root batch, while the server drain can legitimately starve
    // (the router may prune every match before any server queue fills).
    const char* stall_site =
        eng.kind == EngineKind::kWhirlpoolS
            ? failpoint::sites::kWsStep
            : eng.kind == EngineKind::kWhirlpoolM
                  ? failpoint::sites::kWmServerDrain
                  : failpoint::sites::kLockstepWave;
    const std::string error_plan =
        eng.kind == EngineKind::kWhirlpoolM
            ? std::string(failpoint::sites::kWmServerDrain) + "=error(once)," +
                  failpoint::sites::kWmRouterHandoff + "=error(once)"
            : std::string(stall_site) + "=error(once)";

    std::ostringstream repro;
    repro << "[repro: WHIRLPOOL_CHAOS_SEED=" << base_seed << " block=" << block
          << " trial=" << trial << " engine=" << eng.label << " k=" << base.k
          << " semantics=" << exec::MatchSemanticsName(base.semantics)
          << " pattern=" << pattern.ToString() << "]";

    // Clean reference: same engine configuration, no plan, no deadline.
    auto clean = RunTopK(*plan, base);
    ASSERT_TRUE(clean.ok()) << repro.str();
    ASSERT_FALSE(clean->approximate) << repro.str();
    if (telemetry_on) {
      // The sampler really ran: Stop()'s final sample guarantees at least one
      // row even when the run beats the first interval.
      ASSERT_GE(clean->metrics.timeseries.ticks, 1u) << repro.str();
      ASSERT_FALSE(clean->metrics.timeseries.series.empty()) << repro.str();
    }

    const int mode = trial % 3;
    if (mode == 0) {
      // --- perturb: schedule noise must not change the exact top-k. ---
      ExecOptions perturbed = base;
      perturbed.failpoints = kPerturbPlans[trial % 7];
      auto got = RunTopK(*plan, perturbed);
      ASSERT_TRUE(got.ok()) << perturbed.failpoints << " " << repro.str();
      EXPECT_FALSE(got->approximate) << repro.str();
      ExpectSameAnswers(*clean, *got,
                        std::string("perturb{") + perturbed.failpoints + "}",
                        repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    } else if (mode == 1) {
      // --- deadline: forced stalls + a short deadline. ---
      ExecOptions bounded = base;
      bounded.failpoints = std::string(stall_site) + "=sleep(300)";
      bounded.deadline_ms = 0.2 + 0.3 * static_cast<double>(trial % 4);
      auto got = RunTopK(*plan, bounded);
      ASSERT_TRUE(got.ok()) << repro.str();
      if (!got->approximate) {
        // The run beat the deadline: it must then be the exact answer.
        ExpectSameAnswers(*clean, *got, "deadline(beat)", repro.str());
        if (::testing::Test::HasFatalFailure()) return;
      } else {
        ++approximate_runs;
        ASSERT_LE(got->answers.size(), static_cast<size_t>(base.k)) << repro.str();
        for (size_t i = 1; i < got->answers.size(); ++i) {
          ASSERT_LE(got->answers[i].score, got->answers[i - 1].score + kEps)
              << repro.str();
        }
        // score_bound must cap both what was returned and what a completed
        // run returns: in particular the exact top answer.
        if (!got->answers.empty()) {
          ASSERT_LE(got->answers.front().score, got->score_bound + kEps)
              << repro.str();
        }
        if (!clean->answers.empty()) {
          ASSERT_LE(clean->answers.front().score, got->score_bound + kEps)
              << "score_bound does not bound the exact top answer "
              << repro.str();
        }
        // threshold is the k'th-best at stop time: with a full answer set it
        // is the last returned score.
        if (got->answers.size() == static_cast<size_t>(base.k)) {
          ASSERT_NEAR(got->threshold, got->answers.back().score, kEps)
              << repro.str();
        }
        // Subset consistency: an approximate answer for a root never beats
        // the score the completed run assigns that root (scores only grow as
        // more of the match is explored; for roots past the clean top-k the
        // clean threshold is the cap).
        std::map<xml::NodeId, double> clean_scores;
        for (const auto& a : clean->answers) clean_scores[a.root] = a.score;
        const double clean_threshold =
            clean->answers.size() == static_cast<size_t>(base.k)
                ? clean->answers.back().score
                : 0.0;
        for (const auto& a : got->answers) {
          auto it = clean_scores.find(a.root);
          const double cap = it != clean_scores.end()
                                 ? it->second
                                 : std::max(clean_threshold, 0.0);
          ASSERT_LE(a.score, cap + kEps)
              << "root " << a.root << " scored above its completed-run score "
              << repro.str();
        }
      }
    } else {
      // --- error: injected failures propagate as clean Status values. ---
      ExecOptions faulty = base;
      // The cache variant injects at the memoized-lookup path (consulted on
      // every server operation in cache+relaxed+max-tuple mode); elsewhere
      // the poll-site plan fires on the first queue boundary. Either way the
      // site is only *reached* when the run has work: gate the must-fail
      // assertion on the clean run's own evidence of that.
      const bool cache_error =
          base.cache_server_joins &&
          base.semantics == exec::MatchSemantics::kRelaxed;
      faulty.failpoints =
          cache_error ? std::string(failpoint::sites::kCacheLookup) + "=error"
                      : error_plan;
      const bool site_reachable =
          cache_error ? clean->metrics.server_operations > 0
                      : eng.kind == EngineKind::kLockStep ||
                            clean->metrics.matches_created > 0;
      auto got = RunTopK(*plan, faulty);
      if (site_reachable) {
        ASSERT_FALSE(got.ok())
            << "injected error did not surface " << repro.str();
        EXPECT_NE(got.status().message().find("injected error"),
                  std::string::npos)
            << got.status().message() << " " << repro.str();
      } else {
        // No work ever reached an error-capable site: the plan is inert and
        // the run must simply succeed with the exact answers.
        ASSERT_TRUE(got.ok()) << repro.str();
        ExpectSameAnswers(*clean, *got, "error(unreached)", repro.str());
        if (::testing::Test::HasFatalFailure()) return;
      }
      EXPECT_FALSE(failpoint::Enabled())
          << "registry left armed after an error run " << repro.str();
      // The failed run must not poison the process: a clean rerun of the
      // same configuration still produces the exact answers.
      auto again = RunTopK(*plan, base);
      ASSERT_TRUE(again.ok()) << repro.str();
      ExpectSameAnswers(*clean, *again, "post-error rerun", repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // ~17 deadline trials per block with a 300us stall at every poll: if none
  // ever expired, the deadline plumbing is broken (or the stall site never
  // fired), not unlucky.
  EXPECT_GT(approximate_runs, 0)
      << "no deadline trial returned an approximate answer in block " << block;
}

INSTANTIATE_TEST_SUITE_P(Blocks, ChaosTest, ::testing::Range(0, kBlocks));

}  // namespace
}  // namespace whirlpool
