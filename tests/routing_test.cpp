#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "exec/routing.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xml/parser.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::PredicateScores;
using score::ScoringModel;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct RoutingHarness {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;

  static RoutingHarness Make() {
    RoutingHarness h;
    // Three predicate servers with different frequencies: title on every
    // book, isbn on half, price rare.
    std::string xml = "<lib>";
    for (int i = 0; i < 16; ++i) {
      xml += "<book><title>t</title>";
      if (i % 2 == 0) xml += "<isbn>1</isbn>";
      if (i % 8 == 0) xml += "<price>9</price>";
      xml += "</book>";
    }
    xml += "</lib>";
    auto doc = xml::ParseDocument(xml);
    EXPECT_TRUE(doc.ok());
    h.doc = std::move(doc).value();
    h.idx = std::make_unique<index::TagIndex>(*h.doc);
    auto q = ParseXPath("/book[./title and ./isbn and ./price]");
    EXPECT_TRUE(q.ok());
    h.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*h.idx, h.pattern, Normalization::kNone);
    auto plan = QueryPlan::Build(*h.idx, h.pattern, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    h.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return h;
  }

  PartialMatch RootMatch() const {
    PartialMatch m;
    m.bindings.assign(pattern.size(), xml::kInvalidNode);
    m.levels.assign(pattern.size(), MatchLevel::kDeleted);
    m.bindings[0] = idx->Nodes("book")[0];
    m.levels[0] = MatchLevel::kExact;
    m.max_final_score = plan->RemainingMax(0);
    return m;
  }
};

TEST(RouterTest, StaticFollowsOrder) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kStatic;
  opts.static_order = {2, 0, 1};
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  PartialMatch m = h.RootMatch();
  EXPECT_EQ(router->NextServer(m, kNegInf), 2);
  m.visited_mask |= 1u << 2;
  EXPECT_EQ(router->NextServer(m, kNegInf), 0);
  m.visited_mask |= 1u << 0;
  EXPECT_EQ(router->NextServer(m, kNegInf), 1);
}

TEST(RouterTest, StaticDefaultsToIdentity) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kStatic;
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  EXPECT_EQ(router->NextServer(h.RootMatch(), kNegInf), 0);
}

TEST(RouterTest, RejectsBadStaticOrder) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kStatic;
  opts.static_order = {0, 1};  // wrong size
  EXPECT_FALSE(Router::Make(*h.plan, opts).ok());
  opts.static_order = {0, 1, 1};  // not a permutation
  EXPECT_FALSE(Router::Make(*h.plan, opts).ok());
  opts.static_order = {0, 1, 5};  // out of range
  EXPECT_FALSE(Router::Make(*h.plan, opts).ok());
}

TEST(RouterTest, MaxScorePicksHighestExpectedContribution) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kMaxScore;
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  PartialMatch m = h.RootMatch();
  int expect_best = 0;
  double best = -1;
  for (int s = 0; s < h.plan->num_servers(); ++s) {
    if (h.plan->server(s).expected_contribution > best) {
      best = h.plan->server(s).expected_contribution;
      expect_best = s;
    }
  }
  EXPECT_EQ(router->NextServer(m, kNegInf), expect_best);
}

TEST(RouterTest, MinScoreIsOppositeOfMaxScore) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions max_opts, min_opts;
  max_opts.routing = RoutingStrategy::kMaxScore;
  min_opts.routing = RoutingStrategy::kMinScore;
  auto max_router = Router::Make(*h.plan, max_opts);
  auto min_router = Router::Make(*h.plan, min_opts);
  ASSERT_TRUE(max_router.ok());
  ASSERT_TRUE(min_router.ok());
  PartialMatch m = h.RootMatch();
  EXPECT_NE(max_router->NextServer(m, kNegInf), min_router->NextServer(m, kNegInf));
}

TEST(RouterTest, RoutersSkipVisitedServers) {
  RoutingHarness h = RoutingHarness::Make();
  for (RoutingStrategy strategy :
       {RoutingStrategy::kStatic, RoutingStrategy::kMaxScore, RoutingStrategy::kMinScore,
        RoutingStrategy::kMinAlive}) {
    ExecOptions opts;
    opts.routing = strategy;
    auto router = Router::Make(*h.plan, opts);
    ASSERT_TRUE(router.ok());
    PartialMatch m = h.RootMatch();
    std::set<int> seen;
    for (int step = 0; step < h.plan->num_servers(); ++step) {
      int s = router->NextServer(m, kNegInf);
      EXPECT_TRUE(seen.insert(s).second) << "server revisited by strategy "
                                         << RoutingStrategyName(strategy);
      m.visited_mask |= 1u << s;
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(h.plan->num_servers()));
  }
}

TEST(RouterTest, EstimateAliveNoThresholdIsCandidateCount) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kMinAlive;
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  PartialMatch m = h.RootMatch();
  // Book 0 has exactly one title, one isbn and one price: with no threshold
  // the estimate is the exact per-root candidate count.
  for (int s = 0; s < h.plan->num_servers(); ++s) {
    EXPECT_NEAR(router->EstimateAlive(m, s, kNegInf), 1.0, 1e-12);
  }
  // A book with no price (index 1) estimates zero candidates for the price
  // server... but the deletion row needs a threshold to be judged; with no
  // threshold the raw count is reported.
  m.bindings[0] = h.idx->Nodes("book")[1];
  int price_server = 2;
  EXPECT_NEAR(router->EstimateAlive(m, price_server, kNegInf), 0.0, 1e-12);
}

TEST(RouterTest, EstimateAliveShrinksWithThreshold) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kMinAlive;
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  PartialMatch m = h.RootMatch();
  for (int s = 0; s < h.plan->num_servers(); ++s) {
    const double loose = router->EstimateAlive(m, s, kNegInf);
    const double tight = router->EstimateAlive(m, s, m.max_final_score + 1.0);
    EXPECT_LE(tight, loose);
    EXPECT_EQ(tight, 0.0);  // nothing can beat an unbeatable threshold
  }
}

TEST(RouterTest, MinAlivePrefersKillerServerUnderTightThreshold) {
  RoutingHarness h = RoutingHarness::Make();
  ExecOptions opts;
  opts.routing = RoutingStrategy::kMinAlive;
  auto router = Router::Make(*h.plan, opts);
  ASSERT_TRUE(router.ok());
  PartialMatch m = h.RootMatch();
  // With a threshold just below max_final, only servers whose exact
  // contribution is needed keep matches alive; the router must pick a
  // server minimizing survivors.
  const int s = router->NextServer(m, m.max_final_score - 1e-9);
  double chosen = router->EstimateAlive(m, s, m.max_final_score - 1e-9);
  for (int other = 0; other < h.plan->num_servers(); ++other) {
    EXPECT_LE(chosen, router->EstimateAlive(m, other, m.max_final_score - 1e-9) + 1e-12);
  }
}

}  // namespace
}  // namespace whirlpool::exec
