#include <gtest/gtest.h>

#include "index/tag_index.h"
#include "query/matcher.h"
#include "xmlgen/bookstore.h"

namespace whirlpool::query {
namespace {

using index::TagIndex;
using xml::NodeId;

class Figure1MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = xmlgen::Figure1Bookstore();
    idx_ = std::make_unique<TagIndex>(*doc_);
    books_ = idx_->Nodes("book");
    ASSERT_EQ(books_.size(), 3u);
  }

  TreePattern Parse(std::string_view xpath) {
    auto r = ParseXPath(xpath);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<TagIndex> idx_;
  std::vector<NodeId> books_;
};

TEST_F(Figure1MatcherTest, Fig2aMatchesOnlyBookA) {
  // /book[./title='wodehouse' and ./info/publisher/name='psmith']
  TreePattern q = Parse("/book[./title='wodehouse' and ./info/publisher/name='psmith']");
  EXPECT_EQ(EvaluatePattern(*idx_, q), (std::vector<NodeId>{books_[0]}));
}

TEST_F(Figure1MatcherTest, Fig2bMatchesOnlyBookA) {
  // Edge generalization on title: /book[.//title='wodehouse' and ./info/...]
  TreePattern q =
      Parse("/book[.//title='wodehouse' and ./info/publisher/name='psmith']");
  EXPECT_EQ(EvaluatePattern(*idx_, q), (std::vector<NodeId>{books_[0]}));
}

TEST_F(Figure1MatcherTest, Fig2cMatchesBooksAandB) {
  // Promotion of publisher to book + leaf deletion of info + edge-gen title:
  // /book[.//title='wodehouse' and .//publisher/name='psmith']
  TreePattern q = Parse("/book[.//title='wodehouse' and .//publisher/name='psmith']");
  EXPECT_EQ(EvaluatePattern(*idx_, q), (std::vector<NodeId>{books_[0], books_[1]}));
}

TEST_F(Figure1MatcherTest, Fig2dMatchesAllThreeBooks) {
  // Further deletion of publisher and name: /book[.//title='wodehouse']
  TreePattern q = Parse("/book[.//title='wodehouse']");
  EXPECT_EQ(EvaluatePattern(*idx_, q), books_);
}

TEST_F(Figure1MatcherTest, ValuePredicateFilters) {
  TreePattern q = Parse("/book[.//title='not a real title']");
  EXPECT_TRUE(EvaluatePattern(*idx_, q).empty());
}

TEST_F(Figure1MatcherTest, OptionalNodesDoNotBlock) {
  TreePattern q = Parse("/book[./reviews]");
  EXPECT_EQ(EvaluatePattern(*idx_, q).size(), 1u);  // only book (c)
  auto relaxed = q.LeafDeletion(1);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(EvaluatePattern(*idx_, *relaxed).size(), 3u);  // all books
}

TEST_F(Figure1MatcherTest, RootCandidatesIgnoreStructure) {
  TreePattern q = Parse("/book[./totally/made/up]");
  EXPECT_EQ(RootCandidates(*idx_, q).size(), 3u);
  EXPECT_TRUE(EvaluatePattern(*idx_, q).empty());
}

TEST_F(Figure1MatcherTest, RootValuePredicate) {
  TreePattern q = TreePattern::Root("title", "wodehouse");
  EXPECT_EQ(RootCandidates(*idx_, q).size(), 3u);
  TreePattern q2 = TreePattern::Root("title", "no such");
  EXPECT_TRUE(RootCandidates(*idx_, q2).empty());
}

TEST_F(Figure1MatcherTest, SubtreeMatchesChecksDeepStructure) {
  TreePattern q = Parse("/book[./info/publisher]");
  EXPECT_TRUE(SubtreeMatches(*idx_, q, 0, books_[0]));
  EXPECT_FALSE(SubtreeMatches(*idx_, q, 0, books_[1]));  // publisher not under info
  EXPECT_FALSE(SubtreeMatches(*idx_, q, 0, books_[2]));  // no publisher
}

TEST_F(Figure1MatcherTest, DescendantAxisReachesDeepNodes) {
  TreePattern q = Parse("/book[.//name]");
  EXPECT_EQ(EvaluatePattern(*idx_, q).size(), 2u);  // books a and b
}

TEST_F(Figure1MatcherTest, UnknownTagYieldsNoMatches) {
  TreePattern q = Parse("//nonexistent");
  EXPECT_TRUE(EvaluatePattern(*idx_, q).empty());
}

}  // namespace
}  // namespace whirlpool::query
