#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/rng.h"
#include "util/semaphore.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace whirlpool {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(*r, 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    WHIRLPOOL_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(31337);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.Zipf(20, 1.0);
    ASSERT_LT(r, 20u);
    if (r < 5) ++low;
    if (r >= 15) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(4);
  int low = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.Zipf(10, 0.0) < 5) ++low;
  }
  EXPECT_NEAR(low, 2000, 300);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------------------
// String utils
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "::"), "x::y::z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// ---------------------------------------------------------------------------
// ProcessorCap
// ---------------------------------------------------------------------------

TEST(ProcessorCapTest, UnlimitedIsNoop) {
  ProcessorCap cap;
  EXPECT_FALSE(cap.limited());
  cap.Acquire();  // must not block
  cap.Release();
}

TEST(ProcessorCapTest, LimitsConcurrency) {
  ProcessorCap cap(2);
  EXPECT_TRUE(cap.limited());
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 50; ++j) {
        ProcessorCapGuard guard(&cap);
        int now = inside.fetch_add(1) + 1;
        int prev = max_inside.load();
        while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_GE(max_inside.load(), 1);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedSeconds(), 0.009);
  EXPECT_GE(sw.ElapsedMicros(), 9000);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 0.009);
}

}  // namespace
}  // namespace whirlpool
