#include <gtest/gtest.h>

#include <limits>
#include <thread>

#include "exec/topk_set.h"

namespace whirlpool::exec {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

PartialMatch MakeMatch(NodeId root, double score, double max_final) {
  PartialMatch m;
  m.bindings = {root};
  m.levels = {MatchLevel::kExact};
  m.current_score = score;
  m.max_final_score = max_final;
  return m;
}

TEST(TopKSetTest, ThresholdIsNegInfUntilFull) {
  TopKSet set(2);
  EXPECT_EQ(set.Threshold(), kNegInf);
  set.Update(MakeMatch(1, 5.0, 5.0), true);
  EXPECT_EQ(set.Threshold(), kNegInf);  // only one root
  set.Update(MakeMatch(2, 3.0, 3.0), true);
  EXPECT_EQ(set.Threshold(), 3.0);  // kth best = 3
}

TEST(TopKSetTest, ThresholdIsKthBest) {
  TopKSet set(2);
  set.Update(MakeMatch(1, 5.0, 5.0), true);
  set.Update(MakeMatch(2, 3.0, 3.0), true);
  set.Update(MakeMatch(3, 4.0, 4.0), true);
  EXPECT_EQ(set.Threshold(), 4.0);
}

TEST(TopKSetTest, OneEntryPerRootKeepsBest) {
  TopKSet set(2);
  set.Update(MakeMatch(1, 2.0, 9.0), false);
  set.Update(MakeMatch(1, 6.0, 9.0), false);
  set.Update(MakeMatch(1, 4.0, 9.0), false);  // lower than best; ignored
  set.Update(MakeMatch(2, 1.0, 1.0), true);
  EXPECT_EQ(set.Threshold(), 1.0);
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].root, 1u);
  EXPECT_EQ(answers[0].score, 6.0);
}

TEST(TopKSetTest, AliveSemantics) {
  TopKSet set(1);
  EXPECT_TRUE(set.Alive(MakeMatch(9, 0.0, 0.0)));  // not full: everything alive
  set.Update(MakeMatch(1, 5.0, 5.0), true);
  EXPECT_TRUE(set.Alive(MakeMatch(9, 0.0, 5.5)));   // can beat
  EXPECT_FALSE(set.Alive(MakeMatch(9, 0.0, 5.0)));  // tie cannot displace
  EXPECT_FALSE(set.Alive(MakeMatch(9, 0.0, 4.0)));  // cannot beat
}

TEST(TopKSetTest, PartialsIgnoredWhenDisabled) {
  TopKSet set(1, /*update_partials=*/false);
  set.Update(MakeMatch(1, 7.0, 7.0), /*complete=*/false);
  EXPECT_EQ(set.NumRoots(), 0u);
  set.Update(MakeMatch(1, 6.0, 6.0), /*complete=*/true);
  EXPECT_EQ(set.NumRoots(), 1u);
  EXPECT_EQ(set.Threshold(), 6.0);
}

TEST(TopKSetTest, FrozenThresholdIgnoresUpdates) {
  TopKSet set(1);
  set.FreezeThreshold(0.42);
  EXPECT_EQ(set.Threshold(), 0.42);
  set.Update(MakeMatch(1, 99.0, 99.0), true);
  EXPECT_EQ(set.Threshold(), 0.42);
  EXPECT_TRUE(set.Alive(MakeMatch(2, 0.0, 0.5)));
  EXPECT_FALSE(set.Alive(MakeMatch(2, 0.0, 0.3)));
  // Answers are still recorded under a frozen threshold.
  EXPECT_EQ(set.Finalize().size(), 1u);
}

TEST(TopKSetTest, FinalizeSortsByScoreThenRoot) {
  TopKSet set(3);
  set.Update(MakeMatch(5, 2.0, 2.0), true);
  set.Update(MakeMatch(3, 2.0, 2.0), true);
  set.Update(MakeMatch(4, 7.0, 7.0), true);
  set.Update(MakeMatch(9, 1.0, 1.0), true);
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_EQ(answers[0].root, 4u);
  EXPECT_EQ(answers[1].root, 3u);  // tie broken by root id
  EXPECT_EQ(answers[2].root, 5u);
}

TEST(TopKSetTest, FinalizeTruncatesToK) {
  TopKSet set(2);
  for (NodeId r = 1; r <= 10; ++r) set.Update(MakeMatch(r, r * 1.0, r * 1.0), true);
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].score, 10.0);
  EXPECT_EQ(answers[1].score, 9.0);
}

TEST(TopKSetTest, CompleteWitnessPreferredAtEqualScore) {
  TopKSet set(1);
  PartialMatch partial = MakeMatch(1, 3.0, 5.0);
  partial.bindings = {1, xml::kInvalidNode};
  partial.levels = {MatchLevel::kExact, MatchLevel::kDeleted};
  set.Update(partial, false);
  PartialMatch complete = MakeMatch(1, 3.0, 3.0);
  complete.bindings = {1, 42};
  complete.levels = {MatchLevel::kExact, MatchLevel::kExact};
  set.Update(complete, true);
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 1u);
  ASSERT_EQ(answers[0].bindings.size(), 2u);
  EXPECT_EQ(answers[0].bindings[1], 42u);
}

TEST(TopKSetTest, ThresholdMonotoneNonDecreasing) {
  TopKSet set(3);
  double prev = kNegInf;
  for (int i = 0; i < 200; ++i) {
    set.Update(MakeMatch(static_cast<NodeId>(i % 17), (i * 37) % 100 / 10.0, 100.0),
               (i % 3) == 0);
    double t = set.Threshold();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(TopKSetTest, ConcurrentUpdatesKeepConsistency) {
  TopKSet set(5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&set, t] {
      for (int i = 0; i < 500; ++i) {
        NodeId root = static_cast<NodeId>((t * 500 + i) % 37);
        double score = ((i * 13 + t * 7) % 100) / 10.0;
        set.Update(MakeMatch(root, score, score + 1), i % 2 == 0);
        set.Threshold();
        set.Alive(MakeMatch(root, 0, score));
      }
    });
  }
  for (auto& th : threads) th.join();
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 5u);
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_GE(answers[i - 1].score, answers[i].score);
  }
  // Max achievable score in the generator above is 9.9.
  EXPECT_EQ(answers[0].score, 9.9);
}

}  // namespace
}  // namespace whirlpool::exec
