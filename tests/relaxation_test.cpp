// Property tests for the relaxation framework: every relaxation step only
// ever GROWS the answer set (containment, paper Sec 2: "relaxations capture
// approximate answers but still guarantee that exact matches to the original
// query continue to be matches to the relaxed query").
#include <gtest/gtest.h>

#include <algorithm>

#include "index/tag_index.h"
#include "query/matcher.h"
#include "query/tree_pattern.h"
#include "util/rng.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool::query {
namespace {

using index::TagIndex;
using xml::NodeId;

bool IsSubset(std::vector<NodeId> a, std::vector<NodeId> b) {
  // EvaluatePattern returns document order, which need not be arena-id
  // order; sort both before the subset check.
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Applies every applicable single relaxation to `q` and returns the results.
std::vector<TreePattern> AllSingleRelaxations(const TreePattern& q) {
  std::vector<TreePattern> out;
  for (int i = 1; i < static_cast<int>(q.size()); ++i) {
    if (auto r = q.EdgeGeneralization(i); r.ok()) out.push_back(std::move(r).value());
    if (auto r = q.LeafDeletion(i); r.ok()) out.push_back(std::move(r).value());
    if (auto r = q.SubtreePromotion(i); r.ok()) out.push_back(std::move(r).value());
  }
  return out;
}

struct RelaxCase {
  const char* name;
  const char* xpath;
};

class RelaxationContainmentTest : public ::testing::TestWithParam<RelaxCase> {};

TEST_P(RelaxationContainmentTest, SingleStepGrowsAnswerSetOnXMark) {
  xmlgen::XMarkOptions opts;
  opts.seed = 1234;
  opts.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);

  auto q = ParseXPath(GetParam().xpath);
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<NodeId> base = EvaluatePattern(idx, *q);

  for (const TreePattern& relaxed : AllSingleRelaxations(*q)) {
    std::vector<NodeId> grown = EvaluatePattern(idx, relaxed);
    ASSERT_TRUE(IsSubset(base, grown))
        << "relaxation lost answers: " << q->ToString() << " -> "
        << relaxed.ToString();
  }
}

TEST_P(RelaxationContainmentTest, RandomCompositionsGrowMonotonically) {
  xmlgen::XMarkOptions opts;
  opts.seed = 777;
  opts.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);

  auto q = ParseXPath(GetParam().xpath);
  ASSERT_TRUE(q.ok());

  Rng rng(GetParam().xpath[3]);  // any stable per-case seed
  for (int trial = 0; trial < 5; ++trial) {
    TreePattern current = *q;
    std::vector<NodeId> prev = EvaluatePattern(idx, current);
    for (int step = 0; step < 6; ++step) {
      std::vector<TreePattern> options = AllSingleRelaxations(current);
      if (options.empty()) break;
      current = options[rng.Uniform(options.size())];
      std::vector<NodeId> next = EvaluatePattern(idx, current);
      ASSERT_TRUE(IsSubset(prev, next))
          << "composition step " << step << " lost answers for "
          << current.ToString();
      prev = std::move(next);
    }
  }
}

TEST_P(RelaxationContainmentTest, FullyRelaxedIsSuperset) {
  xmlgen::XMarkOptions opts;
  opts.seed = 31;
  opts.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);

  auto q = ParseXPath(GetParam().xpath);
  ASSERT_TRUE(q.ok());
  std::vector<NodeId> base = EvaluatePattern(idx, *q);
  std::vector<NodeId> full = EvaluatePattern(idx, q->FullyRelaxed());
  EXPECT_TRUE(IsSubset(base, full));
  // The fully relaxed query (all nodes optional) accepts every root
  // candidate.
  EXPECT_EQ(full.size(), RootCandidates(idx, *q).size());
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, RelaxationContainmentTest,
    ::testing::Values(
        RelaxCase{"Q1", "//item[./description/parlist]"},
        RelaxCase{"Q2", "//item[./description/parlist and ./mailbox/mail/text]"},
        RelaxCase{"Q3",
                  "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and "
                  "./incategory]"},
        RelaxCase{"DeepChain", "//item[./description/parlist/listitem/text]"},
        RelaxCase{"Keyword", "//item[./mailbox/mail/text/keyword = 'bargain']"}),
    [](const ::testing::TestParamInfo<RelaxCase>& info) { return info.param.name; });

TEST(RelaxationSemanticsTest, EdgeGeneralizationFindsNestedParlist) {
  // Hand-built: description -> text -> parlist is NOT a pc match but IS an
  // ad match after generalizing the (description, parlist) edge.
  xml::Document doc;
  NodeId item = doc.AddChild(doc.root(), "item");
  NodeId descr = doc.AddChild(item, "description");
  NodeId text = doc.AddChild(descr, "text");
  doc.AddChild(text, "parlist");
  doc.Finalize();
  TagIndex idx(doc);

  auto q = ParseXPath("//item[./description/parlist]");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(EvaluatePattern(idx, *q).empty());
  auto relaxed = q->EdgeGeneralization(2);  // (description, parlist) edge
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(EvaluatePattern(idx, *relaxed).size(), 1u);
}

TEST(RelaxationSemanticsTest, PromotionFindsSiblingSubtree) {
  // publisher under book directly (Fig 1b): pc(info, publisher) fails but
  // promoting publisher to book succeeds.
  auto doc = xmlgen::Figure1Bookstore();
  TagIndex idx(*doc);
  auto q = ParseXPath("/book[./info/publisher/name='psmith']");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(EvaluatePattern(idx, *q).size(), 1u);  // book (a) only
  // Promote publisher subtree to hang off book.
  auto promoted = q->SubtreePromotion(2);
  ASSERT_TRUE(promoted.ok());
  auto with_info_deleted = promoted->LeafDeletion(1);
  ASSERT_TRUE(with_info_deleted.ok());
  EXPECT_EQ(EvaluatePattern(idx, *with_info_deleted).size(), 2u);  // books a, b
}

}  // namespace
}  // namespace whirlpool::query
