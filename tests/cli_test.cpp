#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tools/cli.h"

namespace whirlpool::cli {
namespace {

struct CliRun {
  Status status;
  std::string output;
};

CliRun RunArgs(std::vector<std::string> args) {
  std::ostringstream out;
  Status st = RunCli(args, out);
  return {st, out.str()};
}

/// Writes a small fixture XML file and removes it on destruction.
class TempXmlFile {
 public:
  explicit TempXmlFile(const std::string& content) {
    path_ = std::string(::testing::TempDir()) + "cli_test_fixture.xml";
    std::ofstream f(path_);
    f << content;
  }
  ~TempXmlFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CliTest, HelpPrintsUsage) {
  auto r = RunArgs({"help"});
  EXPECT_TRUE(r.status.ok());
  EXPECT_NE(r.output.find("usage: whirlpool"), std::string::npos);
  EXPECT_TRUE(RunArgs({}).status.ok());
}

TEST(CliTest, UnknownCommandFails) {
  auto r = RunArgs({"frobnicate"});
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, UnknownFlagFails) {
  auto r = RunArgs({"generate", "--bytes=1024", "--bogus=1"});
  ASSERT_FALSE(r.status.ok());
  EXPECT_NE(r.status.message().find("bogus"), std::string::npos);
}

TEST(CliTest, GenerateEmitsParseableXml) {
  auto r = RunArgs({"generate", "--bytes=8192", "--seed=5"});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("<site>"), std::string::npos);
  EXPECT_NE(r.output.find("<item"), std::string::npos);
}

TEST(CliTest, GenerateToFile) {
  std::string path = std::string(::testing::TempDir()) + "cli_gen.xml";
  auto r = RunArgs({"generate", "--bytes=4096", "--out=" + path});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("wrote"), std::string::npos);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::remove(path.c_str());
}

TEST(CliTest, InspectGeneratedDocument) {
  auto r = RunArgs({"inspect", "--generate-kb=16", "--top=5"});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("nodes:"), std::string::npos);
  EXPECT_NE(r.output.find("top tags:"), std::string::npos);
}

TEST(CliTest, InspectRequiresExactlyOneSource) {
  EXPECT_FALSE(RunArgs({"inspect"}).status.ok());
  EXPECT_FALSE(RunArgs({"inspect", "--xml=a.xml", "--generate-kb=1"}).status.ok());
}

TEST(CliTest, QueryOnFixtureFile) {
  TempXmlFile fixture(
      "<lib>"
      "<book><title>wodehouse</title><isbn>1</isbn></book>"
      "<book><title>other</title></book>"
      "</lib>");
  auto r = RunArgs({"query", "--xml=" + fixture.path(),
                "--xpath=/book[./title='wodehouse' and ./isbn]", "--k=2",
                "--show-metrics"});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("#1 score="), std::string::npos);
  EXPECT_NE(r.output.find("metrics:"), std::string::npos);
}

TEST(CliTest, QueryCsvFormat) {
  auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]", "--k=3",
                "--format=csv"});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("rank,score,dewey,name_level"), std::string::npos);
  // header + 3 rows
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 4);
}

TEST(CliTest, QueryAllEnginesAgreeOnTopScore) {
  std::string first_line;
  for (const char* engine : {"ws", "wm", "lockstep", "noprun"}) {
    auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./description/parlist]",
                  "--k=1", "--format=csv", std::string("--engine=") + engine});
    ASSERT_TRUE(r.status.ok()) << engine << ": " << r.status;
    std::string row = r.output.substr(r.output.find('\n') + 1);
    std::string score = row.substr(row.find(',') + 1);
    score = score.substr(0, score.find(','));
    if (first_line.empty()) first_line = score;
    else EXPECT_EQ(score, first_line) << engine;
  }
}

TEST(CliTest, QueryExactSemanticsAndSumAggregation) {
  auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./description/parlist]",
                "--semantics=exact", "--aggregation=sum", "--k=3"});
  ASSERT_TRUE(r.status.ok()) << r.status;
}

TEST(CliTest, QueryRejectsBadEnumValues) {
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item", "--engine=warp"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item", "--norm=loud"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item", "--k=0"}).status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item", "--format=yaml"})
                   .status.ok());
}

TEST(CliTest, QueryFailpointAndDeadlineFlags) {
  // A schedule-only plan with a pinned seed: the run must succeed and, with
  // --metrics-json, surface the per-failpoint counters.
  const std::string mj = std::string(::testing::TempDir()) + "cli_fp_metrics.json";
  auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]", "--k=3",
                    "--failpoints=ws.step=yield(every=2),topk.update=yield",
                    "--failpoint-seed=11", "--metrics-json=" + mj});
  ASSERT_TRUE(r.status.ok()) << r.status;
  std::ifstream f(mj);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("\"failpoints\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"ws.step\""), std::string::npos);
  std::remove(mj.c_str());

  // A deadline tight enough to trip under forced stalls: the text output
  // must carry the approximate-answer banner with the bound.
  auto dl = RunArgs({"query", "--generate-kb=64", "--xpath=//item[./name]", "--k=3",
                     "--failpoints=ws.step=sleep(400)", "--deadline-ms=0.2"});
  ASSERT_TRUE(dl.status.ok()) << dl.status;
  EXPECT_NE(dl.output.find("approximate: deadline expired"), std::string::npos)
      << dl.output;
  EXPECT_NE(dl.output.find("score_bound="), std::string::npos);
}

TEST(CliTest, QueryRejectsBadFailpointAndDeadlineFlags) {
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item",
                        "--failpoints=no.such.site=yield"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item",
                        "--failpoints=ws.step=explode"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item",
                        "--deadline-ms=-5"})
                   .status.ok());
  // An injected error must come back as a clean Status naming the site
  // (two-node pattern: a single-node query completes at generation and
  // never reaches the step boundary).
  auto err = RunArgs({"query", "--generate-kb=8", "--xpath=//item[./name]",
                      "--failpoints=ws.step=error(once)"});
  ASSERT_FALSE(err.status.ok());
  EXPECT_NE(err.status.message().find("injected error"), std::string::npos)
      << err.status.message();
}

TEST(CliTest, QueryRequiresXPath) {
  auto r = RunArgs({"query", "--generate-kb=4"});
  ASSERT_FALSE(r.status.ok());
  EXPECT_NE(r.status.message().find("xpath"), std::string::npos);
}

TEST(CliTest, QueryBadXPathSurfacesParseError) {
  auto r = RunArgs({"query", "--generate-kb=4", "--xpath=item["});
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kParseError);
}

TEST(CliTest, MissingFileSurfacesNotFound) {
  auto r = RunArgs({"query", "--xml=/definitely/not/here.xml", "--xpath=//a"});
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST(CliTest, SnapshotRoundTripThroughCli) {
  std::string snap = std::string(::testing::TempDir()) + "cli_snap.bin";
  auto gen = RunArgs({"generate", "--bytes=8192", "--snapshot-out=" + snap});
  ASSERT_TRUE(gen.status.ok()) << gen.status;
  auto direct = RunArgs({"query", "--generate-kb=8",
                         "--xpath=//item[./description/parlist]", "--k=3",
                         "--format=csv"});
  auto via_snap = RunArgs({"query", "--snapshot=" + snap,
                           "--xpath=//item[./description/parlist]", "--k=3",
                           "--format=csv"});
  ASSERT_TRUE(direct.status.ok()) << direct.status;
  ASSERT_TRUE(via_snap.status.ok()) << via_snap.status;
  // generate --bytes=8192 and --generate-kb=8 build the same corpus (same
  // default seed), so scores must agree exactly.
  EXPECT_EQ(direct.output, via_snap.output);
  std::remove(snap.c_str());
}

TEST(CliTest, ThresholdModeReturnsAllAboveBar) {
  auto all = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]",
                      "--threshold=0.0", "--format=csv"});
  ASSERT_TRUE(all.status.ok()) << all.status;
  auto none = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]",
                       "--threshold=99.0", "--format=csv"});
  ASSERT_TRUE(none.status.ok()) << none.status;
  const auto rows = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n') - 1;  // minus header
  };
  EXPECT_GT(rows(all.output), 10);
  EXPECT_EQ(rows(none.output), 0);
}

TEST(CliTest, QueryWritesTraceAndMetricsJson) {
  const std::string trace = std::string(::testing::TempDir()) + "cli_trace.json";
  const std::string metrics = std::string(::testing::TempDir()) + "cli_metrics.json";
  auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]",
                    "--k=3", "--engine=wm", "--trace=" + trace,
                    "--metrics-json=" + metrics});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("trace events"), std::string::npos);

  const auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  };
  const std::string trace_json = slurp(trace);
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"server_op\""), std::string::npos);
  const std::string metrics_json = slurp(metrics);
  EXPECT_NE(metrics_json.find("\"server_operations\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"p99_us\""), std::string::npos);
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST(CliTest, QueryTelemetryFlagsWriteCounterTracksAndTimeseries) {
  const std::string trace = std::string(::testing::TempDir()) + "cli_tel_trace.json";
  const std::string metrics = std::string(::testing::TempDir()) + "cli_tel_metrics.json";
  auto r = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]",
                    "--k=3", "--engine=wm", "--telemetry-interval-us=200",
                    "--trace=" + trace, "--metrics-json=" + metrics});
  ASSERT_TRUE(r.status.ok()) << r.status;
  const auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  };
  // Counter tracks ride in the Chrome trace; the sampler's final flush
  // guarantees at least one sample even on a sub-interval run.
  const std::string trace_json = slurp(trace);
  EXPECT_NE(trace_json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"threshold\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"queue_depth.router\""), std::string::npos);
  const std::string metrics_json = slurp(metrics);
  EXPECT_NE(metrics_json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"series\""), std::string::npos);
  std::remove(trace.c_str());
  std::remove(metrics.c_str());

  // --telemetry alone selects the default 1 ms interval.
  auto def = RunArgs({"query", "--generate-kb=16", "--xpath=//item[./name]",
                      "--k=3", "--telemetry", "--metrics-json=" + metrics});
  ASSERT_TRUE(def.status.ok()) << def.status;
  EXPECT_NE(slurp(metrics).find("\"timeseries\""), std::string::npos);
  std::remove(metrics.c_str());
}

TEST(CliTest, QueryPostMortemFlagWritesDumpOnDegradedRun) {
  const std::string pm = std::string(::testing::TempDir()) + "cli_postmortem.txt";
  auto r = RunArgs({"query", "--generate-kb=64", "--xpath=//item[./name]",
                    "--k=3", "--failpoints=ws.step=sleep(400)",
                    "--deadline-ms=0.2", "--telemetry-interval-us=100",
                    "--postmortem=" + pm});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("approximate: deadline expired"), std::string::npos)
      << r.output;
  std::ifstream f(pm);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("whirlpool post-mortem: deadline expired"),
            std::string::npos)
      << buf.str();
  EXPECT_NE(buf.str().find("=== end post-mortem ==="), std::string::npos);
  std::remove(pm.c_str());
}

TEST(CliTest, QueryRejectsBadTelemetryFlags) {
  // Zero/negative interval at the flag layer; sub-floor interval and a
  // post-mortem path without telemetry at the shared options validator.
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item[./name]",
                        "--telemetry-interval-us=0"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item[./name]",
                        "--telemetry-interval-us=-50"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item[./name]",
                        "--telemetry-interval-us=5"})
                   .status.ok());
  EXPECT_FALSE(RunArgs({"query", "--generate-kb=4", "--xpath=//item[./name]",
                        "--postmortem=pm.txt"})
                   .status.ok());
}

TEST(CliTest, ExplainShowsModelAndServers) {
  auto r = RunArgs({"explain", "--generate-kb=16",
                "--xpath=//item[./description/parlist and ./name]"});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.output.find("pattern: item["), std::string::npos);
  EXPECT_NE(r.output.find("scoring model"), std::string::npos);
  EXPECT_NE(r.output.find("avg_candidates/root="), std::string::npos);
  EXPECT_NE(r.output.find("root candidates:"), std::string::npos);
}

}  // namespace
}  // namespace whirlpool::cli
