// Coverage for the small display helpers: enum names, PartialMatch and
// MetricsSnapshot rendering, option predicates.
#include <gtest/gtest.h>

#include "exec/metrics.h"
#include "exec/options.h"
#include "exec/partial_match.h"

namespace whirlpool::exec {
namespace {

TEST(NamesTest, EngineKindNames) {
  EXPECT_STREQ(EngineKindName(EngineKind::kWhirlpoolS), "Whirlpool-S");
  EXPECT_STREQ(EngineKindName(EngineKind::kWhirlpoolM), "Whirlpool-M");
  EXPECT_STREQ(EngineKindName(EngineKind::kLockStep), "LockStep");
  EXPECT_STREQ(EngineKindName(EngineKind::kLockStepNoPrun), "LockStep-NoPrun");
}

TEST(NamesTest, RoutingStrategyNames) {
  EXPECT_STREQ(RoutingStrategyName(RoutingStrategy::kStatic), "static");
  EXPECT_STREQ(RoutingStrategyName(RoutingStrategy::kMaxScore), "max_score");
  EXPECT_STREQ(RoutingStrategyName(RoutingStrategy::kMinScore), "min_score");
  EXPECT_STREQ(RoutingStrategyName(RoutingStrategy::kMinAlive),
               "min_alive_partial_matches");
}

TEST(NamesTest, QueuePolicyNames) {
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kFifo), "fifo");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kCurrentScore), "current_score");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kMaxNextScore),
               "max_possible_next_score");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kMaxFinalScore),
               "max_possible_final_score");
}

TEST(NamesTest, SemanticsAndAggregationNames) {
  EXPECT_STREQ(MatchSemanticsName(MatchSemantics::kRelaxed), "relaxed");
  EXPECT_STREQ(MatchSemanticsName(MatchSemantics::kExact), "exact");
  EXPECT_STREQ(ScoreAggregationName(ScoreAggregation::kMaxTuple), "max_tuple");
  EXPECT_STREQ(ScoreAggregationName(ScoreAggregation::kSumWitnesses),
               "sum_witnesses");
}

TEST(NamesTest, MatchLevelNames) {
  EXPECT_STREQ(score::MatchLevelName(score::MatchLevel::kExact), "exact");
  EXPECT_STREQ(score::MatchLevelName(score::MatchLevel::kEdgeGeneralized), "edge-gen");
  EXPECT_STREQ(score::MatchLevelName(score::MatchLevel::kPromoted), "promoted");
  EXPECT_STREQ(score::MatchLevelName(score::MatchLevel::kDeleted), "deleted");
}

TEST(ToStringTest, PartialMatchRendersBindings) {
  PartialMatch m;
  m.bindings = {7, 42, xml::kInvalidNode};
  m.levels = {MatchLevel::kExact, MatchLevel::kEdgeGeneralized, MatchLevel::kDeleted};
  m.current_score = 1.5;
  m.max_final_score = 2.5;
  m.visited_mask = 0x1;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("root=7"), std::string::npos);
  EXPECT_NE(s.find("42:edge-gen"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);  // the unbound slot
  EXPECT_NE(s.find("score=1.5"), std::string::npos);
}

TEST(ToStringTest, MetricsSnapshotRendersCounters) {
  MetricsSnapshot s;
  s.server_operations = 10;
  s.predicate_comparisons = 20;
  s.matches_created = 30;
  s.matches_pruned = 5;
  s.matches_completed = 3;
  s.routing_decisions = 9;
  s.wall_seconds = 0.25;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("ops=10"), std::string::npos);
  EXPECT_NE(text.find("cmps=20"), std::string::npos);
  EXPECT_NE(text.find("created=30"), std::string::npos);
  EXPECT_NE(text.find("pruned=5"), std::string::npos);
  EXPECT_NE(text.find("routed=9"), std::string::npos);
}

TEST(OptionsTest, ThresholdPredicates) {
  ExecOptions opts;
  EXPECT_FALSE(opts.has_frozen_threshold());
  EXPECT_FALSE(opts.has_min_score_threshold());
  opts.frozen_threshold = 0.0;
  EXPECT_TRUE(opts.has_frozen_threshold());
  opts.min_score_threshold = 2.0;
  EXPECT_TRUE(opts.has_min_score_threshold());
}

TEST(PartialMatchTest, CompletenessByMask) {
  PartialMatch m;
  m.bindings = {1};
  m.levels = {MatchLevel::kExact};
  m.visited_mask = 0;
  EXPECT_TRUE(m.IsComplete(0));
  EXPECT_FALSE(m.IsComplete(2));
  m.visited_mask = 0x3;
  EXPECT_TRUE(m.IsComplete(2));
  EXPECT_TRUE(m.Visited(0));
  EXPECT_TRUE(m.Visited(1));
  EXPECT_FALSE(m.Visited(2));
}

}  // namespace
}  // namespace whirlpool::exec
