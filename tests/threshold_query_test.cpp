// Threshold queries (ExecOptions::min_score_threshold): return every answer
// scoring at least T — the mode of the paper's EDBT'02 predecessor, kept as
// a first-class feature. Checked against a brute-force oracle and across
// engines.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/engine.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::ClassifyBinding;
using score::Normalization;
using score::ScoringModel;

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  ScoringModel scoring;
  std::unique_ptr<QueryPlan> plan;

  static Fixture Make(const char* xpath, uint64_t seed = 4040) {
    Fixture f;
    xmlgen::XMarkOptions gen;
    gen.seed = seed;
    gen.target_bytes = 24 << 10;
    f.doc = xmlgen::GenerateXMark(gen);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok());
    f.pattern = std::move(q).value();
    f.scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, Normalization::kSparse);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, f.scoring);
    EXPECT_TRUE(plan.ok());
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return f;
  }

  double OracleScore(xml::NodeId root) const {
    double total = 0.0;
    for (int qi = 1; qi < static_cast<int>(pattern.size()); ++qi) {
      const auto& pn = pattern.node(qi);
      xml::TagId tag = doc->tags().Lookup(pn.tag);
      if (tag == xml::kInvalidTag) continue;
      auto chain = pattern.Chain(0, qi);
      auto cands = pn.value ? idx->DescendantsWithTagValue(root, tag, *pn.value)
                            : idx->DescendantsWithTag(root, tag);
      double best = 0.0;
      for (xml::NodeId c : cands) {
        best = std::max(best, scoring.predicate(qi).Contribution(
                                  ClassifyBinding(*idx, root, c, chain)));
      }
      total += best;
    }
    return total;
  }

  std::vector<xml::NodeId> OracleAboveThreshold(double threshold) const {
    std::vector<xml::NodeId> out;
    for (xml::NodeId r : query::RootCandidates(*idx, pattern)) {
      if (OracleScore(r) >= threshold) out.push_back(r);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

class ThresholdQueryTest : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdQueryTest, MatchesOracleAcrossEngines) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./name]");
  const double threshold = GetParam();
  const std::vector<xml::NodeId> expected = f.OracleAboveThreshold(threshold);
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 1000000;
    opts.min_score_threshold = threshold;
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    std::vector<xml::NodeId> roots;
    for (const auto& a : r->answers) {
      EXPECT_GE(a.score, threshold) << EngineKindName(kind);
      roots.push_back(a.root);
    }
    std::sort(roots.begin(), roots.end());
    ASSERT_EQ(roots, expected) << EngineKindName(kind) << " T=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdQueryTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 99.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           std::string n = std::to_string(info.param);
                           std::replace(n.begin(), n.end(), '.', '_');
                           return "T" + n.substr(0, n.find('_') + 2);
                         });

TEST(ThresholdQueryBasicTest, ZeroThresholdReturnsEveryRoot) {
  Fixture f = Fixture::Make("//item[./name]");
  ExecOptions opts;
  opts.k = 1000000;
  opts.min_score_threshold = 0.0;
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), f.idx->Nodes("item").size());
}

TEST(ThresholdQueryBasicTest, UnreachableThresholdPrunesImmediately) {
  Fixture f = Fixture::Make("//item[./name]");
  ExecOptions opts;
  opts.min_score_threshold = 1e9;
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
  EXPECT_EQ(r->metrics.server_operations, 0u);  // every root pruned at birth
}

TEST(ThresholdQueryBasicTest, KStillCapsAnswerCount) {
  Fixture f = Fixture::Make("//item[./name]");
  ExecOptions opts;
  opts.k = 4;
  opts.min_score_threshold = 0.0;
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), 4u);
}

TEST(ThresholdQueryBasicTest, MutuallyExclusiveWithFrozenThreshold) {
  Fixture f = Fixture::Make("//item[./name]");
  ExecOptions opts;
  opts.min_score_threshold = 1.0;
  opts.frozen_threshold = 1.0;
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep}) {
    opts.engine = kind;
    EXPECT_FALSE(RunTopK(*f.plan, opts).ok()) << EngineKindName(kind);
  }
}

TEST(ThresholdQueryBasicTest, PrunesMoreAtHigherThresholds) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  uint64_t prev_created = ~0ull;
  for (double threshold : {0.0, 2.0, 4.0, 5.0}) {
    ExecOptions opts;
    opts.k = 1000000;
    opts.min_score_threshold = threshold;
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->metrics.matches_created, prev_created) << "T=" << threshold;
    prev_created = r->metrics.matches_created;
  }
}

}  // namespace
}  // namespace whirlpool::exec
