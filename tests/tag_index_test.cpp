#include <gtest/gtest.h>

#include <algorithm>

#include "index/tag_index.h"
#include "xml/parser.h"
#include "xmlgen/xmark.h"

namespace whirlpool::index {
namespace {

using xml::NodeId;

class TagIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = xml::ParseDocument(R"(
      <lib>
        <book><title>alpha</title><author>x</author></book>
        <book><title>beta</title>
          <chapter><title>beta-one</title></chapter>
        </book>
        <journal><title>gamma</title></journal>
      </lib>)");
    ASSERT_TRUE(r.ok()) << r.status();
    doc_ = std::move(r).value();
    idx_ = std::make_unique<TagIndex>(*doc_);
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<TagIndex> idx_;
};

TEST_F(TagIndexTest, NodesByTag) {
  EXPECT_EQ(idx_->Nodes("book").size(), 2u);
  EXPECT_EQ(idx_->Nodes("title").size(), 4u);
  EXPECT_EQ(idx_->Nodes("journal").size(), 1u);
  EXPECT_TRUE(idx_->Nodes("missing").empty());
}

TEST_F(TagIndexTest, PostingListsAreInDocumentOrder) {
  const auto& titles = idx_->Nodes("title");
  for (size_t i = 1; i < titles.size(); ++i) {
    EXPECT_LT(doc_->node(titles[i - 1]).order, doc_->node(titles[i]).order);
  }
}

TEST_F(TagIndexTest, NodesWithValue) {
  EXPECT_EQ(idx_->NodesWithValue("title", "alpha").size(), 1u);
  EXPECT_EQ(idx_->NodesWithValue("title", "nothere").size(), 0u);
  EXPECT_EQ(idx_->NodesWithValue("author", "x").size(), 1u);
}

TEST_F(TagIndexTest, DescendantsWithTag) {
  xml::TagId title = doc_->tags().Lookup("title");
  const auto& books = idx_->Nodes("book");
  // Book 1 has one title; book 2 has two (own + chapter's).
  EXPECT_EQ(idx_->DescendantsWithTag(books[0], title).size(), 1u);
  EXPECT_EQ(idx_->DescendantsWithTag(books[1], title).size(), 2u);
  EXPECT_EQ(idx_->CountDescendantsWithTag(books[1], title), 2u);
}

TEST_F(TagIndexTest, DescendantsWithTagValue) {
  xml::TagId title = doc_->tags().Lookup("title");
  const auto& books = idx_->Nodes("book");
  EXPECT_EQ(idx_->DescendantsWithTagValue(books[1], title, "beta-one").size(), 1u);
  EXPECT_EQ(idx_->DescendantsWithTagValue(books[0], title, "beta-one").size(), 0u);
}

TEST_F(TagIndexTest, ChildrenWithTag) {
  xml::TagId title = doc_->tags().Lookup("title");
  const auto& books = idx_->Nodes("book");
  EXPECT_EQ(idx_->ChildrenWithTag(books[1], title).size(), 1u);  // not chapter's
}

TEST_F(TagIndexTest, DescendantsOfLeafIsEmpty) {
  xml::TagId title = doc_->tags().Lookup("title");
  NodeId leaf = idx_->Nodes("author")[0];
  EXPECT_TRUE(idx_->DescendantsWithTag(leaf, title).empty());
}

TEST_F(TagIndexTest, RootSeesEverything) {
  xml::TagId title = doc_->tags().Lookup("title");
  EXPECT_EQ(idx_->DescendantsWithTag(doc_->root(), title).size(), 4u);
}

TEST_F(TagIndexTest, StatsCountMatchesPostingList) {
  xml::TagId title = doc_->tags().Lookup("title");
  TagStats s = idx_->Stats(title);
  EXPECT_EQ(s.count, 4u);
  EXPECT_GT(s.avg_fanout_under_ancestor, 0.0);
  EXPECT_EQ(idx_->Stats(xml::kInvalidTag).count, 0u);
}

TEST_F(TagIndexTest, ValueIndexingCanBeDisabled) {
  TagIndex no_values(*doc_, /*index_values=*/false);
  EXPECT_TRUE(no_values.NodesWithValue("title", "alpha").empty());
  EXPECT_EQ(no_values.Nodes("title").size(), 4u);
}

/// Property test: DescendantsWithTag == brute-force scan, on generated docs.
class TagIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TagIndexPropertyTest, DescendantRangeMatchesBruteForce) {
  xmlgen::XMarkOptions opts;
  opts.seed = GetParam();
  opts.target_bytes = 16 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);

  const std::vector<std::string> tags = {"item", "parlist", "text", "keyword", "name"};
  const auto& items = idx.Nodes("item");
  ASSERT_FALSE(items.empty());
  const size_t stride = std::max<size_t>(1, items.size() / 20);
  for (size_t i = 0; i < items.size(); i += stride) {
    NodeId anchor = items[i];
    for (const auto& tag_name : tags) {
      xml::TagId tag = doc->tags().Lookup(tag_name);
      if (tag == xml::kInvalidTag) continue;
      std::vector<NodeId> expected;
      for (NodeId d : doc->Descendants(anchor)) {
        if (doc->tag(d) == tag) expected.push_back(d);
      }
      ASSERT_EQ(idx.DescendantsWithTag(anchor, tag), expected)
          << "anchor=" << anchor << " tag=" << tag_name;
      ASSERT_EQ(idx.CountDescendantsWithTag(anchor, tag), expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TagIndexPropertyTest, ::testing::Values(4, 8, 23));

}  // namespace
}  // namespace whirlpool::index
