// WP_CHECK / WP_DCHECK (util/check.h): death behavior, message formatting,
// lazy evaluation of the streamed message, and the WP_DCHECK on/off split.
#include "util/check.h"

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/semaphore.h"
#include "util/thread_annotations.h"

namespace whirlpool {
namespace {

TEST(CheckTest, PassingCheckIsSilentAndReturnsNormally) {
  WP_CHECK(2 + 2 == 4) << "must not be evaluated";
  WP_CHECK(true);
  SUCCEED();
}

TEST(CheckTest, MessageNotEvaluatedWhenConditionHolds) {
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "msg";
  };
  WP_CHECK(1 == 1) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeathTest, FailingCheckAbortsWithLocationConditionAndMessage) {
  EXPECT_DEATH(WP_CHECK(1 == 2) << "context " << 42,
               "WP_CHECK failed at .*check_test.cpp:[0-9]+: 1 == 2 context 42");
}

TEST(CheckDeathTest, FailingCheckWithoutMessageStillReportsCondition) {
  EXPECT_DEATH(WP_CHECK(false), "WP_CHECK failed at .*: false");
}

#if WP_DCHECK_IS_ON
TEST(CheckDeathTest, DcheckAbortsWhenOn) {
  EXPECT_DEATH(WP_DCHECK(1 > 2) << "debug invariant", "1 > 2 debug invariant");
}
#else
TEST(CheckTest, DcheckCompiledOutNeitherAbortsNorEvaluates) {
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return false;
  };
  WP_DCHECK(touch()) << "never printed";
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(CheckTest, DcheckUsableInIfElseWithoutBraces) {
  // The statement form must not swallow a dangling else.
  bool reached_else = false;
  if (false)
    WP_DCHECK(true) << "then-branch";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

// The annotated primitives are mostly exercised implicitly by the engine
// tests; this covers the ProcessorCap Release-without-Acquire debug check
// and basic Mutex/CondVar behavior single-threaded.
TEST(MutexTest, MutexLockRoundTrip) {
  Mutex mu;
  int guarded GUARDED_BY(mu) = 0;
  {
    MutexLock lock(&mu);
    guarded = 7;
  }
  MutexLock lock(&mu);
  EXPECT_EQ(guarded, 7);
}

TEST(ProcessorCapTest, UnlimitedCapIsNoOp) {
  ProcessorCap cap;
  EXPECT_FALSE(cap.limited());
  cap.Acquire();
  cap.Release();  // no underflow check needed: unlimited mode short-circuits
  SUCCEED();
}

TEST(ProcessorCapTest, LimitedCapAcquireRelease) {
  ProcessorCap cap(2);
  EXPECT_TRUE(cap.limited());
  cap.Acquire();
  cap.Acquire();
  cap.Release();
  cap.Release();
  SUCCEED();
}

}  // namespace
}  // namespace whirlpool
