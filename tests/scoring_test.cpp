#include <gtest/gtest.h>

#include <cmath>

#include "index/tag_index.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool::score {
namespace {

using index::TagIndex;
using query::ParseXPath;
using query::TreePattern;
using xml::NodeId;

std::unique_ptr<xml::Document> MustParseDoc(std::string_view text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TreePattern MustParseQuery(std::string_view xpath) {
  auto r = ParseXPath(xpath);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Chain matching
// ---------------------------------------------------------------------------

class ChainMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // item -> description -> (text -> parlist#1), description -> parlist#2
    doc_ = MustParseDoc(
        "<item><description><text><parlist/></text><parlist/></description>"
        "<mailbox><mail><text/></mail></mailbox></item>");
    idx_ = std::make_unique<TagIndex>(*doc_);
    item_ = idx_->Nodes("item")[0];
    nested_parlist_ = idx_->Nodes("parlist")[0];   // under text
    direct_parlist_ = idx_->Nodes("parlist")[1];   // under description
    mail_text_ = idx_->Nodes("text")[1];
    q_ = MustParseQuery("//item[./description/parlist]");
    chain_ = q_.Chain(0, 2);  // description -> parlist
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<TagIndex> idx_;
  NodeId item_, nested_parlist_, direct_parlist_, mail_text_;
  TreePattern q_;
  std::vector<query::ChainStep> chain_;
};

TEST_F(ChainMatchTest, ExactChainMatch) {
  EXPECT_TRUE(MatchChainExact(*idx_, item_, direct_parlist_, chain_));
  EXPECT_FALSE(MatchChainExact(*idx_, item_, nested_parlist_, chain_));
}

TEST_F(ChainMatchTest, AllAdChainMatch) {
  EXPECT_TRUE(MatchChainAllAd(*idx_, item_, direct_parlist_, chain_));
  EXPECT_TRUE(MatchChainAllAd(*idx_, item_, nested_parlist_, chain_));
}

TEST_F(ChainMatchTest, ClassifyLevels) {
  EXPECT_EQ(ClassifyBinding(*idx_, item_, direct_parlist_, chain_), MatchLevel::kExact);
  EXPECT_EQ(ClassifyBinding(*idx_, item_, nested_parlist_, chain_),
            MatchLevel::kEdgeGeneralized);
  // A text node in the mailbox reached via a description/text chain: the
  // intermediate "description" tag is absent on its path => promoted only.
  auto q2 = MustParseQuery("//item[./description/text]");
  auto chain_text = q2.Chain(0, 2);
  EXPECT_EQ(ClassifyBinding(*idx_, item_, mail_text_, chain_text),
            MatchLevel::kPromoted);
}

TEST_F(ChainMatchTest, NonDescendantIsPromotedFallback) {
  // 'to' not under 'from' at all: CollectPath fails.
  EXPECT_EQ(ClassifyBinding(*idx_, direct_parlist_, item_, chain_),
            MatchLevel::kPromoted);
  EXPECT_FALSE(MatchChainExact(*idx_, direct_parlist_, item_, chain_));
}

TEST_F(ChainMatchTest, ValuePredicateOnFinalStepChecked) {
  auto doc = MustParseDoc("<a><b><c>v1</c><c>v2</c></b></a>");
  TagIndex idx(*doc);
  auto q = MustParseQuery("/a[./b/c = 'v1']");
  auto chain = q.Chain(0, 2);
  NodeId a = idx.Nodes("a")[0];
  EXPECT_TRUE(MatchChainExact(idx, a, idx.Nodes("c")[0], chain));
  EXPECT_FALSE(MatchChainExact(idx, a, idx.Nodes("c")[1], chain));
}

TEST_F(ChainMatchTest, AdAxisSkipsLevels) {
  auto doc = MustParseDoc("<a><x><y><b/></y></x></a>");
  TagIndex idx(*doc);
  auto q = MustParseQuery("/a[.//b]");
  auto chain = q.Chain(0, 1);
  EXPECT_TRUE(MatchChainExact(idx, idx.Nodes("a")[0], idx.Nodes("b")[0], chain));
}

TEST_F(ChainMatchTest, MixedAxisChain) {
  // /a[./m//b]: pc to m, then ad to b.
  auto doc = MustParseDoc("<a><m><z><b/></z></m><b/></a>");
  TagIndex idx(*doc);
  auto q = MustParseQuery("/a[./m//b]");
  auto chain = q.Chain(0, 2);
  NodeId a = idx.Nodes("a")[0];
  EXPECT_TRUE(MatchChainExact(idx, a, idx.Nodes("b")[0], chain));   // under m
  EXPECT_FALSE(MatchChainExact(idx, a, idx.Nodes("b")[1], chain));  // direct child
}

// ---------------------------------------------------------------------------
// idf / tf (Definitions 4.2-4.4)
// ---------------------------------------------------------------------------

class TfIdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 4 books: 3 have a title child, 1 has a deep title, 2 have isbn.
    doc_ = MustParseDoc(
        "<lib>"
        "<book><title>t</title><isbn>1</isbn></book>"
        "<book><title>t</title><title>t2</title></book>"
        "<book><title>t</title><isbn>2</isbn></book>"
        "<book><wrap><title>deep</title></wrap></book>"
        "</lib>");
    idx_ = std::make_unique<TagIndex>(*doc_);
  }
  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<TagIndex> idx_;
};

TEST_F(TfIdfTest, IdfMatchesDefinition) {
  TreePattern q = MustParseQuery("/book[./title and ./isbn]");
  TfIdfScorer scorer(*idx_, q);
  // 4 books; 3 satisfy pc(book,title); 2 satisfy pc(book,isbn).
  EXPECT_NEAR(scorer.Idf(1), std::log(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(scorer.Idf(2), std::log(4.0 / 2.0), 1e-12);
}

TEST_F(TfIdfTest, RarerPredicateHasHigherIdf) {
  TreePattern q = MustParseQuery("/book[./title and ./isbn]");
  TfIdfScorer scorer(*idx_, q);
  EXPECT_GT(scorer.Idf(2), scorer.Idf(1));  // isbn rarer than title
}

TEST_F(TfIdfTest, TfCountsDistinctWitnesses) {
  TreePattern q = MustParseQuery("/book[./title]");
  TfIdfScorer scorer(*idx_, q);
  const auto& books = idx_->Nodes("book");
  EXPECT_EQ(scorer.Tf(1, books[0]), 1u);
  EXPECT_EQ(scorer.Tf(1, books[1]), 2u);  // two title children
  EXPECT_EQ(scorer.Tf(1, books[3]), 0u);  // title is deep, pc fails
}

TEST_F(TfIdfTest, ScoreIsSumOfIdfTimesTf) {
  TreePattern q = MustParseQuery("/book[./title and ./isbn]");
  TfIdfScorer scorer(*idx_, q);
  const auto& books = idx_->Nodes("book");
  const double idf_title = scorer.Idf(1);
  const double idf_isbn = scorer.Idf(2);
  EXPECT_NEAR(scorer.Score(books[0]), idf_title + idf_isbn, 1e-12);
  EXPECT_NEAR(scorer.Score(books[1]), 2 * idf_title, 1e-12);
  EXPECT_NEAR(scorer.Score(books[3]), 0.0, 1e-12);
}

TEST_F(TfIdfTest, MoreWitnessesMeanHigherScore) {
  TreePattern q = MustParseQuery("/book[./title]");
  TfIdfScorer scorer(*idx_, q);
  const auto& books = idx_->Nodes("book");
  EXPECT_GT(scorer.Score(books[1]), scorer.Score(books[0]));
}

// ---------------------------------------------------------------------------
// ScoringModel (engine-facing, per relaxation level)
// ---------------------------------------------------------------------------

class ScoringModelTest : public ::testing::TestWithParam<Normalization> {};

TEST_P(ScoringModelTest, LevelLadderIsMonotone) {
  xmlgen::XMarkOptions opts;
  opts.seed = 404;
  opts.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);
  for (const char* xpath :
       {"//item[./description/parlist]",
        "//item[./description/parlist and ./mailbox/mail/text]",
        "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and "
        "./incategory]"}) {
    TreePattern q = MustParseQuery(xpath);
    ScoringModel m = ScoringModel::ComputeTfIdf(idx, q, GetParam());
    for (size_t qi = 1; qi < q.size(); ++qi) {
      const PredicateScores& ps = m.predicate(static_cast<int>(qi));
      EXPECT_GE(ps.at_level[0], ps.at_level[1]) << xpath << " node " << qi;
      EXPECT_GE(ps.at_level[1], ps.at_level[2]) << xpath << " node " << qi;
      EXPECT_GE(ps.at_level[2], 0.0);
      EXPECT_LE(ps.satisfying[0], ps.satisfying[1]);
      EXPECT_LE(ps.satisfying[1], ps.satisfying[2]);
      // Contribution() maps levels correctly.
      EXPECT_EQ(ps.Contribution(MatchLevel::kExact), ps.at_level[0]);
      EXPECT_EQ(ps.Contribution(MatchLevel::kDeleted), 0.0);
    }
    EXPECT_GT(m.MaxTotalScore(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNormalizations, ScoringModelTest,
                         ::testing::Values(Normalization::kNone, Normalization::kSparse,
                                           Normalization::kDense),
                         [](const ::testing::TestParamInfo<Normalization>& info) {
                           switch (info.param) {
                             case Normalization::kNone: return "none";
                             case Normalization::kSparse: return "sparse";
                             case Normalization::kDense: return "dense";
                           }
                           return "?";
                         });

TEST(ScoringModelNormTest, SparseNormalizesEachPredicateToOne) {
  auto doc = xmlgen::Figure1Bookstore();
  TagIndex idx(*doc);
  TreePattern q = MustParseQuery("/book[./title and ./info/publisher]");
  ScoringModel m = ScoringModel::ComputeTfIdf(idx, q, Normalization::kSparse);
  for (size_t qi = 1; qi < q.size(); ++qi) {
    EXPECT_LE(m.predicate(static_cast<int>(qi)).at_level[0], 1.0 + 1e-12);
    EXPECT_GT(m.predicate(static_cast<int>(qi)).at_level[0], 0.0);
  }
}

TEST(ScoringModelNormTest, DenseHasGlobalMaxOne) {
  xmlgen::XMarkOptions opts;
  opts.seed = 2;
  opts.target_bytes = 16 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);
  TreePattern q = MustParseQuery("//item[./description/parlist and ./name]");
  ScoringModel m = ScoringModel::ComputeTfIdf(idx, q, Normalization::kDense);
  double global = 0;
  for (size_t qi = 1; qi < q.size(); ++qi) {
    global = std::max(global, m.predicate(static_cast<int>(qi)).at_level[0]);
  }
  EXPECT_NEAR(global, 1.0, 1e-12);
}

TEST(ScoringModelNormTest, DensePreservesSkewSparseFlattens) {
  xmlgen::XMarkOptions opts;
  opts.seed = 2;
  opts.target_bytes = 16 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  TagIndex idx(*doc);
  // parlist is much rarer as an exact child chain than name.
  TreePattern q = MustParseQuery("//item[./description/parlist and ./name]");
  ScoringModel sparse = ScoringModel::ComputeTfIdf(idx, q, Normalization::kSparse);
  ScoringModel dense = ScoringModel::ComputeTfIdf(idx, q, Normalization::kDense);
  const double sparse_ratio =
      sparse.predicate(2).at_level[0] / sparse.predicate(3).at_level[0];
  EXPECT_NEAR(sparse_ratio, 1.0, 1e-9);  // both exactly 1 under sparse
  const double dense_hi = std::max(dense.predicate(2).at_level[0],
                                   dense.predicate(3).at_level[0]);
  const double dense_lo = std::min(dense.predicate(2).at_level[0],
                                   dense.predicate(3).at_level[0]);
  EXPECT_GT(dense_hi / std::max(dense_lo, 1e-9), 1.2);  // skew preserved
}

TEST(ScoringModelBasicTest, SyntheticIsDeterministicAndMonotone) {
  TreePattern q = MustParseQuery("/a[./b and ./c and ./d]");
  Rng r1(9), r2(9);
  ScoringModel m1 = ScoringModel::Synthetic(q, &r1, Normalization::kSparse);
  ScoringModel m2 = ScoringModel::Synthetic(q, &r2, Normalization::kSparse);
  for (int qi = 1; qi < 4; ++qi) {
    for (int l = 0; l < 3; ++l) {
      EXPECT_EQ(m1.predicate(qi).at_level[l], m2.predicate(qi).at_level[l]);
    }
    EXPECT_GE(m1.predicate(qi).at_level[0], m1.predicate(qi).at_level[1]);
    EXPECT_GE(m1.predicate(qi).at_level[1], m1.predicate(qi).at_level[2]);
  }
}

TEST(ScoringModelBasicTest, FromTablesRoundTrips) {
  std::vector<PredicateScores> tables(3);
  tables[1].at_level[0] = 0.3;
  tables[2].at_level[0] = 0.2;
  ScoringModel m = ScoringModel::FromTables(tables);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_NEAR(m.MaxTotalScore(), 0.5, 1e-12);
}

TEST(ScoringModelBasicTest, MissingTagGivesZeroSatisfying) {
  auto doc = xmlgen::Figure1Bookstore();
  TagIndex idx(*doc);
  TreePattern q = MustParseQuery("/book[./unobtainium]");
  ScoringModel m = ScoringModel::ComputeTfIdf(idx, q, Normalization::kNone);
  EXPECT_EQ(m.predicate(1).satisfying[2], 0u);
  EXPECT_GT(m.predicate(1).at_level[0], 0.0);  // clamped idf, still positive
}

}  // namespace
}  // namespace whirlpool::score
