// ValidateOptions rejection matrix: every bad knob combination must be
// rejected with InvalidArgument and the *same message* by all four engines
// and the rewriting baseline (the shared check runs before any engine state
// is constructed), and the 0 = auto sentinels for topk_shards /
// queue_drain_batch must be accepted everywhere. Companion to the silent
// clamps this PR removed (bulk_batch in whirlpool_s, processor_cap <= 0 in
// whirlpool_m).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "exec/adaptive.h"
#include "exec/engine.h"
#include "exec/rewriting_baseline.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct Workload {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;
};

Workload MakeWorkload() {
  Workload w;
  xmlgen::XMarkOptions gen;
  gen.seed = 7;
  gen.target_bytes = 8 << 10;
  w.doc = xmlgen::GenerateXMark(gen);
  w.idx = std::make_unique<index::TagIndex>(*w.doc);
  auto q = ParseXPath("//item[./name]");
  EXPECT_TRUE(q.ok()) << q.status();
  w.pattern = std::move(q).value();
  auto scoring = ScoringModel::ComputeTfIdf(*w.idx, w.pattern, Normalization::kSparse);
  auto plan = QueryPlan::Build(*w.idx, w.pattern, scoring);
  EXPECT_TRUE(plan.ok()) << plan.status();
  w.plan = std::make_unique<QueryPlan>(std::move(plan).value());
  return w;
}

constexpr EngineKind kAllEngines[] = {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                                      EngineKind::kLockStep, EngineKind::kLockStepNoPrun};

TEST(OptionsValidationTest, RejectionMatrixIsIdenticalAcrossEngines) {
  Workload w = MakeWorkload();
  struct Case {
    const char* name;
    void (*mutate)(ExecOptions*);
  };
  const Case kBad[] = {
      {"k=0", [](ExecOptions* o) { o->k = 0; }},
      {"threads_per_server=0", [](ExecOptions* o) { o->threads_per_server = 0; }},
      {"topk_shards=-1", [](ExecOptions* o) { o->topk_shards = -1; }},
      {"queue_drain_batch=-1", [](ExecOptions* o) { o->queue_drain_batch = -1; }},
      {"bulk_batch=0", [](ExecOptions* o) { o->bulk_batch = 0; }},
      {"bulk_batch=-3", [](ExecOptions* o) { o->bulk_batch = -3; }},
      {"op_cost_seconds=-0.001",
       [](ExecOptions* o) { o->op_cost_seconds = -0.001; }},
      {"op_cost_seconds=nan",
       [](ExecOptions* o) { o->op_cost_seconds = std::nan(""); }},
      {"processor_cap=-1", [](ExecOptions* o) { o->processor_cap = -1; }},
      {"frozen+min_score",
       [](ExecOptions* o) {
         o->frozen_threshold = 1.0;
         o->min_score_threshold = 2.0;
       }},
      {"deadline_ms=-1", [](ExecOptions* o) { o->deadline_ms = -1.0; }},
      {"deadline_ms=nan", [](ExecOptions* o) { o->deadline_ms = std::nan(""); }},
      {"failpoints=unknown-site",
       [](ExecOptions* o) { o->failpoints = "no.such.site=yield"; }},
      {"failpoints=bad-action",
       [](ExecOptions* o) { o->failpoints = "ws.step=explode"; }},
      {"failpoints=two-modes",
       [](ExecOptions* o) { o->failpoints = "ws.step=yield(once,every=2)"; }},
      {"telemetry_interval_us=5",
       [](ExecOptions* o) { o->telemetry_interval_us = 5; }},
      {"postmortem-without-telemetry",
       [](ExecOptions* o) { o->postmortem_path = "pm.txt"; }},
  };
  for (const Case& c : kBad) {
    // The message every path must produce, from the shared validator.
    ExecOptions probe;
    c.mutate(&probe);
    const Status expected = ValidateOptions(probe);
    ASSERT_FALSE(expected.ok()) << c.name;
    ASSERT_EQ(expected.code(), StatusCode::kInvalidArgument) << c.name;

    for (EngineKind kind : kAllEngines) {
      ExecOptions opts;
      opts.engine = kind;
      c.mutate(&opts);
      auto r = RunTopK(*w.plan, opts);
      ASSERT_FALSE(r.ok()) << c.name << " accepted by " << EngineKindName(kind);
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
          << c.name << " " << EngineKindName(kind);
      EXPECT_EQ(r.status().message(), expected.message())
          << c.name << " " << EngineKindName(kind);
    }
    ExecOptions opts;
    c.mutate(&opts);
    auto rb = RunRewritingBaseline(*w.plan, opts, nullptr);
    ASSERT_FALSE(rb.ok()) << c.name << " accepted by rewriting baseline";
    EXPECT_EQ(rb.status().code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_EQ(rb.status().message(), expected.message()) << c.name;
  }
}

TEST(OptionsValidationTest, AutoSentinelsAreAcceptedByEveryEngine) {
  Workload w = MakeWorkload();
  for (EngineKind kind : kAllEngines) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    opts.topk_shards = 0;        // auto
    opts.queue_drain_batch = 0;  // adaptive
    auto r = RunTopK(*w.plan, opts);
    ASSERT_TRUE(r.ok()) << EngineKindName(kind) << ": " << r.status();
    EXPECT_TRUE(r->metrics.adaptive.shards_auto) << EngineKindName(kind);
    EXPECT_TRUE(r->metrics.adaptive.drain_adaptive) << EngineKindName(kind);
    EXPECT_GE(r->metrics.adaptive.chosen_shards, 1) << EngineKindName(kind);
    if (kind == EngineKind::kWhirlpoolM) {
      // Multi-threaded: the auto shard count reflects the thread count.
      EXPECT_EQ(r->metrics.adaptive.chosen_shards,
                AutoTopKShards(w.plan->num_servers() + 1));
      EXPECT_EQ(r->metrics.adaptive.drain_max, kAutoDrainMax);
      EXPECT_FALSE(r->metrics.adaptive.consumers.empty());
    } else {
      // Single-threaded engines resolve auto to one stripe.
      EXPECT_EQ(r->metrics.adaptive.chosen_shards, 1) << EngineKindName(kind);
    }
  }
}

TEST(OptionsValidationTest, AutoShardFormula) {
  EXPECT_EQ(AutoTopKShards(0), 1);
  EXPECT_EQ(AutoTopKShards(1), 1);
  // Multi-threaded: at least a whole cache line of Shard pointers, a power
  // of two, at most 64 — and never above the hardware's usefully-concurrent
  // thread count times two (rounded up).
  for (int t = 2; t <= 128; t *= 2) {
    const int s = AutoTopKShards(t);
    EXPECT_GE(s, 8) << t;
    EXPECT_LE(s, 64) << t;
    EXPECT_EQ(s & (s - 1), 0) << t << ": " << s << " not a power of two";
    EXPECT_LE(s, TopKSet::kMaxShards);
  }
  // Monotone in the thread count.
  for (int t = 2; t < 64; ++t) {
    EXPECT_LE(AutoTopKShards(t), AutoTopKShards(t + 1)) << t;
  }
}

}  // namespace
}  // namespace whirlpool::exec
