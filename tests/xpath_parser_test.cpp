#include <gtest/gtest.h>

#include "query/tree_pattern.h"

namespace whirlpool::query {
namespace {

TreePattern MustParse(std::string_view xpath) {
  auto r = ParseXPath(xpath);
  EXPECT_TRUE(r.ok()) << xpath << " -> " << r.status();
  return std::move(r).value();
}

TEST(XPathParserTest, BareRootStep) {
  TreePattern p = MustParse("/book");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.node(0).tag, "book");
}

TEST(XPathParserTest, DescendantRootStep) {
  TreePattern p = MustParse("//item");
  EXPECT_EQ(p.node(0).tag, "item");
}

TEST(XPathParserTest, SimplePredicate) {
  TreePattern p = MustParse("//item[./name]");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.node(1).tag, "name");
  EXPECT_EQ(p.node(1).axis, Axis::kChild);
  EXPECT_EQ(p.node(1).parent, 0);
}

TEST(XPathParserTest, DescendantPredicate) {
  TreePattern p = MustParse("/book[.//title]");
  EXPECT_EQ(p.node(1).axis, Axis::kDescendant);
}

TEST(XPathParserTest, ValuePredicate) {
  TreePattern p = MustParse("/book[.//title = 'wodehouse']");
  ASSERT_EQ(p.size(), 2u);
  ASSERT_TRUE(p.node(1).value.has_value());
  EXPECT_EQ(*p.node(1).value, "wodehouse");
}

TEST(XPathParserTest, PathPredicateBuildsChain) {
  TreePattern p = MustParse("/book[./info/publisher/name = 'psmith']");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.node(1).tag, "info");
  EXPECT_EQ(p.node(2).tag, "publisher");
  EXPECT_EQ(p.node(2).parent, 1);
  EXPECT_EQ(p.node(3).tag, "name");
  EXPECT_EQ(*p.node(3).value, "psmith");
  EXPECT_FALSE(p.node(1).value.has_value());  // value on last step only
}

TEST(XPathParserTest, ConjunctionOfTerms) {
  TreePattern p = MustParse(
      "/book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']");
  ASSERT_EQ(p.size(), 5u);
  // Both top-level terms hang off the root.
  EXPECT_EQ(p.node(1).parent, 0);  // title
  EXPECT_EQ(p.node(2).parent, 0);  // info
  EXPECT_EQ(p.node(0).children, (std::vector<int>{1, 2}));
}

TEST(XPathParserTest, PaperQ1) {
  TreePattern p = MustParse("//item[./description/parlist]");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.node(0).tag, "item");
  EXPECT_EQ(p.node(1).tag, "description");
  EXPECT_EQ(p.node(2).tag, "parlist");
  EXPECT_EQ(p.node(2).parent, 1);
}

TEST(XPathParserTest, PaperQ2) {
  TreePattern p =
      MustParse("//item[./description/parlist and ./mailbox/mail/text]");
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.node(3).tag, "mailbox");
  EXPECT_EQ(p.node(5).tag, "text");
  EXPECT_EQ(p.node(5).parent, 4);
}

TEST(XPathParserTest, PaperQ3WithNestedPredicates) {
  TreePattern p = MustParse(
      "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and "
      "./incategory]");
  ASSERT_EQ(p.size(), 8u);
  // text has two children from its nested predicate.
  int text = -1;
  for (int i = 0; i < static_cast<int>(p.size()); ++i) {
    if (p.node(i).tag == "text") text = i;
  }
  ASSERT_NE(text, -1);
  ASSERT_EQ(p.node(text).children.size(), 2u);
  EXPECT_EQ(p.node(p.node(text).children[0]).tag, "bold");
  EXPECT_EQ(p.node(p.node(text).children[1]).tag, "keyword");
  // name and incategory hang off the root.
  EXPECT_EQ(p.node(0).children.size(), 3u);
}

TEST(XPathParserTest, WhitespaceInsensitive) {
  TreePattern a = MustParse("/book[./title='x'and ./isbn]");
  TreePattern b = MustParse("  /book[ ./title = 'x'  and  ./isbn ]  ");
  EXPECT_TRUE(a == b);
}

TEST(XPathParserTest, DoubleQuotedValues) {
  TreePattern p = MustParse("/a[./b = \"val\"]");
  EXPECT_EQ(*p.node(1).value, "val");
}

TEST(XPathParserTest, PredicatePathWithoutLeadingDot) {
  TreePattern p = MustParse("/a[/b//c]");
  EXPECT_EQ(p.node(1).axis, Axis::kChild);
  EXPECT_EQ(p.node(2).axis, Axis::kDescendant);
}

TEST(XPathParserTest, AttributeTags) {
  TreePattern p = MustParse("//item[./@id = 'item0']");
  EXPECT_EQ(p.node(1).tag, "@id");
  EXPECT_EQ(*p.node(1).value, "item0");
}

// -- Errors -------------------------------------------------------------------

TEST(XPathParserTest, RejectsEmpty) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("book").ok());  // must start with / or //
}

TEST(XPathParserTest, RejectsUnclosedPredicate) {
  EXPECT_FALSE(ParseXPath("/a[./b").ok());
}

TEST(XPathParserTest, RejectsUnterminatedString) {
  EXPECT_FALSE(ParseXPath("/a[./b = 'oops]").ok());
}

TEST(XPathParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseXPath("/a[./b] extra").ok());
}

TEST(XPathParserTest, MultiStepReturnPathUnsupported) {
  auto r = ParseXPath("/a/b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(XPathParserTest, RejectsEmptyPredicate) {
  EXPECT_FALSE(ParseXPath("/a[]").ok());
}

TEST(XPathParserTest, RejectsMissingValueAfterEquals) {
  EXPECT_FALSE(ParseXPath("/a[./b = ]").ok());
}

}  // namespace
}  // namespace whirlpool::query
