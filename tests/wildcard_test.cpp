// Wildcard ('*') pattern nodes: match any element (never attributes or the
// synthetic root), everywhere in the stack — parser, matcher, scoring,
// engines.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/engine.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "xml/parser.h"
#include "xmlgen/xmark.h"

namespace whirlpool {
namespace {

using exec::EngineKind;
using exec::ExecOptions;
using exec::RunTopK;
using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

std::unique_ptr<xml::Document> Doc(std::string_view text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(WildcardParseTest, StarIsAValidName) {
  auto q = ParseXPath("//item[./*/parlist]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->node(1).tag, "*");
  EXPECT_EQ(q->node(2).tag, "parlist");
  auto root_star = ParseXPath("//*[./name]");
  ASSERT_TRUE(root_star.ok());
  EXPECT_EQ(root_star->node(0).tag, "*");
}

TEST(WildcardIndexTest, AllElementsExcludesAttributesAndRoot) {
  auto doc = Doc(R"(<a x="1"><b y="2"/><c/></a>)");
  index::TagIndex idx(*doc);
  // a, b, c are elements; @x, @y are not; neither is #root.
  EXPECT_EQ(idx.AllElements().size(), 3u);
  EXPECT_EQ(idx.CountAllElementDescendants(doc->root()), 3u);
  EXPECT_EQ(idx.AllElementDescendants(idx.Nodes("a")[0]).size(), 2u);
}

TEST(WildcardIndexTest, CandidatesWithValueFilter) {
  auto doc = Doc("<a><b>x</b><c>x</c><d>y</d></a>");
  index::TagIndex idx(*doc);
  auto hits = idx.Candidates(idx.Nodes("a")[0], index::kWildcardTag,
                             std::optional<std::string>("x"));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(idx.CountCandidates(idx.Nodes("a")[0], index::kWildcardTag,
                                std::optional<std::string>("x")),
            2u);
}

TEST(WildcardMatcherTest, IntermediateWildcardStep) {
  auto doc = Doc(
      "<lib>"
      "<item><description><parlist/></description></item>"  // * = description
      "<item><parlist/></item>"                              // no intermediate
      "</lib>");
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./*/parlist]");
  ASSERT_TRUE(q.ok());
  auto matches = query::EvaluatePattern(idx, *q);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], idx.Nodes("item")[0]);
}

TEST(WildcardMatcherTest, WildcardLeaf) {
  auto doc = Doc("<lib><empty/><full><x/></full></lib>");
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//full[./*]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(query::EvaluatePattern(idx, *q).size(), 1u);
  auto q2 = ParseXPath("//empty[./*]");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(query::EvaluatePattern(idx, *q2).empty());
}

TEST(WildcardMatcherTest, WildcardRoot) {
  auto doc = Doc("<lib><a><name/></a><b><name/></b><c/></lib>");
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//*[./name]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(query::EvaluatePattern(idx, *q).size(), 2u);  // a and b
}

TEST(WildcardMatcherTest, WildcardDoesNotMatchAttributes) {
  auto doc = Doc(R"(<lib><a attr="v"/><b><real/></b></lib>)");
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//a[./*]");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(query::EvaluatePattern(idx, *q).empty());  // @attr is not an element
}

TEST(WildcardScoringTest, ChainStepsThroughWildcard) {
  auto doc = Doc("<item><wrap><parlist/></wrap><parlist/></item>");
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./*/parlist]");
  ASSERT_TRUE(q.ok());
  auto chain = q->Chain(0, 2);
  xml::NodeId item = idx.Nodes("item")[0];
  // parlist under wrap satisfies the */parlist chain exactly...
  EXPECT_TRUE(score::MatchChainExact(idx, item, idx.Nodes("parlist")[0], chain));
  // ...the direct parlist child does not (no intermediate element).
  EXPECT_FALSE(score::MatchChainExact(idx, item, idx.Nodes("parlist")[1], chain));
}

TEST(WildcardEngineTest, EnginesAgreeOnWildcardQuery) {
  xmlgen::XMarkOptions gen;
  gen.seed = 21;
  gen.target_bytes = 16 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./*/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *q, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *q, scoring);
  ASSERT_TRUE(plan.ok());
  std::vector<double> reference;
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 8;
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok()) << EngineKindName(kind);
    std::vector<double> scores;
    for (const auto& a : r->answers) scores.push_back(a.score);
    if (reference.empty()) {
      reference = scores;
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(scores.size(), reference.size()) << EngineKindName(kind);
      for (size_t i = 0; i < scores.size(); ++i) {
        ASSERT_NEAR(scores[i], reference[i], 1e-9) << EngineKindName(kind);
      }
    }
  }
}

TEST(WildcardEngineTest, ExactSemanticsMatchesNaive) {
  xmlgen::XMarkOptions gen;
  gen.seed = 77;
  gen.target_bytes = 16 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./*/parlist]");
  ASSERT_TRUE(q.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *q, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *q, scoring);
  ASSERT_TRUE(plan.ok());
  ExecOptions opts;
  opts.semantics = exec::MatchSemantics::kExact;
  opts.k = 1000000;
  auto r = RunTopK(*plan, opts);
  ASSERT_TRUE(r.ok());
  std::vector<xml::NodeId> roots;
  for (const auto& a : r->answers) roots.push_back(a.root);
  std::sort(roots.begin(), roots.end());
  std::vector<xml::NodeId> naive = query::EvaluatePattern(idx, *q);
  std::sort(naive.begin(), naive.end());
  EXPECT_EQ(roots, naive);
}

TEST(WildcardEngineTest, WildcardServerHasManyCandidates) {
  xmlgen::XMarkOptions gen;
  gen.seed = 3;
  gen.target_bytes = 8 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./*]");
  ASSERT_TRUE(q.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *q, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *q, scoring);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->server(0).wildcard);
  EXPECT_GT(plan->server(0).avg_candidates_per_root, 1.0);
  EXPECT_GT(plan->CandidateCount(idx.Nodes("item")[0], 0), 0u);
}

}  // namespace
}  // namespace whirlpool
