// The heavyweight property suite: all four engines, under every routing
// strategy and queue policy, must return the same top-k score vector as an
// independent brute-force oracle, across documents, queries, k values and
// normalizations. This exercises join logic, scoring, pruning safety and
// scheduling end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/engine.h"
#include "query/matcher.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::ClassifyBinding;
using score::Normalization;
using score::ScoringModel;

/// Brute-force best-tuple score of `root` under relaxed semantics: per
/// component predicate, the best contribution of any candidate binding (or 0
/// if none / deletion).
double OracleScore(const index::TagIndex& idx, const query::TreePattern& pattern,
                   const ScoringModel& scoring, xml::NodeId root) {
  const auto& doc = idx.doc();
  double total = 0.0;
  for (int qi = 1; qi < static_cast<int>(pattern.size()); ++qi) {
    const auto& pn = pattern.node(qi);
    xml::TagId tag = doc.tags().Lookup(pn.tag);
    if (tag == xml::kInvalidTag) continue;
    auto chain = pattern.Chain(0, qi);
    std::vector<xml::NodeId> cands =
        pn.value ? idx.DescendantsWithTagValue(root, tag, *pn.value)
                 : idx.DescendantsWithTag(root, tag);
    double best = 0.0;
    for (xml::NodeId c : cands) {
      best = std::max(best, scoring.predicate(qi).Contribution(
                                ClassifyBinding(idx, root, c, chain)));
    }
    total += best;
  }
  return total;
}

/// The expected top-k score vector.
std::vector<double> OracleTopK(const index::TagIndex& idx,
                               const query::TreePattern& pattern,
                               const ScoringModel& scoring, uint32_t k) {
  std::vector<double> scores;
  for (xml::NodeId r : query::RootCandidates(idx, pattern)) {
    scores.push_back(OracleScore(idx, pattern, scoring, r));
  }
  std::sort(scores.begin(), scores.end(), std::greater<>());
  if (scores.size() > k) scores.resize(k);
  return scores;
}

struct AgreementCase {
  std::string name;
  uint64_t seed;
  size_t bytes;
  std::string xpath;
  uint32_t k;
  Normalization norm;
};

class EngineAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EngineAgreementTest, AllEnginesMatchOracle) {
  const AgreementCase& c = GetParam();
  xmlgen::XMarkOptions gen;
  gen.seed = c.seed;
  gen.target_bytes = c.bytes;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto q = ParseXPath(c.xpath);
  ASSERT_TRUE(q.ok()) << q.status();
  ScoringModel scoring = ScoringModel::ComputeTfIdf(idx, *q, c.norm);
  auto plan = QueryPlan::Build(idx, *q, scoring);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const std::vector<double> expected = OracleTopK(idx, *q, scoring, c.k);

  const EngineKind kinds[] = {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                              EngineKind::kLockStep, EngineKind::kLockStepNoPrun};
  const RoutingStrategy strategies[] = {RoutingStrategy::kStatic,
                                        RoutingStrategy::kMaxScore,
                                        RoutingStrategy::kMinScore,
                                        RoutingStrategy::kMinAlive};
  for (EngineKind kind : kinds) {
    for (RoutingStrategy strategy : strategies) {
      ExecOptions opts;
      opts.engine = kind;
      opts.routing = strategy;
      opts.k = c.k;
      auto r = RunTopK(*plan, opts);
      ASSERT_TRUE(r.ok()) << r.status();
      ASSERT_EQ(r->answers.size(), expected.size())
          << EngineKindName(kind) << "/" << RoutingStrategyName(strategy);
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(r->answers[i].score, expected[i], 1e-9)
            << EngineKindName(kind) << "/" << RoutingStrategyName(strategy)
            << " rank " << i;
        // Each returned answer's score must equal its root's oracle score
        // (the engine found the root's best tuple, not just any tuple).
        ASSERT_NEAR(r->answers[i].score,
                    OracleScore(idx, *q, scoring, r->answers[i].root), 1e-9)
            << EngineKindName(kind) << " root " << r->answers[i].root;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineAgreementTest,
    ::testing::Values(
        AgreementCase{"Q1_small_k3_sparse", 101, 16 << 10,
                      "//item[./description/parlist]", 3, Normalization::kSparse},
        AgreementCase{"Q1_small_k15_dense", 101, 16 << 10,
                      "//item[./description/parlist]", 15, Normalization::kDense},
        AgreementCase{"Q2_mid_k5_sparse", 202, 32 << 10,
                      "//item[./description/parlist and ./mailbox/mail/text]", 5,
                      Normalization::kSparse},
        AgreementCase{"Q2_mid_k15_none", 202, 32 << 10,
                      "//item[./description/parlist and ./mailbox/mail/text]", 15,
                      Normalization::kNone},
        AgreementCase{"Q3_mid_k5_sparse", 303, 32 << 10,
                      "//item[./mailbox/mail/text[./bold and ./keyword] and ./name "
                      "and ./incategory]",
                      5, Normalization::kSparse},
        AgreementCase{"Q3_mid_k15_dense", 404, 24 << 10,
                      "//item[./mailbox/mail/text[./bold and ./keyword] and ./name "
                      "and ./incategory]",
                      15, Normalization::kDense},
        AgreementCase{"Values_k5", 505, 24 << 10,
                      "//item[./mailbox/mail/text/keyword = 'bargain' and ./name]", 5,
                      Normalization::kSparse},
        AgreementCase{"KLargerThanRoots", 606, 8 << 10,
                      "//item[./description/parlist]", 10000,
                      Normalization::kSparse}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

/// Queue policies must not change the answers either (they only change the
/// amount of work).
class QueuePolicyAgreementTest : public ::testing::TestWithParam<QueuePolicy> {};

TEST_P(QueuePolicyAgreementTest, AnswersInvariantUnderQueuePolicy) {
  xmlgen::XMarkOptions gen;
  gen.seed = 808;
  gen.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto q = ParseXPath("//item[./description/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  ScoringModel scoring = ScoringModel::ComputeTfIdf(idx, *q, Normalization::kSparse);
  auto plan = QueryPlan::Build(idx, *q, scoring);
  ASSERT_TRUE(plan.ok());
  const std::vector<double> expected = OracleTopK(idx, *q, scoring, 7);
  for (EngineKind kind : {EngineKind::kWhirlpoolM, EngineKind::kLockStep}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 7;
    opts.queue_policy = GetParam();
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->answers.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(r->answers[i].score, expected[i], 1e-9)
          << EngineKindName(kind) << "/" << QueuePolicyName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, QueuePolicyAgreementTest,
                         ::testing::Values(QueuePolicy::kFifo,
                                           QueuePolicy::kCurrentScore,
                                           QueuePolicy::kMaxNextScore,
                                           QueuePolicy::kMaxFinalScore),
                         [](const ::testing::TestParamInfo<QueuePolicy>& info) {
                           return QueuePolicyName(info.param);
                         });

/// Exact semantics: every engine returns exactly the naive evaluator's
/// matches (up to k), all at the same full-exact score.
class ExactSemanticsTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExactSemanticsTest, MatchesNaiveEvaluator) {
  xmlgen::XMarkOptions gen;
  gen.seed = 909;
  gen.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  for (const char* xpath :
       {"//item[./description/parlist]",
        "//item[./description/parlist and ./mailbox/mail/text]"}) {
    auto q = ParseXPath(xpath);
    ASSERT_TRUE(q.ok());
    ScoringModel scoring = ScoringModel::ComputeTfIdf(idx, *q, Normalization::kSparse);
    auto plan = QueryPlan::Build(idx, *q, scoring);
    ASSERT_TRUE(plan.ok());
    ExecOptions opts;
    opts.engine = GetParam();
    opts.semantics = MatchSemantics::kExact;
    opts.k = 100000;
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok());
    std::vector<xml::NodeId> roots;
    for (const auto& a : r->answers) roots.push_back(a.root);
    std::sort(roots.begin(), roots.end());
    std::vector<xml::NodeId> naive = query::EvaluatePattern(idx, *q);
    std::sort(naive.begin(), naive.end());
    ASSERT_EQ(roots, naive) << EngineKindName(GetParam()) << " " << xpath;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ExactSemanticsTest,
                         ::testing::Values(EngineKind::kWhirlpoolS,
                                           EngineKind::kWhirlpoolM,
                                           EngineKind::kLockStep,
                                           EngineKind::kLockStepNoPrun),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           std::string n = EngineKindName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace whirlpool::exec
