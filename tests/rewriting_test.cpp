// The rewriting-based baseline must return exactly the same top-k as the
// adaptive engines (its enumeration mirrors the engine's per-node level
// semantics) while doing exponentially more query-level work.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/rewriting_baseline.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;

  static Fixture Make(std::unique_ptr<xml::Document> d, const char* xpath,
                      Normalization norm = Normalization::kSparse) {
    Fixture f;
    f.doc = std::move(d);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    f.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, norm);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return f;
  }
};

void ExpectAgreesWithWhirlpool(const Fixture& f, uint32_t k) {
  ExecOptions opts;
  opts.k = k;
  auto engine = RunTopK(*f.plan, opts);
  ASSERT_TRUE(engine.ok());
  RewritingStats stats;
  auto rewriting = RunRewritingBaseline(*f.plan, opts, &stats);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status();
  ASSERT_EQ(rewriting->answers.size(), engine->answers.size());
  for (size_t i = 0; i < engine->answers.size(); ++i) {
    ASSERT_NEAR(rewriting->answers[i].score, engine->answers[i].score, 1e-9)
        << "rank " << i;
  }
  EXPECT_GT(stats.queries_enumerated, 0u);
  EXPECT_LE(stats.queries_evaluated, stats.queries_enumerated);
}

TEST(RewritingBaselineTest, AgreesOnFigure1Bookstore) {
  Fixture f = Fixture::Make(
      xmlgen::Figure1Bookstore(),
      "/book[./title='wodehouse' and ./info/publisher/name='psmith']",
      Normalization::kNone);
  ExpectAgreesWithWhirlpool(f, 3);
}

TEST(RewritingBaselineTest, AgreesOnXMarkQ1AndQ2) {
  xmlgen::XMarkOptions gen;
  gen.seed = 1212;
  gen.target_bytes = 16 << 10;
  {
    Fixture f = Fixture::Make(xmlgen::GenerateXMark(gen),
                              "//item[./description/parlist]");
    ExpectAgreesWithWhirlpool(f, 5);
  }
  {
    Fixture f = Fixture::Make(xmlgen::GenerateXMark(gen),
                              "//item[./description/parlist and ./mailbox/mail/text]");
    ExpectAgreesWithWhirlpool(f, 15);
  }
}

TEST(RewritingBaselineTest, EnumerationIsExponential) {
  xmlgen::XMarkOptions gen;
  gen.seed = 9;
  gen.target_bytes = 8 << 10;
  Fixture f = Fixture::Make(xmlgen::GenerateXMark(gen),
                            "//item[./description/parlist and ./name]");
  RewritingStats stats;
  ExecOptions opts;
  opts.k = 3;
  auto r = RunRewritingBaseline(*f.plan, opts, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.queries_enumerated, 64u);  // 4^3
}

TEST(RewritingBaselineTest, EarlyExitEvaluatesFewerQueries) {
  xmlgen::XMarkOptions gen;
  gen.seed = 5;
  gen.target_bytes = 24 << 10;
  Fixture f = Fixture::Make(xmlgen::GenerateXMark(gen),
                            "//item[./description/parlist and ./mailbox/mail/text]");
  RewritingStats stats;
  ExecOptions opts;
  opts.k = 3;
  auto r = RunRewritingBaseline(*f.plan, opts, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.queries_enumerated, 1024u);  // 4^5
  EXPECT_LT(stats.queries_evaluated, stats.queries_enumerated);
}

TEST(RewritingBaselineTest, RejectsUnsupportedModes) {
  Fixture f = Fixture::Make(xmlgen::Figure1Bookstore(), "/book[./title]");
  ExecOptions opts;
  opts.semantics = MatchSemantics::kExact;
  EXPECT_FALSE(RunRewritingBaseline(*f.plan, opts).ok());
  opts.semantics = MatchSemantics::kRelaxed;
  opts.aggregation = ScoreAggregation::kSumWitnesses;
  EXPECT_FALSE(RunRewritingBaseline(*f.plan, opts).ok());
  opts.aggregation = ScoreAggregation::kMaxTuple;
  opts.k = 0;
  EXPECT_FALSE(RunRewritingBaseline(*f.plan, opts).ok());
}

TEST(RewritingBaselineTest, RejectsHugePatterns) {
  xml::Document doc;
  xml::NodeId a = doc.AddChild(doc.root(), "a");
  for (int i = 0; i < 11; ++i) doc.AddChild(a, "b");
  doc.Finalize();
  index::TagIndex idx(doc);
  query::TreePattern p = query::TreePattern::Root("a");
  for (int i = 0; i < 11; ++i) p.AddNode(0, query::Axis::kChild, "b");
  auto scoring = ScoringModel::ComputeTfIdf(idx, p, Normalization::kSparse);
  auto plan = QueryPlan::Build(idx, p, scoring);
  ASSERT_TRUE(plan.ok());
  auto r = RunRewritingBaseline(*plan, ExecOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace whirlpool::exec
