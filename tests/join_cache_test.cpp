#include <gtest/gtest.h>

#include <thread>

#include "exec/engine.h"
#include "exec/join_cache.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

TEST(ServerJoinCacheTest, ComputesOnceServesMany) {
  ServerJoinCache cache(2);
  int computations = 0;
  auto compute = [&] {
    ++computations;
    return ServerJoinCache::Entry{{42, MatchLevel::kExact}};
  };
  auto a = cache.GetOrCompute(0, 7, compute);
  auto b = cache.GetOrCompute(0, 7, compute);
  EXPECT_EQ(computations, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(a->size(), 1u);
  EXPECT_EQ((*a)[0].node, 42u);
}

TEST(ServerJoinCacheTest, KeysAreServerAndRoot) {
  ServerJoinCache cache(2);
  int computations = 0;
  auto compute = [&] {
    ++computations;
    return ServerJoinCache::Entry{};
  };
  cache.GetOrCompute(0, 1, compute);
  cache.GetOrCompute(1, 1, compute);  // other server: recompute
  cache.GetOrCompute(0, 2, compute);  // other root: recompute
  EXPECT_EQ(computations, 3);
}

TEST(ServerJoinCacheTest, ConcurrentAccessIsSafe) {
  ServerJoinCache cache(4);
  std::vector<std::thread> threads;
  std::atomic<int> total_entries{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &total_entries, t] {
      for (int i = 0; i < 500; ++i) {
        const int server = (t + i) % 4;
        const xml::NodeId root = static_cast<xml::NodeId>(i % 61);
        auto e = cache.GetOrCompute(server, root, [&] {
          total_entries.fetch_add(1);
          return ServerJoinCache::Entry{{root, MatchLevel::kPromoted}};
        });
        ASSERT_EQ(e->size(), 1u);
        ASSERT_EQ((*e)[0].node, root);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Duplicated computations under racing are allowed but bounded by the
  // thread count per key; with 4*61 keys the total stays far below the
  // 4000 calls.
  EXPECT_LT(total_entries.load(), 4 * 61 * 8);
  EXPECT_GE(total_entries.load(), 4 * 61 - 61);  // only server/root pairs used
}

struct CacheFixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;

  static CacheFixture Make(const char* xpath) {
    CacheFixture f;
    xmlgen::XMarkOptions gen;
    gen.seed = 1717;
    gen.target_bytes = 24 << 10;
    f.doc = xmlgen::GenerateXMark(gen);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok());
    f.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, Normalization::kSparse);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, scoring);
    EXPECT_TRUE(plan.ok());
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return f;
  }
};

class CachedEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CachedEngineTest, CacheDoesNotChangeAnswers) {
  CacheFixture f =
      CacheFixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  ExecOptions plain, cached;
  plain.engine = cached.engine = GetParam();
  plain.k = cached.k = 10;
  cached.cache_server_joins = true;
  auto rp = RunTopK(*f.plan, plain);
  auto rc = RunTopK(*f.plan, cached);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rc.ok());
  ASSERT_EQ(rp->answers.size(), rc->answers.size());
  for (size_t i = 0; i < rp->answers.size(); ++i) {
    EXPECT_NEAR(rp->answers[i].score, rc->answers[i].score, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CachedEngineTest,
                         ::testing::Values(EngineKind::kWhirlpoolS,
                                           EngineKind::kWhirlpoolM,
                                           EngineKind::kLockStep,
                                           EngineKind::kLockStepNoPrun),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           std::string n = EngineKindName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(CachedEngineTest2, CacheReducesComparisonsOnNoPrun) {
  // LockStep-NoPrun revisits every (server, root) pair maximally; caching
  // must cut comparisons to at most one classification per candidate per
  // (server, root).
  CacheFixture f =
      CacheFixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  ExecOptions plain, cached;
  plain.engine = cached.engine = EngineKind::kLockStepNoPrun;
  plain.k = cached.k = 10;
  cached.cache_server_joins = true;
  auto rp = RunTopK(*f.plan, plain);
  auto rc = RunTopK(*f.plan, cached);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_LT(rc->metrics.predicate_comparisons, rp->metrics.predicate_comparisons);
  EXPECT_EQ(rc->metrics.matches_created, rp->metrics.matches_created);
}

TEST(CachedEngineTest2, ExactSemanticsIgnoresCacheSafely) {
  CacheFixture f = CacheFixture::Make("//item[./description/parlist]");
  ExecOptions options;
  options.semantics = MatchSemantics::kExact;
  options.cache_server_joins = true;  // must be ignored, not crash
  options.k = 5;
  auto r = RunTopK(*f.plan, options);
  ASSERT_TRUE(r.ok());
}

}  // namespace
}  // namespace whirlpool::exec
