#include <gtest/gtest.h>

#include "exec/plan.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xmlgen::XMarkOptions opts;
    opts.seed = 50;
    opts.target_bytes = 24 << 10;
    doc_ = xmlgen::GenerateXMark(opts);
    idx_ = std::make_unique<index::TagIndex>(*doc_);
  }

  QueryPlan MustBuild(const query::TreePattern& q) {
    auto scoring = ScoringModel::ComputeTfIdf(*idx_, q, Normalization::kSparse);
    auto plan = QueryPlan::Build(*idx_, q, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(plan).value();
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<index::TagIndex> idx_;
};

TEST_F(PlanTest, ServersMapToPatternNodes) {
  auto q = ParseXPath("//item[./description/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  ASSERT_EQ(plan.num_servers(), 3);
  EXPECT_EQ(plan.server(0).pattern_node, 1);
  EXPECT_EQ(plan.server(2).pattern_node, 3);
  EXPECT_EQ(plan.ServerForPatternNode(2), 1);
  EXPECT_EQ(doc_->tags().Name(plan.server(0).tag), "description");
  EXPECT_EQ(doc_->tags().Name(plan.server(2).tag), "name");
}

TEST_F(PlanTest, ChainsFromRootAreComposed) {
  auto q = ParseXPath("//item[./description/parlist]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  const auto& chain = plan.server(1).chain_from_root;  // parlist server
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].tag, "description");
  EXPECT_EQ(chain[1].tag, "parlist");
}

TEST_F(PlanTest, RemainingMaxSumsUnvisited) {
  auto q = ParseXPath("//item[./description/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  const double all = plan.RemainingMax(0);
  double sum = 0;
  for (int s = 0; s < plan.num_servers(); ++s) sum += plan.MaxContribution(s);
  EXPECT_NEAR(all, sum, 1e-12);
  EXPECT_NEAR(plan.RemainingMax(1u << 0), all - plan.MaxContribution(0), 1e-12);
  EXPECT_NEAR(plan.RemainingMax(0x7), 0.0, 1e-12);
}

TEST_F(PlanTest, EstimatesArePopulated) {
  auto q = ParseXPath("//item[./description/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  for (int s = 0; s < plan.num_servers(); ++s) {
    const ServerSpec& spec = plan.server(s);
    EXPECT_GT(spec.avg_candidates_per_root, 0.0) << "server " << s;
    double psum = spec.level_prob[0] + spec.level_prob[1] + spec.level_prob[2];
    EXPECT_NEAR(psum, 1.0, 1e-9) << "server " << s;
    EXPECT_GE(spec.expected_contribution, 0.0);
    EXPECT_LE(spec.expected_contribution, plan.MaxContribution(s) + 1e-12);
  }
}

TEST_F(PlanTest, ContributionUsesScoringLevels) {
  auto q = ParseXPath("//item[./description/parlist]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  auto scoring = ScoringModel::ComputeTfIdf(*idx_, pattern, Normalization::kSparse);
  auto plan_r = QueryPlan::Build(*idx_, pattern, scoring);
  ASSERT_TRUE(plan_r.ok());
  const QueryPlan& plan = *plan_r;
  EXPECT_EQ(plan.Contribution(1, 0, MatchLevel::kExact),
            scoring.predicate(2).at_level[0]);
  EXPECT_EQ(plan.Contribution(1, 0, MatchLevel::kDeleted), 0.0);
}

TEST_F(PlanTest, ScoreOverrideReplacesContributions) {
  auto q = ParseXPath("//item[./name]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  EXPECT_FALSE(plan.has_score_override());
  plan.SetScoreOverride(
      [](int, NodeId node, MatchLevel) { return node * 0.5; }, {7.5});
  EXPECT_TRUE(plan.has_score_override());
  EXPECT_EQ(plan.Contribution(0, 4, MatchLevel::kPromoted), 2.0);
  EXPECT_EQ(plan.MaxContribution(0), 7.5);
}

TEST_F(PlanTest, RejectsOversizedPattern) {
  // The limit is root + kMaxServers (64) nodes: one visited_mask bit per
  // server. 65 nodes builds; 66 is InvalidArgument.
  query::TreePattern big = query::TreePattern::Root("a");
  for (int i = 0; i < kMaxServers + 1; ++i) {
    big.AddNode(0, query::Axis::kChild, "b");
  }
  auto scoring = ScoringModel::ComputeTfIdf(*idx_, big, Normalization::kSparse);
  auto plan = QueryPlan::Build(*idx_, big, scoring);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, AcceptsPatternAtServerLimit) {
  // A pattern wider than the old 32-bit mask (but within kMaxServers) is
  // accepted and exposes one server per non-root node.
  query::TreePattern wide = query::TreePattern::Root("a");
  for (int i = 0; i < 40; ++i) wide.AddNode(0, query::Axis::kChild, "b");
  auto scoring = ScoringModel::ComputeTfIdf(*idx_, wide, Normalization::kSparse);
  auto plan = QueryPlan::Build(*idx_, wide, scoring);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->num_servers(), 40);
}

TEST_F(PlanTest, RejectsMismatchedScoring) {
  auto q = ParseXPath("//item[./name]");
  ASSERT_TRUE(q.ok());
  query::TreePattern other = query::TreePattern::Root("x");
  auto scoring = ScoringModel::ComputeTfIdf(*idx_, other, Normalization::kSparse);
  EXPECT_FALSE(QueryPlan::Build(*idx_, *q, scoring).ok());
}

TEST_F(PlanTest, UnknownTagServerHasNoCandidates) {
  auto q = ParseXPath("//item[./unobtainium]");
  ASSERT_TRUE(q.ok());
  query::TreePattern pattern = std::move(q).value();
  QueryPlan plan = MustBuild(pattern);
  EXPECT_EQ(plan.server(0).tag, xml::kInvalidTag);
  EXPECT_EQ(plan.server(0).avg_candidates_per_root, 0.0);
}

}  // namespace
}  // namespace whirlpool::exec
