// Randomized robustness and agreement sweeps ("fuzz-lite"):
//  - the XML parser must never crash on mutated/garbage input,
//  - randomly generated tree patterns over randomly generated documents
//    must produce engine results that agree with the brute-force oracle,
//    across engines and both aggregations.
// Everything is seeded and deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/engine.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xmlgen/xmark.h"

namespace whirlpool {
namespace {

using exec::EngineKind;
using exec::ExecOptions;
using exec::RunTopK;
using query::Axis;
using query::TreePattern;
using score::Normalization;
using score::ScoringModel;

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, MutatedDocumentsNeverCrash) {
  xmlgen::XMarkOptions gen;
  gen.seed = GetParam();
  gen.target_bytes = 4 << 10;
  std::string text = xml::SerializeDocument(*xmlgen::GenerateXMark(gen));
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.Uniform(8));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1 + rng.Uniform(16));
          break;
        default:  // insert structural characters
          mutated.insert(pos, std::string(1 + rng.Uniform(4),
                                          "<>&\"'/!["[rng.Uniform(8)]));
          break;
      }
      if (mutated.empty()) mutated = "<a/>";
    }
    auto r = xml::ParseDocument(mutated);
    if (r.ok()) {
      // Whatever parsed must be a well-formed, finalized document.
      ASSERT_TRUE((*r)->finalized());
      ASSERT_GT((*r)->num_nodes(), 0u);
    }
  }
}

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(512);
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto r = xml::ParseDocument(garbage);
    (void)r;  // ok or error — just must not crash/hang
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// XPath parser robustness
// ---------------------------------------------------------------------------

TEST(XPathFuzzTest, RandomQueriesNeverCrash) {
  Rng rng(99);
  const std::string alphabet = "/[]()='ab .*@&-";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q;
    const size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) q.push_back(alphabet[rng.Uniform(alphabet.size())]);
    auto r = query::ParseXPath(q);
    (void)r;
  }
}

// ---------------------------------------------------------------------------
// Random pattern / random document agreement
// ---------------------------------------------------------------------------

/// Random tree pattern over the XMark vocabulary. Up to 7 nodes; random
/// axes; occasional value predicates on keyword.
TreePattern RandomPattern(Rng* rng) {
  static const char* const kTags[] = {"description", "parlist", "text",  "mailbox",
                                      "mail",        "keyword", "bold",  "name",
                                      "incategory",  "listitem", "emph", "*"};
  TreePattern p = TreePattern::Root("item");
  const int extra = 1 + static_cast<int>(rng->Uniform(6));
  for (int i = 0; i < extra; ++i) {
    const int parent = static_cast<int>(rng->Uniform(p.size()));
    const Axis axis = rng->Chance(0.6) ? Axis::kChild : Axis::kDescendant;
    const char* tag = kTags[rng->Uniform(12)];
    std::optional<std::string> value;
    if (std::string(tag) == "keyword" && rng->Chance(0.3)) value = "bargain";
    p.AddNode(parent, axis, tag, value);
  }
  return p;
}

double OracleScore(const index::TagIndex& idx, const TreePattern& pattern,
                   const ScoringModel& scoring, xml::NodeId root) {
  double total = 0.0;
  for (int qi = 1; qi < static_cast<int>(pattern.size()); ++qi) {
    const auto& pn = pattern.node(qi);
    auto chain = pattern.Chain(0, qi);
    auto cands = idx.Candidates(root, pn.tag, pn.value);
    double best = 0.0;
    for (xml::NodeId c : cands) {
      best = std::max(best, scoring.predicate(qi).Contribution(
                                score::ClassifyBinding(idx, root, c, chain)));
    }
    total += best;
  }
  return total;
}

class EngineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, RandomPatternsAgreeWithOracle) {
  xmlgen::XMarkOptions gen;
  gen.seed = GetParam();
  gen.target_bytes = 12 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  Rng rng(GetParam() * 7919);

  for (int trial = 0; trial < 12; ++trial) {
    TreePattern pattern = RandomPattern(&rng);
    const Normalization norm = rng.Chance(0.5) ? Normalization::kSparse
                                               : Normalization::kDense;
    ScoringModel scoring = ScoringModel::ComputeTfIdf(idx, pattern, norm);
    auto plan = exec::QueryPlan::Build(idx, pattern, scoring);
    ASSERT_TRUE(plan.ok()) << pattern.ToString();

    const uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(20));
    std::vector<double> expected;
    for (xml::NodeId r : query::RootCandidates(idx, pattern)) {
      expected.push_back(OracleScore(idx, pattern, scoring, r));
    }
    std::sort(expected.begin(), expected.end(), std::greater<>());
    if (expected.size() > k) expected.resize(k);

    for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                            EngineKind::kLockStep}) {
      ExecOptions opts;
      opts.engine = kind;
      opts.k = k;
      opts.cache_server_joins = rng.Chance(0.5);
      opts.bulk_batch = rng.Chance(0.3) ? 8 : 1;
      auto r = RunTopK(*plan, opts);
      ASSERT_TRUE(r.ok()) << pattern.ToString();
      ASSERT_EQ(r->answers.size(), expected.size())
          << EngineKindName(kind) << " " << pattern.ToString();
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(r->answers[i].score, expected[i], 1e-9)
            << EngineKindName(kind) << " rank " << i << " " << pattern.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest, ::testing::Values(11, 22, 33, 44));

TEST(EngineFuzzTest2, ExactSemanticsAgreesWithMatcherOnRandomPatterns) {
  xmlgen::XMarkOptions gen;
  gen.seed = 555;
  gen.target_bytes = 12 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  Rng rng(606060);
  for (int trial = 0; trial < 15; ++trial) {
    TreePattern pattern = RandomPattern(&rng);
    ScoringModel scoring =
        ScoringModel::ComputeTfIdf(idx, pattern, Normalization::kSparse);
    auto plan = exec::QueryPlan::Build(idx, pattern, scoring);
    ASSERT_TRUE(plan.ok());
    ExecOptions opts;
    opts.semantics = exec::MatchSemantics::kExact;
    opts.k = 1000000;
    opts.engine = rng.Chance(0.5) ? EngineKind::kWhirlpoolS : EngineKind::kLockStep;
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok());
    std::vector<xml::NodeId> roots;
    for (const auto& a : r->answers) roots.push_back(a.root);
    std::sort(roots.begin(), roots.end());
    std::vector<xml::NodeId> naive = query::EvaluatePattern(idx, pattern);
    std::sort(naive.begin(), naive.end());
    ASSERT_EQ(roots, naive) << pattern.ToString();
  }
}

}  // namespace
}  // namespace whirlpool
