// Whirlpool-M concurrency behavior: repeated runs under different processor
// caps and thread counts must terminate, agree with Whirlpool-S, and never
// lose or duplicate answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/engine.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;
  std::vector<double> reference_scores;

  static Fixture Make(const char* xpath, uint64_t seed = 4242,
                      size_t bytes = 32 << 10, uint32_t k = 10) {
    Fixture f;
    xmlgen::XMarkOptions gen;
    gen.seed = seed;
    gen.target_bytes = bytes;
    f.doc = xmlgen::GenerateXMark(gen);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    f.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, Normalization::kSparse);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolS;
    opts.k = k;
    auto r = RunTopK(*f.plan, opts);
    EXPECT_TRUE(r.ok());
    for (const auto& a : r->answers) f.reference_scores.push_back(a.score);
    return f;
  }

  void ExpectAgreesWithReference(const TopKResult& r) const {
    ASSERT_EQ(r.answers.size(), reference_scores.size());
    for (size_t i = 0; i < reference_scores.size(); ++i) {
      ASSERT_NEAR(r.answers[i].score, reference_scores[i], 1e-9) << "rank " << i;
    }
    // No duplicate roots.
    std::set<xml::NodeId> roots;
    for (const auto& a : r.answers) {
      ASSERT_TRUE(roots.insert(a.root).second) << "duplicate root " << a.root;
    }
  }
};

TEST(WhirlpoolMTest, RepeatedRunsAgreeWithWhirlpoolS) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  for (int run = 0; run < 5; ++run) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 10;
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok());
    f.ExpectAgreesWithReference(*r);
  }
}

class ProcessorCapTest : public ::testing::TestWithParam<int> {};

TEST_P(ProcessorCapTest, CapDoesNotChangeAnswers) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./name]");
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.k = 10;
  opts.processor_cap = GetParam();
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  f.ExpectAgreesWithReference(*r);
}

INSTANTIATE_TEST_SUITE_P(Caps, ProcessorCapTest, ::testing::Values(0, 1, 2, 4));

class ThreadsPerServerTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadsPerServerTest, ExtraServerThreadsKeepAnswers) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.k = 10;
  opts.threads_per_server = GetParam();
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  f.ExpectAgreesWithReference(*r);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadsPerServerTest, ::testing::Values(1, 2, 3));

TEST(WhirlpoolMTest, RejectsNonPositiveThreadsPerServer) {
  Fixture f = Fixture::Make("//item[./name]", 1, 8 << 10, 3);
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.threads_per_server = 0;
  EXPECT_FALSE(RunTopK(*f.plan, opts).ok());
}

TEST(WhirlpoolMTest, TerminatesOnEmptyWorkload) {
  // No root candidates at all: the drain must return immediately.
  Fixture f = Fixture::Make("//no_such_tag[./name]", 1, 8 << 10, 3);
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
}

TEST(WhirlpoolMTest, StressManySmallRuns) {
  // Shake out races in startup/shutdown: many short-lived engine instances.
  Fixture f = Fixture::Make("//item[./description/parlist]", 7, 8 << 10, 3);
  for (int run = 0; run < 25; ++run) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 3;
    opts.processor_cap = 1 + (run % 3);
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok());
    f.ExpectAgreesWithReference(*r);
  }
}

TEST(WhirlpoolMTest, MultiThreadServersDrainAndTerminate) {
  // threads_per_server > 1: every extra thread parks on the shared server
  // queue and must exit at Stop() without hanging — including when there is
  // no work at all for its server.
  Fixture empty = Fixture::Make("//no_such_tag[./name]", 1, 8 << 10, 3);
  Fixture small = Fixture::Make("//item[./description/parlist]", 7, 8 << 10, 3);
  for (int tps = 2; tps <= 4; ++tps) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 3;
    opts.threads_per_server = tps;
    auto r = RunTopK(*empty.plan, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->answers.empty());
    for (int run = 0; run < 5; ++run) {
      auto rs = RunTopK(*small.plan, opts);
      ASSERT_TRUE(rs.ok());
      small.ExpectAgreesWithReference(*rs);
    }
  }
}

TEST(WhirlpoolMTest, WidePatternPerServerCountsSumToTotal) {
  // Regression for the 32-server counter truncation: a pattern wider than
  // the old uint32_t visited mask must still complete matches, and the
  // per-server operation counts must account for every operation.
  constexpr int kWide = 40;
  xmlgen::XMarkOptions gen;
  gen.seed = 3;
  gen.target_bytes = 8 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  query::TreePattern pattern = query::TreePattern::Root("item");
  for (int i = 0; i < kWide; ++i) {
    pattern.AddNode(0, query::Axis::kChild, "name");
  }
  auto scoring = ScoringModel::ComputeTfIdf(idx, pattern, Normalization::kSparse);
  auto plan = QueryPlan::Build(idx, pattern, scoring);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->num_servers(), kWide);
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->answers.empty());
    const MetricsSnapshot& m = r->metrics;
    ASSERT_EQ(m.per_server_operations.size(), static_cast<size_t>(kWide));
    uint64_t sum = 0;
    for (uint64_t ops : m.per_server_operations) sum += ops;
    EXPECT_EQ(sum, m.server_operations);
    // A complete match visits every server, so the servers past the old
    // 32-bit limit must have real operation counts.
    EXPECT_GT(m.per_server_operations[kWide - 1], 0u);
  }
}

TEST(WhirlpoolMTest, ParallelSpeedupWithInjectedCost) {
  // With a dominant per-operation cost, the capped run must be measurably
  // slower than the uncapped one (this is the Fig 9 mechanism).
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]",
                            11, 12 << 10, 5);
  ExecOptions capped, uncapped;
  capped.engine = uncapped.engine = EngineKind::kWhirlpoolM;
  capped.k = uncapped.k = 5;
  capped.op_cost_seconds = uncapped.op_cost_seconds = 0.002;
  capped.processor_cap = 1;
  uncapped.processor_cap = 0;
  auto rc = RunTopK(*f.plan, capped);
  auto ru = RunTopK(*f.plan, uncapped);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(ru.ok());
  // The serialized run pays op_cost for every operation sequentially.
  EXPECT_GT(rc->metrics.wall_seconds, ru->metrics.wall_seconds * 1.2);
}

}  // namespace
}  // namespace whirlpool::exec
