// Whirlpool-M concurrency behavior: repeated runs under different processor
// caps and thread counts must terminate, agree with Whirlpool-S, and never
// lose or duplicate answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <thread>

#include "exec/engine.h"
#include "exec/topk_set.h"
#include "util/rng.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;
  std::vector<double> reference_scores;

  static Fixture Make(const char* xpath, uint64_t seed = 4242,
                      size_t bytes = 32 << 10, uint32_t k = 10) {
    Fixture f;
    xmlgen::XMarkOptions gen;
    gen.seed = seed;
    gen.target_bytes = bytes;
    f.doc = xmlgen::GenerateXMark(gen);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    f.pattern = std::move(q).value();
    auto scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, Normalization::kSparse);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolS;
    opts.k = k;
    auto r = RunTopK(*f.plan, opts);
    EXPECT_TRUE(r.ok());
    for (const auto& a : r->answers) f.reference_scores.push_back(a.score);
    return f;
  }

  void ExpectAgreesWithReference(const TopKResult& r) const {
    ASSERT_EQ(r.answers.size(), reference_scores.size());
    for (size_t i = 0; i < reference_scores.size(); ++i) {
      ASSERT_NEAR(r.answers[i].score, reference_scores[i], 1e-9) << "rank " << i;
    }
    // No duplicate roots.
    std::set<xml::NodeId> roots;
    for (const auto& a : r.answers) {
      ASSERT_TRUE(roots.insert(a.root).second) << "duplicate root " << a.root;
    }
  }
};

TEST(WhirlpoolMTest, RepeatedRunsAgreeWithWhirlpoolS) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  for (int run = 0; run < 5; ++run) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 10;
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok());
    f.ExpectAgreesWithReference(*r);
  }
}

class ProcessorCapTest : public ::testing::TestWithParam<int> {};

TEST_P(ProcessorCapTest, CapDoesNotChangeAnswers) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./name]");
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.k = 10;
  opts.processor_cap = GetParam();
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  f.ExpectAgreesWithReference(*r);
}

INSTANTIATE_TEST_SUITE_P(Caps, ProcessorCapTest, ::testing::Values(0, 1, 2, 4));

class ThreadsPerServerTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadsPerServerTest, ExtraServerThreadsKeepAnswers) {
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]");
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.k = 10;
  opts.threads_per_server = GetParam();
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  f.ExpectAgreesWithReference(*r);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadsPerServerTest, ::testing::Values(1, 2, 3));

TEST(WhirlpoolMTest, RejectsNonPositiveThreadsPerServer) {
  Fixture f = Fixture::Make("//item[./name]", 1, 8 << 10, 3);
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  opts.threads_per_server = 0;
  EXPECT_FALSE(RunTopK(*f.plan, opts).ok());
}

TEST(WhirlpoolMTest, TerminatesOnEmptyWorkload) {
  // No root candidates at all: the drain must return immediately.
  Fixture f = Fixture::Make("//no_such_tag[./name]", 1, 8 << 10, 3);
  ExecOptions opts;
  opts.engine = EngineKind::kWhirlpoolM;
  auto r = RunTopK(*f.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
}

TEST(WhirlpoolMTest, StressManySmallRuns) {
  // Shake out races in startup/shutdown: many short-lived engine instances.
  Fixture f = Fixture::Make("//item[./description/parlist]", 7, 8 << 10, 3);
  for (int run = 0; run < 25; ++run) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 3;
    opts.processor_cap = 1 + (run % 3);
    auto r = RunTopK(*f.plan, opts);
    ASSERT_TRUE(r.ok());
    f.ExpectAgreesWithReference(*r);
  }
}

TEST(WhirlpoolMTest, MultiThreadServersDrainAndTerminate) {
  // threads_per_server > 1: every extra thread parks on the shared server
  // queue and must exit at Stop() without hanging — including when there is
  // no work at all for its server.
  Fixture empty = Fixture::Make("//no_such_tag[./name]", 1, 8 << 10, 3);
  Fixture small = Fixture::Make("//item[./description/parlist]", 7, 8 << 10, 3);
  for (int tps = 2; tps <= 4; ++tps) {
    ExecOptions opts;
    opts.engine = EngineKind::kWhirlpoolM;
    opts.k = 3;
    opts.threads_per_server = tps;
    auto r = RunTopK(*empty.plan, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->answers.empty());
    for (int run = 0; run < 5; ++run) {
      auto rs = RunTopK(*small.plan, opts);
      ASSERT_TRUE(rs.ok());
      small.ExpectAgreesWithReference(*rs);
    }
  }
}

TEST(WhirlpoolMTest, WidePatternPerServerCountsSumToTotal) {
  // Regression for the 32-server counter truncation: a pattern wider than
  // the old uint32_t visited mask must still complete matches, and the
  // per-server operation counts must account for every operation.
  constexpr int kWide = 40;
  xmlgen::XMarkOptions gen;
  gen.seed = 3;
  gen.target_bytes = 8 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  query::TreePattern pattern = query::TreePattern::Root("item");
  for (int i = 0; i < kWide; ++i) {
    pattern.AddNode(0, query::Axis::kChild, "name");
  }
  auto scoring = ScoringModel::ComputeTfIdf(idx, pattern, Normalization::kSparse);
  auto plan = QueryPlan::Build(idx, pattern, scoring);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->num_servers(), kWide);
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    auto r = RunTopK(*plan, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->answers.empty());
    const MetricsSnapshot& m = r->metrics;
    ASSERT_EQ(m.per_server_operations.size(), static_cast<size_t>(kWide));
    uint64_t sum = 0;
    for (uint64_t ops : m.per_server_operations) sum += ops;
    EXPECT_EQ(sum, m.server_operations);
    // A complete match visits every server, so the servers past the old
    // 32-bit limit must have real operation counts.
    EXPECT_GT(m.per_server_operations[kWide - 1], 0u);
  }
}

// ---------------------------------------------------------------------------
// TopKSet: lock-free cached threshold vs locked ground truth
// ---------------------------------------------------------------------------

PartialMatch ScoredMatch(NodeId root, double score) {
  PartialMatch m;
  m.bindings = {root};
  m.levels = {MatchLevel::kExact};
  m.current_score = score;
  m.max_final_score = score;
  return m;
}

class TopKSetStressTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKSetStressTest, CachedThresholdIsMonotoneAndNeverAheadOfTruth) {
  // 8 threads hammer Update() on overlapping roots while every thread also
  // validates the two invariants the lock-free readers rely on:
  //  (1) monotonicity — the cached Threshold() observed by one thread never
  //      decreases (per-object atomic coherence + monotone stores);
  //  (2) one-sided staleness — a cached sample taken BEFORE a
  //      LockedThreshold() sample never exceeds it (the cache may lag the
  //      ground truth but can never run ahead, so a stale read can only
  //      delay a prune, never cause a wrong one).
  const int shards = GetParam();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  TopKSet set(8, /*update_partials=*/true, shards);
  ASSERT_EQ(set.num_shards(), shards);
  constexpr int kThreads = 8;
  constexpr int kUpdatesPerThread = 3000;
  std::atomic<int> monotonicity_violations{0};
  std::atomic<int> staleness_violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xD1FF + static_cast<uint64_t>(t) * 7919);
      double last_seen = kNegInf;
      for (int i = 0; i < kUpdatesPerThread; ++i) {
        const NodeId root = static_cast<NodeId>(rng.Uniform(512));
        const double score = static_cast<double>(rng.Uniform(1u << 20)) / 1024.0;
        set.Update(ScoredMatch(root, score), /*complete=*/true);
        const double cached = set.Threshold();
        if (cached < last_seen) monotonicity_violations.fetch_add(1);
        last_seen = cached;
        // Sample order matters: cached first, truth second. Since the
        // truth is monotone, cached(t1) <= truth(t1) <= truth(t2).
        if ((i & 63) == 0) {
          const double truth = set.LockedThreshold();
          if (cached > truth) staleness_violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(monotonicity_violations.load(), 0);
  EXPECT_EQ(staleness_violations.load(), 0);
  // Quiesced: the cache must have caught up with the ground truth exactly.
  EXPECT_EQ(set.Threshold(), set.LockedThreshold());
  EXPECT_GT(set.Threshold(), kNegInf);  // 512 roots >> k=8: set is full
  // Finalize returns exactly k answers, highest first, no duplicate roots.
  auto answers = set.Finalize();
  ASSERT_EQ(answers.size(), 8u);
  std::set<NodeId> roots;
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i > 0) EXPECT_LE(answers[i].score, answers[i - 1].score);
    EXPECT_TRUE(roots.insert(answers[i].root).second);
  }
  // The k-th answer's score IS the quiesced threshold.
  EXPECT_DOUBLE_EQ(answers.back().score, set.Threshold());
}

INSTANTIATE_TEST_SUITE_P(Shards, TopKSetStressTest, ::testing::Values(1, 4, 16));

TEST(WhirlpoolMTest, ParallelSpeedupWithInjectedCost) {
  // With a dominant per-operation cost, the capped run must be measurably
  // slower than the uncapped one (this is the Fig 9 mechanism).
  Fixture f = Fixture::Make("//item[./description/parlist and ./mailbox/mail/text]",
                            11, 12 << 10, 5);
  ExecOptions capped, uncapped;
  capped.engine = uncapped.engine = EngineKind::kWhirlpoolM;
  capped.k = uncapped.k = 5;
  capped.op_cost_seconds = uncapped.op_cost_seconds = 0.002;
  capped.processor_cap = 1;
  uncapped.processor_cap = 0;
  auto rc = RunTopK(*f.plan, capped);
  auto ru = RunTopK(*f.plan, uncapped);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(ru.ok());
  // The serialized run pays op_cost for every operation sequentially.
  EXPECT_GT(rc->metrics.wall_seconds, ru->metrics.wall_seconds * 1.2);
}

}  // namespace
}  // namespace whirlpool::exec
