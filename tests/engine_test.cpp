#include <gtest/gtest.h>

#include "exec/engine.h"
#include "query/matcher.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;

struct EngineHarness {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  ScoringModel scoring;
  std::unique_ptr<QueryPlan> plan;

  static EngineHarness ForDoc(std::unique_ptr<xml::Document> doc, std::string_view xpath,
                              Normalization norm = Normalization::kSparse) {
    EngineHarness h;
    h.doc = std::move(doc);
    h.idx = std::make_unique<index::TagIndex>(*h.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    h.pattern = std::move(q).value();
    h.scoring = ScoringModel::ComputeTfIdf(*h.idx, h.pattern, norm);
    auto plan = QueryPlan::Build(*h.idx, h.pattern, h.scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    h.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return h;
  }
};

TEST(EngineTest, Fig1TopKRanksExactMatchFirst) {
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::Figure1Bookstore(),
      "/book[./title='wodehouse' and ./info/publisher/name='psmith']");
  ExecOptions opts;
  opts.k = 3;
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 3u);
  // Book (a) is the exact match and must rank first with the highest score.
  const auto& books = h.idx->Nodes("book");
  EXPECT_EQ(r->answers[0].root, books[0]);
  EXPECT_GT(r->answers[0].score, r->answers[1].score);
  EXPECT_GE(r->answers[1].score, r->answers[2].score);
  // All bindings of the top answer are exact.
  for (size_t qi = 1; qi < h.pattern.size(); ++qi) {
    EXPECT_EQ(r->answers[0].levels[qi], MatchLevel::kExact) << "node " << qi;
  }
}

TEST(EngineTest, KLimitsAnswerCount) {
  EngineHarness h =
      EngineHarness::ForDoc(xmlgen::Figure1Bookstore(), "/book[.//title]");
  for (uint32_t k : {1u, 2u, 3u, 10u}) {
    ExecOptions opts;
    opts.k = k;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->answers.size(), std::min<size_t>(k, 3));
  }
}

TEST(EngineTest, RejectsZeroK) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(), "/book[./title]");
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 0;
    EXPECT_FALSE(RunTopK(*h.plan, opts).ok());
  }
}

TEST(EngineTest, ExactSemanticsMatchesNaiveEvaluation) {
  xmlgen::XMarkOptions gen;
  gen.seed = 21;
  gen.target_bytes = 32 << 10;
  EngineHarness h = EngineHarness::ForDoc(xmlgen::GenerateXMark(gen),
                                          "//item[./description/parlist]");
  ExecOptions opts;
  opts.semantics = MatchSemantics::kExact;
  opts.k = 1000;  // collect all
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok());
  std::vector<xml::NodeId> engine_roots;
  for (const auto& a : r->answers) engine_roots.push_back(a.root);
  std::sort(engine_roots.begin(), engine_roots.end());
  std::vector<xml::NodeId> naive = query::EvaluatePattern(*h.idx, h.pattern);
  std::sort(naive.begin(), naive.end());
  EXPECT_EQ(engine_roots, naive);
}

TEST(EngineTest, ExactSemanticsAllScoresAreFullExact) {
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::Figure1Bookstore(),
      "/book[./title='wodehouse' and ./info/publisher/name='psmith']");
  ExecOptions opts;
  opts.semantics = MatchSemantics::kExact;
  opts.k = 10;
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 1u);  // only book (a) embeds exactly
  double full = 0;
  for (size_t qi = 1; qi < h.pattern.size(); ++qi) {
    full += h.scoring.predicate(static_cast<int>(qi)).at_level[0];
  }
  EXPECT_NEAR(r->answers[0].score, full, 1e-12);
}

TEST(EngineTest, RelaxedScoresReflectLevels) {
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::Figure1Bookstore(),
      "/book[./title='wodehouse' and ./info/publisher/name='psmith']",
      Normalization::kNone);
  ExecOptions opts;
  opts.k = 3;
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 3u);
  const auto& books = h.idx->Nodes("book");
  // (a) exact everywhere > (b) promoted publisher chain > (c) title only.
  EXPECT_EQ(r->answers[0].root, books[0]);
  EXPECT_EQ(r->answers[1].root, books[1]);
  EXPECT_EQ(r->answers[2].root, books[2]);
  // Book (b): publisher/name under book but not under info => promoted.
  EXPECT_EQ(r->answers[1].levels[3], MatchLevel::kPromoted);
  // Book (c): no publisher at all => deleted; title under info => edge-gen
  // does not apply for pc(book,title)... it is nested, so edge-gen level.
  EXPECT_EQ(r->answers[2].levels[3], MatchLevel::kDeleted);
  EXPECT_EQ(r->answers[2].levels[1], MatchLevel::kEdgeGeneralized);
}

TEST(EngineTest, NoPrunEnumeratesEverything) {
  xmlgen::XMarkOptions gen;
  gen.seed = 33;
  gen.target_bytes = 16 << 10;
  EngineHarness h = EngineHarness::ForDoc(xmlgen::GenerateXMark(gen),
                                          "//item[./description/parlist and ./name]");
  ExecOptions prun, noprun;
  prun.engine = EngineKind::kLockStep;
  prun.k = 3;
  noprun.engine = EngineKind::kLockStepNoPrun;
  noprun.k = 3;
  auto rp = RunTopK(*h.plan, prun);
  auto rn = RunTopK(*h.plan, noprun);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_EQ(rn->metrics.matches_pruned, 0u);
  EXPECT_GE(rn->metrics.matches_created, rp->metrics.matches_created);
  // Same top-k scores regardless of pruning.
  ASSERT_EQ(rp->answers.size(), rn->answers.size());
  for (size_t i = 0; i < rp->answers.size(); ++i) {
    EXPECT_NEAR(rp->answers[i].score, rn->answers[i].score, 1e-9);
  }
}

TEST(EngineTest, FrozenThresholdPrunesEverythingWhenUnbeatable) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(),
                                          "/book[./title and ./isbn]");
  ExecOptions opts;
  opts.k = 1;
  opts.frozen_threshold = 1e9;
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.server_operations, 0u);  // all roots pruned immediately
}

TEST(EngineTest, OpCostSlowsExecution) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(),
                                          "/book[./title and ./isbn]");
  ExecOptions fast, slow;
  fast.k = slow.k = 2;
  slow.op_cost_seconds = 0.005;
  auto rf = RunTopK(*h.plan, fast);
  auto rs = RunTopK(*h.plan, slow);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rf->metrics.server_operations, rs->metrics.server_operations);
  EXPECT_GT(rs->metrics.wall_seconds,
            0.8 * 0.005 * static_cast<double>(rs->metrics.server_operations));
}

TEST(EngineTest, StaticOrderChangesWorkNotAnswers) {
  xmlgen::XMarkOptions gen;
  gen.seed = 12;
  gen.target_bytes = 24 << 10;
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::GenerateXMark(gen), "//item[./description/parlist and ./name]");
  std::vector<double> baseline_scores;
  std::vector<std::vector<int>> orders = {{0, 1, 2}, {2, 1, 0}, {1, 0, 2}};
  for (const auto& order : orders) {
    ExecOptions opts;
    opts.routing = RoutingStrategy::kStatic;
    opts.static_order = order;
    opts.k = 5;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    std::vector<double> scores;
    for (const auto& a : r->answers) scores.push_back(a.score);
    if (baseline_scores.empty()) {
      baseline_scores = scores;
    } else {
      ASSERT_EQ(scores.size(), baseline_scores.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        EXPECT_NEAR(scores[i], baseline_scores[i], 1e-9) << "order index";
      }
    }
  }
}

TEST(EngineTest, MetricsAreInternallyConsistent) {
  xmlgen::XMarkOptions gen;
  gen.seed = 9;
  gen.target_bytes = 16 << 10;
  EngineHarness h = EngineHarness::ForDoc(xmlgen::GenerateXMark(gen),
                                          "//item[./description/parlist and ./name]");
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    const auto& m = r->metrics;
    EXPECT_GT(m.server_operations, 0u) << EngineKindName(kind);
    EXPECT_GT(m.matches_created, 0u);
    EXPECT_GT(m.matches_completed, 0u);
    EXPECT_LE(m.matches_pruned + m.matches_completed, m.matches_created);
    EXPECT_GE(m.wall_seconds, 0.0);
  }
}

TEST(EngineTest, AnalyticNoPrunCountMatchesRealRun) {
  xmlgen::XMarkOptions gen;
  gen.seed = 77;
  gen.target_bytes = 16 << 10;
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::GenerateXMark(gen),
      "//item[./description/parlist and ./mailbox/mail/text]");
  const std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}};
  for (const auto& order : orders) {
    ExecOptions opts;
    opts.engine = EngineKind::kLockStepNoPrun;
    opts.static_order = order;
    opts.k = 5;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->metrics.matches_created, NoPruningTupleCount(*h.plan, order));
  }
}

TEST(EngineTest, BulkRoutingPreservesAnswers) {
  xmlgen::XMarkOptions gen;
  gen.seed = 404;
  gen.target_bytes = 24 << 10;
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::GenerateXMark(gen),
      "//item[./description/parlist and ./mailbox/mail/text]");
  std::vector<double> baseline;
  uint64_t prev_decisions = 0;
  for (int batch : {1, 4, 64}) {
    ExecOptions opts;
    opts.k = 10;
    opts.bulk_batch = batch;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    std::vector<double> scores;
    for (const auto& a : r->answers) scores.push_back(a.score);
    if (baseline.empty()) {
      baseline = scores;
      prev_decisions = r->metrics.routing_decisions;
    } else {
      ASSERT_EQ(scores.size(), baseline.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        EXPECT_NEAR(scores[i], baseline[i], 1e-9) << "batch " << batch;
      }
      // Batching can only reduce the number of routing decisions.
      EXPECT_LE(r->metrics.routing_decisions, prev_decisions) << "batch " << batch;
      prev_decisions = r->metrics.routing_decisions;
    }
  }
}

TEST(EngineTest, PerServerOperationsSumToTotal) {
  xmlgen::XMarkOptions gen;
  gen.seed = 404;
  gen.target_bytes = 16 << 10;
  EngineHarness h = EngineHarness::ForDoc(
      xmlgen::GenerateXMark(gen),
      "//item[./description/parlist and ./mailbox/mail/text]");
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 5;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->metrics.per_server_operations.size(),
              static_cast<size_t>(h.plan->num_servers()))
        << EngineKindName(kind);
    uint64_t sum = 0;
    for (uint64_t ops : r->metrics.per_server_operations) sum += ops;
    EXPECT_EQ(sum, r->metrics.server_operations) << EngineKindName(kind);
  }
}

TEST(EngineTest, RoutingDecisionsCounted) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(),
                                          "/book[./title and ./isbn]");
  ExecOptions opts;
  opts.k = 3;
  auto r = RunTopK(*h.plan, opts);
  ASSERT_TRUE(r.ok());
  // Every server operation in Whirlpool-S at bulk_batch=1 follows exactly
  // one routing decision.
  EXPECT_EQ(r->metrics.routing_decisions, r->metrics.server_operations);
}

TEST(EngineTest, SingleNodeQueryReturnsRoots) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(), "/book");
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep}) {
    ExecOptions opts;
    opts.engine = kind;
    opts.k = 2;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok()) << EngineKindName(kind);
    EXPECT_EQ(r->answers.size(), 2u);
  }
}

TEST(EngineTest, EmptyRootCandidatesYieldNoAnswers) {
  EngineHarness h = EngineHarness::ForDoc(xmlgen::Figure1Bookstore(),
                                          "//nonexistent[./title]");
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions opts;
    opts.engine = kind;
    auto r = RunTopK(*h.plan, opts);
    ASSERT_TRUE(r.ok()) << EngineKindName(kind);
    EXPECT_TRUE(r->answers.empty());
  }
}

}  // namespace
}  // namespace whirlpool::exec
