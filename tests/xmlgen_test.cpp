#include <gtest/gtest.h>

#include "index/tag_index.h"
#include "query/matcher.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool::xmlgen {
namespace {

using index::TagIndex;

TEST(XMarkGenTest, DeterministicForSeed) {
  XMarkOptions opts;
  opts.seed = 99;
  opts.target_bytes = 16 << 10;
  auto a = GenerateXMark(opts);
  auto b = GenerateXMark(opts);
  ASSERT_EQ(a->num_nodes(), b->num_nodes());
  for (xml::NodeId i = 0; i < a->num_nodes(); ++i) {
    ASSERT_EQ(a->tag_name(i), b->tag_name(i));
    ASSERT_EQ(a->text(i), b->text(i));
  }
}

TEST(XMarkGenTest, DifferentSeedsDiffer) {
  XMarkOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  a_opts.target_bytes = b_opts.target_bytes = 16 << 10;
  auto a = GenerateXMark(a_opts);
  auto b = GenerateXMark(b_opts);
  EXPECT_NE(a->num_nodes(), b->num_nodes());
}

TEST(XMarkGenTest, ScalesWithTargetBytes) {
  XMarkOptions small, large;
  small.target_bytes = 8 << 10;
  large.target_bytes = 128 << 10;
  auto sdoc = GenerateXMark(small);
  auto ldoc = GenerateXMark(large);
  EXPECT_GT(ldoc->num_nodes(), sdoc->num_nodes() * 8);
  // Approximate calibration: within a factor ~4 of the target.
  const double ratio =
      static_cast<double>(ldoc->ApproxContentBytes()) / static_cast<double>(large.target_bytes);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 4.0);
}

TEST(XMarkGenTest, HasExpectedStructuralElements) {
  XMarkOptions opts;
  opts.target_bytes = 32 << 10;
  auto doc = GenerateXMark(opts);
  TagIndex idx(*doc);
  EXPECT_FALSE(idx.Nodes("item").empty());
  EXPECT_FALSE(idx.Nodes("description").empty());
  EXPECT_FALSE(idx.Nodes("parlist").empty());
  EXPECT_FALSE(idx.Nodes("listitem").empty());
  EXPECT_FALSE(idx.Nodes("mailbox").empty());
  EXPECT_FALSE(idx.Nodes("mail").empty());
  EXPECT_FALSE(idx.Nodes("text").empty());
  EXPECT_FALSE(idx.Nodes("bold").empty());
  EXPECT_FALSE(idx.Nodes("keyword").empty());
  EXPECT_FALSE(idx.Nodes("incategory").empty());
  EXPECT_FALSE(idx.Nodes("person").empty());
  EXPECT_FALSE(idx.Nodes("open_auction").empty());
  EXPECT_FALSE(idx.Nodes("closed_auction").empty());
  EXPECT_FALSE(idx.Nodes("category").empty());
}

TEST(XMarkGenTest, RecursiveParlistExists) {
  XMarkOptions opts;
  opts.seed = 3;
  opts.target_bytes = 64 << 10;
  auto doc = GenerateXMark(opts);
  TagIndex idx(*doc);
  xml::TagId parlist = doc->tags().Lookup("parlist");
  bool nested = false;
  for (xml::NodeId p : idx.Nodes(parlist)) {
    if (!idx.DescendantsWithTag(p, parlist).empty()) {
      nested = true;
      break;
    }
  }
  EXPECT_TRUE(nested) << "no recursive parlist found; edge generalization has no fodder";
}

TEST(XMarkGenTest, SomeItemsLackIncategoryAndMailbox) {
  XMarkOptions opts;
  opts.seed = 5;
  opts.target_bytes = 64 << 10;
  auto doc = GenerateXMark(opts);
  TagIndex idx(*doc);
  xml::TagId incategory = doc->tags().Lookup("incategory");
  xml::TagId mailbox = doc->tags().Lookup("mailbox");
  int without_cat = 0, with_cat = 0, without_mail = 0, with_mail = 0;
  for (xml::NodeId item : idx.Nodes("item")) {
    (idx.CountDescendantsWithTag(item, incategory) == 0 ? without_cat : with_cat)++;
    (idx.CountDescendantsWithTag(item, mailbox) == 0 ? without_mail : with_mail)++;
  }
  EXPECT_GT(without_cat, 0);
  EXPECT_GT(with_cat, 0);
  EXPECT_GT(without_mail, 0);
  EXPECT_GT(with_mail, 0);
}

TEST(XMarkGenTest, PaperQueriesHaveExactMatches) {
  XMarkOptions opts;
  opts.seed = 6;
  opts.target_bytes = 96 << 10;
  auto doc = GenerateXMark(opts);
  TagIndex idx(*doc);
  for (const char* xpath :
       {"//item[./description/parlist]",
        "//item[./description/parlist and ./mailbox/mail/text]",
        "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and "
        "./incategory]"}) {
    auto q = query::ParseXPath(xpath);
    ASSERT_TRUE(q.ok());
    EXPECT_FALSE(query::EvaluatePattern(idx, *q).empty()) << xpath;
    // ... but not every item matches exactly (approximation is meaningful).
    EXPECT_LT(query::EvaluatePattern(idx, *q).size(), idx.Nodes("item").size())
        << xpath;
  }
}

TEST(BookstoreTest, Figure1HasThreeBooks) {
  auto doc = Figure1Bookstore();
  TagIndex idx(*doc);
  EXPECT_EQ(idx.Nodes("book").size(), 3u);
  EXPECT_EQ(idx.Nodes("title").size(), 3u);
  EXPECT_EQ(idx.Nodes("publisher").size(), 2u);
  EXPECT_EQ(idx.NodesWithValue("name", "psmith").size(), 2u);
  EXPECT_EQ(idx.NodesWithValue("location", "london").size(), 2u);
}

TEST(BookstoreTest, GeneratedCollectionHasHeterogeneousSchemas) {
  BookstoreOptions opts;
  opts.num_books = 200;
  auto doc = GenerateBookstore(opts);
  TagIndex idx(*doc);
  EXPECT_EQ(idx.Nodes("book").size(), 200u);
  // Schema (a)/(b): title is a child of book; schema (c): under info.
  auto q_direct = query::ParseXPath("/book[./title]");
  auto q_nested = query::ParseXPath("/book[./info/title]");
  ASSERT_TRUE(q_direct.ok());
  ASSERT_TRUE(q_nested.ok());
  const size_t direct = query::EvaluatePattern(idx, *q_direct).size();
  const size_t nested = query::EvaluatePattern(idx, *q_nested).size();
  EXPECT_GT(direct, 0u);
  EXPECT_GT(nested, 0u);
  EXPECT_EQ(direct + nested, 200u);
}

TEST(BookstoreTest, GeneratedCollectionDeterministic) {
  BookstoreOptions opts;
  opts.seed = 12;
  opts.num_books = 50;
  auto a = GenerateBookstore(opts);
  auto b = GenerateBookstore(opts);
  ASSERT_EQ(a->num_nodes(), b->num_nodes());
  for (xml::NodeId i = 0; i < a->num_nodes(); ++i) {
    ASSERT_EQ(a->tag_name(i), b->tag_name(i));
    ASSERT_EQ(a->text(i), b->text(i));
  }
}

}  // namespace
}  // namespace whirlpool::xmlgen
