#include <gtest/gtest.h>

#include "xml/dewey.h"
#include "xmlgen/xmark.h"

namespace whirlpool::xml {
namespace {

TEST(DeweyLabelTest, RootLabelIsEmpty) {
  DeweyLabel root;
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.ToString(), "");
  EXPECT_EQ(root.depth(), 0u);
}

TEST(DeweyLabelTest, ToStringDotted) {
  DeweyLabel l({1, 3, 2});
  EXPECT_EQ(l.ToString(), "1.3.2");
  EXPECT_EQ(l.depth(), 3u);
}

TEST(DeweyLabelTest, IsParentOf) {
  DeweyLabel p({1, 3});
  EXPECT_TRUE(p.IsParentOf(DeweyLabel({1, 3, 1})));
  EXPECT_FALSE(p.IsParentOf(DeweyLabel({1, 3, 1, 1})));  // grandchild
  EXPECT_FALSE(p.IsParentOf(DeweyLabel({1, 4, 1})));     // different branch
  EXPECT_FALSE(p.IsParentOf(DeweyLabel({1, 3})));        // self
  EXPECT_FALSE(p.IsParentOf(DeweyLabel({1})));           // ancestor inverted
}

TEST(DeweyLabelTest, IsAncestorOf) {
  DeweyLabel a({2});
  EXPECT_TRUE(a.IsAncestorOf(DeweyLabel({2, 1})));
  EXPECT_TRUE(a.IsAncestorOf(DeweyLabel({2, 5, 9})));
  EXPECT_FALSE(a.IsAncestorOf(DeweyLabel({2})));
  EXPECT_FALSE(a.IsAncestorOf(DeweyLabel({3, 1})));
  EXPECT_TRUE(DeweyLabel().IsAncestorOf(a));  // root is ancestor of all
}

TEST(DeweyLabelTest, OrderingIsLexicographic) {
  EXPECT_LT(DeweyLabel({1}), DeweyLabel({1, 1}));
  EXPECT_LT(DeweyLabel({1, 2}), DeweyLabel({1, 3}));
  EXPECT_LT(DeweyLabel({1, 9}), DeweyLabel({2}));
}

TEST(DeweyIndexTest, SiblingOrdinalsStartAtOne) {
  Document doc;
  NodeId a = doc.AddChild(doc.root(), "a");
  NodeId b = doc.AddChild(a, "b");
  NodeId c = doc.AddChild(a, "c");
  doc.Finalize();
  DeweyIndex dewey(doc);
  EXPECT_EQ(dewey.label(a).ToString(), "1");
  EXPECT_EQ(dewey.label(b).ToString(), "1.1");
  EXPECT_EQ(dewey.label(c).ToString(), "1.2");
}

TEST(DeweyIndexTest, SecondTopLevelTree) {
  Document doc;
  doc.AddChild(doc.root(), "x");
  NodeId y = doc.AddChild(doc.root(), "y");
  NodeId yk = doc.AddChild(y, "k");
  doc.Finalize();
  DeweyIndex dewey(doc);
  EXPECT_EQ(dewey.label(y).ToString(), "2");
  EXPECT_EQ(dewey.label(yk).ToString(), "2.1");
}

/// Property: Dewey-based pc/ad agree with the interval-encoding predicates
/// on generated documents, for all node pairs in a sample.
class DeweyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeweyPropertyTest, AgreesWithIntervalPredicates) {
  xmlgen::XMarkOptions opts;
  opts.seed = GetParam();
  opts.target_bytes = 12 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  DeweyIndex dewey(*doc);
  ASSERT_EQ(dewey.size(), doc->num_nodes());
  // Sample pairs with a stride so the test stays fast on any size.
  const NodeId n = static_cast<NodeId>(doc->num_nodes());
  const NodeId stride = std::max<NodeId>(1, n / 60);
  for (NodeId a = 0; a < n; a += stride) {
    for (NodeId b = 0; b < n; b += stride) {
      ASSERT_EQ(doc->IsChild(a, b), dewey.IsChild(a, b))
          << "pc mismatch a=" << a << " b=" << b;
      ASSERT_EQ(doc->IsDescendant(a, b), dewey.IsDescendant(a, b))
          << "ad mismatch a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeweyPropertyTest, ::testing::Values(1, 2, 3, 17, 99));

TEST(DeweyIndexTest, DocumentOrderMatchesLabelOrder) {
  xmlgen::XMarkOptions opts;
  opts.seed = 5;
  opts.target_bytes = 8 << 10;
  auto doc = xmlgen::GenerateXMark(opts);
  DeweyIndex dewey(*doc);
  // Preorder rank order == lexicographic Dewey order.
  std::vector<NodeId> nodes;
  for (NodeId i = 1; i < doc->num_nodes(); ++i) nodes.push_back(i);
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return doc->node(a).order < doc->node(b).order;
  });
  for (size_t i = 1; i < nodes.size(); ++i) {
    ASSERT_TRUE(dewey.label(nodes[i - 1]) < dewey.label(nodes[i]))
        << dewey.label(nodes[i - 1]).ToString() << " !< "
        << dewey.label(nodes[i]).ToString();
  }
}

}  // namespace
}  // namespace whirlpool::xml
