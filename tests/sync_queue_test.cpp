// SyncMatchQueue batched-drain unit tests: batch boundaries (exactly N,
// N-1, N+1 entries), priority order within a drained batch, single-producer
// FIFO preservation under the kFifo priority encoding, shutdown while a
// drained batch is still being consumed, and prompt return of a blocked
// empty drain on Stop().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/queue_policy.h"

namespace whirlpool::exec {
namespace {

/// A minimal queue entry: priority + seq are all the heap looks at.
QueuedMatch Make(uint64_t seq, double priority) {
  QueuedMatch qm;
  qm.priority = priority;
  qm.match.seq = seq;
  return qm;
}

/// Entry under the kFifo policy: priority = -seq, so heap order == arrival
/// order for a single producer.
QueuedMatch MakeFifo(uint64_t seq) {
  return Make(seq, -static_cast<double>(seq));
}

TEST(SyncMatchQueueTest, PopBatchDrainsUpToLimit) {
  SyncMatchQueue q;
  for (uint64_t i = 0; i < 10; ++i) q.Push(MakeFifo(i));
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 2u);  // only the remainder is available
}

TEST(SyncMatchQueueTest, BatchBoundaryExactlyNAndNPlusMinusOne) {
  for (const size_t available : {3u, 4u, 5u}) {  // N-1, N, N+1 around max_n=4
    SyncMatchQueue q;
    std::vector<QueuedMatch> in;
    for (uint64_t i = 0; i < available; ++i) in.push_back(MakeFifo(i));
    q.PushBatch(&in);
    EXPECT_TRUE(in.empty());  // PushBatch clears the producer's outbox
    std::vector<QueuedMatch> batch;
    ASSERT_TRUE(q.PopBatch(&batch, 4));
    EXPECT_EQ(batch.size(), std::min<size_t>(available, 4u));
    if (available > 4) {
      ASSERT_TRUE(q.PopBatch(&batch, 4));
      EXPECT_EQ(batch.size(), available - 4);
    }
    q.Stop();
    EXPECT_FALSE(q.PopBatch(&batch, 4));
    EXPECT_TRUE(batch.empty());
  }
}

TEST(SyncMatchQueueTest, DrainedBatchIsInPriorityOrder) {
  SyncMatchQueue q;
  // Deliberately shuffled priorities; seq breaks ties toward the newest.
  const double prios[] = {1.0, 9.0, 3.0, 9.0, 7.0, 2.0, 8.0, 0.5};
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < 8; ++i) in.push_back(Make(i, prios[i]));
  q.PushBatch(&in);
  std::vector<QueuedMatch> all;
  std::vector<QueuedMatch> batch;
  while (all.size() < 8 && q.PopBatch(&batch, 3)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 1; i < all.size(); ++i) {
    // Non-increasing priority across batch boundaries too.
    EXPECT_GE(all[i - 1].priority, all[i].priority) << "position " << i;
  }
  // The tied pair (priority 9) must come newest-first (seq 3 before seq 1).
  EXPECT_EQ(all[0].match.seq, 3u);
  EXPECT_EQ(all[1].match.seq, 1u);
}

TEST(SyncMatchQueueTest, SingleProducerFifoPreservedAcrossBatches) {
  SyncMatchQueue q;
  constexpr uint64_t kTotal = 100;
  // Producer publishes in several PushBatch chunks, kFifo priorities.
  std::vector<QueuedMatch> out;
  for (uint64_t i = 0; i < kTotal; ++i) {
    out.push_back(MakeFifo(i));
    if (out.size() == 7) q.PushBatch(&out);
  }
  q.PushBatch(&out);
  std::vector<uint64_t> seen;
  std::vector<QueuedMatch> batch;
  while (seen.size() < kTotal && q.PopBatch(&batch, 9)) {
    for (const QueuedMatch& qm : batch) seen.push_back(qm.match.seq);
  }
  ASSERT_EQ(seen.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i], i) << "FIFO broken at position " << i;
  }
}

TEST(SyncMatchQueueTest, ShutdownWhileBatchInFlight) {
  SyncMatchQueue q;
  for (uint64_t i = 0; i < 6; ++i) q.Push(MakeFifo(i));
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  ASSERT_EQ(batch.size(), 4u);
  // Stop lands while the consumer still holds an unprocessed batch: the
  // remaining queued entries must still be drained, then Pop returns false.
  q.Stop();
  std::vector<QueuedMatch> rest;
  ASSERT_TRUE(q.PopBatch(&rest, 4));
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_FALSE(q.PopBatch(&rest, 4));
  // Pushing after Stop is not part of the contract the engines rely on, but
  // the first batch's entries must be intact.
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].match.seq, 0u);
}

TEST(SyncMatchQueueTest, EmptyDrainReturnsPromptlyOnStop) {
  SyncMatchQueue q;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<QueuedMatch> batch;
    const bool got = q.PopBatch(&batch, 8);
    EXPECT_FALSE(got);
    EXPECT_TRUE(batch.empty());
    returned.store(true);
  });
  // Give the consumer time to block on the empty queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Stop();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(SyncMatchQueueTest, ManyProducersOneConsumerDeliversEverything) {
  SyncMatchQueue q;
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<QueuedMatch> out;
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t seq = static_cast<uint64_t>(p) * kPerProducer + i;
        out.push_back(MakeFifo(seq));
        if (out.size() == 5) q.PushBatch(&out);
      }
      q.PushBatch(&out);
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  size_t count = 0;
  std::vector<QueuedMatch> batch;
  while (count < seen.size() && q.PopBatch(&batch, 16)) {
    for (const QueuedMatch& qm : batch) {
      ASSERT_LT(qm.match.seq, seen.size());
      ASSERT_FALSE(seen[qm.match.seq]) << "duplicate seq " << qm.match.seq;
      seen[qm.match.seq] = true;
      ++count;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(count, seen.size());
}

}  // namespace
}  // namespace whirlpool::exec
