// SyncMatchQueue batched-drain unit tests: batch boundaries (exactly N,
// N-1, N+1 entries), priority order within a drained batch, single-producer
// FIFO preservation under the kFifo priority encoding, shutdown while a
// drained batch is still being consumed, prompt return of a blocked empty
// drain on Stop(), integer-seq FIFO ordering beyond double precision
// (seq >= 2^53), and the adaptive drain governor (exec/adaptive.h): control
// law, deep-queue widening, and narrowing under contended expensive work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/adaptive.h"
#include "exec/queue_policy.h"
#include "util/failpoint.h"

namespace whirlpool::exec {
namespace {

/// A minimal queue entry: priority + seq are all the heap looks at.
QueuedMatch Make(uint64_t seq, double priority) {
  QueuedMatch qm;
  qm.priority = priority;
  qm.match.seq = seq;
  return qm;
}

/// Entry under the kFifo policy: priority = -seq, so heap order == arrival
/// order for a single producer.
QueuedMatch MakeFifo(uint64_t seq) {
  return Make(seq, -static_cast<double>(seq));
}

TEST(SyncMatchQueueTest, PopBatchDrainsUpToLimit) {
  SyncMatchQueue q;
  for (uint64_t i = 0; i < 10; ++i) q.Push(MakeFifo(i));
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch.size(), 2u);  // only the remainder is available
}

TEST(SyncMatchQueueTest, BatchBoundaryExactlyNAndNPlusMinusOne) {
  for (const size_t available : {3u, 4u, 5u}) {  // N-1, N, N+1 around max_n=4
    SyncMatchQueue q;
    std::vector<QueuedMatch> in;
    for (uint64_t i = 0; i < available; ++i) in.push_back(MakeFifo(i));
    q.PushBatch(&in);
    EXPECT_TRUE(in.empty());  // PushBatch clears the producer's outbox
    std::vector<QueuedMatch> batch;
    ASSERT_TRUE(q.PopBatch(&batch, 4));
    EXPECT_EQ(batch.size(), std::min<size_t>(available, 4u));
    if (available > 4) {
      ASSERT_TRUE(q.PopBatch(&batch, 4));
      EXPECT_EQ(batch.size(), available - 4);
    }
    q.Stop();
    EXPECT_FALSE(q.PopBatch(&batch, 4));
    EXPECT_TRUE(batch.empty());
  }
}

TEST(SyncMatchQueueTest, DrainedBatchIsInPriorityOrder) {
  SyncMatchQueue q;
  // Deliberately shuffled priorities; seq breaks ties toward the newest.
  const double prios[] = {1.0, 9.0, 3.0, 9.0, 7.0, 2.0, 8.0, 0.5};
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < 8; ++i) in.push_back(Make(i, prios[i]));
  q.PushBatch(&in);
  std::vector<QueuedMatch> all;
  std::vector<QueuedMatch> batch;
  while (all.size() < 8 && q.PopBatch(&batch, 3)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 1; i < all.size(); ++i) {
    // Non-increasing priority across batch boundaries too.
    EXPECT_GE(all[i - 1].priority, all[i].priority) << "position " << i;
  }
  // The tied pair (priority 9) must come newest-first (seq 3 before seq 1).
  EXPECT_EQ(all[0].match.seq, 3u);
  EXPECT_EQ(all[1].match.seq, 1u);
}

TEST(SyncMatchQueueTest, SingleProducerFifoPreservedAcrossBatches) {
  SyncMatchQueue q;
  constexpr uint64_t kTotal = 100;
  // Producer publishes in several PushBatch chunks, kFifo priorities.
  std::vector<QueuedMatch> out;
  for (uint64_t i = 0; i < kTotal; ++i) {
    out.push_back(MakeFifo(i));
    if (out.size() == 7) q.PushBatch(&out);
  }
  q.PushBatch(&out);
  std::vector<uint64_t> seen;
  std::vector<QueuedMatch> batch;
  while (seen.size() < kTotal && q.PopBatch(&batch, 9)) {
    for (const QueuedMatch& qm : batch) seen.push_back(qm.match.seq);
  }
  ASSERT_EQ(seen.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i], i) << "FIFO broken at position " << i;
  }
}

TEST(SyncMatchQueueTest, ShutdownWhileBatchInFlight) {
  SyncMatchQueue q;
  for (uint64_t i = 0; i < 6; ++i) q.Push(MakeFifo(i));
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  ASSERT_EQ(batch.size(), 4u);
  // Stop lands while the consumer still holds an unprocessed batch: the
  // remaining queued entries must still be drained, then Pop returns false.
  q.Stop();
  std::vector<QueuedMatch> rest;
  ASSERT_TRUE(q.PopBatch(&rest, 4));
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_FALSE(q.PopBatch(&rest, 4));
  // Pushing after Stop is not part of the contract the engines rely on, but
  // the first batch's entries must be intact.
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].match.seq, 0u);
}

TEST(SyncMatchQueueTest, EmptyDrainReturnsPromptlyOnStop) {
  SyncMatchQueue q;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<QueuedMatch> batch;
    const bool got = q.PopBatch(&batch, 8);
    EXPECT_FALSE(got);
    EXPECT_TRUE(batch.empty());
    returned.store(true);
  });
  // Give the consumer time to block on the empty queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Stop();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(SyncMatchQueueTest, ManyProducersOneConsumerDeliversEverything) {
  SyncMatchQueue q;
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<QueuedMatch> out;
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t seq = static_cast<uint64_t>(p) * kPerProducer + i;
        out.push_back(MakeFifo(seq));
        if (out.size() == 5) q.PushBatch(&out);
      }
      q.PushBatch(&out);
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  size_t count = 0;
  std::vector<QueuedMatch> batch;
  while (count < seen.size() && q.PopBatch(&batch, 16)) {
    for (const QueuedMatch& qm : batch) {
      ASSERT_LT(qm.match.seq, seen.size());
      ASSERT_FALSE(seen[qm.match.seq]) << "duplicate seq " << qm.match.seq;
      seen[qm.match.seq] = true;
      ++count;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(count, seen.size());
}

TEST(SyncMatchQueueTest, FifoPolicyOrdersBySeqBeyondDoublePrecision) {
  // Above 2^53 consecutive integers collapse to the same double, so the old
  // priority = -double(seq) encoding made them ties — and the newest-first
  // tie-break then *inverted* arrival order. The kFifo queue now compares
  // seq as an integer; order must be exact at any magnitude.
  SyncMatchQueue q(QueuePolicy::kFifo);
  constexpr uint64_t kBase = uint64_t{1} << 53;
  constexpr uint64_t kTotal = 40;
  for (uint64_t i = 0; i < kTotal; ++i) {
    q.Push(Make(kBase + i, /*priority=*/0.0));  // kFifo priorities are all 0
  }
  std::vector<uint64_t> seen;
  std::vector<QueuedMatch> batch;
  while (seen.size() < kTotal && q.PopBatch(&batch, 7)) {
    for (const QueuedMatch& qm : batch) seen.push_back(qm.match.seq);
  }
  ASSERT_EQ(seen.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i], kBase + i) << "FIFO broken at position " << i;
  }
  ASSERT_EQ(static_cast<double>(kBase), static_cast<double>(kBase + 1))
      << "test premise: consecutive seqs above 2^53 are double-ties";
}

TEST(SyncMatchQueueTest, TracksQueueDepthPeak) {
  SyncMatchQueue q;
  EXPECT_EQ(q.depth_peak(), 0u);
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < 6; ++i) in.push_back(MakeFifo(i));
  q.PushBatch(&in);
  EXPECT_EQ(q.depth_peak(), 6u);
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4));
  q.Push(MakeFifo(7));  // depth back to 3 — peak must not regress
  EXPECT_EQ(q.depth_peak(), 6u);
}

TEST(SyncMatchQueueTest, DepthMirrorTracksPushAndPop) {
  // Depth() is the lock-free instantaneous mirror the telemetry sampler
  // reads; with no concurrent producer it must agree exactly.
  SyncMatchQueue q;
  EXPECT_EQ(q.Depth(), 0u);
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < 5; ++i) in.push_back(MakeFifo(i));
  q.PushBatch(&in);
  EXPECT_EQ(q.Depth(), 5u);
  QueuedMatch m;
  ASSERT_TRUE(q.Pop(&m));
  EXPECT_EQ(q.Depth(), 4u);
  std::vector<QueuedMatch> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(q.Depth(), 1u);
  q.Push(MakeFifo(9));
  EXPECT_EQ(q.Depth(), 2u);
}

TEST(SyncMatchQueueTest, ShutdownRacedAgainstPushPopUnderFailpoints) {
  // Shutdown-race sweep at the instrumented batch boundaries: producers and
  // consumers run under a seeded plan that yields, stalls, and injects
  // spurious wakeups exactly where PushBatch publishes and PopBatch drains,
  // while Stop() lands at a different moment each round. The queue's
  // contract under fire: every drained entry is a real, never-duplicated
  // entry; every round terminates (no lost-wakeup hang — the TSan CI leg
  // additionally proves race-freedom).
  constexpr int kRounds = 16;
  constexpr int kProducers = 2;
  constexpr uint64_t kPerProducer = 120;
  for (int round = 0; round < kRounds; ++round) {
    failpoint::ScopedConfig cfg(
        "queue.push_batch=yield(every=2),"
        "queue.pop_batch=wake(every=3),"
        "tracer.record=sleep(20,p=0.5)",  // inert here; exercises mixed plans
        /*seed=*/1000 + static_cast<uint64_t>(round));
    ASSERT_TRUE(cfg.status().ok());
    SyncMatchQueue q;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        std::vector<QueuedMatch> out;
        for (uint64_t i = 0; i < kPerProducer; ++i) {
          out.push_back(MakeFifo(static_cast<uint64_t>(p) * kPerProducer + i));
          if (out.size() == 3) q.PushBatch(&out);  // ignored after Stop
        }
        q.PushBatch(&out);
      });
    }
    std::vector<bool> seen(kProducers * kPerProducer, false);
    std::thread consumer([&q, &seen] {
      std::vector<QueuedMatch> batch;
      while (q.PopBatch(&batch, 5)) {
        for (const QueuedMatch& qm : batch) {
          ASSERT_LT(qm.match.seq, seen.size());
          ASSERT_FALSE(seen[qm.match.seq]) << "duplicate seq " << qm.match.seq;
          seen[qm.match.seq] = true;
        }
      }
    });
    // Stop at a round-dependent phase of the production window, from
    // immediately to well into the stream.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    q.Stop();
    for (auto& t : producers) t.join();
    consumer.join();
    // Entries published after Stop raced past the consumer's exit; drain
    // them (still unique), after which the stopped queue must report empty.
    std::vector<QueuedMatch> batch;
    while (q.PopBatch(&batch, 5)) {
      for (const QueuedMatch& qm : batch) {
        ASSERT_LT(qm.match.seq, seen.size());
        ASSERT_FALSE(seen[qm.match.seq]) << "duplicate seq " << qm.match.seq;
        seen[qm.match.seq] = true;
      }
    }
    EXPECT_FALSE(q.PopBatch(&batch, 5)) << "round " << round;
  }
}

/// An adaptive controller + one registered governor, for the drain tests.
struct AdaptiveFixture {
  explicit AdaptiveFixture(int queue_id) {
    options.queue_drain_batch = 0;  // adaptive
    resolved = ResolveSyncKnobs(options, /*worker_threads=*/4);
    controller = std::make_unique<DrainController>(options, resolved);
    gov = controller->Register(queue_id);
  }
  ExecOptions options;
  ResolvedSync resolved;
  std::unique_ptr<DrainController> controller;
  DrainGovernor* gov = nullptr;
};

TEST(AdaptiveDrainTest, ControlLawWidensOnHighLockRatioAndNarrowsOnLow) {
  // Deterministic control-law check (no real clocks): a server-role
  // governor starts at 1 and doubles toward max while lock-wait exceeds
  // kDrainTargetRatio of processing time...
  AdaptiveFixture f(/*queue_id=*/0);
  ASSERT_TRUE(f.gov->adaptive());
  ASSERT_EQ(f.gov->drain(), 1);
  for (int i = 0; i < 12; ++i) {
    f.gov->RecordSample(/*lock_wait_ns=*/50'000, /*process_ns=*/100'000);
  }
  EXPECT_EQ(f.gov->drain(), kAutoDrainMax);
  // ...and halves back to 1 when processing dominates (ratio below
  // kDrainLowWater with at least kDrainNarrowFloorNs of batch work).
  for (int i = 0; i < 16; ++i) {
    f.gov->RecordSample(/*lock_wait_ns=*/100, /*process_ns=*/2'000'000);
  }
  EXPECT_EQ(f.gov->drain(), 1);
  EXPECT_GT(f.gov->samples(), 0u);
}

TEST(AdaptiveDrainTest, NeverNarrowsBelowTheProcessFloor) {
  // Sub-floor batches (cheaper than kDrainNarrowFloorNs) must not narrow
  // even at a tiny ratio: lock amortization always wins down there, and the
  // signal is clock-resolution noise.
  AdaptiveFixture f(DrainController::kRouterQueue);
  ASSERT_EQ(f.gov->drain(), kAutoDrainMax);  // router role starts wide
  for (int i = 0; i < 12; ++i) {
    f.gov->RecordSample(/*lock_wait_ns=*/1, /*process_ns=*/500);
  }
  EXPECT_EQ(f.gov->drain(), kAutoDrainMax);
}

TEST(AdaptiveDrainTest, DeepQueueLoneConsumerWidensTowardMax) {
  // End-to-end through PopBatch with real clocks: a lone consumer draining
  // a deep queue of trivial items sees lock-wait comparable to its
  // (near-zero) processing time, so the governor widens the drain well past
  // its server-role start of 1. Per-item work here is far below the narrow
  // floor, so scheduler noise cannot push the drain back down.
  AdaptiveFixture f(/*queue_id=*/0);
  SyncMatchQueue q;
  constexpr uint64_t kTotal = 4000;
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < kTotal; ++i) in.push_back(MakeFifo(i));
  q.PushBatch(&in);
  size_t drained = 0;
  std::vector<QueuedMatch> batch;
  while (drained < kTotal) {
    ASSERT_TRUE(q.PopBatch(&batch, f.gov));
    drained += batch.size();
  }
  EXPECT_GE(f.gov->drain(), 8) << "lock_wait_ewma_ns=" << f.gov->lock_wait_ewma_ns()
                               << " process_ewma_ns=" << f.gov->process_ewma_ns()
                               << " samples=" << f.gov->samples();
}

TEST(AdaptiveDrainTest, ContendedConsumersWithExpensiveWorkNarrowTowardOne) {
  // Several consumers doing genuinely expensive per-item work (sleeps, so
  // the single-CPU CI box schedules them fairly): processing dominates
  // lock-wait by orders of magnitude, so router-role governors that start
  // at the widest drain must narrow toward single-entry drains — the
  // freshness-preserving end the static op-cost heuristic hard-coded.
  constexpr int kConsumers = 3;
  constexpr uint64_t kTotal = 1800;
  ExecOptions options;
  options.queue_drain_batch = 0;
  const ResolvedSync resolved = ResolveSyncKnobs(options, kConsumers + 1);
  DrainController controller(options, resolved);
  SyncMatchQueue q;
  std::vector<QueuedMatch> in;
  for (uint64_t i = 0; i < kTotal; ++i) in.push_back(MakeFifo(i));
  q.PushBatch(&in);

  std::vector<DrainGovernor*> govs;
  for (int c = 0; c < kConsumers; ++c) {
    govs.push_back(controller.Register(DrainController::kRouterQueue));
  }
  std::atomic<uint64_t> drained{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &drained, gov = govs[static_cast<size_t>(c)]] {
      std::vector<QueuedMatch> batch;
      while (q.PopBatch(&batch, gov)) {
        for (size_t i = 0; i < batch.size(); ++i) {
          std::this_thread::sleep_for(std::chrono::microseconds(250));
        }
        if (drained.fetch_add(batch.size()) + batch.size() >= kTotal) q.Stop();
      }
    });
  }
  for (auto& t : consumers) t.join();
  ASSERT_GE(drained.load(), kTotal);
  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_LE(govs[static_cast<size_t>(c)]->drain(), 4)
        << "consumer " << c << " lock_wait_ewma_ns="
        << govs[static_cast<size_t>(c)]->lock_wait_ewma_ns()
        << " process_ewma_ns=" << govs[static_cast<size_t>(c)]->process_ewma_ns()
        << " samples=" << govs[static_cast<size_t>(c)]->samples();
  }
}

}  // namespace
}  // namespace whirlpool::exec
