#include <gtest/gtest.h>

#include "query/tree_pattern.h"

namespace whirlpool::query {
namespace {

TreePattern BookPattern() {
  // /book[./title='wodehouse' and ./info/publisher/name='psmith']  (Fig 2a)
  TreePattern p = TreePattern::Root("book");
  p.AddNode(0, Axis::kChild, "title", "wodehouse");
  int info = p.AddNode(0, Axis::kChild, "info");
  int publisher = p.AddNode(info, Axis::kChild, "publisher");
  p.AddNode(publisher, Axis::kChild, "name", "psmith");
  return p;
}

TEST(TreePatternTest, RootConstruction) {
  TreePattern p = TreePattern::Root("book");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.node(0).tag, "book");
  EXPECT_EQ(p.node(0).parent, -1);
  EXPECT_TRUE(p.IsLeaf(0));
}

TEST(TreePatternTest, AddNodeLinksParentAndChildren) {
  TreePattern p = BookPattern();
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.node(1).tag, "title");
  EXPECT_EQ(*p.node(1).value, "wodehouse");
  EXPECT_EQ(p.node(2).tag, "info");
  EXPECT_EQ(p.node(3).parent, 2);
  EXPECT_EQ(p.node(0).children, (std::vector<int>{1, 2}));
  EXPECT_FALSE(p.IsLeaf(0));
  EXPECT_TRUE(p.IsLeaf(4));
}

TEST(TreePatternTest, IsAncestor) {
  TreePattern p = BookPattern();
  EXPECT_TRUE(p.IsAncestor(0, 4));
  EXPECT_TRUE(p.IsAncestor(2, 3));
  EXPECT_FALSE(p.IsAncestor(1, 4));
  EXPECT_FALSE(p.IsAncestor(4, 0));
  EXPECT_FALSE(p.IsAncestor(3, 3));
}

TEST(TreePatternTest, ChainFromRoot) {
  TreePattern p = BookPattern();
  auto chain = p.Chain(0, 4);  // book -> info -> publisher -> name
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].tag, "info");
  EXPECT_EQ(chain[1].tag, "publisher");
  EXPECT_EQ(chain[2].tag, "name");
  EXPECT_EQ(*chain[2].value, "psmith");
  EXPECT_EQ(chain[0].axis, Axis::kChild);
}

TEST(TreePatternTest, ChainToDirectChild) {
  TreePattern p = BookPattern();
  auto chain = p.Chain(0, 1);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].tag, "title");
}

TEST(TreePatternTest, PreorderVisitsAll) {
  TreePattern p = BookPattern();
  EXPECT_EQ(p.Preorder(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TreePatternTest, ToStringRendersStructure) {
  TreePattern p = BookPattern();
  EXPECT_EQ(p.ToString(),
            "book[pc:title='wodehouse' pc:info[pc:publisher[pc:name='psmith']]]");
}

// -- Relaxations (paper Sec 2) ----------------------------------------------

TEST(RelaxationTest, EdgeGeneralization) {
  TreePattern p = BookPattern();
  auto r = p.EdgeGeneralization(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node(1).axis, Axis::kDescendant);
  EXPECT_EQ(p.node(1).axis, Axis::kChild);  // original untouched
}

TEST(RelaxationTest, EdgeGeneralizationRejectsAdEdge) {
  TreePattern p = TreePattern::Root("a");
  p.AddNode(0, Axis::kDescendant, "b");
  EXPECT_FALSE(p.EdgeGeneralization(1).ok());
}

TEST(RelaxationTest, EdgeGeneralizationRejectsRoot) {
  EXPECT_FALSE(BookPattern().EdgeGeneralization(0).ok());
  EXPECT_FALSE(BookPattern().EdgeGeneralization(99).ok());
}

TEST(RelaxationTest, LeafDeletion) {
  TreePattern p = BookPattern();
  auto r = p.LeafDeletion(4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->node(4).optional);
}

TEST(RelaxationTest, LeafDeletionRejectsInternalNode) {
  EXPECT_FALSE(BookPattern().LeafDeletion(2).ok());  // info has a child
}

TEST(RelaxationTest, LeafDeletionRejectsDouble) {
  TreePattern p = BookPattern();
  auto r = p.LeafDeletion(1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->LeafDeletion(1).ok());
}

TEST(RelaxationTest, SubtreePromotion) {
  TreePattern p = BookPattern();
  // Promote publisher (node 3) from info to book.
  auto r = p.SubtreePromotion(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->node(3).parent, 0);
  EXPECT_EQ(r->node(3).axis, Axis::kDescendant);
  // info no longer has children; book gained one.
  EXPECT_TRUE(r->IsLeaf(2));
  EXPECT_EQ(r->node(0).children, (std::vector<int>{1, 2, 3}));
  // name stays under publisher.
  EXPECT_EQ(r->node(4).parent, 3);
}

TEST(RelaxationTest, SubtreePromotionRejectsChildOfRoot) {
  EXPECT_FALSE(BookPattern().SubtreePromotion(1).ok());
  EXPECT_FALSE(BookPattern().SubtreePromotion(0).ok());
}

TEST(RelaxationTest, PromotionThenLeafDeletionComposes) {
  // Fig 2(c): promote publisher subtree, delete info leaf, generalize title.
  TreePattern p = BookPattern();
  auto c = p.SubtreePromotion(3);
  ASSERT_TRUE(c.ok());
  auto c2 = c->LeafDeletion(2);
  ASSERT_TRUE(c2.ok());
  auto c3 = c2->EdgeGeneralization(1);
  ASSERT_TRUE(c3.ok());
  EXPECT_TRUE(c3->node(2).optional);
  EXPECT_EQ(c3->node(1).axis, Axis::kDescendant);
}

TEST(RelaxationTest, FullyRelaxedFlattensUnderRoot) {
  TreePattern p = BookPattern();
  TreePattern relaxed = p.FullyRelaxed();
  EXPECT_EQ(relaxed.size(), p.size());
  for (size_t i = 1; i < relaxed.size(); ++i) {
    EXPECT_EQ(relaxed.node(static_cast<int>(i)).parent, 0);
    EXPECT_EQ(relaxed.node(static_cast<int>(i)).axis, Axis::kDescendant);
    EXPECT_TRUE(relaxed.node(static_cast<int>(i)).optional);
  }
}

TEST(TreePatternTest, EqualityDetectsAxisDifference) {
  TreePattern a = BookPattern();
  TreePattern b = BookPattern();
  EXPECT_TRUE(a == b);
  auto r = b.EdgeGeneralization(1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(a == *r);
}

}  // namespace
}  // namespace whirlpool::query
