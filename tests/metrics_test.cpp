// The observability layer: latency histogram percentiles, the execution
// tracer's Chrome-trace JSON export, the metrics JSON snapshot, and the
// shared ValidateOptions checks every engine must apply identically.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <thread>

#include "exec/engine.h"
#include "exec/rewriting_baseline.h"
#include "exec/tracer.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "util/failpoint.h"
#include "util/histogram.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::Normalization;
using score::ScoringModel;
using util::LatencyHistogram;
using util::LatencyStats;

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
// literals) — enough to assert the exported trace/metrics JSON parses.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, SelfCheck) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x\n","c":null})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1)").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":})").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"\x01\"}").Valid());
}

// ---------------------------------------------------------------------------
// Histogram

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram h;
  LatencyStats s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(LatencyHistogramTest, BucketMidpointApproximatesValue) {
  // Log-linear bucketing with 16 sub-buckets: midpoint within ~6.25% of any
  // recorded value (exact below 2^4 ns).
  for (uint64_t ns : {uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{1000},
                      uint64_t{123456}, uint64_t{987654321}, uint64_t{1} << 40}) {
    const double mid = LatencyHistogram::BucketMidpoint(LatencyHistogram::BucketFor(ns));
    EXPECT_NEAR(mid, static_cast<double>(ns), static_cast<double>(ns) * 0.0625 + 0.5)
        << "ns=" << ns;
  }
}

TEST(LatencyHistogramTest, PercentilesOfUniformDistribution) {
  LatencyHistogram h;
  // 1..1000 microseconds, uniform.
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i * 1000);
  LatencyStats s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean_us, 500.5, 1.0);
  EXPECT_NEAR(s.min_us, 1.0, 1.0 * 0.07);
  EXPECT_LE(s.min_us, s.p50_us);
  EXPECT_NEAR(s.p50_us, 500.0, 500.0 * 0.07);
  EXPECT_NEAR(s.p95_us, 950.0, 950.0 * 0.07);
  EXPECT_NEAR(s.p99_us, 990.0, 990.0 * 0.07);
  EXPECT_NEAR(s.max_us, 1000.0, 1000.0 * 0.07);
  EXPECT_LE(s.p50_us, s.p95_us);
  EXPECT_LE(s.p95_us, s.p99_us);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, MergeFoldsSamples) {
  LatencyHistogram a, b;
  for (uint64_t i = 1; i <= 100; ++i) a.Record(i * 1000);
  for (uint64_t i = 101; i <= 200; ++i) b.Record(i * 1000);
  a.Merge(b);
  LatencyStats s = a.Snapshot();
  EXPECT_EQ(s.count, 200u);
  EXPECT_NEAR(s.p50_us, 100.0, 100.0 * 0.07);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, ChromeTraceIsWellFormedJson) {
  Tracer tracer;
  const uint64_t t0 = MonotonicNs();
  tracer.RecordSpan("server_op", ServerId(0), MatchSeq(1), t0, t0 + 1000);
  tracer.RecordInstant("prune", ServerId(2), MatchSeq(3));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer] {
      const uint64_t start = MonotonicNs();
      for (int i = 0; i < 50; ++i) {
        tracer.RecordSpan("queue_wait", ServerId(i % 3), MatchSeq(static_cast<uint64_t>(i)),
                          start, start + 10);
        tracer.RecordInstant("route", ServerId(i % 3), MatchSeq(static_cast<uint64_t>(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.NumEvents(), 2u + 4u * 100u);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"server_op\""), std::string::npos);
  EXPECT_NE(json.find("\"prune\""), std::string::npos);
}

TEST(TracerTest, LiveExportRacesFailpointStalledWriters) {
  // Live export under fire: writer threads record spans while the
  // `tracer.record` failpoint stalls and reshuffles them mid-record, and the
  // main thread concurrently runs WriteChromeTrace/NumEvents over the same
  // buffers. This pins AppendBufferJson's REQUIRES(b.mu) contract — the
  // export must take each buffer's lock around the scan, so every export
  // observes a consistent prefix and the final count/JSON are exact. The
  // TSan CI leg turns any unlocked scan into a hard failure.
  failpoint::ScopedConfig cfg(
      "tracer.record=sleep(40,every=3),topk.update=yield", /*seed=*/7);
  ASSERT_TRUE(cfg.status().ok());
  Tracer tracer;
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 60;
  std::atomic<bool> stop_export{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerWriter; ++i) {
        const uint64_t start = MonotonicNs();
        tracer.RecordSpan("chaos_span", ServerId(t), MatchSeq(static_cast<uint64_t>(i)),
                          start, start + 5);
      }
    });
  }
  std::thread exporter([&tracer, &stop_export] {
    while (!stop_export.load()) {
      std::ostringstream os;
      tracer.WriteChromeTrace(os);
      EXPECT_TRUE(JsonChecker(os.str()).Valid()) << os.str().substr(0, 400);
      (void)tracer.NumEvents();
    }
  });
  for (auto& t : writers) t.join();
  stop_export.store(true);
  exporter.join();
  EXPECT_EQ(tracer.NumEvents(), static_cast<size_t>(kWriters) * kSpansPerWriter);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_TRUE(JsonChecker(os.str()).Valid());
}

TEST(TracerTest, EmptyTraceIsWellFormed) {
  Tracer tracer;
  EXPECT_EQ(tracer.NumEvents(), 0u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_TRUE(JsonChecker(os.str()).Valid()) << os.str();
}

// ---------------------------------------------------------------------------
// Engine integration: latency collection, the JSON snapshot, ValidateOptions.

struct Workload {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  std::unique_ptr<QueryPlan> plan;
};

Workload MakeWorkload(const char* xpath = "//item[./description/parlist and ./name]") {
  Workload w;
  xmlgen::XMarkOptions gen;
  gen.seed = 99;
  gen.target_bytes = 16 << 10;
  w.doc = xmlgen::GenerateXMark(gen);
  w.idx = std::make_unique<index::TagIndex>(*w.doc);
  auto q = ParseXPath(xpath);
  EXPECT_TRUE(q.ok()) << q.status();
  w.pattern = std::move(q).value();
  auto scoring = ScoringModel::ComputeTfIdf(*w.idx, w.pattern, Normalization::kSparse);
  auto plan = QueryPlan::Build(*w.idx, w.pattern, scoring);
  EXPECT_TRUE(plan.ok()) << plan.status();
  w.plan = std::make_unique<QueryPlan>(std::move(plan).value());
  return w;
}

class EngineMetricsTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineMetricsTest, CollectsLatencyHistograms) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.engine = GetParam();
  opts.k = 5;
  opts.collect_latencies = true;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const MetricsSnapshot& m = r->metrics;
  EXPECT_EQ(m.server_op_latency.count, m.server_operations);
  EXPECT_EQ(m.query_latency.count, 1u);
  EXPECT_GT(m.query_latency.p50_us, 0.0);
  if (m.server_operations > 0) {
    EXPECT_GT(m.server_op_latency.max_us, 0.0);
    EXPECT_LE(m.server_op_latency.p50_us, m.server_op_latency.p99_us);
  }
}

TEST_P(EngineMetricsTest, LatenciesOffLeavesHistogramsEmpty) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.engine = GetParam();
  opts.k = 5;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->metrics.server_op_latency.count, 0u);
  EXPECT_EQ(r->metrics.query_latency.count, 0u);
}

TEST_P(EngineMetricsTest, TraceCoversRun) {
  Workload w = MakeWorkload();
  Tracer tracer;
  ExecOptions opts;
  opts.engine = GetParam();
  opts.k = 5;
  opts.tracer = &tracer;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(tracer.NumEvents(), 0u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"server_op\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineMetricsTest,
                         ::testing::Values(EngineKind::kWhirlpoolS,
                                           EngineKind::kWhirlpoolM,
                                           EngineKind::kLockStep,
                                           EngineKind::kLockStepNoPrun));

TEST(MetricsJsonTest, SnapshotJsonHasPercentileFields) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.k = 5;
  opts.collect_latencies = true;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const std::string json = r->metrics.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* field :
       {"\"server_operations\"", "\"per_server_operations\"", "\"latency\"",
        "\"server_op\"", "\"queue_wait\"", "\"query\"", "\"p50_us\"", "\"p95_us\"",
        "\"p99_us\"", "\"mean_us\"", "\"max_us\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " missing in " << json;
  }
}

TEST(MetricsJsonTest, MinUsSurfacesInLatencyJson) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.k = 5;
  opts.collect_latencies = true;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const MetricsSnapshot& m = r->metrics;
  EXPECT_GT(m.query_latency.min_us, 0.0);
  EXPECT_LE(m.query_latency.min_us, m.query_latency.p50_us);
  if (m.server_op_latency.count > 0) {
    EXPECT_LE(m.server_op_latency.min_us, m.server_op_latency.max_us);
  }
  const std::string json = m.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"min_us\""), std::string::npos) << json;
}

TEST(MetricsJsonTest, TimeseriesBlockSurfacesInJson) {
  Workload w = MakeWorkload();
  ExecOptions opts;
  opts.k = 5;
  opts.telemetry_interval_us = 200;
  opts.op_cost_seconds = 20e-6;  // Keep the run alive across several samples.
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GE(r->metrics.timeseries.ticks, 1u);
  const std::string json = r->metrics.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* field :
       {"\"timeseries\"", "\"interval_us\"", "\"ticks\"", "\"t_us\"",
        "\"series\"", "\"kind\"", "\"gauge\"", "\"counter\"", "\"threshold\"",
        "\"queue_depth.router\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " missing in " << json;
  }
  // Telemetry off: the block is present but empty (ticks 0, no series).
  opts.telemetry_interval_us = 0;
  auto off = RunTopK(*w.plan, opts);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->metrics.timeseries.ticks, 0u);
  EXPECT_TRUE(off->metrics.timeseries.series.empty());
  const std::string off_json = off->metrics.ToJson();
  EXPECT_TRUE(JsonChecker(off_json).Valid()) << off_json;
  EXPECT_NE(off_json.find("\"ticks\":0"), std::string::npos) << off_json;
}

TEST(MetricsJsonTest, FailpointCountersSurfaceInJson) {
  Workload w = MakeWorkload("//item[./name]");
  ExecOptions opts;
  opts.k = 5;
  opts.collect_latencies = true;
  opts.failpoints = "ws.step=yield(every=2),topk.update=yield(every=3)";
  opts.failpoint_seed = 11;
  auto r = RunTopK(*w.plan, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  // The snapshot was taken while the run's plan was installed: both entries
  // appear with their spec text, and the armed sites actually counted hits.
  ASSERT_EQ(r->metrics.failpoints.size(), 2u);
  uint64_t ws_step_hits = 0;
  for (const auto& fp : r->metrics.failpoints) {
    if (fp.name == "ws.step") ws_step_hits = fp.hits;
    EXPECT_GE(fp.hits, fp.triggers) << fp.name;
  }
  EXPECT_GT(ws_step_hits, 0u);
  const std::string json = r->metrics.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* field : {"\"failpoints\"", "\"ws.step\"", "\"topk.update\"",
                            "\"hits\"", "\"triggers\"", "\"spec\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " missing in " << json;
  }
  // A clean run leaves the counter array empty.
  opts.failpoints.clear();
  auto clean = RunTopK(*w.plan, opts);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->metrics.failpoints.empty());
}

TEST(ValidateOptionsTest, AllEnginesRejectBadOptionsIdentically) {
  Workload w = MakeWorkload("//item[./name]");
  const auto expect_invalid = [&](const ExecOptions& opts) {
    auto r = RunTopK(*w.plan, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();
    auto rb = RunRewritingBaseline(*w.plan, opts, nullptr);
    ASSERT_FALSE(rb.ok());
    EXPECT_EQ(rb.status().code(), StatusCode::kInvalidArgument) << rb.status();
  };
  for (EngineKind kind : {EngineKind::kWhirlpoolS, EngineKind::kWhirlpoolM,
                          EngineKind::kLockStep, EngineKind::kLockStepNoPrun}) {
    ExecOptions zero_k;
    zero_k.engine = kind;
    zero_k.k = 0;
    expect_invalid(zero_k);

    ExecOptions bad_threads;
    bad_threads.engine = kind;
    bad_threads.threads_per_server = 0;
    expect_invalid(bad_threads);

    ExecOptions both_thresholds;
    both_thresholds.engine = kind;
    both_thresholds.frozen_threshold = 1.0;
    both_thresholds.min_score_threshold = 2.0;
    expect_invalid(both_thresholds);
  }
}

}  // namespace
}  // namespace whirlpool::exec
