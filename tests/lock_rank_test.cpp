#include <gtest/gtest.h>

#include <limits>

#include "exec/topk_set.h"
#include "util/check.h"
#include "util/mutex.h"

// Death tests for the runtime lock-rank checker (DESIGN.md §10). The checker
// only exists in debug builds (WP_DCHECK_IS_ON); in release builds every test
// here skips rather than silently passing, so a green run always means either
// "checker verified" or "checker compiled out", never "checker broken".

namespace whirlpool {
namespace {

#if WP_DCHECK_IS_ON

using exec::MatchLevel;
using exec::PartialMatch;
using exec::TopKSet;

PartialMatch MakeMatch(exec::NodeId root, double score, double max_final) {
  PartialMatch m;
  m.bindings = {root};
  m.levels = {MatchLevel::kExact};
  m.current_score = score;
  m.max_final_score = max_final;
  return m;
}

TEST(LockRankDeathTest, InvertedTopKAcquisitionAborts) {
  // The real TopKSet nesting is shard.mu (kTopKShard) -> scores_mu_
  // (kTopKScores). Acquiring them in the opposite order is the deadlock shape
  // the checker exists to catch; the abort message must name both lock sites
  // so the report is actionable without a debugger.
  Mutex scores(LockRank::kTopKScores, "TopKSet::scores_mu_");
  Mutex shard(LockRank::kTopKShard, "TopKSet::Shard::mu");
  EXPECT_DEATH(
      {
        MutexLock hold_scores(&scores);
        MutexLock hold_shard(&shard);
      },
      "lock rank violation.*TopKSet::Shard::mu.*kTopKShard=60.*"
      "TopKSet::scores_mu_.*kTopKScores=70");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  // Ranks are a strict total order: two locks of the same rank (e.g. two
  // TopKSet shards) may never be held together, because nothing orders them
  // against each other.
  Mutex a(LockRank::kTopKShard, "shard_a");
  Mutex b(LockRank::kTopKShard, "shard_b");
  EXPECT_DEATH(
      {
        MutexLock hold_a(&a);
        MutexLock hold_b(&b);
      },
      "lock rank violation.*shard_b.*shard_a");
}

TEST(LockRankDeathTest, WaitHoldingSecondLockAborts) {
  // Runtime twin of wp-alint's WP009 blocking-under-lock rule: Wait releases
  // only the waited mutex, so any other held ranked lock stays locked for
  // the whole (unbounded) wait. Holding queue.mu while waiting on a
  // higher-ranked lock's condition is exactly that shape.
  Mutex queue(LockRank::kQueue, "corpus::queue_mu");
  Mutex inflight(LockRank::kInFlight, "corpus::inflight_mu");
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock hold_queue(&queue);
        MutexLock hold_inflight(&inflight);
        // inflight (higher rank) stays held for the wait. The always-true
        // predicate keeps a regressed checker from hanging the child: the
        // abort must come from AssertWaitSafe, before any blocking.
        cv.Wait(queue, [] { return true; });
      },
      "blocking wait under lock \\(WP009\\).*corpus::queue_mu.*"
      "corpus::inflight_mu.*kInFlight=30");
}

TEST(LockRankTest, WaitHoldingOnlyOwnMutexPasses) {
  // The legal shape: the waited mutex is the only ranked lock held. Notify
  // first so the (spurious-wakeup-tolerant) predicate Wait returns at once.
  Mutex mu(LockRank::kQueue, "own_mu");
  CondVar cv;
  bool ready = true;
  MutexLock hold(&mu);
  cv.Wait(mu, [&ready] { return ready; });
  SUCCEED();
}

TEST(LockRankTest, CorrectOrderPasses) {
  // The documented hierarchy, acquired low-to-high, never trips the checker.
  Mutex queue(LockRank::kQueue, "queue");
  Mutex shard(LockRank::kTopKShard, "shard");
  Mutex scores(LockRank::kTopKScores, "scores");
  {
    MutexLock l1(&queue);
    MutexLock l2(&shard);
    MutexLock l3(&scores);
  }
  // Releasing and re-acquiring in a different interleaving is also fine as
  // long as each acquisition respects the order at that moment.
  {
    MutexLock l2(&shard);
    MutexLock l3(&scores);
  }
  { MutexLock l1(&queue); }
  SUCCEED();
}

TEST(LockRankTest, UnrankedLocksAreExempt) {
  // kUnranked is the migration default: unranked locks participate in no
  // ordering checks, in either direction.
  Mutex ranked(LockRank::kTracer, "ranked");
  Mutex legacy_a;  // kUnranked
  Mutex legacy_b;  // kUnranked
  MutexLock l1(&ranked);
  MutexLock l2(&legacy_a);
  MutexLock l3(&legacy_b);
  SUCCEED();
}

TEST(LockRankTest, TryLockSkipsOrderCheck) {
  // try_lock cannot block, hence cannot deadlock; an out-of-order try_lock
  // is permitted and simply joins the held stack unchecked.
  Mutex scores(LockRank::kTopKScores, "scores");
  Mutex shard(LockRank::kTopKShard, "shard");
  MutexLock hold_scores(&scores);
  ASSERT_TRUE(shard.try_lock());
  shard.unlock();
}

TEST(LockRankTest, RankAccessorReflectsConstruction) {
  Mutex ranked(LockRank::kJoinCache, "jc");
  Mutex unranked;
  EXPECT_EQ(ranked.rank(), LockRank::kJoinCache);
  EXPECT_EQ(unranked.rank(), LockRank::kUnranked);
}

TEST(LockRankTest, TopKSetExercisesRankedPathClean) {
  // End-to-end: TopKSet::Update takes shard.mu then scores_mu_ internally.
  // With the checker live this must not abort — it pins the retrofit ranks
  // against the code's actual nesting.
  TopKSet set(2);
  set.Update(MakeMatch(1, 5.0, 5.0), true);
  set.Update(MakeMatch(2, 3.0, 3.0), true);
  set.Update(MakeMatch(3, 4.0, 4.0), true);
  EXPECT_EQ(set.Threshold(), 4.0);
  EXPECT_EQ(set.Finalize().size(), 2u);
}

TEST(LockRankTest, LockRankNameCoversAllRanks) {
  EXPECT_STREQ(LockRankName(LockRank::kUnranked), "kUnranked");
  EXPECT_STREQ(LockRankName(LockRank::kBenchGlobal), "kBenchGlobal");
  EXPECT_STREQ(LockRankName(LockRank::kQueue), "kQueue");
  EXPECT_STREQ(LockRankName(LockRank::kInFlight), "kInFlight");
  EXPECT_STREQ(LockRankName(LockRank::kProcessorCap), "kProcessorCap");
  EXPECT_STREQ(LockRankName(LockRank::kJoinCache), "kJoinCache");
  EXPECT_STREQ(LockRankName(LockRank::kTopKShard), "kTopKShard");
  EXPECT_STREQ(LockRankName(LockRank::kTopKScores), "kTopKScores");
  EXPECT_STREQ(LockRankName(LockRank::kTracer), "kTracer");
  EXPECT_STREQ(LockRankName(LockRank::kTracerBuffer), "kTracerBuffer");
}

#else  // !WP_DCHECK_IS_ON

TEST(LockRankTest, CheckerCompiledOut) {
  GTEST_SKIP() << "lock-rank checker is debug-only (WP_DCHECK_IS_ON=0); "
                  "run the debug preset to exercise it";
}

#endif  // WP_DCHECK_IS_ON

}  // namespace
}  // namespace whirlpool
