// ScoreAggregation::kSumWitnesses: the engine-level realization of the
// Definition 4.4 tf*idf score (every witness contributes; no tuple
// explosion). Validated against the standalone TfIdfScorer, a brute-force
// oracle, and across all engines.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/engine.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "xml/parser.h"
#include "xmlgen/xmark.h"

namespace whirlpool::exec {
namespace {

using query::ParseXPath;
using score::ClassifyBinding;
using score::Normalization;
using score::ScoringModel;

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::TagIndex> idx;
  query::TreePattern pattern;
  ScoringModel scoring;
  std::unique_ptr<QueryPlan> plan;

  static Fixture FromXml(std::string_view xml_text, std::string_view xpath,
                         Normalization norm) {
    auto doc = xml::ParseDocument(xml_text);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return Make(std::move(doc).value(), xpath, norm);
  }

  static Fixture FromXMark(uint64_t seed, size_t bytes, std::string_view xpath,
                           Normalization norm) {
    xmlgen::XMarkOptions gen;
    gen.seed = seed;
    gen.target_bytes = bytes;
    return Make(xmlgen::GenerateXMark(gen), xpath, norm);
  }

  static Fixture Make(std::unique_ptr<xml::Document> doc, std::string_view xpath,
                      Normalization norm) {
    Fixture f;
    f.doc = std::move(doc);
    f.idx = std::make_unique<index::TagIndex>(*f.doc);
    auto q = ParseXPath(xpath);
    EXPECT_TRUE(q.ok()) << q.status();
    f.pattern = std::move(q).value();
    f.scoring = ScoringModel::ComputeTfIdf(*f.idx, f.pattern, norm);
    auto plan = QueryPlan::Build(*f.idx, f.pattern, f.scoring);
    EXPECT_TRUE(plan.ok()) << plan.status();
    f.plan = std::make_unique<QueryPlan>(std::move(plan).value());
    return f;
  }

  /// Brute-force sum-witness score of `root` under relaxed semantics.
  double OracleSum(xml::NodeId root) const {
    double total = 0.0;
    for (int qi = 1; qi < static_cast<int>(pattern.size()); ++qi) {
      const auto& pn = pattern.node(qi);
      xml::TagId tag = doc->tags().Lookup(pn.tag);
      if (tag == xml::kInvalidTag) continue;
      auto chain = pattern.Chain(0, qi);
      auto cands = pn.value ? idx->DescendantsWithTagValue(root, tag, *pn.value)
                            : idx->DescendantsWithTag(root, tag);
      for (xml::NodeId c : cands) {
        total += scoring.predicate(qi).Contribution(
            ClassifyBinding(*idx, root, c, chain));
      }
    }
    return total;
  }
};

TEST(SumWitnessesTest, ExactSemanticsEqualsDef44Scorer) {
  Fixture f = Fixture::FromXml(
      "<lib>"
      "<book><title>t</title><isbn>1</isbn></book>"
      "<book><title>t</title><title>t2</title><isbn>2</isbn></book>"
      "<book><isbn>3</isbn></book>"  // no title: keeps idf(title) > 0
      "</lib>",
      "/book[./title and ./isbn]", Normalization::kNone);
  ExecOptions options;
  options.aggregation = ScoreAggregation::kSumWitnesses;
  options.semantics = MatchSemantics::kExact;
  options.k = 10;
  auto r = RunTopK(*f.plan, options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 2u);  // third book lacks isbn
  score::TfIdfScorer scorer(*f.idx, f.pattern);
  for (const auto& a : r->answers) {
    EXPECT_NEAR(a.score, scorer.Score(a.root), 1e-9) << "root " << a.root;
  }
  // The two-title book must outrank the one-title book (tf matters).
  EXPECT_GT(r->answers[0].score, r->answers[1].score);
}

TEST(SumWitnessesTest, RelaxedMatchesOracleOnXMark) {
  Fixture f = Fixture::FromXMark(3131, 24 << 10,
                                 "//item[./description/parlist and ./name]",
                                 Normalization::kSparse);
  ExecOptions options;
  options.aggregation = ScoreAggregation::kSumWitnesses;
  options.k = 100000;  // keep everything
  auto r = RunTopK(*f.plan, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), f.idx->Nodes("item").size());
  for (const auto& a : r->answers) {
    ASSERT_NEAR(a.score, f.OracleSum(a.root), 1e-9) << "root " << a.root;
  }
}

class SumWitnessEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SumWitnessEngineTest, AllEnginesAgree) {
  Fixture f = Fixture::FromXMark(777, 24 << 10,
                                 "//item[./description/parlist and ./mailbox/mail]",
                                 Normalization::kSparse);
  // Reference: oracle top-7 scores.
  std::vector<double> oracle;
  for (xml::NodeId root : query::RootCandidates(*f.idx, f.pattern)) {
    oracle.push_back(f.OracleSum(root));
  }
  std::sort(oracle.begin(), oracle.end(), std::greater<>());
  oracle.resize(7);

  ExecOptions options;
  options.engine = GetParam();
  options.aggregation = ScoreAggregation::kSumWitnesses;
  options.k = 7;
  auto r = RunTopK(*f.plan, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    ASSERT_NEAR(r->answers[i].score, oracle[i], 1e-9)
        << EngineKindName(GetParam()) << " rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, SumWitnessEngineTest,
                         ::testing::Values(EngineKind::kWhirlpoolS,
                                           EngineKind::kWhirlpoolM,
                                           EngineKind::kLockStep,
                                           EngineKind::kLockStepNoPrun),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           std::string n = EngineKindName(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(SumWitnessesTest, NoTupleExplosion) {
  Fixture f = Fixture::FromXMark(99, 24 << 10, "//item[./description/parlist and "
                                               "./mailbox/mail/text]",
                                 Normalization::kSparse);
  ExecOptions tuple_mode, sum_mode;
  tuple_mode.engine = sum_mode.engine = EngineKind::kLockStepNoPrun;
  tuple_mode.k = sum_mode.k = 15;
  sum_mode.aggregation = ScoreAggregation::kSumWitnesses;
  auto rt = RunTopK(*f.plan, tuple_mode);
  auto rs = RunTopK(*f.plan, sum_mode);
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rs.ok());
  const size_t roots = f.idx->Nodes("item").size();
  // Sum mode: exactly one extension per (root, server) without pruning.
  EXPECT_EQ(rs->metrics.matches_created,
            roots * (static_cast<size_t>(f.plan->num_servers()) + 1));
  EXPECT_GT(rt->metrics.matches_created, rs->metrics.matches_created);
}

TEST(SumWitnessesTest, SumScoreDominatesBestTupleScore) {
  Fixture f = Fixture::FromXMark(555, 16 << 10, "//item[./description/parlist]",
                                 Normalization::kSparse);
  ExecOptions tuple_mode, sum_mode;
  tuple_mode.k = sum_mode.k = 100000;
  sum_mode.aggregation = ScoreAggregation::kSumWitnesses;
  auto rt = RunTopK(*f.plan, tuple_mode);
  auto rs = RunTopK(*f.plan, sum_mode);
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rs.ok());
  std::map<xml::NodeId, double> best_tuple;
  for (const auto& a : rt->answers) best_tuple[a.root] = a.score;
  for (const auto& a : rs->answers) {
    auto it = best_tuple.find(a.root);
    ASSERT_NE(it, best_tuple.end());
    EXPECT_GE(a.score, it->second - 1e-9) << "root " << a.root;
  }
}

TEST(SumWitnessesTest, PruningSafeUnderSumBounds) {
  Fixture f = Fixture::FromXMark(2222, 32 << 10,
                                 "//item[./mailbox/mail/text and ./incategory]",
                                 Normalization::kDense);
  ExecOptions pruned, noprun;
  pruned.aggregation = noprun.aggregation = ScoreAggregation::kSumWitnesses;
  pruned.k = noprun.k = 5;
  pruned.engine = EngineKind::kWhirlpoolS;
  noprun.engine = EngineKind::kLockStepNoPrun;
  auto rp = RunTopK(*f.plan, pruned);
  auto rn = RunTopK(*f.plan, noprun);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rn.ok());
  ASSERT_EQ(rp->answers.size(), rn->answers.size());
  for (size_t i = 0; i < rp->answers.size(); ++i) {
    EXPECT_NEAR(rp->answers[i].score, rn->answers[i].score, 1e-9);
  }
}

TEST(SumWitnessesTest, BindingRecordsBestWitness) {
  Fixture f = Fixture::FromXml(
      "<item>"
      "<description><parlist/></description>"           // exact witness
      "<description><text><parlist/></text></description>"  // edge-gen witness
      "</item>",
      "//item[./description/parlist]", Normalization::kNone);
  ExecOptions options;
  options.aggregation = ScoreAggregation::kSumWitnesses;
  auto r = RunTopK(*f.plan, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 1u);
  // Pattern node 2 = parlist; the recorded witness must be the exact one.
  EXPECT_EQ(r->answers[0].levels[2], MatchLevel::kExact);
}

}  // namespace
}  // namespace whirlpool::exec
