// Randomized differential harness for the engines (the striped-TopKSet /
// batched-queue PR's safety net): ~200 seeded (document, query, k,
// semantics) configurations, each evaluated by Whirlpool-S (the reference),
// Whirlpool-M across thread counts (1/2/4/8), TopKSet shard counts
// (1/4/16) and queue drain batches, and — where it supports the mode — the
// rewriting baseline, which shares no evaluation code with the adaptive
// engines. Every engine must return identical answers: same count, same
// scores rank by rank, and the same roots up to reordering within
// tied-score groups (schedule order may legitimately pick a different
// representative at a tie boundary).
//
// Deterministic and reproducible: every assertion message carries the
// (base_seed, block, trial) triple plus the pattern. Re-run a failure with
//   WHIRLPOOL_DIFF_SEED=<base_seed> ctest -L differential
// The four blocks split the sweep for ctest -j parallelism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "exec/rewriting_baseline.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "util/rng.h"
#include "xmlgen/xmark.h"

namespace whirlpool {
namespace {

using exec::EngineKind;
using exec::ExecOptions;
using exec::RunTopK;
using exec::TopKResult;
using query::Axis;
using query::TreePattern;
using score::Normalization;
using score::ScoringModel;

constexpr uint64_t kDefaultBaseSeed = 20260806;
constexpr int kBlocks = 4;
constexpr int kTrialsPerBlock = 50;  // 4 * 50 = 200 configurations
constexpr double kEps = 1e-9;

uint64_t BaseSeed() {
  if (const char* env = std::getenv("WHIRLPOOL_DIFF_SEED")) {
    const uint64_t v = static_cast<uint64_t>(std::atoll(env));
    if (v != 0) return v;
  }
  return kDefaultBaseSeed;
}

/// Random tree pattern over the XMark vocabulary (same shape space as
/// fuzz_test.cpp): up to 7 nodes, random axes, occasional value predicates.
TreePattern RandomPattern(Rng* rng) {
  static const char* const kTags[] = {"description", "parlist",  "text", "mailbox",
                                      "mail",        "keyword",  "bold", "name",
                                      "incategory",  "listitem", "emph", "*"};
  TreePattern p = TreePattern::Root("item");
  const int extra = 1 + static_cast<int>(rng->Uniform(6));
  for (int i = 0; i < extra; ++i) {
    const int parent = static_cast<int>(rng->Uniform(p.size()));
    const Axis axis = rng->Chance(0.6) ? Axis::kChild : Axis::kDescendant;
    const char* tag = kTags[rng->Uniform(12)];
    std::optional<std::string> value;
    if (std::string(tag) == "keyword" && rng->Chance(0.3)) value = "bargain";
    p.AddNode(parent, axis, tag, value);
  }
  return p;
}

/// Asserts `got` matches the reference answers rank by rank; `who` and
/// `repro` feed the failure message (repro carries the reproducing seed).
///
/// Scores must agree at every rank. Root identity is compared as a set over
/// the ranks strictly separated from the k-boundary tie chain: those roots
/// are always recorded by every schedule (a match that ends above the final
/// threshold can never have been pruned, since the threshold is monotone
/// and pruning is strict). Two legitimate sources of reordering are
/// tolerated: (1) within the boundary tie chain, which root is kept is
/// schedule-dependent — a tied match cannot displace an entry, so arrival
/// order decides, and any choice is a valid top-k; (2) scores accumulated
/// in different server orders differ in the last float bits, so answers
/// within kEps of each other may swap ranks — hence set, not rank-by-rank,
/// comparison for the prefix.
void ExpectSameAnswers(const TopKResult& ref, const TopKResult& got,
                       const std::string& who, const std::string& repro) {
  ASSERT_EQ(got.answers.size(), ref.answers.size()) << who << " " << repro;
  if (ref.answers.empty()) return;
  for (size_t i = 0; i < ref.answers.size(); ++i) {
    ASSERT_NEAR(got.answers[i].score, ref.answers[i].score, kEps)
        << who << " rank " << i << " " << repro;
  }
  // The boundary tie chain: walk back while consecutive scores are within
  // kEps, so near-ties straddling the boundary land inside the chain.
  size_t tail = ref.answers.size() - 1;
  while (tail > 0 &&
         ref.answers[tail - 1].score - ref.answers[tail].score <= kEps) {
    --tail;
  }
  std::vector<xml::NodeId> ref_roots, got_roots;
  for (size_t i = 0; i < tail; ++i) {
    ref_roots.push_back(ref.answers[i].root);
    got_roots.push_back(got.answers[i].root);
  }
  std::sort(ref_roots.begin(), ref_roots.end());
  std::sort(got_roots.begin(), got_roots.end());
  ASSERT_EQ(got_roots, ref_roots)
      << who << " roots above the boundary tie chain differ " << repro;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, EnginesAgreeOnRandomConfigs) {
  const uint64_t base_seed = BaseSeed();
  const int block = GetParam();
  Rng rng(base_seed * 1000003 + static_cast<uint64_t>(block) * 101);

  // A small per-block pool of documents; trials draw from it so the sweep
  // covers many (query, k) combinations without regenerating documents.
  struct Doc {
    std::unique_ptr<xml::Document> doc;
    std::unique_ptr<index::TagIndex> idx;
  };
  std::vector<Doc> docs;
  const size_t kDocBytes[] = {8 << 10, 12 << 10, 16 << 10, 24 << 10};
  for (size_t di = 0; di < 4; ++di) {
    xmlgen::XMarkOptions gen;
    gen.seed = base_seed + static_cast<uint64_t>(block) * 17 + di;
    gen.target_bytes = kDocBytes[di];
    Doc d;
    d.doc = xmlgen::GenerateXMark(gen);
    d.idx = std::make_unique<index::TagIndex>(*d.doc);
    docs.push_back(std::move(d));
  }

  const int kThreadChoices[] = {1, 2, 4, 8};
  const int kShardChoices[] = {1, 4, 16};
  const int kDrainChoices[] = {1, 2, 8, 32};

  for (int trial = 0; trial < kTrialsPerBlock; ++trial) {
    const Doc& d = docs[rng.Uniform(docs.size())];
    const TreePattern pattern = RandomPattern(&rng);
    const Normalization norm =
        rng.Chance(0.5) ? Normalization::kSparse : Normalization::kDense;
    const ScoringModel scoring = ScoringModel::ComputeTfIdf(*d.idx, pattern, norm);
    auto plan = exec::QueryPlan::Build(*d.idx, pattern, scoring);
    ASSERT_TRUE(plan.ok()) << pattern.ToString();

    ExecOptions base;
    base.k = 1 + static_cast<uint32_t>(rng.Uniform(20));
    base.semantics = rng.Chance(0.8) ? exec::MatchSemantics::kRelaxed
                                     : exec::MatchSemantics::kExact;

    std::ostringstream repro;
    repro << "[repro: WHIRLPOOL_DIFF_SEED=" << base_seed << " block=" << block
          << " trial=" << trial << " k=" << base.k << " semantics="
          << exec::MatchSemanticsName(base.semantics) << " pattern="
          << pattern.ToString() << "]";

    // Reference: single-threaded adaptive engine.
    ExecOptions ws = base;
    ws.engine = EngineKind::kWhirlpoolS;
    auto ref = RunTopK(*plan, ws);
    ASSERT_TRUE(ref.ok()) << repro.str();

    // Whirlpool-M across the synchronization knobs. Rotate through the
    // thread/shard/drain grid (rather than the full cross product per
    // trial) so the 200-config sweep still covers every combination while
    // staying laptop-fast.
    for (int vi = 0; vi < 2; ++vi) {
      ExecOptions wm = base;
      wm.engine = EngineKind::kWhirlpoolM;
      wm.threads_per_server = kThreadChoices[(trial + vi) % 4];
      wm.topk_shards = kShardChoices[(trial / 2 + vi) % 3];
      wm.queue_drain_batch = kDrainChoices[(trial / 3 + vi) % 4];
      auto got = RunTopK(*plan, wm);
      ASSERT_TRUE(got.ok()) << repro.str();
      std::ostringstream who;
      who << "W-M(threads=" << wm.threads_per_server << ",shards=" << wm.topk_shards
          << ",drain=" << wm.queue_drain_batch << ")";
      ExpectSameAnswers(*ref, *got, who.str(), repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Auto knobs: the adaptive drain controller and auto shard count must
    // not change answers, only scheduling. One extra W-M run every fourth
    // trial keeps the sweep cheap while exercising the controller under
    // each block's thread mix.
    if (trial % 4 == 0) {
      ExecOptions wm = base;
      wm.engine = EngineKind::kWhirlpoolM;
      wm.threads_per_server = kThreadChoices[(trial / 4) % 4];
      wm.topk_shards = 0;        // auto
      wm.queue_drain_batch = 0;  // adaptive
      auto got = RunTopK(*plan, wm);
      ASSERT_TRUE(got.ok()) << repro.str();
      std::ostringstream who;
      who << "W-M(auto,threads=" << wm.threads_per_server << ")";
      ExpectSameAnswers(*ref, *got, who.str(), repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Failpoint-perturbed slice (every fourth trial): W-M under a seeded
    // yield/sleep plan must still agree with the clean W-S reference —
    // schedule perturbation may reorder work but never change answers.
    if (trial % 4 == 2) {
      ExecOptions wm = base;
      wm.engine = EngineKind::kWhirlpoolM;
      wm.threads_per_server = kThreadChoices[(trial / 4 + 1) % 4];
      wm.failpoints =
          "queue.pop_batch=yield(every=3),queue.push_batch=sleep(20,every=8),"
          "topk.update=yield(p=0.25)";
      wm.failpoint_seed = base_seed + static_cast<uint64_t>(trial);
      auto got = RunTopK(*plan, wm);
      ASSERT_TRUE(got.ok()) << repro.str();
      std::ostringstream who;
      who << "W-M(perturbed,threads=" << wm.threads_per_server << ")";
      ExpectSameAnswers(*ref, *got, who.str(), repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    }

    // LockStep: the static engine, same plan machinery but no queues.
    ExecOptions ls = base;
    ls.engine = EngineKind::kLockStep;
    auto lock = RunTopK(*plan, ls);
    ASSERT_TRUE(lock.ok()) << repro.str();
    ExpectSameAnswers(*ref, *lock, "LockStep", repro.str());
    if (::testing::Test::HasFatalFailure()) return;

    // Rewriting baseline: an independent oracle sharing no evaluation code.
    // Supports relaxed + max-tuple only; cap the pattern width so the
    // 4^(n-1) enumeration stays cheap.
    if (base.semantics == exec::MatchSemantics::kRelaxed && pattern.size() <= 5) {
      ExecOptions rw = base;
      auto rewr = exec::RunRewritingBaseline(*plan, rw);
      ASSERT_TRUE(rewr.ok()) << repro.str();
      ExpectSameAnswers(*ref, *rewr, "Rewriting", repro.str());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, DifferentialTest,
                         ::testing::Range(0, kBlocks));

}  // namespace
}  // namespace whirlpool
