// End-to-end flows through the public API (whirlpool/whirlpool.h): parse XML
// text -> index -> parse XPath -> score -> run engines -> inspect answers.
#include <gtest/gtest.h>

#include <set>

#include "whirlpool/whirlpool.h"
#include "xmlgen/bookstore.h"
#include "xmlgen/xmark.h"

namespace whirlpool {
namespace {

using exec::EngineKind;
using exec::ExecOptions;
using exec::RunTopK;
using score::Normalization;
using score::ScoringModel;

TEST(IntegrationTest, QuickstartFlow) {
  const char* xml_text = R"(
    <catalog>
      <book><title>wodehouse</title>
        <info><publisher><name>psmith</name></publisher><price>48.95</price></info>
      </book>
      <book><title>wodehouse</title><publisher><name>psmith</name></publisher></book>
      <book><info><title>wodehouse</title></info></book>
      <book><title>other</title></book>
    </catalog>)";
  auto doc = xml::ParseDocument(xml_text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  index::TagIndex idx(**doc);
  auto pattern =
      query::ParseXPath("/book[./title='wodehouse' and ./info/publisher/name='psmith']");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ExecOptions options;
  options.k = 3;
  auto result = RunTopK(*plan, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 3u);
  // Book 1 (fully exact) wins; the 'other'-titled book is ranked below
  // books with matching titles (or outside the top 3 entirely).
  EXPECT_EQ(result->answers[0].root, idx.Nodes("book")[0]);
  EXPECT_GT(result->answers[0].score, result->answers[2].score);
}

TEST(IntegrationTest, TopKOrderConsistentWithTfIdfOnExactMatches) {
  // On exact semantics, engine ranking collapses to equal scores; the
  // Def 4.4 scorer breaks ties by tf. Check that every engine answer is a
  // tf*idf-positive root.
  xmlgen::XMarkOptions gen;
  gen.seed = 5150;
  gen.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto pattern = query::ParseXPath("//item[./description/parlist]");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  ExecOptions options;
  options.semantics = exec::MatchSemantics::kExact;
  options.k = 5;
  auto result = RunTopK(*plan, options);
  ASSERT_TRUE(result.ok());
  score::TfIdfScorer scorer(idx, *pattern);
  for (const auto& a : result->answers) {
    EXPECT_GT(scorer.Score(a.root), 0.0);
  }
}

TEST(IntegrationTest, AnswerBindingsAreRealNodes) {
  auto doc = xmlgen::Figure1Bookstore();
  index::TagIndex idx(*doc);
  auto pattern = query::ParseXPath("/book[.//title='wodehouse' and .//isbn]");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  ExecOptions options;
  options.k = 3;
  auto result = RunTopK(*plan, options);
  ASSERT_TRUE(result.ok());
  for (const auto& a : result->answers) {
    EXPECT_EQ(doc->tag_name(a.root), "book");
    for (size_t qi = 1; qi < pattern->size(); ++qi) {
      if (a.bindings[qi] == xml::kInvalidNode) {
        EXPECT_EQ(a.levels[qi], score::MatchLevel::kDeleted);
        continue;
      }
      EXPECT_EQ(doc->tag_name(a.bindings[qi]), pattern->node(static_cast<int>(qi)).tag);
      EXPECT_TRUE(doc->IsDescendant(a.root, a.bindings[qi]))
          << "binding outside the answer subtree";
    }
  }
}

TEST(IntegrationTest, DeweyLabelsRenderForAnswers) {
  auto doc = xmlgen::Figure1Bookstore();
  xml::DeweyIndex dewey(*doc);
  index::TagIndex idx(*doc);
  auto pattern = query::ParseXPath("/book[.//title]");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  ExecOptions options;
  auto result = RunTopK(*plan, options);
  ASSERT_TRUE(result.ok());
  std::set<std::string> labels;
  for (const auto& a : result->answers) {
    labels.insert(dewey.label(a.root).ToString());
  }
  EXPECT_EQ(labels, (std::set<std::string>{"1", "2", "3"}));
}

TEST(IntegrationTest, SerializedAnswerSubtreeReparses) {
  auto doc = xmlgen::Figure1Bookstore();
  index::TagIndex idx(*doc);
  auto pattern = query::ParseXPath("/book[./info/publisher/name='psmith']");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  auto result = RunTopK(*plan, ExecOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());
  std::string fragment = xml::SerializeSubtree(*doc, result->answers[0].root);
  auto reparsed = xml::ParseDocument(fragment);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ((*reparsed)->tag_name((*reparsed)->Children((*reparsed)->root())[0]),
            "book");
}

TEST(IntegrationTest, LargerEndToEndRunAcrossEnginesAndKs) {
  xmlgen::XMarkOptions gen;
  gen.seed = 6060;
  gen.target_bytes = 48 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto pattern = query::ParseXPath(
      "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  std::vector<double> ref;
  for (uint32_t k : {3u, 15u, 75u}) {
    ExecOptions base;
    base.k = k;
    auto rs = RunTopK(*plan, base);
    ASSERT_TRUE(rs.ok());
    // k answers unless fewer roots exist.
    EXPECT_EQ(rs->answers.size(),
              std::min<size_t>(k, idx.Nodes("item").size()));
    // Scores weakly decreasing.
    for (size_t i = 1; i < rs->answers.size(); ++i) {
      EXPECT_GE(rs->answers[i - 1].score, rs->answers[i].score);
    }
    // Growing k only appends (same prefix of scores).
    for (size_t i = 0; i < std::min(ref.size(), rs->answers.size()); ++i) {
      EXPECT_NEAR(rs->answers[i].score, ref[i], 1e-9);
    }
    if (rs->answers.size() > ref.size()) {
      ref.clear();
      for (const auto& a : rs->answers) ref.push_back(a.score);
    }
  }
}

TEST(IntegrationTest, PruningReducesWorkOnLargerDocs) {
  xmlgen::XMarkOptions gen;
  gen.seed = 2468;
  gen.target_bytes = 64 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  auto pattern =
      query::ParseXPath("//item[./description/parlist and ./mailbox/mail/text]");
  ASSERT_TRUE(pattern.ok());
  auto scoring = ScoringModel::ComputeTfIdf(idx, *pattern, Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  ASSERT_TRUE(plan.ok());
  ExecOptions pruned, noprun;
  pruned.engine = EngineKind::kWhirlpoolS;
  pruned.k = 3;
  noprun.engine = EngineKind::kLockStepNoPrun;
  noprun.k = 3;
  auto rp = RunTopK(*plan, pruned);
  auto rn = RunTopK(*plan, noprun);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_LT(rp->metrics.matches_created, rn->metrics.matches_created)
      << "pruning should create fewer partial matches than full enumeration";
}

}  // namespace
}  // namespace whirlpool
