#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "index/tag_index.h"
#include "query/matcher.h"
#include "xml/parser.h"
#include "xml/snapshot.h"
#include "xmlgen/xmark.h"

namespace whirlpool::xml {
namespace {

void ExpectStructurallyEqual(const Document& a, const Document& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId i = 0; i < a.num_nodes(); ++i) {
    ASSERT_EQ(a.tag_name(i), b.tag_name(i)) << "node " << i;
    ASSERT_EQ(a.parent(i), b.parent(i)) << "node " << i;
    ASSERT_EQ(a.text(i), b.text(i)) << "node " << i;
    ASSERT_EQ(a.node(i).order, b.node(i).order) << "node " << i;
    ASSERT_EQ(a.node(i).subtree_end, b.node(i).subtree_end) << "node " << i;
    ASSERT_EQ(a.node(i).depth, b.node(i).depth) << "node " << i;
  }
}

std::string SnapshotBytes(const Document& doc) {
  std::ostringstream out;
  Status st = WriteSnapshot(doc, out);
  EXPECT_TRUE(st.ok()) << st;
  return out.str();
}

TEST(SnapshotTest, RoundTripSmallDocument) {
  auto doc = ParseDocument(
      "<lib><book a=\"1\"><title>war &amp; peace</title></book><book/></lib>");
  ASSERT_TRUE(doc.ok());
  std::istringstream in(SnapshotBytes(**doc));
  auto loaded = ReadSnapshot(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStructurallyEqual(**doc, **loaded);
}

TEST(SnapshotTest, RoundTripGeneratedCorpus) {
  xmlgen::XMarkOptions gen;
  gen.seed = 31;
  gen.target_bytes = 48 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  std::istringstream in(SnapshotBytes(*doc));
  auto loaded = ReadSnapshot(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStructurallyEqual(*doc, **loaded);
}

TEST(SnapshotTest, LoadedDocumentAnswersQueriesIdentically) {
  xmlgen::XMarkOptions gen;
  gen.seed = 8;
  gen.target_bytes = 24 << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  std::istringstream in(SnapshotBytes(*doc));
  auto loaded = ReadSnapshot(in);
  ASSERT_TRUE(loaded.ok());
  index::TagIndex idx_a(*doc), idx_b(**loaded);
  auto q = query::ParseXPath("//item[./description/parlist and ./name]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(query::EvaluatePattern(idx_a, *q), query::EvaluatePattern(idx_b, *q));
}

TEST(SnapshotTest, FileRoundTrip) {
  auto doc = ParseDocument("<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  std::string path = std::string(::testing::TempDir()) + "snap_test.bin";
  ASSERT_TRUE(SaveSnapshot(**doc, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStructurallyEqual(**doc, **loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto r = LoadSnapshot("/no/such/snapshot.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::istringstream in("GARBAGE!");
  auto r = ReadSnapshot(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsTruncationAtEveryPrefix) {
  auto doc = ParseDocument("<a x=\"1\"><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  const std::string bytes = SnapshotBytes(**doc);
  // Every strict prefix must fail cleanly (never crash, never succeed).
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    auto r = ReadSnapshot(in);
    ASSERT_FALSE(r.ok()) << "prefix of length " << len << " unexpectedly parsed";
  }
  // The full snapshot still loads.
  std::istringstream in(bytes);
  ASSERT_TRUE(ReadSnapshot(in).ok());
}

TEST(SnapshotTest, RejectsCorruptParentPointer) {
  auto doc = ParseDocument("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  std::string bytes = SnapshotBytes(**doc);
  // Flip every byte position once; loader must never crash and never
  // produce an unfinalized document.
  int failures = 0, successes = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5A);
    std::istringstream in(mutated);
    auto r = ReadSnapshot(in);
    if (r.ok()) {
      ++successes;
      EXPECT_TRUE((*r)->finalized());
    } else {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  (void)successes;  // some text-byte flips legitimately still parse
}

TEST(SnapshotTest, RejectsUnfinalizedDocument) {
  Document doc;
  doc.AddChild(doc.root(), "a");
  std::ostringstream out;
  EXPECT_FALSE(WriteSnapshot(doc, out).ok());
}

}  // namespace
}  // namespace whirlpool::xml
