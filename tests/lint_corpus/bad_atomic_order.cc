// wp-lint-expect: none
// wp-alint-expect: WP006
// Three atomics misuses: a non-relaxed load with no written argument nearby,
// a relaxed RMW gating control flow, and an op defaulting to seq_cst.
// wp-alint-expect-substr: without a justification comment
// wp-alint-expect-substr: relaxed RMW 'fetch_add' feeds control flow
// wp-alint-expect-substr: implicit memory order (seq_cst)
#include <atomic>

namespace corpus {

std::atomic<bool> g_flag{false};
std::atomic<int> g_count{0};

bool UnexplainedLoad() {
  return g_flag.load(std::memory_order_acquire);
}

int GatedOnRelaxedRmw() {
  if (g_count.fetch_add(1, std::memory_order_relaxed) > 4) {
    return 1;
  }
  return 0;
}

void DefaultOrder() {
  ++g_count;
}

}  // namespace corpus
