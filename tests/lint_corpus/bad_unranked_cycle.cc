// wp-lint-expect: none
// wp-alint-expect: WP005
// Two kUnranked mutexes acquired in opposite orders in different functions:
// the runtime LockRank checker exempts kUnranked entirely, so only the
// static whole-program cycle check can see this ABBA deadlock.
// wp-alint-expect-substr: cycle among kUnranked mutexes
// wp-alint-expect-substr: g_cycle_left
// wp-alint-expect-substr: g_cycle_right
#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_cycle_left{whirlpool::LockRank::kUnranked,
                              "corpus::g_cycle_left"};
whirlpool::Mutex g_cycle_right{whirlpool::LockRank::kUnranked,
                               "corpus::g_cycle_right"};

void LeftThenRight() {
  whirlpool::MutexLock a(&g_cycle_left);
  whirlpool::MutexLock b(&g_cycle_right);
}

void RightThenLeft() {
  whirlpool::MutexLock a(&g_cycle_right);
  whirlpool::MutexLock b(&g_cycle_left);
}

}  // namespace corpus
