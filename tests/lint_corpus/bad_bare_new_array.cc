// wp-lint-expect: WP003
// Bare new[] has no owner; engine code uses std::vector (or
// std::make_unique<T[]> where a raw buffer is unavoidable).
#include <cstddef>

namespace corpus {

int* MakeBuffer(std::size_t n) { return new int[n]; }

}  // namespace corpus
