// wp-lint-expect: none
// wp-alint-expect: WP007
// A free helper mutating a GUARDED_BY field of an open holding-state struct
// without declaring the lock contract: -Wthread-safety cannot check callers
// in other TUs, and the runtime checker never sees the missing edge.
// wp-alint-expect-substr: takes holding-state struct 'Channel'
// wp-alint-expect-substr: no thread-safety annotation
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace corpus {

struct Channel {
  whirlpool::Mutex mu{whirlpool::LockRank::kUnranked, "corpus::Channel::mu"};
  std::vector<int> pending GUARDED_BY(mu);
};

// Should be: void AppendLocked(Channel& ch, int v) REQUIRES(ch.mu).
void AppendLocked(Channel& ch, int v) {
  ch.pending.push_back(v);
}

// A bare Mutex parameter is holding state by definition; should carry
// EXCLUDES(mu) (it self-locks) at minimum.
void PulseUnderLock(whirlpool::Mutex& mu) {
  whirlpool::MutexLock lock(&mu);
}

}  // namespace corpus
