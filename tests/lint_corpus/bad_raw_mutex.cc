// wp-lint-expect: WP001
// A raw std::mutex member: invisible to Clang Thread Safety Analysis and to
// the runtime LockRank checker. Must lock through whirlpool::Mutex.
#include <mutex>

namespace corpus {

class Counter {
 public:
  void Increment() {
    mu_.lock();
    ++count_;
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace corpus
