// wp-lint-expect: WP001
// std::lock_guard / std::unique_lock over a raw mutex bypass the annotated
// MutexLock, so neither static analysis nor rank checking sees the scope.
#include <mutex>

namespace corpus {

std::mutex g_mu;  // also WP001 on its own, same rule id
int g_value = 0;

void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_value;
}

int ReadIt() {
  std::unique_lock<std::mutex> lock(g_mu);
  return g_value;
}

}  // namespace corpus
