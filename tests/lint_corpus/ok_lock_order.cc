// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP005's false-positive direction: sequential (non-overlapping)
// acquisitions are not graph edges. Re-locking the same mutex after its
// scope closed and touching two equal-rank shard mutexes back to back are
// both legal; only overlapping held ranges are order-checked.
#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_shard_a{whirlpool::LockRank::kTopKShard,
                           "corpus::g_shard_a"};
whirlpool::Mutex g_shard_b{whirlpool::LockRank::kTopKShard,
                           "corpus::g_shard_b"};
whirlpool::Mutex g_pipe{whirlpool::LockRank::kQueue, "corpus::g_pipe"};
whirlpool::Mutex g_board{whirlpool::LockRank::kTopKScores,
                         "corpus::g_board"};

// Equal-rank mutexes taken one after the other (a sharded sweep): the
// runtime checker allows this, and so must the static pass — the first
// lock's scope ends before the second begins.
void SweepShards() {
  {
    whirlpool::MutexLock lock(&g_shard_a);
  }
  {
    whirlpool::MutexLock lock(&g_shard_b);
  }
}

// Rank-equal re-entry of the *same* mutex, sequentially: release, then
// re-acquire. A co-occurrence analysis would call this a re-entrant
// deadlock; the held-range analysis must not.
void LockTwiceSequentially() {
  {
    whirlpool::MutexLock first(&g_shard_a);
  }
  {
    whirlpool::MutexLock again(&g_shard_a);
  }
}

// Properly increasing nesting (rank 20 -> 70), the TopKSet::Update shape.
void ProperNesting() {
  whirlpool::MutexLock outer(&g_pipe);
  whirlpool::MutexLock inner(&g_board);
}

}  // namespace corpus
