// wp-lint-expect: none
// wp-alint-expect: none
// The annotated versions of bad_missing_requires.cc's helpers: REQUIRES on
// the holding-state parameter and EXCLUDES on the self-locking one satisfy
// WP007, and Flush's single acquisition produces no WP005 edge.
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace corpus {

struct Mailbox {
  whirlpool::Mutex mu{whirlpool::LockRank::kUnranked, "corpus::Mailbox::mu"};
  std::vector<int> pending GUARDED_BY(mu);
};

void AppendLocked(Mailbox& box, int v) REQUIRES(box.mu) {
  box.pending.push_back(v);
}

void Flush(Mailbox& box) EXCLUDES(box.mu) {
  whirlpool::MutexLock lock(&box.mu);
  box.pending.clear();
}

}  // namespace corpus
