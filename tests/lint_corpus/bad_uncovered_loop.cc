// wp-lint-expect: none
// wp-alint-expect: WP011
// Engine-entry loops doing slow work with no reachable CancelToken::Poll:
// one directly (the pause sits in the loop body), one through a call edge
// (only the whole-program closure sees the callee's pause). A deadline can
// never interrupt either loop, so WP011 must flag both.
// wp-alint-expect-substr: loop in 'RunWhirlpoolCorpusLoop' (reachable from engine entry 'RunWhirlpoolCorpusLoop') contains blocking work (sleep call 'sleep_for'
// wp-alint-expect-substr: no reachable CancelToken::Poll
// wp-alint-expect-substr: contains blocking work (call to 'SlowStep'
#include <chrono>
#include <thread>

namespace corpus {

// Matches the engine-entry pattern (^Run(Whirlpool|LockStep|TopK)), so its
// loops fall under the cancellation-coverage requirement.
void RunWhirlpoolCorpusLoop() {
  for (int round = 0; round < 64; ++round) {
    std::this_thread::sleep_for(std::chrono::microseconds(5));
  }
}

void SlowStep() {
  std::this_thread::sleep_for(std::chrono::microseconds(5));
}

void RunTopKCorpusDrain() {
  for (int round = 0; round < 64; ++round) {
    SlowStep();
  }
}

}  // namespace corpus
