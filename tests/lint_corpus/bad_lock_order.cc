// wp-lint-expect: none
// wp-alint-expect: WP005
// Deliberate rank inversions against the DESIGN.md §10 hierarchy: kQueue
// (rank 20) is acquired while kTopKScores (rank 70) is held — directly, and
// through a call edge — so WP005 must name both lock sites on each edge.
// wp-alint-expect-substr: acquiring 'g_corpus_queue' (rank kQueue) at tests/lint_corpus/bad_lock_order.cc:22
// wp-alint-expect-substr: while holding 'g_corpus_scores' (rank kTopKScores) (held since tests/lint_corpus/bad_lock_order.cc:21
// wp-alint-expect-substr: reached via call to 'LockQueueAlone'
#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_corpus_scores{whirlpool::LockRank::kTopKScores,
                                 "corpus::g_corpus_scores"};
whirlpool::Mutex g_corpus_queue{whirlpool::LockRank::kQueue,
                                "corpus::g_corpus_queue"};

// Both locks in one scope: the direct inversion — the analyzer reports the
// inner acquisition together with the outer's holding site.
void DirectInversion() {
  whirlpool::MutexLock outer(&g_corpus_scores);
  whirlpool::MutexLock inner(&g_corpus_queue);
}

void LockQueueAlone() {
  whirlpool::MutexLock lock(&g_corpus_queue);
}

// The same inversion one call away: the caller holds kTopKScores across a
// call whose transitive acquire set contains kQueue.
void RunUnderScores() {
  whirlpool::MutexLock outer(&g_corpus_scores);
  LockQueueAlone();
}

}  // namespace corpus
