// wp-lint-expect: none
// wp-alint-expect: WP008
// Side effects inside WP_CHECK / WP_DCHECK arguments: a non-const method
// call, an increment, and an assignment. WP_DCHECK compiles its whole
// argument out in release builds, so these silently stop happening.
// wp-alint-expect-substr: call to non-const method 'Advance'
// wp-alint-expect-substr: WP_DCHECK compiles out in release builds
// wp-alint-expect-substr: assignment
#include "util/check.h"

namespace corpus {

class Scanner {
 public:
  bool Advance() {
    ++pos_;
    return pos_ <= limit_;
  }
  int pos() const { return pos_; }

 private:
  int pos_ = 0;
  int limit_ = 8;
};

int g_probe_count = 0;

void Audit(Scanner& s) {
  WP_CHECK(s.Advance());
  WP_DCHECK(++g_probe_count < 100);
  int snapshot = -1;
  WP_DCHECK((snapshot = s.pos()) >= 0);
  WP_CHECK(snapshot >= 0);
}

}  // namespace corpus
