// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP011's false-positive direction: an engine-entry loop whose body
// polls the cancel token is covered, and an inner loop with no poll of its
// own is covered by an enclosing loop's poll — each outer iteration passes
// the poll before re-entering the inner work, which is the granularity the
// engines actually run at (see whirlpool_m.cc's server loop).
#include <chrono>
#include <thread>

namespace corpus {

// Stand-in with the real class/method names: the analyzer classifies
// CancelToken::Poll call sites by display name, so this self-contained
// corpus type exercises the coverage bookkeeping without the real token.
class CancelToken {
 public:
  bool Poll() { return false; }
};

void RunWhirlpoolCorpusServer(CancelToken& cancel) {
  for (int round = 0; round < 64; ++round) {
    if (cancel.Poll()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(5));
  }
}

void RunLockStepCorpusRound(CancelToken& cancel) {
  for (int round = 0; round < 8; ++round) {
    if (cancel.Poll()) return;
    for (int step = 0; step < 4; ++step) {
      std::this_thread::sleep_for(std::chrono::microseconds(5));
    }
  }
}

}  // namespace corpus
