// wp-lint-expect: WP003
// rand() shares hidden global state across threads and is unseedable per
// run; engine code draws from util/rng.h.
#include <cstdlib>

namespace corpus {

int RollDie() { return rand() % 6 + 1; }

}  // namespace corpus
