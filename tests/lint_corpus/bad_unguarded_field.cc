// wp-lint-expect: WP002
// The class owns a whirlpool::Mutex but `hits_` carries no GUARDED_BY, so
// nothing stops an unlocked access from compiling.
#include "util/mutex.h"

namespace corpus {

class Cache {
 public:
  void Record() {
    whirlpool::MutexLock lock(&mu_);
    ++hits_;
  }

 private:
  whirlpool::Mutex mu_;
  int hits_ = 0;
};

}  // namespace corpus
