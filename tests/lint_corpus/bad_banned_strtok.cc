// wp-lint-expect: WP003
// strtok keeps a hidden static cursor — non-reentrant and thread-hostile.
#include <cstring>

namespace corpus {

char* FirstToken(char* s) { return strtok(s, ","); }

}  // namespace corpus
