// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP009's false-positive direction: waiting on a condition while
// holding only the waited mutex is the legal CondVar shape (Wait atomically
// releases it for the duration), and a blocking call carrying a
// justification comment is accepted as reviewed. The runtime twin
// (lock_rank_test.cpp WaitHoldingOnlyOwnMutexPasses) pins the same contract
// in the debug-build checker.
#include <chrono>
#include <thread>

#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_inbox_mu{whirlpool::LockRank::kQueue,
                            "corpus::g_inbox_mu"};
whirlpool::CondVar g_inbox_cv;
int g_inbox_depth = 0;

void WaitForWork() {
  whirlpool::MutexLock lock(&g_inbox_mu);
  g_inbox_cv.Wait(g_inbox_mu, [] { return g_inbox_depth > 0; });
}

void RetryLater() {
  whirlpool::MutexLock lock(&g_inbox_mu);
  // Bounded 10us backoff, deliberately inside the critical section so the
  // retry window closes atomically with the depth check.
  std::this_thread::sleep_for(std::chrono::microseconds(10));
}

}  // namespace corpus
