// wp-lint-expect: WP004
// Includes a project header and references none of its exported names.
#include "util/stopwatch.h"

namespace corpus {

int Answer() { return 42; }

}  // namespace corpus
