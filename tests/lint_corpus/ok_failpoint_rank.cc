// wp-lint-expect: none
// wp-alint-expect: none
// Pins the failpoint/cancellation lock ranks (DESIGN.md §12): the registry
// mutex (kFailpointRegistry, 95) is the highest rank in the hierarchy — a
// leaf taken only by Configure/Snapshot, never on the hit path — and the
// CancelToken mutex (kCancel, 93) nests above the tracer buffer rank so an
// engine worker may report an injected error while holding any engine lock.
// WP005 must accept both nestings; the runtime checker enforces the same
// order in lock_rank_test.cpp.
#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_tracer_buf{whirlpool::LockRank::kTracerBuffer,
                              "corpus::g_tracer_buf"};
whirlpool::Mutex g_cancel{whirlpool::LockRank::kCancel, "corpus::g_cancel"};
whirlpool::Mutex g_registry{whirlpool::LockRank::kFailpointRegistry,
                            "corpus::g_registry"};

// CancelError under an engine lock: kTracerBuffer (90) -> kCancel (93) is a
// strictly increasing acquisition and must not be a WP005 edge.
void CancelWhileTracing() {
  whirlpool::MutexLock outer(&g_tracer_buf);
  whirlpool::MutexLock inner(&g_cancel);
}

// Configure/Snapshot take the registry mutex last: kCancel (93) ->
// kFailpointRegistry (95). Nothing ranks above it, so the registry can
// never participate in an inversion.
void SnapshotAfterCancel() {
  whirlpool::MutexLock outer(&g_cancel);
  whirlpool::MutexLock inner(&g_registry);
}

}  // namespace corpus
