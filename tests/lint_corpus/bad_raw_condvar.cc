// wp-lint-expect: WP001
// Raw std::condition_variable: whirlpool::CondVar keeps the REQUIRES
// contract visible to the analysis; the raw type hides it.
#include <condition_variable>
#include <mutex>

namespace corpus {

class Latch {
 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

}  // namespace corpus
