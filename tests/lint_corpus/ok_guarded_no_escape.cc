// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP010's false-positive direction: copying guarded state out by value,
// using a bound pointer strictly inside its critical section, and a
// REQUIRES-annotated accessor returning a guarded reference (a lock-transfer
// contract -Wthread-safety checks on the caller's side) are all legal.
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace corpus {

class Roster {
 public:
  // Value copy: the returned int has no tie to entries_ once the lock drops.
  int First() {
    whirlpool::MutexLock lock(&mu_);
    return entries_.front();
  }

  // Bound and consumed entirely inside the critical section.
  int Sum() {
    whirlpool::MutexLock lock(&mu_);
    int total = 0;
    const int* it = &entries_.front();
    for (size_t i = 0; i < entries_.size(); ++i) total += it[i];
    return total;
  }

  // Lock-transfer contract: the caller provably holds mu_, so handing it a
  // reference into the guarded container is not an escape.
  std::vector<int>& EntriesLocked() REQUIRES(mu_) { return entries_; }

 private:
  whirlpool::Mutex mu_{whirlpool::LockRank::kJoinCache,
                       "corpus::Roster::mu_"};
  std::vector<int> entries_ GUARDED_BY(mu_);
};

}  // namespace corpus
