// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP008's false-positive direction: const-method calls, static-method
// calls, and benign non-const accessors (front/back/operator[] pick their
// non-const overload on a mutable container without mutating anything) are
// all legal inside checks.
#include <vector>

#include "util/check.h"

namespace corpus {

class Gauge {
 public:
  int value() const { return value_; }
  static int Limit() { return 100; }

 private:
  int value_ = 0;
};

void Audit(const Gauge& g, std::vector<int>* samples) {
  WP_CHECK(g.value() >= 0);
  WP_CHECK(g.value() < Gauge::Limit());
  WP_CHECK(!samples->empty());
  WP_CHECK(samples->front() <= samples->back());
  WP_CHECK((*samples)[0] >= 0);
}

}  // namespace corpus
