// wp-lint-expect: none
// Idiomatic annotated code: ranked whirlpool::Mutex, every mutable field
// GUARDED_BY, project RNG, includes all referenced. Must produce no findings
// — this file pins wp-lint's false-positive direction.
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace corpus {

class Sampler {
 public:
  explicit Sampler(uint64_t seed) : rng_(seed) {}

  void Record(double v) {
    whirlpool::MutexLock lock(&mu_);
    values_.push_back(v);
  }

  double Pick() {
    whirlpool::MutexLock lock(&mu_);
    if (values_.empty()) return 0.0;
    return values_[rng_.UniformInt(0, values_.size() - 1)];
  }

 private:
  mutable whirlpool::Mutex mu_{whirlpool::LockRank::kUnranked, "corpus::Sampler::mu_"};
  std::vector<double> values_ GUARDED_BY(mu_);
  whirlpool::util::Rng rng_ GUARDED_BY(mu_);
};

}  // namespace corpus
