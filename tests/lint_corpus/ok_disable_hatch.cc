// wp-lint-expect: none
// The escape hatches: a per-line disable waives one finding on that line, a
// file-level disable waives a rule everywhere in the file. Both carry a
// justification so the waiver is reviewable.
// wp-lint: disable-file(WP004) exercises the file-level hatch
#include <mutex>

#include "util/stopwatch.h"

namespace corpus {

std::mutex g_legacy_mu;  // wp-lint: disable(WP001) third-party ABI needs std::mutex

void Touch() {
  std::lock_guard<std::mutex> lock(g_legacy_mu);  // wp-lint: disable(WP001) same interop
}

}  // namespace corpus
