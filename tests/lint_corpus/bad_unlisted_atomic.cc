// wp-lint-expect: WP002
// An atomic member of a Mutex-owning class that is not in wp_lint.py's
// ATOMIC_ALLOWLIST: intentionally-unguarded atomics need a recorded
// correctness argument (see TopKSet::cached_threshold_ for the model).
#include <atomic>

#include "util/mutex.h"

namespace corpus {

class Tracker {
 public:
  void Retire() { pending_.fetch_sub(1); }

 private:
  whirlpool::Mutex mu_;
  std::atomic<int> pending_{0};
};

}  // namespace corpus
