// wp-lint-expect: WP002
// wp-alint-expect: WP006
// An atomic member of a Mutex-owning class that is not in wp_lint.py's
// ATOMIC_ALLOWLIST: intentionally-unguarded atomics need a recorded
// correctness argument (see TopKSet::cached_threshold_ for the model).
// Both linters read the same allowlist, so this file is the drift canary:
// wp-lint flags it as WP002 (regex), wp-alint as WP006 (AST); the implicit
// seq_cst on the fetch_sub is a second WP006 from the same pass.
// wp-alint-expect-substr: neither GUARDED_BY nor in wp_lint.py's ATOMIC_ALLOWLIST
#include <atomic>

#include "util/mutex.h"

namespace corpus {

class Tracker {
 public:
  void Retire() { pending_.fetch_sub(1); }

 private:
  whirlpool::Mutex mu_;
  std::atomic<int> pending_{0};
};

}  // namespace corpus
