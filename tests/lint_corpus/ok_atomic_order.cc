// wp-lint-expect: none
// wp-alint-expect: none
// Pins WP006's false-positive direction: a justified acquire/release pair
// and a relaxed RMW in a plain statement must produce no findings.
#include <atomic>
#include <cstdint>

namespace corpus {

std::atomic<bool> g_ready{false};
std::atomic<uint64_t> g_ticks{0};

void Publish() {
  // release: pairs with the acquire load in IsReady so everything written
  // before this store is visible once a reader observes true.
  g_ready.store(true, std::memory_order_release);
}

bool IsReady() {
  // acquire: pairs with the release store in Publish.
  return g_ready.load(std::memory_order_acquire);
}

void CountTick() {
  g_ticks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace corpus
