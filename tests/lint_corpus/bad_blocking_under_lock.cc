// wp-lint-expect: none
// wp-alint-expect: WP009
// Blocking work under a ranked whirlpool::Mutex, in the three shapes WP009
// must catch: a timed pause directly inside the critical section, the same
// pause one call away (only the whole-program closure sees it), and a
// CondVar::Wait on one mutex while a *second* mutex is held — Wait releases
// only its own mutex, so the other one is pinned for the whole wait.
// wp-alint-expect-substr: sleep call 'sleep_for' while holding ranked mutex 'g_drain_mu' (rank kQueue)
// wp-alint-expect-substr: call to 'PulseBackoff' may block (sleep:
// wp-alint-expect-substr: condition wait 'CondVar::Wait' while holding ranked mutex 'g_drain_mu'
#include <chrono>
#include <thread>

#include "util/mutex.h"

namespace corpus {

whirlpool::Mutex g_drain_mu{whirlpool::LockRank::kQueue, "corpus::g_drain_mu"};
whirlpool::Mutex g_state_mu{whirlpool::LockRank::kInFlight,
                            "corpus::g_state_mu"};
whirlpool::CondVar g_state_cv;

// Direct: every producer needs g_drain_mu while this thread naps with it.
void NapHoldingDrainLock() {
  whirlpool::MutexLock lock(&g_drain_mu);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void PulseBackoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// Chained: the same defect through a call edge.
void DrainWithBackoff() {
  whirlpool::MutexLock lock(&g_drain_mu);
  PulseBackoff();
}

// Waiting on g_state_mu's condition releases g_state_mu only; g_drain_mu
// stays held until some other thread happens to notify.
void WaitHoldingSecondLock() {
  whirlpool::MutexLock outer(&g_drain_mu);
  whirlpool::MutexLock inner(&g_state_mu);
  g_state_cv.Wait(g_state_mu);
}

}  // namespace corpus
