// wp-lint-expect: none
// wp-alint-expect: WP011
// Failpoint registry drift in both directions: a raw string literal passed
// to a chaos entry point that matches no registered sites:: constant (a
// typo'd or never-registered site silently never fires), and a registered
// constant no call site ever uses (dead registry entry that chaos plans can
// still arm, testing nothing).
// wp-alint-expect-substr: raw failpoint site string "corpus/raw-name" matches no registered site
// wp-alint-expect-substr: failpoint site 'kCorpusGhost' ("corpus/ghost") is registered but never used

namespace corpus {

namespace sites {
inline constexpr const char* kCorpusUsed = "corpus/used";
inline constexpr const char* kCorpusGhost = "corpus/ghost";
}  // namespace sites

struct Effect {
  int action = 0;
};

// Same name as the real chaos entry point: the analyzer classifies call
// sites by display name, so this self-contained stand-in exercises the
// drift bookkeeping without importing the registry.
Effect Hit(const char*) { return {}; }

void TouchRegisteredSite() { Hit(sites::kCorpusUsed); }

void TouchRawLiteral() { Hit("corpus/raw-name"); }

}  // namespace corpus
