// wp-lint-expect: none
// wp-alint-expect: WP010
// Guarded state escaping its critical section in all four WP010 shapes:
// returned as a pointer, bound under the lock then dereferenced after the
// unlock, captured by a lambda handed to another thread, and stored into an
// unguarded field. -Wthread-safety misses every one of these (it checks
// access sites, not lifetimes), so the AST pass must catch them.
// wp-alint-expect-substr: returns a pointer/reference derived from GUARDED_BY field 'Ledger::entries_'
// wp-alint-expect-substr: is used after the lock is released
// wp-alint-expect-substr: lambda handed to std::thread references GUARDED_BY field 'Ledger::entries_'
// wp-alint-expect-substr: stored into unguarded field 'first_entry_'
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace corpus {

class Ledger {
 public:
  // Shape 1: the caller keeps the pointer after ~MutexLock releases mu_.
  const int* FirstEntry() {
    whirlpool::MutexLock lock(&mu_);
    return &entries_.front();
  }

  // Shape 2: bound under the lock, dereferenced after the explicit unlock.
  int FirstAfterUnlock() {
    mu_.lock();
    const int* first = &entries_.front();
    mu_.unlock();
    return *first;
  }

  // Shape 3: the lambda runs on the new thread with no lock held.
  void SpawnAppender() {
    std::thread worker([this] { entries_.push_back(1); });
    worker.join();
  }

  // Shape 4: the cached pointer outlives every critical section.
  void CacheFirst() {
    whirlpool::MutexLock lock(&mu_);
    first_entry_ = &entries_.front();
  }

 private:
  whirlpool::Mutex mu_{whirlpool::LockRank::kJoinCache,
                       "corpus::Ledger::mu_"};
  std::vector<int> entries_ GUARDED_BY(mu_);
  const int* first_entry_ = nullptr;  // wp-lint: disable(WP002) WP010 target
};

}  // namespace corpus
