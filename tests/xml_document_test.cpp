#include <gtest/gtest.h>

#include "xml/document.h"

namespace whirlpool::xml {
namespace {

/// Builds:  #root -> a -> (b -> (d, e), c)
class SmallTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = doc_.AddChild(doc_.root(), "a");
    b_ = doc_.AddChild(a_, "b");
    c_ = doc_.AddChild(a_, "c");
    d_ = doc_.AddChild(b_, "d");
    e_ = doc_.AddChild(b_, "e");
    doc_.SetText(d_, "dee");
    doc_.Finalize();
  }
  Document doc_;
  NodeId a_, b_, c_, d_, e_;
};

TEST_F(SmallTreeTest, RootIsNodeZero) {
  EXPECT_EQ(doc_.root(), 0u);
  EXPECT_EQ(doc_.tag_name(doc_.root()), "#root");
  EXPECT_EQ(doc_.node(doc_.root()).depth, 0u);
}

TEST_F(SmallTreeTest, ParentLinks) {
  EXPECT_EQ(doc_.parent(a_), doc_.root());
  EXPECT_EQ(doc_.parent(b_), a_);
  EXPECT_EQ(doc_.parent(d_), b_);
  EXPECT_EQ(doc_.parent(c_), a_);
}

TEST_F(SmallTreeTest, PreorderRanksFollowDocumentOrder) {
  // Document order: #root, a, b, d, e, c
  EXPECT_LT(doc_.node(a_).order, doc_.node(b_).order);
  EXPECT_LT(doc_.node(b_).order, doc_.node(d_).order);
  EXPECT_LT(doc_.node(d_).order, doc_.node(e_).order);
  EXPECT_LT(doc_.node(e_).order, doc_.node(c_).order);
}

TEST_F(SmallTreeTest, SubtreeEndCoversDescendants) {
  EXPECT_EQ(doc_.node(b_).subtree_end, doc_.node(e_).order);
  EXPECT_EQ(doc_.node(a_).subtree_end, doc_.node(c_).order);
  EXPECT_EQ(doc_.node(c_).subtree_end, doc_.node(c_).order);  // leaf
}

TEST_F(SmallTreeTest, IsChild) {
  EXPECT_TRUE(doc_.IsChild(a_, b_));
  EXPECT_TRUE(doc_.IsChild(b_, d_));
  EXPECT_FALSE(doc_.IsChild(a_, d_));  // grandchild
  EXPECT_FALSE(doc_.IsChild(b_, a_));  // inverted
  EXPECT_FALSE(doc_.IsChild(b_, c_));  // sibling's child
}

TEST_F(SmallTreeTest, IsDescendant) {
  EXPECT_TRUE(doc_.IsDescendant(a_, b_));
  EXPECT_TRUE(doc_.IsDescendant(a_, d_));
  EXPECT_TRUE(doc_.IsDescendant(a_, c_));
  EXPECT_FALSE(doc_.IsDescendant(d_, a_));
  EXPECT_FALSE(doc_.IsDescendant(b_, c_));
  EXPECT_FALSE(doc_.IsDescendant(a_, a_));  // proper
}

TEST_F(SmallTreeTest, IsSelfOrDescendant) {
  EXPECT_TRUE(doc_.IsSelfOrDescendant(a_, a_));
  EXPECT_TRUE(doc_.IsSelfOrDescendant(a_, e_));
  EXPECT_FALSE(doc_.IsSelfOrDescendant(b_, c_));
}

TEST_F(SmallTreeTest, ChildrenInOrder) {
  EXPECT_EQ(doc_.Children(a_), (std::vector<NodeId>{b_, c_}));
  EXPECT_EQ(doc_.Children(b_), (std::vector<NodeId>{d_, e_}));
  EXPECT_TRUE(doc_.Children(c_).empty());
}

TEST_F(SmallTreeTest, DescendantsInDocumentOrder) {
  EXPECT_EQ(doc_.Descendants(a_), (std::vector<NodeId>{b_, d_, e_, c_}));
  EXPECT_EQ(doc_.Descendants(b_), (std::vector<NodeId>{d_, e_}));
}

TEST_F(SmallTreeTest, TextAccess) {
  EXPECT_EQ(doc_.text(d_), "dee");
  EXPECT_TRUE(doc_.has_text(d_));
  EXPECT_EQ(doc_.text(e_), "");
  EXPECT_FALSE(doc_.has_text(e_));
}

TEST_F(SmallTreeTest, DepthAssigned) {
  EXPECT_EQ(doc_.node(a_).depth, 1u);
  EXPECT_EQ(doc_.node(b_).depth, 2u);
  EXPECT_EQ(doc_.node(d_).depth, 3u);
}

TEST(DocumentTest, AppendTextConcatenates) {
  Document doc;
  NodeId a = doc.AddChild(doc.root(), "a");
  doc.AppendText(a, "hello");
  doc.AppendText(a, " world");
  doc.Finalize();
  EXPECT_EQ(doc.text(a), "hello world");
}

TEST(DocumentTest, ForestWithMultipleTopLevelElements) {
  Document doc;
  NodeId x = doc.AddChild(doc.root(), "x");
  NodeId y = doc.AddChild(doc.root(), "y");
  doc.Finalize();
  EXPECT_FALSE(doc.IsDescendant(x, y));
  EXPECT_FALSE(doc.IsDescendant(y, x));
  EXPECT_TRUE(doc.IsDescendant(doc.root(), x));
  EXPECT_TRUE(doc.IsDescendant(doc.root(), y));
}

TEST(TagPoolTest, InternIsIdempotent) {
  TagPool pool;
  TagId a = pool.Intern("book");
  TagId b = pool.Intern("title");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("book"), a);
  EXPECT_EQ(pool.Name(a), "book");
  EXPECT_EQ(pool.Lookup("title"), b);
  EXPECT_EQ(pool.Lookup("missing"), kInvalidTag);
}

TEST(DocumentTest, SameTagSharesId) {
  Document doc;
  NodeId a = doc.AddChild(doc.root(), "item");
  NodeId b = doc.AddChild(doc.root(), "item");
  doc.Finalize();
  EXPECT_EQ(doc.tag(a), doc.tag(b));
}

TEST(DocumentTest, ApproxContentBytesGrowsWithContent) {
  Document small;
  small.AddChild(small.root(), "a");
  small.Finalize();
  Document big;
  for (int i = 0; i < 100; ++i) {
    NodeId n = big.AddChild(big.root(), "element");
    big.SetText(n, "some text content here");
  }
  big.Finalize();
  EXPECT_GT(big.ApproxContentBytes(), small.ApproxContentBytes() * 10);
}

TEST(DocumentTest, LargeFanOutFinalize) {
  Document doc;
  NodeId top = doc.AddChild(doc.root(), "top");
  std::vector<NodeId> kids;
  for (int i = 0; i < 1000; ++i) kids.push_back(doc.AddChild(top, "kid"));
  doc.Finalize();
  EXPECT_EQ(doc.node(top).subtree_end, doc.node(kids.back()).order);
  for (size_t i = 1; i < kids.size(); ++i) {
    EXPECT_EQ(doc.node(kids[i]).order, doc.node(kids[i - 1]).order + 1);
  }
}

TEST(DocumentTest, DeepChainFinalize) {
  Document doc;
  NodeId cur = doc.AddChild(doc.root(), "n");
  NodeId first = cur;
  for (int i = 0; i < 500; ++i) cur = doc.AddChild(cur, "n");
  doc.Finalize();
  EXPECT_TRUE(doc.IsDescendant(first, cur));
  EXPECT_EQ(doc.node(cur).depth, 501u);
  EXPECT_EQ(doc.node(first).subtree_end, doc.node(cur).order);
}

}  // namespace
}  // namespace whirlpool::xml
