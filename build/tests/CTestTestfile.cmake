# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/xml_document_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/dewey_test[1]_include.cmake")
include("/root/repo/build/tests/tag_index_test[1]_include.cmake")
include("/root/repo/build/tests/tree_pattern_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_parser_test[1]_include.cmake")
include("/root/repo/build/tests/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/relaxation_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_test[1]_include.cmake")
include("/root/repo/build/tests/xmlgen_test[1]_include.cmake")
include("/root/repo/build/tests/topk_set_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/aggregation_test[1]_include.cmake")
include("/root/repo/build/tests/join_cache_test[1]_include.cmake")
include("/root/repo/build/tests/threshold_query_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/wildcard_test[1]_include.cmake")
include("/root/repo/build/tests/rewriting_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
