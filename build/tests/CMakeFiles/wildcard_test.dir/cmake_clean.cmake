file(REMOVE_RECURSE
  "CMakeFiles/wildcard_test.dir/wildcard_test.cpp.o"
  "CMakeFiles/wildcard_test.dir/wildcard_test.cpp.o.d"
  "wildcard_test"
  "wildcard_test.pdb"
  "wildcard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildcard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
