file(REMOVE_RECURSE
  "CMakeFiles/xmlgen_test.dir/xmlgen_test.cpp.o"
  "CMakeFiles/xmlgen_test.dir/xmlgen_test.cpp.o.d"
  "xmlgen_test"
  "xmlgen_test.pdb"
  "xmlgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
