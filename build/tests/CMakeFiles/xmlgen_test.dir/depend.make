# Empty dependencies file for xmlgen_test.
# This may be replaced when dependencies are built.
