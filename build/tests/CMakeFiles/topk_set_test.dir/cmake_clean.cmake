file(REMOVE_RECURSE
  "CMakeFiles/topk_set_test.dir/topk_set_test.cpp.o"
  "CMakeFiles/topk_set_test.dir/topk_set_test.cpp.o.d"
  "topk_set_test"
  "topk_set_test.pdb"
  "topk_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
