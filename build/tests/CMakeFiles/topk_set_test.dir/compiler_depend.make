# Empty compiler generated dependencies file for topk_set_test.
# This may be replaced when dependencies are built.
