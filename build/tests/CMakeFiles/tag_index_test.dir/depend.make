# Empty dependencies file for tag_index_test.
# This may be replaced when dependencies are built.
