file(REMOVE_RECURSE
  "CMakeFiles/tag_index_test.dir/tag_index_test.cpp.o"
  "CMakeFiles/tag_index_test.dir/tag_index_test.cpp.o.d"
  "tag_index_test"
  "tag_index_test.pdb"
  "tag_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
