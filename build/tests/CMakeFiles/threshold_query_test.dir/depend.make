# Empty dependencies file for threshold_query_test.
# This may be replaced when dependencies are built.
