file(REMOVE_RECURSE
  "CMakeFiles/threshold_query_test.dir/threshold_query_test.cpp.o"
  "CMakeFiles/threshold_query_test.dir/threshold_query_test.cpp.o.d"
  "threshold_query_test"
  "threshold_query_test.pdb"
  "threshold_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
