# Empty compiler generated dependencies file for join_cache_test.
# This may be replaced when dependencies are built.
