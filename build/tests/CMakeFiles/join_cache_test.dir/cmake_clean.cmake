file(REMOVE_RECURSE
  "CMakeFiles/join_cache_test.dir/join_cache_test.cpp.o"
  "CMakeFiles/join_cache_test.dir/join_cache_test.cpp.o.d"
  "join_cache_test"
  "join_cache_test.pdb"
  "join_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
