# Empty dependencies file for tree_pattern_test.
# This may be replaced when dependencies are built.
