# Empty compiler generated dependencies file for whirlpool.
# This may be replaced when dependencies are built.
