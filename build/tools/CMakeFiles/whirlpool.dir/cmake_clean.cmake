file(REMOVE_RECURSE
  "CMakeFiles/whirlpool.dir/main.cc.o"
  "CMakeFiles/whirlpool.dir/main.cc.o.d"
  "whirlpool"
  "whirlpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
