# Empty compiler generated dependencies file for whirlpool_cli.
# This may be replaced when dependencies are built.
