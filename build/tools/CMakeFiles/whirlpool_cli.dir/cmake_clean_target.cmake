file(REMOVE_RECURSE
  "libwhirlpool_cli.a"
)
