file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_cli.dir/cli.cc.o"
  "CMakeFiles/whirlpool_cli.dir/cli.cc.o.d"
  "libwhirlpool_cli.a"
  "libwhirlpool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
