file(REMOVE_RECURSE
  "CMakeFiles/adaptive_routing_demo.dir/adaptive_routing_demo.cpp.o"
  "CMakeFiles/adaptive_routing_demo.dir/adaptive_routing_demo.cpp.o.d"
  "adaptive_routing_demo"
  "adaptive_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
