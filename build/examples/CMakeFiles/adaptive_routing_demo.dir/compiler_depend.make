# Empty compiler generated dependencies file for adaptive_routing_demo.
# This may be replaced when dependencies are built.
