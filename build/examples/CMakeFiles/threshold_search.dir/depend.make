# Empty dependencies file for threshold_search.
# This may be replaced when dependencies are built.
