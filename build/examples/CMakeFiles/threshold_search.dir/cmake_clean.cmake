file(REMOVE_RECURSE
  "CMakeFiles/threshold_search.dir/threshold_search.cpp.o"
  "CMakeFiles/threshold_search.dir/threshold_search.cpp.o.d"
  "threshold_search"
  "threshold_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
