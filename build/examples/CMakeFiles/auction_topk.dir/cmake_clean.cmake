file(REMOVE_RECURSE
  "CMakeFiles/auction_topk.dir/auction_topk.cpp.o"
  "CMakeFiles/auction_topk.dir/auction_topk.cpp.o.d"
  "auction_topk"
  "auction_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
