# Empty dependencies file for auction_topk.
# This may be replaced when dependencies are built.
