file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rewriting.dir/bench_ablation_rewriting.cpp.o"
  "CMakeFiles/bench_ablation_rewriting.dir/bench_ablation_rewriting.cpp.o.d"
  "bench_ablation_rewriting"
  "bench_ablation_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
