# Empty dependencies file for bench_ablation_rewriting.
# This may be replaced when dependencies are built.
