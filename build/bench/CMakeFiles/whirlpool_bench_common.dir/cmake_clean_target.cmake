file(REMOVE_RECURSE
  "libwhirlpool_bench_common.a"
)
