file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_bench_common.dir/common.cc.o"
  "CMakeFiles/whirlpool_bench_common.dir/common.cc.o.d"
  "libwhirlpool_bench_common.a"
  "libwhirlpool_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
