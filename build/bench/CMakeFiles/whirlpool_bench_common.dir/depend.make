# Empty dependencies file for whirlpool_bench_common.
# This may be replaced when dependencies are built.
