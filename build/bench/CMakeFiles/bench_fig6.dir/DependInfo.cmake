
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6.cpp" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6.dir/bench_fig6.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/whirlpool_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/whirlpool_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/whirlpool_score.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/whirlpool_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/whirlpool_index.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlgen/CMakeFiles/whirlpool_xmlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/whirlpool_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whirlpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
