# Empty compiler generated dependencies file for whirlpool_score.
# This may be replaced when dependencies are built.
