file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_score.dir/scoring.cc.o"
  "CMakeFiles/whirlpool_score.dir/scoring.cc.o.d"
  "libwhirlpool_score.a"
  "libwhirlpool_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
