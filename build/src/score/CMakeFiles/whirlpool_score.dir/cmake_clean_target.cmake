file(REMOVE_RECURSE
  "libwhirlpool_score.a"
)
