file(REMOVE_RECURSE
  "libwhirlpool_exec.a"
)
