
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/lockstep.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/lockstep.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/lockstep.cc.o.d"
  "/root/repo/src/exec/misc.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/misc.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/misc.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/rewriting_baseline.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/rewriting_baseline.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/rewriting_baseline.cc.o.d"
  "/root/repo/src/exec/routing.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/routing.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/routing.cc.o.d"
  "/root/repo/src/exec/server.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/server.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/server.cc.o.d"
  "/root/repo/src/exec/topk_set.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/topk_set.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/topk_set.cc.o.d"
  "/root/repo/src/exec/whirlpool_m.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/whirlpool_m.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/whirlpool_m.cc.o.d"
  "/root/repo/src/exec/whirlpool_s.cc" "src/exec/CMakeFiles/whirlpool_exec.dir/whirlpool_s.cc.o" "gcc" "src/exec/CMakeFiles/whirlpool_exec.dir/whirlpool_s.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/score/CMakeFiles/whirlpool_score.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/whirlpool_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/whirlpool_index.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/whirlpool_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whirlpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
