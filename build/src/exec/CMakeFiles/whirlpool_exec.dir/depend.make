# Empty dependencies file for whirlpool_exec.
# This may be replaced when dependencies are built.
