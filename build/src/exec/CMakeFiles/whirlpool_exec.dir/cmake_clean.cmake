file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_exec.dir/lockstep.cc.o"
  "CMakeFiles/whirlpool_exec.dir/lockstep.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/misc.cc.o"
  "CMakeFiles/whirlpool_exec.dir/misc.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/plan.cc.o"
  "CMakeFiles/whirlpool_exec.dir/plan.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/rewriting_baseline.cc.o"
  "CMakeFiles/whirlpool_exec.dir/rewriting_baseline.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/routing.cc.o"
  "CMakeFiles/whirlpool_exec.dir/routing.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/server.cc.o"
  "CMakeFiles/whirlpool_exec.dir/server.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/topk_set.cc.o"
  "CMakeFiles/whirlpool_exec.dir/topk_set.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/whirlpool_m.cc.o"
  "CMakeFiles/whirlpool_exec.dir/whirlpool_m.cc.o.d"
  "CMakeFiles/whirlpool_exec.dir/whirlpool_s.cc.o"
  "CMakeFiles/whirlpool_exec.dir/whirlpool_s.cc.o.d"
  "libwhirlpool_exec.a"
  "libwhirlpool_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
