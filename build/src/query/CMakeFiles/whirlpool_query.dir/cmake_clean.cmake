file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_query.dir/matcher.cc.o"
  "CMakeFiles/whirlpool_query.dir/matcher.cc.o.d"
  "CMakeFiles/whirlpool_query.dir/tree_pattern.cc.o"
  "CMakeFiles/whirlpool_query.dir/tree_pattern.cc.o.d"
  "libwhirlpool_query.a"
  "libwhirlpool_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
