file(REMOVE_RECURSE
  "libwhirlpool_query.a"
)
