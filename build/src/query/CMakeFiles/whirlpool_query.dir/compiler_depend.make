# Empty compiler generated dependencies file for whirlpool_query.
# This may be replaced when dependencies are built.
