file(REMOVE_RECURSE
  "libwhirlpool_xml.a"
)
