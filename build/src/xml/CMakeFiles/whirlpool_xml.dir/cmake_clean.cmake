file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_xml.dir/dewey.cc.o"
  "CMakeFiles/whirlpool_xml.dir/dewey.cc.o.d"
  "CMakeFiles/whirlpool_xml.dir/document.cc.o"
  "CMakeFiles/whirlpool_xml.dir/document.cc.o.d"
  "CMakeFiles/whirlpool_xml.dir/parser.cc.o"
  "CMakeFiles/whirlpool_xml.dir/parser.cc.o.d"
  "CMakeFiles/whirlpool_xml.dir/snapshot.cc.o"
  "CMakeFiles/whirlpool_xml.dir/snapshot.cc.o.d"
  "libwhirlpool_xml.a"
  "libwhirlpool_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
