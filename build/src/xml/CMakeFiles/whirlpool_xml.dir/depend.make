# Empty dependencies file for whirlpool_xml.
# This may be replaced when dependencies are built.
