# Empty dependencies file for whirlpool_index.
# This may be replaced when dependencies are built.
