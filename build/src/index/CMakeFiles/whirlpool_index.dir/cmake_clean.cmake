file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_index.dir/tag_index.cc.o"
  "CMakeFiles/whirlpool_index.dir/tag_index.cc.o.d"
  "libwhirlpool_index.a"
  "libwhirlpool_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
