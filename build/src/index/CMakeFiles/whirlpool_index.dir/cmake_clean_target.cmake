file(REMOVE_RECURSE
  "libwhirlpool_index.a"
)
