file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_util.dir/rng.cc.o"
  "CMakeFiles/whirlpool_util.dir/rng.cc.o.d"
  "CMakeFiles/whirlpool_util.dir/status.cc.o"
  "CMakeFiles/whirlpool_util.dir/status.cc.o.d"
  "CMakeFiles/whirlpool_util.dir/string_util.cc.o"
  "CMakeFiles/whirlpool_util.dir/string_util.cc.o.d"
  "libwhirlpool_util.a"
  "libwhirlpool_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
