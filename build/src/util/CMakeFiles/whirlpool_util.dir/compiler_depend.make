# Empty compiler generated dependencies file for whirlpool_util.
# This may be replaced when dependencies are built.
