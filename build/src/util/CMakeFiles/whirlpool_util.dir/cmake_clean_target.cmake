file(REMOVE_RECURSE
  "libwhirlpool_util.a"
)
