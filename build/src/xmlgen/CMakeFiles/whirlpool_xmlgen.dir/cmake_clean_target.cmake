file(REMOVE_RECURSE
  "libwhirlpool_xmlgen.a"
)
