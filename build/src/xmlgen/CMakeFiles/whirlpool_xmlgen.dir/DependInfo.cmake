
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlgen/bookstore.cc" "src/xmlgen/CMakeFiles/whirlpool_xmlgen.dir/bookstore.cc.o" "gcc" "src/xmlgen/CMakeFiles/whirlpool_xmlgen.dir/bookstore.cc.o.d"
  "/root/repo/src/xmlgen/xmark.cc" "src/xmlgen/CMakeFiles/whirlpool_xmlgen.dir/xmark.cc.o" "gcc" "src/xmlgen/CMakeFiles/whirlpool_xmlgen.dir/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/whirlpool_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whirlpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
