file(REMOVE_RECURSE
  "CMakeFiles/whirlpool_xmlgen.dir/bookstore.cc.o"
  "CMakeFiles/whirlpool_xmlgen.dir/bookstore.cc.o.d"
  "CMakeFiles/whirlpool_xmlgen.dir/xmark.cc.o"
  "CMakeFiles/whirlpool_xmlgen.dir/xmark.cc.o.d"
  "libwhirlpool_xmlgen.a"
  "libwhirlpool_xmlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whirlpool_xmlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
