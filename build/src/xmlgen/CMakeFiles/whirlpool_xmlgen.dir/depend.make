# Empty dependencies file for whirlpool_xmlgen.
# This may be replaced when dependencies are built.
