#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace whirlpool {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace whirlpool
