// Status / Result error handling, in the style of Arrow / RocksDB: library
// code never throws for recoverable errors; it returns a Status (or Result<T>)
// that callers must inspect.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace whirlpool {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnsupported,
};

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \brief Either a value of type T or an error Status.
///
/// Usage:
///   Result<Document> r = ParseDocument(text);
///   if (!r.ok()) return r.status();
///   Document doc = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// Error status; Status::OK() when this holds a value.
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define WHIRLPOOL_RETURN_NOT_OK(expr)                  \
  do {                                                 \
    ::whirlpool::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                         \
  } while (0)

}  // namespace whirlpool
