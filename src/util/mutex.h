// Annotated synchronization primitives: drop-in wrappers over std::mutex /
// std::lock_guard / std::condition_variable that carry Clang Thread Safety
// attributes (util/thread_annotations.h). The std types cannot be annotated,
// so every GUARDED_BY field in the codebase is guarded by a whirlpool::Mutex
// and locked through MutexLock — that is what lets -Wthread-safety prove the
// lock discipline at compile time. Zero release overhead: everything inlines
// to the underlying std call.
//
// Mutexes may additionally carry a LockRank, making the project lock
// hierarchy (DESIGN.md §10) executable: debug builds (WP_DCHECK on) keep a
// per-thread stack of held ranks and WP_CHECK-fail on any acquisition whose
// rank does not strictly exceed every rank already held, naming both lock
// sites. Clang Thread Safety Analysis cannot express cross-instance ordering
// (e.g. "any TopKSet shard before scores_mu_"), so the ranking is what turns
// the documented lock order into a machine-checked invariant. Release builds
// compile the tracking out entirely (the rank/name members vanish).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace whirlpool {

/// \brief Global lock hierarchy: a thread may only acquire locks in strictly
/// increasing rank order (equal ranks conflict too — no path may hold two
/// TopKSet shards at once). kUnranked locks are exempt: they neither
/// constrain later acquisitions nor are checked themselves — the migration
/// default for locks outside the engine hot paths.
///
/// The numeric gaps leave room to slot new locks into the hierarchy without
/// renumbering; see DESIGN.md §10 for the table, who nests under whom, and
/// how to pick a rank for a new lock.
enum class LockRank : int {
  kUnranked = 0,
  kBenchGlobal = 10,    ///< bench/common.cc metrics-JSON globals (outermost)
  kAdaptive = 15,       ///< DrainController::mu_ (drain-governor registry)
  kQueue = 20,          ///< SyncMatchQueue::mu_ (router + server queues)
  kInFlight = 30,       ///< Whirlpool-M InFlightTracker::mu_
  kProcessorCap = 40,   ///< ProcessorCap::mu_ (simulated-processor semaphore)
  kJoinCache = 50,      ///< ServerJoinCache::Shard::mu
  kTopKShard = 60,      ///< TopKSet::Shard::mu (striped root->score map)
  kTopKScores = 70,     ///< TopKSet::scores_mu_ (global score multiset)
  kTracer = 80,         ///< Tracer::mu_ (buffer registry)
  kTracerBuffer = 90,   ///< Tracer::Buffer::mu (per-thread event logs)
  kTelemetry = 92,      ///< TelemetryRecorder::mu_ (sampler rings; below
                        ///< kCancel so probes may observe the CancelToken)
  kCancel = 93,         ///< CancelToken::mu_ (first-cancellation status)
  kFailpointRegistry = 95,  ///< failpoint::FailpointRegistry::mu_ (leaf:
                            ///< Configure/Snapshot only; hits are lock-free)
};

/// Human-readable enumerator name ("kTopKShard") for diagnostics.
const char* LockRankName(LockRank rank);

namespace lock_rank_internal {
#if WP_DCHECK_IS_ON
/// Order-checks `rank` against every rank this thread holds (WP_CHECK-fails
/// on a violation, naming both locks) and pushes it. Called *before*
/// blocking on the underlying mutex so a real deadlock still reports the
/// rank violation instead of hanging.
void PushHeld(const void* mu, LockRank rank, const char* name);
/// Pushes without the order check: try-lock acquisitions cannot deadlock,
/// but what they hold must still constrain later blocking acquisitions.
void PushHeldUnchecked(const void* mu, LockRank rank, const char* name);
/// Removes `mu` from this thread's held stack (WP_CHECK: must be present).
void PopHeld(const void* mu);
/// WP_CHECK-fails if this thread holds any ranked lock other than `mu`
/// while waiting on `mu`: CondVar::Wait releases only `mu`, so every other
/// held lock stays locked for the whole (unbounded) wait — the runtime
/// twin of wp-alint's WP009 blocking-under-lock rule.
void AssertWaitSafe(const void* mu, const char* waited_name);
#endif
}  // namespace lock_rank_internal

/// \brief std::mutex with capability annotations. Satisfies BasicLockable /
/// Lockable, so std::lock_guard<Mutex> also works where MutexLock cannot be
/// used — but prefer MutexLock, whose SCOPED_CAPABILITY the analysis tracks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the runtime lock-order check (debug
  /// builds). `name` appears in violation reports; it defaults to the rank's
  /// enumerator name, so pass the field's qualified name when a rank covers
  /// several locks (e.g. "TopKSet::scores_mu_").
  explicit Mutex(LockRank rank, const char* name = nullptr)
#if WP_DCHECK_IS_ON
      : rank_(rank), name_(name != nullptr ? name : LockRankName(rank))
#endif
  {
    (void)rank;
    (void)name;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if WP_DCHECK_IS_ON
    if (rank_ != LockRank::kUnranked) {
      lock_rank_internal::PushHeld(this, rank_, name_);
    }
#endif
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if WP_DCHECK_IS_ON
    if (rank_ != LockRank::kUnranked) lock_rank_internal::PopHeld(this);
#endif
  }

  bool try_lock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if WP_DCHECK_IS_ON
    if (acquired && rank_ != LockRank::kUnranked) {
      lock_rank_internal::PushHeldUnchecked(this, rank_, name_);
    }
#endif
    return acquired;
  }

  /// The rank given at construction (kUnranked in release builds, where the
  /// member is compiled out along with the checking).
  LockRank rank() const {
#if WP_DCHECK_IS_ON
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if WP_DCHECK_IS_ON
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = "unranked";
#endif
};

/// \brief RAII scoped lock over a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to whirlpool::Mutex. Wait() must be
/// called with the mutex held (REQUIRES) and — like std::condition_variable
/// — atomically releases it while blocked, reacquiring before return, so
/// GUARDED_BY state may legally be read in the predicate and after Wait().
///
/// Lock-rank note: Wait() goes through the raw std::mutex, so the mutex
/// stays on the thread's held-rank stack for the whole wait. That is the
/// intent — the thread reacquires before doing anything else, and while
/// blocked it acquires nothing, so the stack stays truthful exactly when it
/// is consulted.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; prefer the predicate
  /// overload.
  void Wait(Mutex& mu) REQUIRES(mu) {
    AssertWaitSafe(mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Blocks until `pred()` holds; the predicate runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    AssertWaitSafe(mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Blocks until `pred()` holds or `timeout` elapses, whichever is first;
  /// returns the predicate's final value (false = timed out). The periodic-
  /// worker primitive (telemetry sampler): sleep one interval, wake early on
  /// shutdown. Same release/reacquire contract as the untimed overloads.
  template <typename Predicate>
  bool Wait(Mutex& mu, std::chrono::microseconds timeout, Predicate pred)
      REQUIRES(mu) {
    AssertWaitSafe(mu);
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Debug-only: waiting on `mu` must not pin any *other* ranked lock for
  /// the duration of the wait (release builds compile this to nothing).
  static void AssertWaitSafe(const Mutex& mu) {
#if WP_DCHECK_IS_ON
    lock_rank_internal::AssertWaitSafe(&mu, mu.name_);
#else
    (void)mu;
#endif
  }

  std::condition_variable cv_;
};

}  // namespace whirlpool
