// Annotated synchronization primitives: drop-in wrappers over std::mutex /
// std::lock_guard / std::condition_variable that carry Clang Thread Safety
// attributes (util/thread_annotations.h). The std types cannot be annotated,
// so every GUARDED_BY field in the codebase is guarded by a whirlpool::Mutex
// and locked through MutexLock — that is what lets -Wthread-safety prove the
// lock discipline at compile time. Zero overhead: everything inlines to the
// underlying std call.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace whirlpool {

/// \brief std::mutex with capability annotations. Satisfies BasicLockable /
/// Lockable, so std::lock_guard<Mutex> also works where MutexLock cannot be
/// used — but prefer MutexLock, whose SCOPED_CAPABILITY the analysis tracks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII scoped lock over a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to whirlpool::Mutex. Wait() must be
/// called with the mutex held (REQUIRES) and — like std::condition_variable
/// — atomically releases it while blocked, reacquiring before return, so
/// GUARDED_BY state may legally be read in the predicate and after Wait().
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; prefer the predicate
  /// overload.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Blocks until `pred()` holds; the predicate runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace whirlpool
