// Monotonic wall-clock stopwatch used by the engine metrics and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace whirlpool {

/// \brief Simple monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace whirlpool
