// Runtime invariant checking: WP_CHECK aborts (with file:line, the failed
// condition, and an optional streamed message) when a condition is false;
// WP_DCHECK is the same check compiled only into debug / WP_FORCE_DCHECK
// builds, for invariants too hot to verify in release (heap ordering on
// every pop, per-extension mask agreement). Both swallow a streamed
// message:
//
//   WP_CHECK(!heap.empty()) << "pop on empty heap, size=" << heap.size();
//
// The message expression is not evaluated when the condition holds (or, for
// WP_DCHECK, when checks are compiled out), so streaming is free on the
// success path.
#pragma once

#include <sstream>

namespace whirlpool::util::check_internal {

/// \brief Collects the failure message; aborts the process in its
/// destructor (which runs after the caller finishes streaming).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Adapts the streamed ostream to void so both ?: arms agree. operator&
/// binds looser than operator<<, so the whole message chain is consumed.
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace whirlpool::util::check_internal

/// Always-on invariant check; aborts with a diagnostic when false.
#define WP_CHECK(condition)                                          \
  (condition) ? (void)0                                              \
              : ::whirlpool::util::check_internal::Voidify() &       \
                    ::whirlpool::util::check_internal::CheckFailure( \
                        __FILE__, __LINE__, #condition)              \
                        .stream()

/// True when WP_DCHECK performs its check (debug builds, or any build with
/// -DWP_FORCE_DCHECK — the tsan preset sets it so sanitizer runs also
/// exercise the debug invariants).
#if !defined(NDEBUG) || defined(WP_FORCE_DCHECK)
#define WP_DCHECK_IS_ON 1
#else
#define WP_DCHECK_IS_ON 0
#endif

#if WP_DCHECK_IS_ON
#define WP_DCHECK(condition) WP_CHECK(condition)
#else
// Dead branch: still typechecks (so the condition cannot rot) but the
// compiler removes it entirely, and the condition is never evaluated.
#define WP_DCHECK(condition) \
  while (false) WP_CHECK(condition)
#endif
