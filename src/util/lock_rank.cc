// Runtime half of the machine-checked lock hierarchy (util/mutex.h,
// DESIGN.md §10): a per-thread stack of held ranked locks, order-checked on
// every blocking acquisition. Compiled into debug / WP_FORCE_DCHECK builds
// only; release builds never call into this file (the hooks are compiled out
// of Mutex::lock/unlock), so the hot path keeps its zero-overhead contract.
#include "util/mutex.h"

#include <iterator>
#include <vector>

#include "util/check.h"

namespace whirlpool {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kBenchGlobal: return "kBenchGlobal";
    case LockRank::kAdaptive: return "kAdaptive";
    case LockRank::kQueue: return "kQueue";
    case LockRank::kInFlight: return "kInFlight";
    case LockRank::kProcessorCap: return "kProcessorCap";
    case LockRank::kJoinCache: return "kJoinCache";
    case LockRank::kTopKShard: return "kTopKShard";
    case LockRank::kTopKScores: return "kTopKScores";
    case LockRank::kTracer: return "kTracer";
    case LockRank::kTracerBuffer: return "kTracerBuffer";
    case LockRank::kTelemetry: return "kTelemetry";
    case LockRank::kCancel: return "kCancel";
    case LockRank::kFailpointRegistry: return "kFailpointRegistry";
  }
  return "unknown";
}

#if WP_DCHECK_IS_ON

namespace lock_rank_internal {

namespace {

struct Held {
  const void* mu;
  LockRank rank;
  const char* name;
};

/// Locks this thread currently holds (ranked ones only), in acquisition
/// order. A handful of entries at most, so linear scans beat any clever
/// structure.
thread_local std::vector<Held> tl_held;

}  // namespace

void PushHeld(const void* mu, LockRank rank, const char* name) {
  for (const Held& h : tl_held) {
    // Strict inequality: equal ranks conflict too. Two locks of the same
    // rank (e.g. two TopKSet shards) have no defined order between their
    // instances, so holding both is exactly the ABBA hazard the hierarchy
    // exists to prevent.
    WP_CHECK(static_cast<int>(h.rank) < static_cast<int>(rank))
        << "lock rank violation (potential deadlock): acquiring \"" << name
        << "\" (" << LockRankName(rank) << "=" << static_cast<int>(rank)
        << ") while holding \"" << h.name << "\" (" << LockRankName(h.rank)
        << "=" << static_cast<int>(h.rank)
        << "). The lock hierarchy requires strictly increasing ranks — a "
           "cycle \"" << h.name << "\" -> \"" << name << "\" here against \""
        << name << "\" -> \"" << h.name
        << "\" elsewhere would deadlock. Release \"" << h.name
        << "\" first, or move \"" << name
        << "\" above it in the LockRank hierarchy (DESIGN.md §10).";
  }
  tl_held.push_back({mu, rank, name});
}

void PushHeldUnchecked(const void* mu, LockRank rank, const char* name) {
  tl_held.push_back({mu, rank, name});
}

void PopHeld(const void* mu) {
  // Search newest-first: releases are almost always LIFO (MutexLock), but
  // nothing requires it, so pop the matching entry wherever it sits.
  for (auto it = tl_held.rbegin(); it != tl_held.rend(); ++it) {
    if (it->mu == mu) {
      tl_held.erase(std::next(it).base());
      return;
    }
  }
  WP_CHECK(false) << "lock rank bookkeeping: released a ranked lock this "
                     "thread does not hold (" << mu << ")";
}

void AssertWaitSafe(const void* mu, const char* waited_name) {
  for (const Held& h : tl_held) {
    WP_CHECK(h.mu == mu)
        << "blocking wait under lock (WP009): CondVar::Wait on \""
        << waited_name << "\" while holding \"" << h.name << "\" ("
        << LockRankName(h.rank) << "=" << static_cast<int>(h.rank)
        << "). Wait releases only \"" << waited_name << "\", so \"" << h.name
        << "\" stays locked for the whole (unbounded) wait, stalling every "
           "thread that needs it. Release \"" << h.name
        << "\" before waiting (see wp-alint rule WP009, DESIGN.md §8).";
  }
}

}  // namespace lock_rank_internal

#endif  // WP_DCHECK_IS_ON

}  // namespace whirlpool
