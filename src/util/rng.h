// Seeded, reproducible pseudo-random number generation (splitmix64 +
// xoshiro256**). Every randomized component in the library (document
// generation, synthetic scores, shuffles) takes an explicit Rng so runs are
// deterministic given a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whirlpool {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
///
/// Not cryptographic. Deliberately not std::mt19937 so that streams are
/// stable across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed pick in [0, n): rank r with weight 1/(r+1)^theta.
  /// theta=0 is uniform; larger theta is more skewed.
  size_t Zipf(size_t n, double theta);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace whirlpool
