#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::failpoint {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

enum class Action : uint8_t { kYield, kSleep, kWake, kError, kStall };
enum class Trigger : uint8_t { kAlways, kEveryNth, kProbability, kOneShot };

/// One parsed `name=action(args)` clause. Immutable after Configure publishes
/// the owning Plan, except for the two relaxed counters.
struct Entry {
  std::string name;
  std::string spec;
  Action action = Action::kYield;
  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;
  double probability = 1.0;
  uint64_t duration_us = 0;
  /// Per-entry hash base for p= decisions: mixes the plan seed with the site
  /// name so two probabilistic entries draw independent sequences.
  uint64_t hash_base = 0;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> triggers{0};
};

/// An installed plan. Entries are heap-held because the atomics make Entry
/// immovable; the vector itself is immutable after publication.
struct Plan {
  std::vector<std::unique_ptr<Entry>> entries;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(uint64_t seed, const std::string& name) {
  uint64_t h = seed ^ 0xcbf29ce484222325ull;
  for (char c : name) h = SplitMix64(h ^ static_cast<unsigned char>(c));
  return h;
}

/// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t x) { return static_cast<double>(x >> 11) * 0x1.0p-53; }

/// Longest a sleep/stall may be configured for: plans are test inputs and a
/// fat-fingered duration should fail parse, not wedge a run for minutes.
constexpr uint64_t kMaxDurationUs = 1000000;  // 1 s

/// The process-global registry. Configure/Clear/Snapshot serialize on mu_;
/// the Hit() hot path only touches the published pointer and the entries'
/// relaxed counters, so it takes no lock and adds no synchronization edges
/// beyond the one acquire/release pair that publishes the immutable plan.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance() {
    static FailpointRegistry* r = new FailpointRegistry();  // leaked: process-lifetime
    return *r;
  }

  void Install(std::unique_ptr<Plan> plan) {
    MutexLock lock(&mu_);
    // release: publishes the fully-built immutable Plan; pairs with the
    // acquire load in Active() on the lock-free hit path.
    active_.store(plan.get(), std::memory_order_release);
    plans_.push_back(std::move(plan));
    internal::g_armed.store(true, std::memory_order_relaxed);
  }

  void Uninstall() {
    MutexLock lock(&mu_);
    internal::g_armed.store(false, std::memory_order_relaxed);
    // release: orders the gate close before the pointer swap for any reader
    // between the two loads; retired plans stay allocated (plans_) so a
    // racing Hit() that already loaded the pointer never frees from under it.
    active_.store(nullptr, std::memory_order_release);
  }

  const Plan* Active() const {
    // acquire: pairs with the release store in Install so the plan's entries
    // are fully constructed when the hit path walks them.
    return active_.load(std::memory_order_acquire);
  }

 private:
  FailpointRegistry() = default;

  mutable Mutex mu_{LockRank::kFailpointRegistry, "FailpointRegistry::mu_"};
  /// Every plan ever installed, kept alive until process exit so the
  /// lock-free hit path never races a free (plans are tiny and Configure is
  /// a per-run test operation, so the leak is bounded and intentional).
  std::vector<std::unique_ptr<Plan>> plans_ GUARDED_BY(mu_);
  std::atomic<const Plan*> active_{nullptr};
};

/// Splits on commas that sit outside parentheses ("a=s(1,p=.5),b=y" has two
/// top-level clauses).
std::vector<std::string> SplitTopLevel(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseProb(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

Status ParseClause(const std::string& raw, Entry* e) {
  const std::string clause = Trim(raw);
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint clause '" + clause +
                                   "' is not name=action(args)");
  }
  e->name = Trim(clause.substr(0, eq));
  bool known = false;
  for (const std::string& s : KnownSites()) known = known || s == e->name;
  if (!known) {
    std::string valid;
    for (const std::string& s : KnownSites()) {
      if (!valid.empty()) valid += ", ";
      valid += s;
    }
    return Status::InvalidArgument("unknown failpoint '" + e->name +
                                   "' (known sites: " + valid + ")");
  }
  e->spec = Trim(clause.substr(eq + 1));
  std::string action = e->spec;
  std::string args;
  const size_t paren = action.find('(');
  if (paren != std::string::npos) {
    if (action.back() != ')') {
      return Status::InvalidArgument("failpoint '" + e->name +
                                     "': unbalanced parentheses in '" + action + "'");
    }
    args = action.substr(paren + 1, action.size() - paren - 2);
    action = Trim(action.substr(0, paren));
  }
  if (action == "yield") e->action = Action::kYield;
  else if (action == "sleep") e->action = Action::kSleep;
  else if (action == "wake") e->action = Action::kWake;
  else if (action == "error") e->action = Action::kError;
  else if (action == "stall") e->action = Action::kStall;
  else {
    return Status::InvalidArgument(
        "failpoint '" + e->name + "': unknown action '" + action +
        "' (expected yield|sleep|wake|error|stall)");
  }

  const bool needs_duration =
      e->action == Action::kSleep || e->action == Action::kStall;
  bool have_duration = false;
  bool have_trigger = false;
  if (!args.empty()) {
    for (const std::string& raw_arg : SplitTopLevel(args)) {
      const std::string arg = Trim(raw_arg);
      uint64_t n = 0;
      if (arg == "once") {
        if (have_trigger) {
          return Status::InvalidArgument("failpoint '" + e->name +
                                         "': multiple activation modes");
        }
        e->trigger = Trigger::kOneShot;
        have_trigger = true;
      } else if (arg.rfind("every=", 0) == 0) {
        if (have_trigger || !ParseUint(arg.substr(6), &n) || n < 1) {
          return Status::InvalidArgument("failpoint '" + e->name +
                                         "': bad activation '" + arg + "'");
        }
        e->trigger = Trigger::kEveryNth;
        e->every_n = n;
        have_trigger = true;
      } else if (arg.rfind("p=", 0) == 0) {
        double p = 0.0;
        if (have_trigger || !ParseProb(arg.substr(2), &p)) {
          return Status::InvalidArgument("failpoint '" + e->name +
                                         "': bad activation '" + arg +
                                         "' (p must be in [0,1])");
        }
        e->trigger = Trigger::kProbability;
        e->probability = p;
        have_trigger = true;
      } else if (ParseUint(arg, &n)) {
        if (have_duration || !needs_duration) {
          return Status::InvalidArgument("failpoint '" + e->name +
                                         "': unexpected duration '" + arg + "'");
        }
        if (n > kMaxDurationUs) {
          return Status::InvalidArgument("failpoint '" + e->name +
                                         "': duration exceeds 1s cap");
        }
        e->duration_us = n;
        have_duration = true;
      } else {
        return Status::InvalidArgument("failpoint '" + e->name +
                                       "': unrecognized argument '" + arg + "'");
      }
    }
  }
  if (needs_duration && !have_duration) {
    return Status::InvalidArgument("failpoint '" + e->name + "': " + action +
                                   " requires a duration in microseconds");
  }
  return Status::OK();
}

Result<std::unique_ptr<Plan>> ParsePlan(const std::string& plan_str,
                                        uint64_t seed) {
  auto plan = std::make_unique<Plan>();
  for (const std::string& clause : SplitTopLevel(plan_str)) {
    if (Trim(clause).empty()) {
      return Status::InvalidArgument("empty failpoint clause in '" + plan_str + "'");
    }
    auto e = std::make_unique<Entry>();
    WHIRLPOOL_RETURN_NOT_OK(ParseClause(clause, e.get()));
    for (const auto& prev : plan->entries) {
      if (prev->name == e->name) {
        return Status::InvalidArgument("failpoint '" + e->name +
                                       "' configured twice in one plan");
      }
    }
    e->hash_base = HashName(seed, e->name);
    plan->entries.push_back(std::move(e));
  }
  return plan;
}

Effect Evaluate(Entry& e) {
  // Per-hit decision index. The relaxed RMW deliberately feeds control flow:
  // the branch selects a seeded chaos schedule, not guarded state — any
  // cross-thread interleaving of hit indices is a valid schedule, and a
  // stronger order would add the very synchronization edges the chaos suite
  // must not have (they would mask real races under TSan).
  const uint64_t n = e.hits.fetch_add(1, std::memory_order_relaxed);  // wp-lint: disable(WP006) seeded schedule choice, see comment above
  bool fire = false;
  switch (e.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kEveryNth:
      fire = (n + 1) % e.every_n == 0;
      break;
    case Trigger::kProbability:
      fire = ToUnit(SplitMix64(e.hash_base + n)) < e.probability;
      break;
    case Trigger::kOneShot:
      fire = n == 0;
      break;
  }
  if (!fire) return Effect::kNone;
  e.triggers.fetch_add(1, std::memory_order_relaxed);
  switch (e.action) {
    case Action::kYield:
      std::this_thread::yield();
      return Effect::kNone;
    case Action::kSleep:
    case Action::kStall:
      std::this_thread::sleep_for(std::chrono::microseconds(e.duration_us));
      return Effect::kNone;
    case Action::kWake:
      return Effect::kWake;
    case Action::kError:
      return Effect::kError;
  }
  return Effect::kNone;  // unreachable
}

}  // namespace

const std::vector<std::string>& KnownSites() {
  static const std::vector<std::string>* kSites = new std::vector<std::string>{
      sites::kQueuePushBatch,  sites::kQueuePopBatch,
      sites::kTopkUpdate,      sites::kTopkThresholdRefresh,
      sites::kWmServerDrain,   sites::kWmRouterHandoff,
      sites::kWsStep,          sites::kLockstepWave,
      sites::kCacheLookup,     sites::kAdaptiveSample,
      sites::kTracerRecord,    sites::kTelemetrySample,
  };
  return *kSites;
}

Effect Hit(const char* name) {
  const Plan* plan = FailpointRegistry::Instance().Active();
  if (plan == nullptr) return Effect::kNone;
  for (const auto& e : plan->entries) {
    if (e->name == name) return Evaluate(*e);
  }
  return Effect::kNone;
}

Status InjectedError(const char* name) {
  if (Hit(name) == Effect::kError) {
    return Status::Internal(std::string("failpoint '") + name +
                            "' injected error");
  }
  return Status::OK();
}

Status ValidatePlan(const std::string& plan) {
  if (plan.empty()) return Status::OK();
  return ParsePlan(plan, 0).status();
}

Status Configure(const std::string& plan, uint64_t seed) {
  if (plan.empty()) {
    Clear();
    return Status::OK();
  }
  Result<std::unique_ptr<Plan>> parsed = ParsePlan(plan, seed);
  if (!parsed.ok()) return parsed.status();
  FailpointRegistry::Instance().Install(std::move(parsed).value());
  return Status::OK();
}

void Clear() { FailpointRegistry::Instance().Uninstall(); }

std::vector<Stats> Snapshot() {
  std::vector<Stats> out;
  const Plan* plan = FailpointRegistry::Instance().Active();
  if (plan == nullptr) return out;
  out.reserve(plan->entries.size());
  for (const auto& e : plan->entries) {
    Stats s;
    s.name = e->name;
    s.spec = e->spec;
    s.hits = e->hits.load(std::memory_order_relaxed);
    s.triggers = e->triggers.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace whirlpool::failpoint
