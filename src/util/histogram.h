// Lock-free log-bucketed latency histogram. Writers record durations (in
// nanoseconds) with one relaxed atomic increment; readers take a consistent-
// enough snapshot and compute percentiles. Buckets are log-linear (16 linear
// sub-buckets per power of two, HdrHistogram-style), so reconstructed
// percentiles carry at most ~6% relative error — plenty for p50/p95/p99
// latency reporting.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace whirlpool::util {

/// \brief Plain-value percentile summary of one histogram.
struct LatencyStats {
  uint64_t count = 0;
  double mean_us = 0.0;
  double min_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// \brief Thread-safe histogram of durations in nanoseconds.
///
/// Record() is wait-free (two relaxed fetch_adds); Snapshot() walks the
/// bucket array. Values above ~2^63 ns saturate into the last bucket.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr size_t kNumBuckets =
      ((64 - kSubBits) << kSubBits) + (1u << kSubBits);

  void Record(uint64_t ns) {
    buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }

  /// Value (ns) at or below which `fraction` of recorded samples fall,
  /// reconstructed from the bucket midpoints. 0 when empty.
  double Percentile(double fraction) const;

  LatencyStats Snapshot() const;

  /// Folds `other`'s samples into this histogram (used by the bench harness
  /// to aggregate per-run histograms).
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  static size_t BucketFor(uint64_t ns) {
    if (ns < (1u << kSubBits)) return static_cast<size_t>(ns);
    const int exp = std::bit_width(ns) - 1;  // >= kSubBits
    const uint64_t sub = (ns >> (exp - kSubBits)) & ((1u << kSubBits) - 1);
    return (static_cast<size_t>(exp - kSubBits + 1) << kSubBits) |
           static_cast<size_t>(sub);
  }

  /// Midpoint (ns) of bucket `i` — the representative value percentiles use.
  static double BucketMidpoint(size_t i) {
    if (i < (1u << kSubBits)) return static_cast<double>(i);
    const int exp = static_cast<int>(i >> kSubBits) + kSubBits - 1;
    const uint64_t sub = i & ((1u << kSubBits) - 1);
    const double low = static_cast<double>(1ull << exp) +
                       static_cast<double>(sub) *
                           static_cast<double>(1ull << (exp - kSubBits));
    const double width = static_cast<double>(1ull << (exp - kSubBits));
    return low + width / 2.0;
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
};

inline double LatencyHistogram::Percentile(double fraction) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(fraction * static_cast<double>(total));
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return BucketMidpoint(i);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

inline LatencyStats LatencyHistogram::Snapshot() const {
  LatencyStats s;
  s.count = Count();
  if (s.count == 0) return s;
  s.mean_us = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.count) / 1e3;
  s.p50_us = Percentile(0.50) / 1e3;
  s.p95_us = Percentile(0.95) / 1e3;
  s.p99_us = Percentile(0.99) / 1e3;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      s.min_us = BucketMidpoint(i) / 1e3;
      break;
    }
  }
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      s.max_us = BucketMidpoint(i) / 1e3;
      break;
    }
  }
  return s;
}

}  // namespace whirlpool::util
