// Counting semaphore used to cap the number of server threads doing useful
// work concurrently. This is how the benches simulate machines with 1, 2, 4
// or unlimited processors (paper Sec 6.3.4) on a single host.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>

namespace whirlpool {

/// \brief Counting semaphore with an "unlimited" mode.
///
/// When constructed with permits == kUnlimited, Acquire/Release are no-ops,
/// so an uncapped run pays no synchronization cost.
class ProcessorCap {
 public:
  static constexpr int kUnlimited = std::numeric_limits<int>::max();

  explicit ProcessorCap(int permits = kUnlimited) : permits_(permits), limited_(permits != kUnlimited) {}

  void Acquire() {
    if (!limited_) return;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

  void Release() {
    if (!limited_) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++permits_;
    }
    cv_.notify_one();
  }

  bool limited() const { return limited_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int permits_;
  const bool limited_;
};

/// RAII guard that holds a ProcessorCap permit for its scope.
class ProcessorCapGuard {
 public:
  explicit ProcessorCapGuard(ProcessorCap* cap) : cap_(cap) {
    if (cap_ != nullptr) cap_->Acquire();
  }
  ~ProcessorCapGuard() {
    if (cap_ != nullptr) cap_->Release();
  }
  ProcessorCapGuard(const ProcessorCapGuard&) = delete;
  ProcessorCapGuard& operator=(const ProcessorCapGuard&) = delete;

 private:
  ProcessorCap* cap_;
};

}  // namespace whirlpool
