// Counting semaphore used to cap the number of server threads doing useful
// work concurrently. This is how the benches simulate machines with 1, 2, 4
// or unlimited processors (paper Sec 6.3.4) on a single host.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool {

/// \brief Counting semaphore with an "unlimited" mode.
///
/// When constructed with permits == kUnlimited, Acquire/Release are no-ops,
/// so an uncapped run pays no synchronization cost. `limited_` is const (set
/// once at construction), which is what makes the unlocked fast-path test in
/// Acquire/Release race-free; the permit count itself is guarded by mu_.
class ProcessorCap {
 public:
  static constexpr int kUnlimited = std::numeric_limits<int>::max();

  explicit ProcessorCap(int permits = kUnlimited)
      : permits_(permits), limited_(permits != kUnlimited) {}

  void Acquire() EXCLUDES(mu_) {
    if (!limited_) return;
    MutexLock lock(&mu_);
    cv_.Wait(mu_, [this]() REQUIRES(mu_) { return permits_ > 0; });
    --permits_;
  }

  void Release() EXCLUDES(mu_) {
    if (!limited_) return;
    {
      MutexLock lock(&mu_);
      WP_DCHECK(permits_ < std::numeric_limits<int>::max())
          << "Release() without matching Acquire()";
      ++permits_;
    }
    cv_.NotifyOne();
  }

  bool limited() const { return limited_; }

 private:
  Mutex mu_{LockRank::kProcessorCap, "ProcessorCap::mu_"};
  CondVar cv_;
  int permits_ GUARDED_BY(mu_);
  const bool limited_;
};

/// RAII guard that holds a ProcessorCap permit for its scope.
class ProcessorCapGuard {
 public:
  explicit ProcessorCapGuard(ProcessorCap* cap) : cap_(cap) {
    if (cap_ != nullptr) cap_->Acquire();
  }
  ~ProcessorCapGuard() {
    if (cap_ != nullptr) cap_->Release();
  }
  ProcessorCapGuard(const ProcessorCapGuard&) = delete;
  ProcessorCapGuard& operator=(const ProcessorCapGuard&) = delete;

 private:
  ProcessorCap* const cap_;
};

}  // namespace whirlpool
