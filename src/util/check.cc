#include "util/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace whirlpool::util::check_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  // Trailing space separates the condition from the caller's streamed
  // message (glog style).
  stream_ << "WP_CHECK failed at " << file << ":" << line << ": " << condition
          << ' ';
}

CheckFailure::~CheckFailure() {
  stream_ << '\n';
  const std::string msg = stream_.str();
  std::fwrite(msg.data(), 1, msg.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace whirlpool::util::check_internal
