// Clang Thread Safety Analysis annotations (-Wthread-safety). Each macro
// expands to a Clang attribute when compiling with Clang and to nothing
// elsewhere, so GCC builds are unaffected. Applied to whirlpool::Mutex /
// MutexLock / CondVar (util/mutex.h) and to every shared structure in the
// engines, they turn lock-discipline violations — touching a GUARDED_BY
// field without its mutex, calling a REQUIRES method unlocked — into
// compile errors under the `tidy` preset (see tools/run_static_analysis.sh)
// instead of flaky TSan reports.
//
// Conventions used in this codebase:
//   - every field written by more than one thread is either std::atomic or
//     GUARDED_BY(mu_);
//   - private *Locked() helpers that assume the caller holds the mutex are
//     REQUIRES(mu_);
//   - public methods never expose a held lock to callbacks (compute outside
//     the lock, then publish).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define WP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define WP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) WP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY WP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field is protected by the given mutex(es); all reads and writes must
/// happen with the mutex held.
#define GUARDED_BY(x) WP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) WP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Documents lock-ordering constraints between mutexes (deadlock checking).
#define ACQUIRED_BEFORE(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function requires the caller to hold the mutex (exclusively / shared).
#define REQUIRES(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex and does not release it before returning.
#define ACQUIRE(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex (which the caller must hold).
#define RELEASE(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire the mutex; first argument is the success value.
#define TRY_ACQUIRE(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex (the function acquires it itself).
#define EXCLUDES(...) WP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, informing the analysis.
#define ASSERT_CAPABILITY(x) WP_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define RETURN_CAPABILITY(x) WP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis for one function (document why at use).
#define NO_THREAD_SAFETY_ANALYSIS \
  WP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
