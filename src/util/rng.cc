#include "util/rng.h"

#include <cmath>

namespace whirlpool {

size_t Rng::Zipf(size_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  // Inverse-CDF sampling over the (small) rank space. n is bounded by the
  // vocabulary sizes used in generation (tens to thousands), so a linear
  // scan is fine and keeps the generator dependency-free.
  double norm = 0.0;
  for (size_t r = 0; r < n; ++r) norm += 1.0 / std::pow(static_cast<double>(r + 1), theta);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    if (u <= acc) return r;
  }
  return n - 1;
}

}  // namespace whirlpool
