// Named failpoints: seeded, deterministic fault injection for the chaos
// suite (tests/chaos_test.cpp, DESIGN.md §12). A failpoint is a compiled-in
// site on an engine hot path; a *plan* — parsed from the
// `--failpoints "name=action(args)[,...]"` string — attaches an action to a
// subset of sites:
//
//   yield            give up the time slice (schedule perturbation)
//   sleep(USEC)      sleep this thread (schedule perturbation)
//   stall(USEC)      alias of sleep for "slow server" plans (longer stalls)
//   wake             request a spurious wakeup: the site broadcasts on its
//                    condition variable so waiters recheck their predicate
//   error            request an injected error: the site routes an Internal
//                    Status into the run's CancelToken (error-capable sites
//                    only; others count the trigger and continue)
//
// Activation is deterministic per hit index: `every=N` fires on every Nth
// hit of the site, `once` fires on the first hit only, `p=F` fires when a
// splitmix64 hash of (seed, hit index) falls below F — same seed, same hit
// sequence, same decisions, regardless of thread interleaving.
//
// Zero overhead when disabled: every instrumented site is gated on a single
// relaxed atomic load (`Enabled()`), false for any process that never calls
// Configure, so release hot paths pay one predictable branch. The hit path
// itself is lock-free — plans are immutable once published through an
// acquire/release pointer and counters are relaxed atomics — so enabling a
// plan under TSan adds no happens-before edges that could mask real races.
//
// The registry is process-global (one plan at a time): engines install the
// plan from ExecOptions::failpoints for the duration of a run via
// ScopedConfig. Concurrent runs with *different* plans are unsupported
// (last Configure wins); concurrent runs with no plan are unaffected.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace whirlpool::failpoint {

/// Instrumented site names (the only names Configure accepts; typos in a
/// plan string fail fast). The exec layer owns the call sites; the table in
/// DESIGN.md §12 records where each fires and whether it is error-capable.
namespace sites {
inline constexpr char kQueuePushBatch[] = "queue.push_batch";
inline constexpr char kQueuePopBatch[] = "queue.pop_batch";
inline constexpr char kTopkUpdate[] = "topk.update";
inline constexpr char kTopkThresholdRefresh[] = "topk.threshold_refresh";
inline constexpr char kWmServerDrain[] = "wm.server_drain";
inline constexpr char kWmRouterHandoff[] = "wm.router_handoff";
inline constexpr char kWsStep[] = "ws.step";
inline constexpr char kLockstepWave[] = "lockstep.wave";
inline constexpr char kCacheLookup[] = "cache.lookup";
inline constexpr char kAdaptiveSample[] = "adaptive.sample";
inline constexpr char kTracerRecord[] = "tracer.record";
inline constexpr char kTelemetrySample[] = "telemetry.sample";
}  // namespace sites

/// All known site names (for Configure validation and docs/tests).
const std::vector<std::string>& KnownSites();

/// Residual effect of a hit that the *site* must apply: schedule actions
/// (yield/sleep/stall) already ran inside Hit().
enum class Effect : uint8_t {
  kNone,   ///< nothing triggered, or the action completed inline
  kWake,   ///< spurious wakeup requested: broadcast the site's condvar
  kError,  ///< injected error requested: route a Status into the run
};

namespace internal {
// The global gate. Exposed only so Enabled() inlines to one relaxed load;
// use Configure/Clear to flip it.
extern std::atomic<bool> g_armed;
}  // namespace internal

/// True when a plan is installed. The disabled fast path of every site.
inline bool Enabled() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Evaluates the failpoint `name` against the installed plan: bumps the hit
/// counter, decides activation deterministically, executes schedule actions
/// inline, and returns the residual effect. Lock-free; no-op (kNone) when no
/// plan is installed or the plan does not mention `name`.
Effect Hit(const char* name);

/// Error-capable sites: like Hit(), but an activated `error` action comes
/// back as Status::Internal naming the site ("failpoint '<name>' injected
/// error"); every other outcome is OK.
Status InjectedError(const char* name);

/// Parse-checks a plan string without installing it (ValidateOptions hook).
/// The empty string is a valid empty plan.
Status ValidatePlan(const std::string& plan);

/// Parses and installs `plan`, resetting all counters; an empty string is
/// equivalent to Clear(). `seed` drives the p= activation hashes. On a parse
/// error the previous plan stays installed.
Status Configure(const std::string& plan, uint64_t seed);

/// Uninstalls any plan and closes the gate. Counters of the retired plan
/// become unreachable (Snapshot before clearing to keep them).
void Clear();

/// Per-failpoint counters of the installed plan: hits (times the site
/// executed) and triggers (times the action activated).
struct Stats {
  std::string name;
  std::string spec;  ///< the "action(args)" text this entry was parsed from
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

/// Counters for every entry of the installed plan (empty when disabled).
std::vector<Stats> Snapshot();

/// RAII plan installation for a run: Configure on construction (empty spec =
/// no-op), Clear on destruction if this object installed a plan. Check
/// status() before relying on the plan.
class ScopedConfig {
 public:
  ScopedConfig(const std::string& plan, uint64_t seed)
      : active_(!plan.empty()),
        status_(active_ ? Configure(plan, seed) : Status::OK()) {}
  ~ScopedConfig() {
    if (active_ && status_.ok()) Clear();
  }
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;

  const Status& status() const { return status_; }

 private:
  const bool active_;
  const Status status_;
};

}  // namespace whirlpool::failpoint

/// Statement form for schedule-only sites (no condvar to wake, no Status to
/// return): one relaxed load when disabled.
#define WHIRLPOOL_FAILPOINT(name)                      \
  do {                                                 \
    if (::whirlpool::failpoint::Enabled()) {           \
      (void)::whirlpool::failpoint::Hit(name);         \
    }                                                  \
  } while (0)
