// Minimal JSON output helpers (no dependency, header-only): string escaping
// and locale-independent number formatting, used by the metrics/trace
// exporters. This is a writer only — the repo has no JSON parsing needs.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace whirlpool::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a valid JSON number (never "nan"/"inf" — those map to
/// 0, JSON has no representation for them).
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace whirlpool::util
