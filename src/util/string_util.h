// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace whirlpool {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

}  // namespace whirlpool
