#include "index/tag_index.h"

#include <algorithm>

namespace whirlpool::index {

const std::vector<NodeId> TagIndex::kEmpty;

TagIndex::TagIndex(const Document& doc, bool index_values) : doc_(&doc) {
  by_tag_.resize(doc.tags().size());
  // The arena is not necessarily in document order for arbitrary builders,
  // so collect then sort by preorder rank.
  for (NodeId id = 1; id < doc.num_nodes(); ++id) {
    by_tag_[doc.tag(id)].nodes.push_back(id);
    if (IsElementTagName(doc.tag_name(id))) all_elements_.push_back(id);
    if (index_values && doc.has_text(id)) {
      by_tag_value_[{doc.tag(id), std::string(doc.text(id))}].nodes.push_back(id);
    }
  }
  auto by_order = [&doc](NodeId a, NodeId b) {
    return doc.node(a).order < doc.node(b).order;
  };
  for (auto& pl : by_tag_) std::sort(pl.nodes.begin(), pl.nodes.end(), by_order);
  std::sort(all_elements_.begin(), all_elements_.end(), by_order);
  for (auto& [key, pl] : by_tag_value_) std::sort(pl.nodes.begin(), pl.nodes.end(), by_order);
}

const std::vector<NodeId>& TagIndex::Nodes(std::string_view tag) const {
  TagId id = doc_->tags().Lookup(tag);
  if (id == xml::kInvalidTag) return kEmpty;
  return Nodes(id);
}

const std::vector<NodeId>& TagIndex::Nodes(TagId tag) const {
  if (tag >= by_tag_.size()) return kEmpty;
  return by_tag_[tag].nodes;
}

const std::vector<NodeId>& TagIndex::NodesWithValue(std::string_view tag,
                                                    std::string_view value) const {
  TagId id = doc_->tags().Lookup(tag);
  if (id == xml::kInvalidTag) return kEmpty;
  auto it = by_tag_value_.find({id, std::string(value)});
  if (it == by_tag_value_.end()) return kEmpty;
  return it->second.nodes;
}

std::pair<size_t, size_t> TagIndex::DescendantRange(const std::vector<NodeId>& list,
                                                    NodeId ancestor) const {
  const auto& a = doc_->node(ancestor);
  auto lo = std::lower_bound(list.begin(), list.end(), a.order + 1,
                             [this](NodeId n, uint32_t order) {
                               return doc_->node(n).order < order;
                             });
  auto hi = std::upper_bound(lo, list.end(), a.subtree_end,
                             [this](uint32_t order, NodeId n) {
                               return order < doc_->node(n).order;
                             });
  return {static_cast<size_t>(lo - list.begin()), static_cast<size_t>(hi - list.begin())};
}

std::vector<NodeId> TagIndex::DescendantsWithTag(NodeId ancestor, TagId tag) const {
  const auto& list = Nodes(tag);
  auto [lo, hi] = DescendantRange(list, ancestor);
  return std::vector<NodeId>(list.begin() + lo, list.begin() + hi);
}

std::vector<NodeId> TagIndex::DescendantsWithTagValue(NodeId ancestor, TagId tag,
                                                      std::string_view value) const {
  auto it = by_tag_value_.find({tag, std::string(value)});
  if (it == by_tag_value_.end()) return {};
  const auto& list = it->second.nodes;
  auto [lo, hi] = DescendantRange(list, ancestor);
  return std::vector<NodeId>(list.begin() + lo, list.begin() + hi);
}

size_t TagIndex::CountDescendantsWithTag(NodeId ancestor, TagId tag) const {
  const auto& list = Nodes(tag);
  auto [lo, hi] = DescendantRange(list, ancestor);
  return hi - lo;
}

std::vector<NodeId> TagIndex::ChildrenWithTag(NodeId ancestor, TagId tag) const {
  std::vector<NodeId> out;
  for (NodeId n : DescendantsWithTag(ancestor, tag)) {
    if (doc_->parent(n) == ancestor) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> TagIndex::AllElementDescendants(NodeId ancestor) const {
  auto [lo, hi] = DescendantRange(all_elements_, ancestor);
  return std::vector<NodeId>(all_elements_.begin() + lo, all_elements_.begin() + hi);
}

size_t TagIndex::CountAllElementDescendants(NodeId ancestor) const {
  auto [lo, hi] = DescendantRange(all_elements_, ancestor);
  return hi - lo;
}

std::vector<NodeId> TagIndex::Candidates(NodeId anchor, std::string_view tag,
                                         const std::optional<std::string>& value) const {
  if (tag == kWildcardTag) {
    std::vector<NodeId> all = AllElementDescendants(anchor);
    if (!value) return all;
    std::vector<NodeId> out;
    for (NodeId n : all) {
      if (doc_->text(n) == *value) out.push_back(n);
    }
    return out;
  }
  TagId id = doc_->tags().Lookup(tag);
  if (id == xml::kInvalidTag) return {};
  return value ? DescendantsWithTagValue(anchor, id, *value)
               : DescendantsWithTag(anchor, id);
}

size_t TagIndex::CountCandidates(NodeId anchor, std::string_view tag,
                                 const std::optional<std::string>& value) const {
  if (tag == kWildcardTag) {
    if (!value) return CountAllElementDescendants(anchor);
    return Candidates(anchor, tag, value).size();
  }
  TagId id = doc_->tags().Lookup(tag);
  if (id == xml::kInvalidTag) return 0;
  if (value) return DescendantsWithTagValue(anchor, id, *value).size();
  return CountDescendantsWithTag(anchor, id);
}

TagStats TagIndex::Stats(TagId tag) const {
  TagStats s;
  if (tag >= by_tag_.size()) return s;
  s.count = by_tag_[tag].nodes.size();
  // avg fanout: average posting-list hits under each distinct parent-of-tag
  // subtree. Approximate with count / number of distinct parents.
  if (s.count > 0) {
    size_t distinct_parents = 0;
    NodeId prev_parent = xml::kInvalidNode;
    for (NodeId n : by_tag_[tag].nodes) {
      NodeId p = doc_->parent(n);
      if (p != prev_parent) {
        ++distinct_parents;
        prev_parent = p;
      }
    }
    s.avg_fanout_under_ancestor =
        static_cast<double>(s.count) / static_cast<double>(std::max<size_t>(1, distinct_parents));
  }
  return s;
}

}  // namespace whirlpool::index
