// Tag indexes over a finalized Document (paper Sec 6.2.1: "the document is
// parsed and nodes involved in the query are stored in indexes along with
// their Dewey encoding"). We store, per tag (optionally per (tag, text
// value)), the node list in document order. Because preorder ranks of a
// subtree are contiguous, "all nodes with tag t that are descendants of n"
// is a binary-searched contiguous range.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/document.h"

namespace whirlpool::index {

using xml::Document;
using xml::NodeId;
using xml::TagId;

/// \brief A posting list: node ids with one tag, in document order.
struct PostingList {
  std::vector<NodeId> nodes;  // sorted by Document order
};

/// \brief Per-tag statistics used by the size-based (min_alive) router.
struct TagStats {
  /// Number of nodes with this tag.
  uint64_t count = 0;
  /// Average number of same-tag nodes inside one top-level item subtree that
  /// contains at least one (a cheap stand-in for selectivity estimation).
  double avg_fanout_under_ancestor = 0.0;
};

/// The wildcard tag "*": matches any ELEMENT (never the synthetic #root or
/// "@attr" attribute nodes).
inline constexpr std::string_view kWildcardTag = "*";

/// True if `tag_name` names a real element (not #root / @attribute).
inline bool IsElementTagName(std::string_view tag_name) {
  return !tag_name.empty() && tag_name[0] != '#' && tag_name[0] != '@';
}

/// \brief Tag (and tag+value) index over one Document.
class TagIndex {
 public:
  /// Builds posting lists for every tag in `doc`. If `index_values` is true,
  /// additionally builds (tag, text) posting lists for nodes with text.
  explicit TagIndex(const Document& doc, bool index_values = true);

  const Document& doc() const { return *doc_; }

  /// Posting list for `tag` (empty if tag unknown).
  const std::vector<NodeId>& Nodes(std::string_view tag) const;
  const std::vector<NodeId>& Nodes(TagId tag) const;

  /// Posting list for nodes with `tag` whose text equals `value`.
  const std::vector<NodeId>& NodesWithValue(std::string_view tag,
                                            std::string_view value) const;

  /// All nodes with `tag` that are proper descendants of `ancestor`,
  /// in document order. O(log n + answer).
  std::vector<NodeId> DescendantsWithTag(NodeId ancestor, TagId tag) const;

  /// Same, restricted to nodes whose text equals `value`.
  std::vector<NodeId> DescendantsWithTagValue(NodeId ancestor, TagId tag,
                                              std::string_view value) const;

  /// Count of `tag` descendants of `ancestor` without materializing them.
  size_t CountDescendantsWithTag(NodeId ancestor, TagId tag) const;

  /// Children of `ancestor` with `tag`, in document order.
  std::vector<NodeId> ChildrenWithTag(NodeId ancestor, TagId tag) const;

  /// All ELEMENT nodes, in document order (the "*" posting list).
  const std::vector<NodeId>& AllElements() const { return all_elements_; }

  /// All element descendants of `ancestor`, in document order.
  std::vector<NodeId> AllElementDescendants(NodeId ancestor) const;

  /// Count of element descendants of `ancestor`.
  size_t CountAllElementDescendants(NodeId ancestor) const;

  /// Wildcard-aware candidate scan: descendants of `anchor` matching `tag`
  /// (kWildcardTag = any element) and, if given, whose text equals `value`.
  std::vector<NodeId> Candidates(NodeId anchor, std::string_view tag,
                                 const std::optional<std::string>& value) const;

  /// Count variant of Candidates.
  size_t CountCandidates(NodeId anchor, std::string_view tag,
                         const std::optional<std::string>& value) const;

  /// Number of distinct tags indexed.
  size_t num_tags() const { return by_tag_.size(); }

  /// Statistics for a tag (zeros if unknown).
  TagStats Stats(TagId tag) const;

 private:
  /// Returns [lo, hi) bounds into a posting list for descendants of `a`.
  std::pair<size_t, size_t> DescendantRange(const std::vector<NodeId>& list,
                                            NodeId ancestor) const;

  const Document* doc_;
  std::vector<PostingList> by_tag_;  // indexed by TagId
  std::vector<NodeId> all_elements_;  // every element node, document order
  std::map<std::pair<TagId, std::string>, PostingList> by_tag_value_;
  static const std::vector<NodeId> kEmpty;
};

}  // namespace whirlpool::index
