// Naive, obviously-correct tree-pattern evaluation used as ground truth by
// the tests and by the answer-level tf*idf scorer. Exponential in the worst
// case; the engines in src/exec are the real evaluators.
#pragma once

#include <vector>

#include "index/tag_index.h"
#include "query/tree_pattern.h"

namespace whirlpool::query {

using index::TagIndex;
using xml::NodeId;

/// \brief True iff `binding` can be the image of pattern node `pnode` in a
/// full embedding of the subtree rooted at `pnode` (respecting axes, value
/// predicates and optional flags).
bool SubtreeMatches(const TagIndex& index, const TreePattern& pattern, int pnode,
                    NodeId binding);

/// \brief All document nodes that are exact matches of the pattern's root
/// (i.e. roots of at least one full embedding), in document order.
std::vector<NodeId> EvaluatePattern(const TagIndex& index, const TreePattern& pattern);

/// \brief Candidate bindings for the pattern root: nodes with the root's tag
/// (and value, if constrained), in document order.
std::vector<NodeId> RootCandidates(const TagIndex& index, const TreePattern& pattern);

}  // namespace whirlpool::query
