#include "query/tree_pattern.h"

#include <algorithm>

namespace whirlpool::query {

const char* AxisName(Axis axis) {
  return axis == Axis::kChild ? "pc" : "ad";
}

TreePattern TreePattern::Root(std::string_view tag, std::optional<std::string> value) {
  TreePattern p;
  PatternNode root;
  root.tag = std::string(tag);
  root.value = std::move(value);
  root.parent = -1;
  p.nodes_.push_back(std::move(root));
  return p;
}

int TreePattern::AddNode(int parent, Axis axis, std::string_view tag,
                         std::optional<std::string> value) {
  PatternNode n;
  n.tag = std::string(tag);
  n.value = std::move(value);
  n.axis = axis;
  n.parent = parent;
  int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(idx);
  return idx;
}

// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
bool TreePattern::IsAncestor(int anc, int node) const {
  int p = nodes_[static_cast<size_t>(node)].parent;
  while (p != -1) {
    if (p == anc) return true;
    p = nodes_[static_cast<size_t>(p)].parent;
  }
  return false;
}

// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
std::vector<ChainStep> TreePattern::Chain(int from, int to) const {
  std::vector<ChainStep> rev;
  int cur = to;
  while (cur != from && cur != -1) {
    const PatternNode& n = nodes_[static_cast<size_t>(cur)];
    rev.push_back({n.axis, n.tag, n.value});
    cur = n.parent;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::vector<int> TreePattern::Preorder() const {
  std::vector<int> out;
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const auto& kids = nodes_[static_cast<size_t>(n)].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

namespace {
void RenderNode(const TreePattern& p, int idx, std::string* out) {
  const PatternNode& n = p.node(idx);
  if (idx != 0) {
    out->append(AxisName(n.axis));
    out->push_back(':');
  }
  out->append(n.tag);
  if (n.optional) out->push_back('?');
  if (n.value) {
    out->append("='");
    out->append(*n.value);
    out->push_back('\'');
  }
  if (!n.children.empty()) {
    out->push_back('[');
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out->push_back(' ');
      RenderNode(p, n.children[i], out);
    }
    out->push_back(']');
  }
}
}  // namespace

std::string TreePattern::ToString() const {
  std::string out;
  RenderNode(*this, 0, &out);
  return out;
}

Result<TreePattern> TreePattern::EdgeGeneralization(int node) const {
  if (node <= 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::InvalidArgument("edge generalization: bad node index");
  }
  if (nodes_[static_cast<size_t>(node)].axis == Axis::kDescendant) {
    return Status::InvalidArgument("edge generalization: edge is already ad");
  }
  TreePattern out = *this;
  out.nodes_[static_cast<size_t>(node)].axis = Axis::kDescendant;
  return out;
}

Result<TreePattern> TreePattern::LeafDeletion(int node) const {
  if (node <= 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::InvalidArgument("leaf deletion: bad node index");
  }
  if (!IsLeaf(node)) return Status::InvalidArgument("leaf deletion: node is not a leaf");
  if (nodes_[static_cast<size_t>(node)].optional) {
    return Status::InvalidArgument("leaf deletion: node already optional");
  }
  TreePattern out = *this;
  out.nodes_[static_cast<size_t>(node)].optional = true;
  return out;
}

Result<TreePattern> TreePattern::SubtreePromotion(int node) const {
  if (node <= 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::InvalidArgument("subtree promotion: bad node index");
  }
  int parent = nodes_[static_cast<size_t>(node)].parent;
  if (parent <= 0) {
    return Status::InvalidArgument("subtree promotion: parent is the root (or missing)");
  }
  int grandparent = nodes_[static_cast<size_t>(parent)].parent;
  TreePattern out = *this;
  auto& kids = out.nodes_[static_cast<size_t>(parent)].children;
  kids.erase(std::remove(kids.begin(), kids.end(), node), kids.end());
  out.nodes_[static_cast<size_t>(node)].parent = grandparent;
  out.nodes_[static_cast<size_t>(node)].axis = Axis::kDescendant;
  out.nodes_[static_cast<size_t>(grandparent)].children.push_back(node);
  return out;
}

TreePattern TreePattern::FullyRelaxed() const {
  TreePattern out = *this;
  for (size_t i = 1; i < out.nodes_.size(); ++i) {
    out.nodes_[i].axis = Axis::kDescendant;
    out.nodes_[i].optional = true;
    // Promotion closure: everything hangs off the root with ad.
    out.nodes_[i].parent = 0;
    out.nodes_[i].children.clear();
  }
  out.nodes_[0].children.clear();
  for (size_t i = 1; i < out.nodes_.size(); ++i) {
    out.nodes_[0].children.push_back(static_cast<int>(i));
  }
  return out;
}

bool TreePattern::operator==(const TreePattern& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const auto& a = nodes_[i];
    const auto& b = other.nodes_[i];
    if (a.tag != b.tag || a.value != b.value || a.parent != b.parent ||
        a.optional != b.optional || a.children != b.children) {
      return false;
    }
    if (i != 0 && a.axis != b.axis) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// XPath-subset parser
// ---------------------------------------------------------------------------

namespace {

class XPathParser {
 public:
  explicit XPathParser(std::string_view in) : in_(in) {}

  Result<TreePattern> Parse() {
    SkipSpace();
    Axis axis;
    if (!ReadAxis(&axis)) return Error("query must start with '/' or '//'");
    std::string name;
    if (!ReadName(&name)) return Error("expected element name");
    TreePattern pattern = TreePattern::Root(name);
    Status st = ParsePredicates(&pattern, 0);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != in_.size()) {
      if (Peek() == '/') {
        return Status::Unsupported(
            "multi-step return paths are not supported: the returned node must be "
            "the single top-level step (got trailing '" +
            std::string(in_.substr(pos_)) + "')");
      }
      return Error("trailing input");
    }
    return pattern;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' || Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Match(std::string_view tok) {
    if (in_.size() - pos_ < tok.size() || in_.substr(pos_, tok.size()) != tok) return false;
    pos_ += tok.size();
    return true;
  }

  /// Reads '//' (descendant) or '/' (child). Returns false if neither.
  bool ReadAxis(Axis* axis) {
    if (Match("//")) {
      *axis = Axis::kDescendant;
      return true;
    }
    if (Match("/")) {
      *axis = Axis::kChild;
      return true;
    }
    return false;
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-' || c == '.' || c == ':' || c == '@';
  }

  bool ReadName(std::string* out) {
    SkipSpace();
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      out->assign("*");
      return true;
    }
    size_t start = pos_;
    // Disallow a leading '.' so relative-path dots are not eaten as names.
    if (!AtEnd() && Peek() == '.') return false;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return false;
    out->assign(in_.substr(start, pos_ - start));
    return true;
  }

  /// Parses zero or more [...] predicate blocks attached to `node`.
  Status ParsePredicates(TreePattern* pattern, int node) {
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '[') return Status::OK();
      ++pos_;  // '['
      Status st = ParseConjunction(pattern, node);
      if (!st.ok()) return st;
      SkipSpace();
      if (AtEnd() || Peek() != ']') return Error("expected ']'").status();
      ++pos_;
    }
  }

  Status ParseConjunction(TreePattern* pattern, int node) {
    while (true) {
      Status st = ParseTerm(pattern, node);
      if (!st.ok()) return st;
      SkipSpace();
      if (Match("and") || Match("AND")) continue;
      return Status::OK();
    }
  }

  /// term := relpath ('=' STRING)? — builds a chain of pattern nodes under
  /// `node`; the value predicate (if any) applies to the last node.
  Status ParseTerm(TreePattern* pattern, int node) {
    SkipSpace();
    // Optional leading '.' for relative paths.
    if (!AtEnd() && Peek() == '.') ++pos_;
    int current = node;
    bool first = true;
    while (true) {
      SkipSpace();
      Axis axis;
      if (!ReadAxis(&axis)) {
        if (first) return Error("expected './', './/', '/' or '//' in predicate").status();
        break;
      }
      std::string name;
      if (!ReadName(&name)) return Error("expected element name in predicate").status();
      current = pattern->AddNode(current, axis, name);
      Status st = ParsePredicates(pattern, current);
      if (!st.ok()) return st;
      first = false;
      SkipSpace();
      if (AtEnd() || (Peek() != '/' )) break;
    }
    SkipSpace();
    if (!AtEnd() && Peek() == '=') {
      ++pos_;
      SkipSpace();
      if (AtEnd() || (Peek() != '\'' && Peek() != '"')) {
        return Error("expected quoted string after '='").status();
      }
      char quote = Peek();
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) return Error("unterminated string").status();
      pattern->node(current).value = std::string(in_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    return Status::OK();
  }

  Result<TreePattern> Error(const std::string& msg) const {
    return Status::ParseError("XPath: " + msg + " (offset " + std::to_string(pos_) + ")");
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<TreePattern> ParseXPath(std::string_view xpath) {
  XPathParser p(xpath);
  return p.Parse();
}

}  // namespace whirlpool::query
