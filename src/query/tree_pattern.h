// Tree pattern queries (paper Sec 2): a rooted tree whose nodes are labeled
// by element tags (leaves optionally carry a value equality predicate) and
// whose edges are XPath axes pc (parent/child) or ad (ancestor/descendant).
// The root is the returned node. Also: the three relaxation operations (edge
// generalization, leaf deletion, subtree promotion) and relaxed-query
// enumeration used by the property tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace whirlpool::query {

/// XPath axis on a pattern edge.
enum class Axis : uint8_t {
  kChild,       // pc
  kDescendant,  // ad
};

/// Renders "pc" / "ad".
const char* AxisName(Axis axis);

/// \brief One node of a tree pattern.
struct PatternNode {
  std::string tag;
  /// Value equality predicate on the node's text (leaf predicates like
  /// [.//title = 'wodehouse']). Empty optional = no value constraint.
  std::optional<std::string> value;
  /// Axis on the edge from the parent (meaningless for the root).
  Axis axis = Axis::kChild;
  /// Parent index, -1 for the root.
  int parent = -1;
  /// Children indices in insertion order.
  std::vector<int> children;
  /// If true, this node is optional (set by the leaf-deletion relaxation;
  /// in the engine's relaxed mode every non-root node is treated as
  /// deletable).
  bool optional = false;
};

/// \brief A step along a pattern path: the axis leading into a node plus the
/// node's tag/value. Used to express composed predicates between two pattern
/// nodes (Algorithm 1).
struct ChainStep {
  Axis axis;
  std::string tag;
  std::optional<std::string> value;
};

/// \brief A tree-pattern query. Node 0 is the root (the returned node).
class TreePattern {
 public:
  TreePattern() = default;

  /// Creates a pattern with just a root node.
  static TreePattern Root(std::string_view tag,
                          std::optional<std::string> value = std::nullopt);

  /// Adds a node under `parent` connected with `axis`; returns its index.
  int AddNode(int parent, Axis axis, std::string_view tag,
              std::optional<std::string> value = std::nullopt);

  size_t size() const { return nodes_.size(); }
  const PatternNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  PatternNode& node(int i) { return nodes_[static_cast<size_t>(i)]; }
  int root() const { return 0; }

  /// True if `i` has no children.
  bool IsLeaf(int i) const { return nodes_[static_cast<size_t>(i)].children.empty(); }

  /// True iff `anc` is a proper pattern-ancestor of `node`.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): anc/node is the
  // conventional (ancestor, descendant) order; both directions are valid
  // queries, so no strong type can distinguish them.
  bool IsAncestor(int anc, int node) const;

  /// The chain of steps from pattern node `from` down to `to` (exclusive of
  /// `from`, inclusive of `to`). Precondition: IsAncestor(from, to) or
  /// from == parent chain head. Used to build composed predicates.
  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters): see IsAncestor.
  std::vector<ChainStep> Chain(int from, int to) const;

  /// Nodes in a stable order (preorder).
  std::vector<int> Preorder() const;

  /// Human-readable rendering, e.g.
  /// "book[pc:info[pc:publisher[pc:name='psmith']] ad:title='wodehouse']".
  std::string ToString() const;

  // -- Relaxations (paper Sec 2) --------------------------------------------
  // Each returns a NEW pattern; exact matches of *this remain matches of the
  // result (containment property, verified by tests).

  /// Edge generalization: pc -> ad on the edge into `node`.
  /// Error if the edge is already ad or `node` is the root.
  Result<TreePattern> EdgeGeneralization(int node) const;

  /// Leaf deletion: marks leaf `node` optional.
  /// Error if `node` is not a leaf, is the root, or is already optional.
  Result<TreePattern> LeafDeletion(int node) const;

  /// Subtree promotion: re-attaches the subtree rooted at `node` to its
  /// grandparent with an ad edge. Error if `node`'s parent is the root or
  /// `node` is the root.
  Result<TreePattern> SubtreePromotion(int node) const;

  /// The fully relaxed version: every edge generalized to ad from the root,
  /// every non-root node optional (= closure of all three relaxations
  /// composed, as encoded by the engine's outer-join plan).
  TreePattern FullyRelaxed() const;

  bool operator==(const TreePattern& other) const;

 private:
  std::vector<PatternNode> nodes_;
};

/// \brief Parses an XPath subset into a TreePattern.
///
/// Grammar (whitespace-insensitive):
///   query  := ('/' | '//') NAME predicate*
///   predicate := '[' conj ']'
///   conj   := term (('and'|'AND') term)*
///   term   := relpath ('=' STRING)?
///   relpath:= ('.')? (('/' | '//') NAME predicate*)+
///   STRING := '\'' ... '\''
///
/// The single top-level step is the returned node. Examples:
///   /book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']
///   //item[./mailbox/mail/text[./bold and ./keyword] and ./name]
Result<TreePattern> ParseXPath(std::string_view xpath);

}  // namespace whirlpool::query
