#include "query/matcher.h"

namespace whirlpool::query {

namespace {

bool NodeSatisfies(const TagIndex& index, const PatternNode& pn, NodeId n) {
  const auto& doc = index.doc();
  if (pn.tag == index::kWildcardTag) {
    if (!index::IsElementTagName(doc.tag_name(n))) return false;
  } else if (doc.tag_name(n) != pn.tag) {
    return false;
  }
  if (pn.value && doc.text(n) != *pn.value) return false;
  return true;
}

}  // namespace

bool SubtreeMatches(const TagIndex& index, const TreePattern& pattern, int pnode,
                    NodeId binding) {
  const auto& doc = index.doc();
  const PatternNode& pn = pattern.node(pnode);
  if (!NodeSatisfies(index, pn, binding)) return false;
  for (int child : pn.children) {
    const PatternNode& cn = pattern.node(child);
    bool found = false;
    std::vector<NodeId> candidates = index.Candidates(binding, cn.tag, std::nullopt);
    for (NodeId c : candidates) {
      if (cn.axis == Axis::kChild && doc.parent(c) != binding) continue;
      if (SubtreeMatches(index, pattern, child, c)) {
        found = true;
        break;
      }
    }
    if (!found && !cn.optional) return false;
  }
  return true;
}

std::vector<NodeId> RootCandidates(const TagIndex& index, const TreePattern& pattern) {
  const PatternNode& root = pattern.node(pattern.root());
  if (root.tag == index::kWildcardTag || root.value) {
    // Wildcard roots and value-filtered wildcards share the generic scan
    // anchored at the forest root.
    return index.Candidates(index.doc().root(), root.tag, root.value);
  }
  return index.Nodes(root.tag);
}

std::vector<NodeId> EvaluatePattern(const TagIndex& index, const TreePattern& pattern) {
  std::vector<NodeId> out;
  for (NodeId r : RootCandidates(index, pattern)) {
    if (SubtreeMatches(index, pattern, pattern.root(), r)) out.push_back(r);
  }
  return out;
}

}  // namespace whirlpool::query
