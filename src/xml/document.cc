#include "xml/document.h"

#include <cassert>

namespace whirlpool::xml {

TagId TagPool::Intern(std::string_view tag) {
  auto it = ids_.find(std::string(tag));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(tag);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagPool::Lookup(std::string_view tag) const {
  auto it = ids_.find(std::string(tag));
  return it == ids_.end() ? kInvalidTag : it->second;
}

Document::Document() {
  Node root;
  root.tag = tags_.Intern("#root");
  nodes_.push_back(root);
  last_child_.push_back(kInvalidNode);
}

NodeId Document::AddChild(NodeId parent, std::string_view tag) {
  assert(!finalized_);
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.tag = tags_.Intern(tag);
  n.parent = parent;
  nodes_.push_back(n);
  last_child_.push_back(kInvalidNode);
  if (last_child_[parent] == kInvalidNode) {
    nodes_[parent].first_child = id;
  } else {
    nodes_[last_child_[parent]].next_sibling = id;
  }
  last_child_[parent] = id;
  return id;
}

void Document::SetText(NodeId node, std::string_view text) {
  if (nodes_[node].text == Node::kNoText) {
    nodes_[node].text = static_cast<uint32_t>(texts_.size());
    texts_.emplace_back(text);
  } else {
    texts_[nodes_[node].text].assign(text);
  }
}

void Document::AppendText(NodeId node, std::string_view text) {
  if (nodes_[node].text == Node::kNoText) {
    SetText(node, text);
  } else {
    texts_[nodes_[node].text].append(text);
  }
}

std::string_view Document::text(NodeId id) const {
  if (nodes_[id].text == Node::kNoText) return {};
  return texts_[nodes_[id].text];
}

void Document::Finalize() {
  assert(!finalized_);
  // Iterative preorder traversal assigning order and depth.
  uint32_t counter = 0;
  struct Frame {
    NodeId id;
    uint32_t depth;
  };
  std::vector<Frame> frames;
  std::vector<NodeId> kids;
  frames.push_back({0, 0});
  while (!frames.empty()) {
    Frame f = frames.back();
    frames.pop_back();
    Node& n = nodes_[f.id];
    n.order = counter++;
    n.depth = f.depth;
    // Push children in reverse sibling order so they pop in document order.
    kids.clear();
    for (NodeId c = n.first_child; c != kInvalidNode; c = nodes_[c].next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      frames.push_back({*it, f.depth + 1});
    }
  }
  // subtree_end: nodes were created parent-before-child, so a reverse pass
  // over the arena sees every child before its parent.
  for (auto& n : nodes_) n.subtree_end = n.order;
  for (size_t i = nodes_.size(); i-- > 1;) {
    Node& n = nodes_[i];
    Node& p = nodes_[n.parent];
    if (n.subtree_end > p.subtree_end) p.subtree_end = n.subtree_end;
  }
  last_child_.clear();
  last_child_.shrink_to_fit();
  finalized_ = true;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = nodes_[id].first_child; c != kInvalidNode; c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> Document::Descendants(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = Children(id);
  // Maintain document order with an explicit stack (children pushed reversed).
  std::vector<NodeId> work;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) work.push_back(*it);
  while (!work.empty()) {
    NodeId n = work.back();
    work.pop_back();
    out.push_back(n);
    std::vector<NodeId> kids = Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) work.push_back(*it);
  }
  return out;
}

size_t Document::ApproxContentBytes() const {
  size_t bytes = 0;
  for (const auto& t : texts_) bytes += t.size();
  for (const auto& n : nodes_) {
    // "<tag></tag>" overhead per element.
    bytes += 2 * tags_.Name(n.tag).size() + 5;
  }
  return bytes;
}

}  // namespace whirlpool::xml
