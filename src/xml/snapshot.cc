#include "xml/snapshot.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

namespace whirlpool::xml {

namespace {

constexpr char kMagic[8] = {'W', 'P', 'L', 'S', 'N', 'A', 'P', '1'};
/// Upper bound on any count field; rejects absurd (corrupt) headers before
/// allocation.
constexpr uint32_t kMaxCount = 1u << 28;

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(buf, 4);
}

bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
       (static_cast<uint32_t>(buf[2]) << 16) | (static_cast<uint32_t>(buf[3]) << 24);
  return true;
}

void PutString(std::ostream& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status GetString(std::istream& in, std::string* s) {
  uint32_t len;
  if (!GetU32(in, &len)) return Status::ParseError("snapshot truncated (string length)");
  if (len > kMaxCount) return Status::ParseError("snapshot string length implausible");
  s->resize(len);
  if (len > 0 && !in.read(s->data(), len)) {
    return Status::ParseError("snapshot truncated (string body)");
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const Document& doc, std::ostream& out) {
  if (!doc.finalized()) return Status::InvalidArgument("document must be finalized");
  out.write(kMagic, sizeof(kMagic));

  const TagPool& tags = doc.tags();
  PutU32(out, static_cast<uint32_t>(tags.size()));
  for (TagId t = 0; t < tags.size(); ++t) PutString(out, tags.Name(t));

  // Texts: emit one entry per node with text, as (node id, text) pairs
  // folded into the node table below — simpler: write per-node text inline
  // via an index table. We write the count of nodes first, then rows.
  PutU32(out, static_cast<uint32_t>(doc.num_nodes()));
  for (NodeId id = 1; id < doc.num_nodes(); ++id) {
    PutU32(out, doc.tag(id));
    PutU32(out, doc.parent(id));
    if (doc.has_text(id)) {
      PutU32(out, 1);
      PutString(out, doc.text(id));
    } else {
      PutU32(out, 0);
    }
  }
  if (!out) return Status::Internal("snapshot write failed");
  return Status::OK();
}

Result<std::unique_ptr<Document>> ReadSnapshot(std::istream& in) {
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a whirlpool snapshot (bad magic)");
  }
  uint32_t num_tags;
  if (!GetU32(in, &num_tags) || num_tags > kMaxCount) {
    return Status::ParseError("snapshot corrupt (tag count)");
  }
  std::vector<std::string> tag_names(num_tags);
  for (auto& name : tag_names) {
    WHIRLPOOL_RETURN_NOT_OK(GetString(in, &name));
  }
  if (num_tags == 0 || tag_names[0] != "#root") {
    return Status::ParseError("snapshot corrupt (missing #root tag)");
  }

  uint32_t num_nodes;
  if (!GetU32(in, &num_nodes) || num_nodes > kMaxCount || num_nodes == 0) {
    return Status::ParseError("snapshot corrupt (node count)");
  }

  auto doc = std::make_unique<Document>();
  for (NodeId id = 1; id < num_nodes; ++id) {
    uint32_t tag, parent, has_text;
    if (!GetU32(in, &tag) || !GetU32(in, &parent) || !GetU32(in, &has_text)) {
      return Status::ParseError("snapshot truncated (node row)");
    }
    if (tag >= num_tags) return Status::ParseError("snapshot corrupt (tag id)");
    if (parent >= id) {
      // Arena order guarantees parents precede children; equality would be
      // a self-loop.
      return Status::ParseError("snapshot corrupt (parent id)");
    }
    NodeId created = doc->AddChild(parent, tag_names[tag]);
    if (created != id) return Status::Internal("snapshot replay id mismatch");
    if (has_text == 1) {
      std::string text;
      WHIRLPOOL_RETURN_NOT_OK(GetString(in, &text));
      doc->SetText(created, text);
    } else if (has_text != 0) {
      return Status::ParseError("snapshot corrupt (text flag)");
    }
  }
  doc->Finalize();
  return doc;
}

Status SaveSnapshot(const Document& doc, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  return WriteSnapshot(doc, out);
}

Result<std::unique_ptr<Document>> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  return ReadSnapshot(in);
}

}  // namespace whirlpool::xml
