// Dewey node labels (paper Sec 6.2.1): each node is identified by the path
// of sibling ordinals from the root, e.g. 1.3.2. Parent/child and
// ancestor/descendant checks reduce to prefix tests. The top-k engines use
// the interval encoding in Document for speed; Dewey labels are kept as the
// paper-faithful alternative, used for display and cross-checked against the
// interval predicates in the property tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xml/document.h"

namespace whirlpool::xml {

/// \brief A Dewey label: sibling ordinals from the forest root (exclusive)
/// down to the node. The forest root itself has the empty label.
class DeweyLabel {
 public:
  DeweyLabel() = default;
  explicit DeweyLabel(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  /// True iff this label is the parent of `other` (other = this + one step).
  bool IsParentOf(const DeweyLabel& other) const;

  /// True iff this label is a proper ancestor of `other` (proper prefix).
  bool IsAncestorOf(const DeweyLabel& other) const;

  /// Dotted rendering, e.g. "1.3.2"; "" for the root.
  std::string ToString() const;

  /// Lexicographic comparison = document order for siblings-first layouts.
  bool operator<(const DeweyLabel& other) const { return components_ < other.components_; }
  bool operator==(const DeweyLabel& other) const { return components_ == other.components_; }

 private:
  std::vector<uint32_t> components_;
};

/// \brief Precomputed Dewey labels for every node of a finalized Document.
class DeweyIndex {
 public:
  /// Builds labels for all nodes. O(total label length).
  explicit DeweyIndex(const Document& doc);

  const DeweyLabel& label(NodeId id) const { return labels_[id]; }
  size_t size() const { return labels_.size(); }

  /// Predicate helpers mirroring Document::IsChild / IsDescendant.
  bool IsChild(NodeId a, NodeId b) const { return labels_[a].IsParentOf(labels_[b]); }
  bool IsDescendant(NodeId a, NodeId b) const { return labels_[a].IsAncestorOf(labels_[b]); }

 private:
  std::vector<DeweyLabel> labels_;
};

}  // namespace whirlpool::xml
