// A from-scratch, non-validating XML parser sufficient for the document
// classes the paper evaluates on (XMark output and small hand-written
// collections): elements, attributes, character data, entity references,
// comments, CDATA, processing instructions and an XML declaration.
// Namespaces are treated literally (a tag "ns:item" is the tag "ns:item").
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace whirlpool::xml {

/// Parser configuration.
struct ParseOptions {
  /// If true (default), attributes become child nodes tagged "@name" whose
  /// text is the attribute value. If false, attributes are dropped.
  bool keep_attributes = true;
  /// If true, runs of whitespace-only character data are ignored.
  bool skip_whitespace_text = true;
};

/// \brief Parses `input` into a Document (finalized, ready for indexing).
///
/// Multiple top-level elements are allowed (forest). On error, returns a
/// ParseError status with a byte offset and message.
Result<std::unique_ptr<Document>> ParseDocument(std::string_view input,
                                                const ParseOptions& options = {});

/// \brief Parses the file at `path`.
Result<std::unique_ptr<Document>> ParseFile(const std::string& path,
                                            const ParseOptions& options = {});

/// \brief Serializes a document subtree back to XML text (indented).
///
/// Attribute children ("@name") are rendered as attributes. The synthetic
/// "#root" node renders its children as a sequence of top-level elements.
std::string SerializeSubtree(const Document& doc, NodeId id, int indent = 0);

/// Serializes the whole document (all top-level elements).
std::string SerializeDocument(const Document& doc);

/// Escapes &, <, >, ", ' for use in XML text/attribute values.
std::string EscapeXml(std::string_view s);

}  // namespace whirlpool::xml
