// Binary document snapshots: persist a parsed Document and reload it
// without re-parsing (the paper's setting parses + indexes before querying;
// snapshots make the parse step a one-time cost for large corpora).
//
// Format (little-endian):
//   magic "WPLSNAP1" | u32 num_tags | tags (u32 len + bytes)...
//   u32 num_texts | texts (u32 len + bytes)...
//   u32 num_nodes | per non-root node: u32 tag, u32 parent, u32 text-or-~0
// Nodes are stored in arena order (parents always precede children), so
// loading replays AddChild calls and re-finalizes; the reconstructed
// document is structurally identical (verified field-by-field in tests).
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "util/status.h"
#include "xml/document.h"

namespace whirlpool::xml {

/// Writes `doc` (must be finalized) to `out`.
Status WriteSnapshot(const Document& doc, std::ostream& out);

/// Reads a snapshot; returns a finalized document. Corrupt input yields a
/// ParseError (never crashes or over-allocates unchecked).
Result<std::unique_ptr<Document>> ReadSnapshot(std::istream& in);

/// File convenience wrappers.
Status SaveSnapshot(const Document& doc, const std::string& path);
Result<std::unique_ptr<Document>> LoadSnapshot(const std::string& path);

}  // namespace whirlpool::xml
