#include "xml/dewey.h"

namespace whirlpool::xml {

bool DeweyLabel::IsParentOf(const DeweyLabel& other) const {
  if (other.components_.size() != components_.size() + 1) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool DeweyLabel::IsAncestorOf(const DeweyLabel& other) const {
  if (other.components_.size() <= components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

std::string DeweyLabel::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

DeweyIndex::DeweyIndex(const Document& doc) {
  labels_.resize(doc.num_nodes());
  // Nodes were created parent-before-child, so a forward arena pass sees
  // every parent before its children. Track the next sibling ordinal per
  // parent as we go.
  std::vector<uint32_t> next_ordinal(doc.num_nodes(), 1);
  for (NodeId id = 1; id < doc.num_nodes(); ++id) {
    NodeId p = doc.parent(id);
    std::vector<uint32_t> comps = labels_[p].components();
    comps.push_back(next_ordinal[p]++);
    labels_[id] = DeweyLabel(std::move(comps));
  }
}

}  // namespace whirlpool::xml
