#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace whirlpool::xml {

namespace {

// Local variant of the Status macro that works inside a Result-returning
// function.
#define WHIRLPOOL_RETURN_NOT_OK_RESULT(expr)     \
  do {                                           \
    ::whirlpool::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Hand-rolled recursive-descent-free (iterative) XML tokenizer + builder.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options), doc_(std::make_unique<Document>()) {}

  Result<std::unique_ptr<Document>> Run() {
    NodeId current = doc_->root();
    std::vector<NodeId> stack;  // open elements, excluding the forest root
    std::string text_buf;

    while (!AtEnd()) {
      if (Peek() == '<') {
        FlushText(current, &text_buf);
        if (Match("<?")) {
          WHIRLPOOL_RETURN_NOT_OK_RESULT(SkipUntil("?>"));
        } else if (Match("<!--")) {
          WHIRLPOOL_RETURN_NOT_OK_RESULT(SkipUntil("-->"));
        } else if (Match("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_);
          if (end == std::string_view::npos) return Error("unterminated CDATA section");
          text_buf.append(in_.substr(pos_, end - pos_));
          pos_ = end + 3;
        } else if (Match("<!")) {
          // DOCTYPE or other declaration: skip to matching '>' (handles one
          // level of [] internal subset).
          WHIRLPOOL_RETURN_NOT_OK_RESULT(SkipDecl());
        } else if (Match("</")) {
          std::string name;
          WHIRLPOOL_RETURN_NOT_OK_RESULT(ReadName(&name));
          SkipSpace();
          if (!Match(">")) return Error("expected '>' in closing tag");
          if (stack.empty()) return Error("closing tag '" + name + "' with no open element");
          if (doc_->tag_name(stack.back()) != name) {
            return Error("mismatched closing tag '" + name + "', expected '" +
                         doc_->tag_name(stack.back()) + "'");
          }
          stack.pop_back();
          current = stack.empty() ? doc_->root() : stack.back();
        } else {
          if (!Match("<")) return Error("expected '<'");
          std::string name;
          WHIRLPOOL_RETURN_NOT_OK_RESULT(ReadName(&name));
          NodeId elem = doc_->AddChild(current, name);
          // Attributes.
          while (true) {
            SkipSpace();
            if (AtEnd()) return Error("unterminated start tag '" + name + "'");
            if (Peek() == '>' || Peek() == '/') break;
            std::string attr_name, attr_value;
            WHIRLPOOL_RETURN_NOT_OK_RESULT(ReadName(&attr_name));
            SkipSpace();
            if (!Match("=")) return Error("expected '=' after attribute name");
            SkipSpace();
            WHIRLPOOL_RETURN_NOT_OK_RESULT(ReadQuoted(&attr_value));
            if (options_.keep_attributes) {
              NodeId attr = doc_->AddChild(elem, "@" + attr_name);
              doc_->SetText(attr, attr_value);
            }
          }
          if (Match("/>")) {
            // Empty element; nothing opened.
          } else if (Match(">")) {
            stack.push_back(elem);
            current = elem;
          } else {
            return Error("malformed start tag '" + name + "'");
          }
        }
      } else {
        // Character data until next '<'.
        size_t lt = in_.find('<', pos_);
        if (lt == std::string_view::npos) lt = in_.size();
        std::string_view raw = in_.substr(pos_, lt - pos_);
        pos_ = lt;
        WHIRLPOOL_RETURN_NOT_OK_RESULT(DecodeEntities(raw, &text_buf));
      }
    }
    FlushText(current, &text_buf);
    if (!stack.empty()) {
      return Error("unterminated element '" + doc_->tag_name(stack.back()) + "'");
    }
    if (doc_->node(doc_->root()).first_child == kInvalidNode) {
      return Error("document contains no elements");
    }
    doc_->Finalize();
    return std::move(doc_);
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }

  bool Match(std::string_view token) {
    if (in_.size() - pos_ < token.size()) return false;
    if (in_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status SkipUntil(std::string_view terminator) {
    size_t end = in_.find(terminator, pos_);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated construct, expected '" +
                                std::string(terminator) + "' (offset " +
                                std::to_string(pos_) + ")");
    }
    pos_ = end + terminator.size();
    return Status::OK();
  }

  Status SkipDecl() {
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      ++pos_;
      if (c == '[') ++bracket_depth;
      else if (c == ']') --bracket_depth;
      else if (c == '>' && bracket_depth <= 0) return Status::OK();
    }
    return Status::ParseError("unterminated '<!' declaration");
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
  }

  Status ReadName(std::string* out) {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Status::ParseError("expected name at offset " + std::to_string(pos_));
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    out->assign(in_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ReadQuoted(std::string* out) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError("expected quoted value at offset " + std::to_string(pos_));
    }
    char quote = Peek();
    ++pos_;
    size_t end = in_.find(quote, pos_);
    if (end == std::string_view::npos) return Status::ParseError("unterminated quoted value");
    std::string decoded;
    Status st = DecodeEntities(in_.substr(pos_, end - pos_), &decoded);
    if (!st.ok()) return st;
    *out = std::move(decoded);
    pos_ = end + 1;
    return Status::OK();
  }

  Status DecodeEntities(std::string_view raw, std::string* out) {
    size_t i = 0;
    while (i < raw.size()) {
      char c = raw[i];
      if (c != '&') {
        out->push_back(c);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view name = raw.substr(i + 1, semi - i - 1);
      if (name == "lt") out->push_back('<');
      else if (name == "gt") out->push_back('>');
      else if (name == "amp") out->push_back('&');
      else if (name == "quot") out->push_back('"');
      else if (name == "apos") out->push_back('\'');
      else if (!name.empty() && name[0] == '#') {
        int base = 10;
        std::string_view digits = name.substr(1);
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits = digits.substr(1);
        }
        if (digits.empty()) return Status::ParseError("empty character reference");
        unsigned long code = 0;
        for (char d : digits) {
          int v;
          if (d >= '0' && d <= '9') v = d - '0';
          else if (base == 16 && d >= 'a' && d <= 'f') v = d - 'a' + 10;
          else if (base == 16 && d >= 'A' && d <= 'F') v = d - 'A' + 10;
          else return Status::ParseError("bad character reference '&" + std::string(name) + ";'");
          code = code * base + static_cast<unsigned long>(v);
        }
        AppendUtf8(code, out);
      } else {
        return Status::ParseError("unknown entity '&" + std::string(name) + ";'");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  static void AppendUtf8(unsigned long code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  void FlushText(NodeId current, std::string* buf) {
    if (buf->empty()) return;
    bool all_space = true;
    for (char c : *buf) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_space = false;
        break;
      }
    }
    if (!(all_space && options_.skip_whitespace_text) && current != doc_->root()) {
      std::string_view trimmed = TrimWhitespace(*buf);
      if (!trimmed.empty()) {
        // Mixed content: separate runs split by child elements with a space.
        if (doc_->has_text(current)) doc_->AppendText(current, " ");
        doc_->AppendText(current, trimmed);
      }
    }
    buf->clear();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (offset " + std::to_string(pos_) + ")");
  }

  std::string_view in_;
  size_t pos_ = 0;
  ParseOptions options_;
  std::unique_ptr<Document> doc_;
};

#undef WHIRLPOOL_RETURN_NOT_OK_RESULT

}  // namespace

Result<std::unique_ptr<Document>> ParseDocument(std::string_view input,
                                                const ParseOptions& options) {
  Parser p(input, options);
  return p.Run();
}

Result<std::unique_ptr<Document>> ParseFile(const std::string& path,
                                            const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  return ParseDocument(content, options);
}

std::string EscapeXml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeNode(const Document& doc, NodeId id, int depth, std::string* out) {
  const std::string& tag = doc.tag_name(id);
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  out->append(indent);
  out->push_back('<');
  out->append(tag);
  // Attribute children first.
  std::vector<NodeId> element_children;
  for (NodeId c : doc.Children(id)) {
    const std::string& child_tag = doc.tag_name(c);
    if (!child_tag.empty() && child_tag[0] == '@') {
      out->push_back(' ');
      out->append(child_tag.substr(1));
      out->append("=\"");
      out->append(EscapeXml(doc.text(c)));
      out->push_back('"');
    } else {
      element_children.push_back(c);
    }
  }
  std::string_view text = doc.text(id);
  if (element_children.empty() && text.empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (!text.empty()) out->append(EscapeXml(text));
  if (!element_children.empty()) {
    out->push_back('\n');
    for (NodeId c : element_children) SerializeNode(doc, c, depth + 1, out);
    out->append(indent);
  }
  out->append("</");
  out->append(tag);
  out->append(">\n");
}

}  // namespace

std::string SerializeSubtree(const Document& doc, NodeId id, int indent) {
  std::string out;
  if (id == doc.root()) {
    for (NodeId c : doc.Children(id)) SerializeNode(doc, c, indent, &out);
  } else {
    SerializeNode(doc, id, indent, &out);
  }
  return out;
}

std::string SerializeDocument(const Document& doc) {
  return SerializeSubtree(doc, doc.root(), 0);
}

}  // namespace whirlpool::xml
