// In-memory XML data model: a forest of node-labeled trees stored in a flat
// arena, with interned tags, preorder/subtree-end intervals for O(1)
// structural predicates, and parent links. This is the substrate every other
// module (indexes, scoring, the top-k engines) is built on.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace whirlpool::xml {

/// Index of a node in a Document's arena. Node 0 is always the synthetic
/// forest root with tag "#root".
using NodeId = uint32_t;

/// Interned tag identifier (dense, per Document).
using TagId = uint32_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr TagId kInvalidTag = std::numeric_limits<TagId>::max();

/// \brief Interns tag strings to dense ids.
class TagPool {
 public:
  /// Returns the id for `tag`, creating it if needed.
  TagId Intern(std::string_view tag);

  /// Returns the id for `tag` or kInvalidTag if never interned.
  TagId Lookup(std::string_view tag) const;

  /// The string for an id. Precondition: id < size().
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

/// \brief One XML node. Element nodes carry a tag; text content is stored on
/// the element that directly contains it (concatenated). Attributes are
/// modeled as child elements tagged "@name" holding the value as text, so
/// the query layer sees one uniform tree.
struct Node {
  TagId tag = kInvalidTag;
  NodeId parent = kInvalidNode;
  NodeId first_child = kInvalidNode;
  NodeId next_sibling = kInvalidNode;
  /// Preorder rank (assigned by Document::Finalize); document order.
  uint32_t order = 0;
  /// Largest preorder rank in this node's subtree (inclusive).
  uint32_t subtree_end = 0;
  /// Depth; the synthetic root has depth 0.
  uint32_t depth = 0;
  /// Index into Document's text table, or kNoText.
  uint32_t text = kNoText;

  static constexpr uint32_t kNoText = std::numeric_limits<uint32_t>::max();
};

/// \brief An XML document (or forest). Build with AddChild()/SetText(), then
/// call Finalize() exactly once before using structural predicates or
/// handing the document to an index.
class Document {
 public:
  Document();

  /// The synthetic forest root (tag "#root", depth 0).
  NodeId root() const { return 0; }

  /// Appends a new element child of `parent` with tag `tag`. Children must
  /// be added in document order. Returns the new node's id.
  NodeId AddChild(NodeId parent, std::string_view tag);

  /// Sets (replaces) the text content of `node`.
  void SetText(NodeId node, std::string_view text);

  /// Appends to the text content of `node` (used by the parser for mixed
  /// content split by child elements).
  void AppendText(NodeId node, std::string_view text);

  /// Assigns preorder ranks, subtree ends and depths. Must be called once
  /// after construction and before structural predicates are evaluated.
  void Finalize();

  bool finalized() const { return finalized_; }

  // -- Accessors ------------------------------------------------------------

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  TagId tag(NodeId id) const { return nodes_[id].tag; }
  const std::string& tag_name(NodeId id) const { return tags_.Name(nodes_[id].tag); }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }

  /// Text directly contained in `node` ("" if none).
  std::string_view text(NodeId id) const;

  /// True if `node` has any direct text content.
  bool has_text(NodeId id) const { return nodes_[id].text != Node::kNoText; }

  TagPool& tags() { return tags_; }
  const TagPool& tags() const { return tags_; }

  // -- Structural predicates (require Finalize) -----------------------------

  /// parent/child: true iff `a` is the parent of `b`.
  bool IsChild(NodeId a, NodeId b) const { return nodes_[b].parent == a; }

  /// ancestor/descendant: true iff `a` is a proper ancestor of `b`.
  bool IsDescendant(NodeId a, NodeId b) const {
    return nodes_[a].order < nodes_[b].order && nodes_[b].order <= nodes_[a].subtree_end;
  }

  /// ancestor-or-self.
  bool IsSelfOrDescendant(NodeId a, NodeId b) const {
    return nodes_[a].order <= nodes_[b].order && nodes_[b].order <= nodes_[a].subtree_end;
  }

  // -- Iteration -------------------------------------------------------------

  /// Children of `id` in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// All descendants of `id` in document order (excluding `id`).
  std::vector<NodeId> Descendants(NodeId id) const;

  /// Total bytes of text + tag storage; a rough size-on-disk proxy.
  size_t ApproxContentBytes() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  TagPool tags_;
  std::vector<NodeId> last_child_;  // build-time helper, cleared by Finalize
  bool finalized_ = false;
};

}  // namespace whirlpool::xml
