// XML tf*idf scoring (paper Sec 4) and its engine-facing form.
//
// A query decomposes into component predicates p(q0, qi) linking the
// returned node to every other query node (Def 4.1). Relaxation gives each
// predicate a ladder of levels, most specific first:
//   kExact          — the original composed axis chain root -> qi holds
//   kEdgeGeneralized— the all-ad version of the chain holds (every pc
//                     generalized, intermediates still present)
//   kPromoted       — only ad(root, qi) holds (subtree promotion closure)
//   kDeleted        — qi is absent (leaf deletion); contributes 0
// idf is computed per level (Def 4.2 against the level's predicate); more
// relaxed levels are satisfied by no fewer q0 nodes, so idf never increases
// down the ladder — a binding scores by the most specific level it satisfies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/tag_index.h"
#include "query/tree_pattern.h"
#include "util/rng.h"

namespace whirlpool::score {

using index::TagIndex;
using query::ChainStep;
using query::TreePattern;
using xml::NodeId;

/// Relaxation level a binding satisfies for its component predicate.
enum class MatchLevel : uint8_t {
  kExact = 0,
  kEdgeGeneralized = 1,
  kPromoted = 2,
  kDeleted = 3,
};

const char* MatchLevelName(MatchLevel level);

/// \brief Structural chain matching between two data nodes.
///
/// The node path from `from` down to `to` in a tree is unique; the chain of
/// pattern steps must embed into that path order-preservingly (pc consumes
/// exactly the next path node, ad skips any number first). Tags and value
/// predicates on steps must match.
bool MatchChainExact(const TagIndex& index, NodeId from, NodeId to,
                     const std::vector<ChainStep>& steps);

/// Same, but with every axis generalized to ad.
bool MatchChainAllAd(const TagIndex& index, NodeId from, NodeId to,
                     const std::vector<ChainStep>& steps);

/// Most specific level that `to` satisfies for the chain from `from`.
/// Precondition: `to` is a descendant of `from` with the chain's final tag
/// (so kPromoted always holds); returns kExact/kEdgeGeneralized/kPromoted.
MatchLevel ClassifyBinding(const TagIndex& index, NodeId from, NodeId to,
                           const std::vector<ChainStep>& steps);

/// How per-predicate scores are normalized (paper Sec 6.2.2).
enum class Normalization : uint8_t {
  /// Raw idf values.
  kNone,
  /// Each predicate normalized independently into [0,1] (exact level = 1).
  /// Final scores spread out; pruning kicks in early ("sparse").
  kSparse,
  /// One global normalization across all predicates; idf skew is preserved
  /// and final scores cluster ("dense").
  kDense,
};

/// \brief Scores for one component predicate at each relaxation level.
struct PredicateScores {
  /// Contribution at kExact / kEdgeGeneralized / kPromoted (kDeleted = 0).
  double at_level[3] = {0, 0, 0};
  /// Raw counts of q0 nodes satisfying the level predicate (for reporting).
  uint64_t satisfying[3] = {0, 0, 0};

  double Contribution(MatchLevel level) const {
    return level == MatchLevel::kDeleted ? 0.0 : at_level[static_cast<int>(level)];
  }
  double MaxContribution() const { return at_level[0]; }
};

/// \brief The per-query scoring model used by the engines: one
/// PredicateScores per non-root pattern node, indexed by pattern node id
/// (entry 0, the root, is all zeros).
class ScoringModel {
 public:
  ScoringModel() = default;

  /// Computes idf-based scores from the data (Def 4.2) at all three levels
  /// and applies `norm`. Counting walks every root candidate once per
  /// predicate; done once per (document, query).
  static ScoringModel ComputeTfIdf(const TagIndex& index, const TreePattern& pattern,
                                   Normalization norm);

  /// Synthetic scores drawn from `rng`: exact level uniform in (0,1], then
  /// scaled per normalization kind. kSparse draws are independent per
  /// predicate; kDense makes one predicate dominate (skew), clustering final
  /// scores. Used by tests and score-sensitivity benches.
  static ScoringModel Synthetic(const TreePattern& pattern, whirlpool::Rng* rng,
                                Normalization norm);

  /// Builds a model from explicit per-level tables (tests, Figure-3 bench).
  static ScoringModel FromTables(std::vector<PredicateScores> tables);

  size_t size() const { return tables_.size(); }
  const PredicateScores& predicate(int pattern_node) const {
    return tables_[static_cast<size_t>(pattern_node)];
  }

  /// Sum of exact-level contributions over all non-root nodes: the highest
  /// score any answer can have.
  double MaxTotalScore() const;

  std::string ToString(const TreePattern& pattern) const;

 private:
  std::vector<PredicateScores> tables_;
};

/// \brief Answer-level tf*idf scorer (Def 4.4): score(n) = sum over
/// component predicates of idf(p) * tf(p, n), computed against the ORIGINAL
/// (unrelaxed) query. Used to validate the scoring function and by the
/// examples to rank exact answers.
class TfIdfScorer {
 public:
  TfIdfScorer(const TagIndex& index, const TreePattern& pattern);

  /// idf of the component predicate for pattern node `i` (exact level).
  double Idf(int pattern_node) const;

  /// tf of pattern node `i`'s predicate against root candidate `n`
  /// (Def 4.3: number of distinct witnesses).
  uint64_t Tf(int pattern_node, NodeId n) const;

  /// Def 4.4 score of root candidate `n`.
  double Score(NodeId n) const;

 private:
  const TagIndex* index_;
  const TreePattern* pattern_;
  std::vector<double> idf_;                       // per pattern node
  std::vector<std::vector<ChainStep>> chains_;    // per pattern node
};

}  // namespace whirlpool::score
