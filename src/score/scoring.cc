#include "score/scoring.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "query/matcher.h"

namespace whirlpool::score {

const char* MatchLevelName(MatchLevel level) {
  switch (level) {
    case MatchLevel::kExact: return "exact";
    case MatchLevel::kEdgeGeneralized: return "edge-gen";
    case MatchLevel::kPromoted: return "promoted";
    case MatchLevel::kDeleted: return "deleted";
  }
  return "?";
}

namespace {

/// Collects the unique node path from `from` (exclusive) down to `to`
/// (inclusive), in top-down order. Returns false if `to` is not a
/// descendant of `from`.
bool CollectPath(const xml::Document& doc, NodeId from, NodeId to,
                 std::vector<NodeId>* path) {
  path->clear();
  NodeId cur = to;
  while (cur != xml::kInvalidNode && cur != from) {
    path->push_back(cur);
    cur = doc.parent(cur);
  }
  if (cur != from) return false;
  std::reverse(path->begin(), path->end());
  return true;
}

bool StepSatisfied(const xml::Document& doc, const ChainStep& step, NodeId n) {
  if (step.tag == index::kWildcardTag) {
    if (!index::IsElementTagName(doc.tag_name(n))) return false;
  } else if (doc.tag_name(n) != step.tag) {
    return false;
  }
  if (step.value && doc.text(n) != *step.value) return false;
  return true;
}

/// Order-preserving embedding of `steps` into `path` where the last step
/// must land on the last path node. pc consumes exactly the next node; ad
/// consumes one node after skipping any number. `force_ad` generalizes all
/// axes.
bool MatchSteps(const xml::Document& doc, const std::vector<ChainStep>& steps,
                const std::vector<NodeId>& path, bool force_ad) {
  const size_t m = steps.size();
  const size_t t = path.size();
  if (m == 0 || t == 0 || m > t) return false;
  // reach[j] = true if steps[0..i) can consume path[0..j). Rolling DP.
  std::vector<char> reach(t + 1, 0);
  reach[0] = 1;
  std::vector<char> next(t + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    std::fill(next.begin(), next.end(), 0);
    const ChainStep& step = steps[i];
    const bool is_pc = !force_ad && step.axis == query::Axis::kChild;
    for (size_t j = 0; j < t; ++j) {
      if (!reach[j]) continue;
      if (is_pc) {
        if (StepSatisfied(doc, step, path[j])) next[j + 1] = 1;
      } else {
        // ad: match at any position jj >= j.
        for (size_t jj = j; jj < t; ++jj) {
          if (StepSatisfied(doc, step, path[jj])) next[jj + 1] = 1;
        }
      }
    }
    reach.swap(next);
  }
  return reach[t] != 0;
}

}  // namespace

bool MatchChainExact(const TagIndex& index, NodeId from, NodeId to,
                     const std::vector<ChainStep>& steps) {
  std::vector<NodeId> path;
  if (!CollectPath(index.doc(), from, to, &path)) return false;
  return MatchSteps(index.doc(), steps, path, /*force_ad=*/false);
}

bool MatchChainAllAd(const TagIndex& index, NodeId from, NodeId to,
                     const std::vector<ChainStep>& steps) {
  std::vector<NodeId> path;
  if (!CollectPath(index.doc(), from, to, &path)) return false;
  return MatchSteps(index.doc(), steps, path, /*force_ad=*/true);
}

MatchLevel ClassifyBinding(const TagIndex& index, NodeId from, NodeId to,
                           const std::vector<ChainStep>& steps) {
  std::vector<NodeId> path;
  if (!CollectPath(index.doc(), from, to, &path)) return MatchLevel::kPromoted;
  if (MatchSteps(index.doc(), steps, path, /*force_ad=*/false)) return MatchLevel::kExact;
  if (MatchSteps(index.doc(), steps, path, /*force_ad=*/true)) {
    return MatchLevel::kEdgeGeneralized;
  }
  return MatchLevel::kPromoted;
}

// ---------------------------------------------------------------------------
// ScoringModel
// ---------------------------------------------------------------------------

namespace {

double IdfFromCounts(uint64_t total_roots, uint64_t satisfying) {
  // Def 4.2: log(|q0 nodes| / |q0 nodes satisfying p|). A predicate no q0
  // node satisfies can never contribute to any answer; clamp to the largest
  // meaningful value so the ladder stays monotone.
  const double num = static_cast<double>(std::max<uint64_t>(1, total_roots));
  const double den = satisfying == 0 ? 0.5 : static_cast<double>(satisfying);
  return std::log(num / den);
}

}  // namespace

ScoringModel ScoringModel::ComputeTfIdf(const TagIndex& index, const TreePattern& pattern,
                                        Normalization norm) {
  ScoringModel model;
  model.tables_.resize(pattern.size());
  std::vector<NodeId> roots = query::RootCandidates(index, pattern);
  const uint64_t total_roots = roots.size();

  for (size_t qi = 1; qi < pattern.size(); ++qi) {
    const query::PatternNode& pn = pattern.node(static_cast<int>(qi));
    std::vector<ChainStep> chain = pattern.Chain(pattern.root(), static_cast<int>(qi));
    uint64_t sat[3] = {0, 0, 0};
    {
      for (NodeId r : roots) {
        std::vector<NodeId> cands = index.Candidates(r, pn.tag, pn.value);
        bool any_exact = false, any_edge = false, any_prom = !cands.empty();
        for (NodeId c : cands) {
          MatchLevel level = ClassifyBinding(index, r, c, chain);
          if (level == MatchLevel::kExact) {
            any_exact = any_edge = true;
            break;  // exact implies edge-gen implies promoted
          }
          if (level == MatchLevel::kEdgeGeneralized) any_edge = true;
        }
        sat[0] += any_exact ? 1 : 0;
        sat[1] += any_edge ? 1 : 0;
        sat[2] += any_prom ? 1 : 0;
      }
    }
    PredicateScores& ps = model.tables_[qi];
    for (int l = 0; l < 3; ++l) {
      ps.satisfying[l] = sat[l];
      ps.at_level[l] = IdfFromCounts(total_roots, sat[l]);
    }
    // The ladder must be monotone non-increasing (exact is the most
    // selective). Counts guarantee sat[0] <= sat[1] <= sat[2], hence idf is
    // already monotone; enforce anyway against clamping artifacts.
    ps.at_level[1] = std::min(ps.at_level[1], ps.at_level[0]);
    ps.at_level[2] = std::min(ps.at_level[2], ps.at_level[1]);
  }

  // Normalization (Sec 6.2.2).
  if (norm == Normalization::kSparse) {
    for (size_t qi = 1; qi < model.tables_.size(); ++qi) {
      PredicateScores& ps = model.tables_[qi];
      double top = ps.at_level[0];
      if (top <= 0) {
        // Degenerate: every root satisfies even the exact predicate; weight
        // the predicate uniformly so it still distinguishes deletion.
        ps.at_level[0] = 1.0;
        ps.at_level[1] = ps.at_level[1] <= 0 ? 1.0 : ps.at_level[1];
        ps.at_level[2] = ps.at_level[2] <= 0 ? 1.0 : ps.at_level[2];
        ps.at_level[1] = std::min(ps.at_level[1], 1.0);
        ps.at_level[2] = std::min(ps.at_level[2], ps.at_level[1]);
        continue;
      }
      for (double& v : ps.at_level) v = std::max(0.0, v / top);
    }
  } else if (norm == Normalization::kDense) {
    double global = 0.0;
    for (size_t qi = 1; qi < model.tables_.size(); ++qi) {
      global = std::max(global, model.tables_[qi].at_level[0]);
    }
    if (global > 0) {
      for (size_t qi = 1; qi < model.tables_.size(); ++qi) {
        for (double& v : model.tables_[qi].at_level) v = std::max(0.0, v / global);
      }
    }
  } else {
    for (size_t qi = 1; qi < model.tables_.size(); ++qi) {
      for (double& v : model.tables_[qi].at_level) v = std::max(0.0, v);
    }
  }
  return model;
}

ScoringModel ScoringModel::Synthetic(const TreePattern& pattern, whirlpool::Rng* rng,
                                     Normalization norm) {
  ScoringModel model;
  model.tables_.resize(pattern.size());
  const size_t n = pattern.size();
  for (size_t qi = 1; qi < n; ++qi) {
    PredicateScores& ps = model.tables_[qi];
    double exact;
    if (norm == Normalization::kDense) {
      // Skewed: the first predicate dominates; the rest contribute little,
      // so final scores cluster.
      exact = qi == 1 ? 1.0 : 0.05 + 0.05 * rng->NextDouble();
    } else {
      // Uniformish per-predicate weights in (0.5, 1].
      exact = 0.5 + 0.5 * rng->NextDouble();
    }
    double edge = exact * (0.5 + 0.4 * rng->NextDouble());
    double prom = edge * (0.3 + 0.4 * rng->NextDouble());
    ps.at_level[0] = exact;
    ps.at_level[1] = edge;
    ps.at_level[2] = prom;
  }
  return model;
}

ScoringModel ScoringModel::FromTables(std::vector<PredicateScores> tables) {
  ScoringModel model;
  model.tables_ = std::move(tables);
  return model;
}

double ScoringModel::MaxTotalScore() const {
  double sum = 0.0;
  for (size_t i = 1; i < tables_.size(); ++i) sum += tables_[i].MaxContribution();
  return sum;
}

std::string ScoringModel::ToString(const TreePattern& pattern) const {
  std::ostringstream os;
  for (size_t i = 1; i < tables_.size(); ++i) {
    const PredicateScores& ps = tables_[i];
    os << "p(" << pattern.node(0).tag << ", " << pattern.node(static_cast<int>(i)).tag
       << "): exact=" << ps.at_level[0] << " edge-gen=" << ps.at_level[1]
       << " promoted=" << ps.at_level[2] << " (sat " << ps.satisfying[0] << "/"
       << ps.satisfying[1] << "/" << ps.satisfying[2] << ")\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// TfIdfScorer (Def 4.4, original query)
// ---------------------------------------------------------------------------

TfIdfScorer::TfIdfScorer(const TagIndex& index, const TreePattern& pattern)
    : index_(&index), pattern_(&pattern) {
  idf_.resize(pattern.size(), 0.0);
  chains_.resize(pattern.size());
  std::vector<NodeId> roots = query::RootCandidates(index, pattern);
  const uint64_t total_roots = roots.size();
  const auto& doc = index.doc();
  (void)doc;
  for (size_t qi = 1; qi < pattern.size(); ++qi) {
    chains_[qi] = pattern.Chain(pattern.root(), static_cast<int>(qi));
    const query::PatternNode& pn = pattern.node(static_cast<int>(qi));
    uint64_t sat = 0;
    for (NodeId r : roots) {
      for (NodeId c : index.Candidates(r, pn.tag, pn.value)) {
        if (MatchChainExact(index, r, c, chains_[qi])) {
          ++sat;
          break;
        }
      }
    }
    idf_[qi] = IdfFromCounts(total_roots, sat);
  }
}

double TfIdfScorer::Idf(int pattern_node) const {
  return idf_[static_cast<size_t>(pattern_node)];
}

uint64_t TfIdfScorer::Tf(int pattern_node, NodeId n) const {
  const query::PatternNode& pn = pattern_->node(pattern_node);
  std::vector<NodeId> cands = index_->Candidates(n, pn.tag, pn.value);
  uint64_t tf = 0;
  for (NodeId c : cands) {
    if (MatchChainExact(*index_, n, c, chains_[static_cast<size_t>(pattern_node)])) ++tf;
  }
  return tf;
}

double TfIdfScorer::Score(NodeId n) const {
  double s = 0.0;
  for (size_t qi = 1; qi < pattern_->size(); ++qi) {
    s += idf_[qi] * static_cast<double>(Tf(static_cast<int>(qi), n));
  }
  return s;
}

}  // namespace whirlpool::score
