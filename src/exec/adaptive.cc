#include "exec/adaptive.h"

#include <algorithm>
#include <thread>

#include "exec/tracer.h"
#include "util/failpoint.h"

namespace whirlpool::exec {

int AutoTopKShards(int worker_threads) {
  if (worker_threads <= 1) return 1;
  int concurrent = worker_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && static_cast<int>(hw) < concurrent) {
    concurrent = static_cast<int>(hw);
  }
  // 2x oversubscription so hash collisions between concurrently-updated
  // roots stay rare, as a power of two (cheap modulo distribution), rounded
  // up to whole 64-byte cache lines of Shard pointers (8 per line).
  int shards = 1;
  while (shards < 2 * concurrent) shards <<= 1;
  shards = std::max(shards, 8);
  return std::min(shards, 64);
}

ResolvedSync ResolveSyncKnobs(const ExecOptions& options, int worker_threads) {
  ResolvedSync r;
  r.shards_auto = options.topk_shards == 0;
  r.topk_shards =
      r.shards_auto ? AutoTopKShards(worker_threads) : options.topk_shards;
  r.drain_adaptive = options.queue_drain_batch == 0;
  r.drain_max = r.drain_adaptive ? kAutoDrainMax : options.queue_drain_batch;
  return r;
}

uint64_t DrainGovernor::BeginPop() {
  if (!adaptive_) return 0;
  const bool open_new = tick_++ % kDrainSamplePeriod == 0;
  uint64_t now = 0;
  if (sample_open_) {
    now = MonotonicNs();
    sample_open_ = false;
    RecordSample(pending_lock_wait_ns_, now - delivered_ns_);
  }
  if (!open_new) return 0;
  return now != 0 ? now : MonotonicNs();
}

void DrainGovernor::LockAcquired(uint64_t t0) {
  pending_lock_wait_ns_ = MonotonicNs() - t0;
}

void DrainGovernor::BatchDelivered() {
  delivered_ns_ = MonotonicNs();
  sample_open_ = true;
}

void DrainGovernor::RecordSample(uint64_t lock_wait_ns, uint64_t process_ns) {
  // Chaos site on the sampled (1-in-kDrainSamplePeriod) control path:
  // perturbs the EWMA timing the MIMD rule feeds on without touching the
  // unsampled fast path.
  WHIRLPOOL_FAILPOINT(failpoint::sites::kAdaptiveSample);
  const uint64_t n = samples_.load(std::memory_order_relaxed) + 1;
  samples_.store(n, std::memory_order_relaxed);
  const auto blend = [n](std::atomic<double>* ewma, uint64_t sample) {
    const double prev = ewma->load(std::memory_order_relaxed);
    const double next =
        n == 1 ? static_cast<double>(sample)
               : prev + kDrainEwmaAlpha * (static_cast<double>(sample) - prev);
    ewma->store(next, std::memory_order_relaxed);
    return next;
  };
  const double lock_ewma = blend(&lock_wait_ewma_ns_, lock_wait_ns);
  const double process_ewma = blend(&process_ewma_ns_, process_ns);
  if (n < kDrainWarmupSamples) return;

  const double ratio = lock_ewma / std::max(process_ewma, 1.0);
  const int cur = drain_.load(std::memory_order_relaxed);
  int next = cur;
  if (ratio > kDrainTargetRatio) {
    next = std::min(cur * 2, max_drain_);
  } else if (ratio < kDrainLowWater &&
             process_ewma > static_cast<double>(kDrainNarrowFloorNs)) {
    next = std::max(cur / 2, 1);
  }
  if (next != cur) {
    drain_.store(next, std::memory_order_relaxed);
    adjustments_->fetch_add(1, std::memory_order_relaxed);
  }
}

DrainController::DrainController(const ExecOptions& options,
                                 const ResolvedSync& resolved)
    : resolved_(resolved),
      // Legacy static split (see whirlpool_m.cc): under a simulated per-op
      // cost, multi-entry server drains only defer fresher matches and slow
      // pruning; router work is cheap regardless, so it always batches.
      static_server_drain_(options.op_cost_seconds > 0 ? 1 : resolved.drain_max),
      static_router_drain_(resolved.drain_max) {}

DrainGovernor* DrainController::Register(int queue_id) {
  const bool router = queue_id == kRouterQueue;
  const int initial = resolved_.drain_adaptive
                          ? (router ? resolved_.drain_max : 1)
                          : (router ? static_router_drain_ : static_server_drain_);
  MutexLock lock(&mu_);
  governors_.push_back(std::unique_ptr<DrainGovernor>(
      new DrainGovernor(queue_id, resolved_.drain_adaptive, initial,
                        resolved_.drain_max, &adjustments_)));
  // The returned pointer deliberately outlives the critical section:
  // governors_ is append-only and owns each DrainGovernor through a
  // unique_ptr (pointer-stable across push_back), and DrainGovernor's own
  // state is internally synchronized (atomics + sampling), so the caller
  // never touches mu_-guarded state through it.
  return governors_.back().get();  // wp-lint: disable(WP010)
}

void DrainController::ExportTo(AdaptiveSnapshot* out) const {
  out->drain_adaptive = resolved_.drain_adaptive;
  out->shards_auto = resolved_.shards_auto;
  out->chosen_shards = resolved_.topk_shards;
  out->drain_max = resolved_.drain_max;
  out->adjustments = adjustments_.load(std::memory_order_relaxed);
  MutexLock lock(&mu_);
  out->consumers.clear();
  out->consumers.reserve(governors_.size());
  for (const auto& gov : governors_) {
    AdaptiveSnapshot::ConsumerDrain c;
    c.queue = gov->queue_id();
    c.drain = gov->drain();
    c.lock_wait_ewma_us = gov->lock_wait_ewma_ns() / 1e3;
    c.process_ewma_us = gov->process_ewma_ns() / 1e3;
    c.samples = gov->samples();
    out->consumers.push_back(c);
  }
}

}  // namespace whirlpool::exec
