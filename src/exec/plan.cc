#include "exec/plan.h"

#include <algorithm>

#include "query/matcher.h"

namespace whirlpool::exec {

Result<QueryPlan> QueryPlan::Build(const TagIndex& index, const TreePattern& pattern,
                                   ScoringModel scoring, bool compute_estimates) {
  if (pattern.size() < 1) return Status::InvalidArgument("empty pattern");
  if (pattern.size() > static_cast<size_t>(kMaxServers) + 1) {
    // The per-match visited mask and the per-server metrics are sized for
    // kMaxServers; a larger pattern would silently corrupt both.
    return Status::InvalidArgument(
        "pattern has " + std::to_string(pattern.size()) + " nodes; at most " +
        std::to_string(kMaxServers + 1) + " (root + " +
        std::to_string(kMaxServers) + " servers) are supported");
  }
  if (scoring.size() != pattern.size()) {
    return Status::InvalidArgument("scoring model size does not match pattern size");
  }
  QueryPlan plan;
  plan.index_ = &index;
  plan.pattern_ = &pattern;
  plan.scoring_ = std::move(scoring);

  const auto& doc = index.doc();
  const int n = static_cast<int>(pattern.size());
  plan.servers_.resize(static_cast<size_t>(n - 1));
  plan.max_contribution_.resize(static_cast<size_t>(n - 1));

  for (int qi = 1; qi < n; ++qi) {
    ServerSpec& s = plan.servers_[static_cast<size_t>(qi - 1)];
    const query::PatternNode& pn = pattern.node(qi);
    s.pattern_node = qi;
    s.tag = doc.tags().Lookup(pn.tag);  // may be kInvalidTag: no candidates
    s.wildcard = pn.tag == index::kWildcardTag;
    s.value = pn.value;
    s.chain_from_root = pattern.Chain(pattern.root(), qi);
    s.pattern_parent = pn.parent;
    s.axis_from_parent = pn.axis;
    s.pattern_children = pn.children;

    const score::PredicateScores& ps = plan.scoring_.predicate(qi);
    plan.max_contribution_[static_cast<size_t>(qi - 1)] = ps.MaxContribution();

    // Level distribution estimate from the idf satisfaction counts when the
    // scoring model carries them, else uniform-ish defaults.
    const uint64_t s0 = ps.satisfying[0], s1 = ps.satisfying[1], s2 = ps.satisfying[2];
    if (s2 > 0) {
      s.level_prob[0] = static_cast<double>(s0) / static_cast<double>(s2);
      s.level_prob[1] = static_cast<double>(s1 - s0) / static_cast<double>(s2);
      s.level_prob[2] = static_cast<double>(s2 - s1) / static_cast<double>(s2);
    } else {
      s.level_prob[0] = 0.6;
      s.level_prob[1] = 0.25;
      s.level_prob[2] = 0.15;
    }
    s.expected_contribution = 0.0;
    for (int l = 0; l < 3; ++l) {
      s.expected_contribution += s.level_prob[l] * ps.at_level[l];
    }
  }

  if (compute_estimates) {
    std::vector<NodeId> roots = query::RootCandidates(index, pattern);
    // Sample at most 512 roots for the fan-out estimate.
    const size_t stride = std::max<size_t>(1, roots.size() / 512);
    size_t sampled = 0;
    std::vector<double> totals(static_cast<size_t>(n - 1), 0.0);
    for (size_t i = 0; i < roots.size(); i += stride) {
      ++sampled;
      for (int srv = 0; srv < n - 1; ++srv) {
        totals[static_cast<size_t>(srv)] +=
            static_cast<double>(plan.CandidateCount(roots[i], srv));
      }
    }
    for (int srv = 0; srv < n - 1; ++srv) {
      plan.servers_[static_cast<size_t>(srv)].avg_candidates_per_root =
          sampled == 0 ? 0.0 : totals[static_cast<size_t>(srv)] / static_cast<double>(sampled);
    }
  } else {
    for (auto& s : plan.servers_) s.avg_candidates_per_root = 1.0;
  }

  return plan;
}

double QueryPlan::RemainingMax(uint64_t visited_mask) const {
  double sum = 0.0;
  for (int s = 0; s < num_servers(); ++s) {
    if (!((visited_mask >> s) & 1u)) sum += max_contribution_[static_cast<size_t>(s)];
  }
  return sum;
}

double QueryPlan::Contribution(int s, NodeId node, MatchLevel level) const {
  if (score_override_) return score_override_(s, node, level);
  return scoring_.predicate(servers_[static_cast<size_t>(s)].pattern_node)
      .Contribution(level);
}

uint64_t QueryPlan::CandidateCount(NodeId root, int s) const {
  const ServerSpec& spec = servers_[static_cast<size_t>(s)];
  if (spec.wildcard) {
    return index_->CountCandidates(root, index::kWildcardTag, spec.value);
  }
  if (spec.tag == xml::kInvalidTag) return 0;
  return spec.value
             ? index_->DescendantsWithTagValue(root, spec.tag, *spec.value).size()
             : index_->CountDescendantsWithTag(root, spec.tag);
}

double QueryPlan::RemainingSumMax(NodeId root, uint64_t visited_mask) const {
  double sum = 0.0;
  for (int s = 0; s < num_servers(); ++s) {
    if ((visited_mask >> s) & 1u) continue;
    sum += static_cast<double>(CandidateCount(root, s)) *
           max_contribution_[static_cast<size_t>(s)];
  }
  return sum;
}

uint64_t NoPruningTupleCount(const QueryPlan& plan, const std::vector<int>& order) {
  const auto& idx = plan.index();
  uint64_t total = 0;
  for (xml::NodeId root : query::RootCandidates(idx, plan.pattern())) {
    total += 1;  // the root match itself
    uint64_t wave = 1;
    for (int s : order) {
      const ServerSpec& spec = plan.server(s);
      uint64_t cands = 0;
      if (spec.tag != xml::kInvalidTag) {
        cands = spec.value
                    ? idx.DescendantsWithTagValue(root, spec.tag, *spec.value).size()
                    : idx.CountDescendantsWithTag(root, spec.tag);
      }
      wave *= std::max<uint64_t>(1, cands);
      total += wave;
    }
  }
  return total;
}

void QueryPlan::SetScoreOverride(ScoreOverride fn, std::vector<double> per_server_max) {
  score_override_ = std::move(fn);
  max_contribution_ = std::move(per_server_max);
  for (size_t srv = 0; srv < servers_.size(); ++srv) {
    servers_[srv].expected_contribution = max_contribution_[srv] * 0.6;
  }
}

}  // namespace whirlpool::exec
