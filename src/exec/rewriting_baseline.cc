#include "exec/rewriting_baseline.h"

#include <algorithm>

#include "exec/adaptive.h"
#include "exec/tracer.h"
#include "query/matcher.h"
#include "score/scoring.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

namespace {

using score::MatchLevel;

/// One relaxed query: a level per non-root pattern node plus its total
/// score (the score every exact match of this relaxed query receives).
struct RelaxedQuery {
  std::vector<MatchLevel> levels;  // index = pattern node, [0] unused
  double score = 0.0;
};

/// Materializes the relaxed query as a TreePattern whose exact matches are
/// precisely the roots where every node attains (at least) its assigned
/// level: per node, attach the corresponding chain variant directly under
/// the root (levels are root-relative and independent — Def 4.1).
query::TreePattern MaterializePattern(const query::TreePattern& original,
                                      const RelaxedQuery& rq) {
  query::TreePattern out =
      query::TreePattern::Root(original.node(0).tag, original.node(0).value);
  for (int qi = 1; qi < static_cast<int>(original.size()); ++qi) {
    const MatchLevel level = rq.levels[static_cast<size_t>(qi)];
    if (level == MatchLevel::kDeleted) continue;
    const auto chain = original.Chain(0, qi);
    int parent = 0;
    if (level == MatchLevel::kPromoted) {
      // Only the node itself, attached with ad.
      const auto& last = chain.back();
      out.AddNode(parent, query::Axis::kDescendant, last.tag, last.value);
      continue;
    }
    for (const auto& step : chain) {
      const query::Axis axis =
          level == MatchLevel::kEdgeGeneralized ? query::Axis::kDescendant : step.axis;
      parent = out.AddNode(parent, axis, step.tag, step.value);
    }
  }
  return out;
}

}  // namespace

Result<TopKResult> RunRewritingBaseline(const QueryPlan& plan, const ExecOptions& options,
                                        RewritingStats* stats) {
  WHIRLPOOL_RETURN_NOT_OK(ValidateOptions(options));
  if (options.semantics != MatchSemantics::kRelaxed ||
      options.aggregation != ScoreAggregation::kMaxTuple) {
    return Status::Unsupported(
        "the rewriting baseline implements relaxed semantics with max-tuple "
        "aggregation only");
  }
  const query::TreePattern& pattern = plan.pattern();
  const int n = static_cast<int>(pattern.size());
  if (n - 1 > 10) {
    return Status::Unsupported(
        "rewriting enumeration is exponential; refusing more than 10 non-root "
        "nodes (" +
        std::to_string(n - 1) + " given)");
  }

  Stopwatch wall;
  ExecMetrics metrics;
  const Instrumentation ins(options.tracer, &metrics, options.collect_latencies);
  const uint64_t query_start = ins.Begin();

  // Enumerate all 4^(n-1) level assignments with their scores.
  std::vector<RelaxedQuery> queries;
  const uint64_t total =
      n <= 1 ? 1 : (1ull << (2 * static_cast<uint64_t>(n - 1)));  // 4^(n-1)
  queries.reserve(total);
  for (uint64_t code = 0; code < total; ++code) {
    RelaxedQuery rq;
    rq.levels.assign(static_cast<size_t>(n), MatchLevel::kDeleted);
    uint64_t c = code;
    for (int qi = 1; qi < n; ++qi) {
      rq.levels[static_cast<size_t>(qi)] = static_cast<MatchLevel>(c & 3);
      c >>= 2;
      rq.score += plan.scoring()
                      .predicate(qi)
                      .Contribution(rq.levels[static_cast<size_t>(qi)]);
    }
    queries.push_back(std::move(rq));
  }
  // Best-score-first: the first relaxed query that matches a root gives the
  // root its (maximal) score, and once k roots are found every remaining
  // query can only score lower.
  std::stable_sort(queries.begin(), queries.end(),
                   [](const RelaxedQuery& a, const RelaxedQuery& b) {
                     return a.score > b.score;
                   });

  if (stats != nullptr) {
    stats->queries_enumerated = total;
    stats->queries_evaluated = 0;
    stats->candidate_checks = 0;
  }

  const auto& idx = plan.index();
  // Single-threaded: topk_shards = 0 ("auto") resolves to one stripe.
  const ResolvedSync sync = ResolveSyncKnobs(options, /*worker_threads=*/1);
  TopKSet topk(options.k, /*update_partials=*/true, sync.topk_shards);
  std::unordered_map<xml::NodeId, char> assigned;
  const std::vector<xml::NodeId> roots = query::RootCandidates(idx, pattern);

  for (const RelaxedQuery& rq : queries) {
    if (assigned.size() >= roots.size()) break;  // every root already scored
    if (topk.NumRoots() >= options.k && rq.score <= topk.Threshold()) {
      break;  // early exit: nothing below can enter the top-k
    }
    if (stats != nullptr) ++stats->queries_evaluated;
    query::TreePattern relaxed = MaterializePattern(pattern, rq);
    for (xml::NodeId r : roots) {
      if (assigned.count(r)) continue;  // already got its best score
      if (stats != nullptr) ++stats->candidate_checks;
      metrics.predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
      if (!query::SubtreeMatches(idx, relaxed, relaxed.root(), r)) continue;
      assigned.emplace(r, 1);
      PartialMatch m;
      m.bindings.assign(static_cast<size_t>(n), xml::kInvalidNode);
      m.levels = rq.levels;
      m.levels[0] = MatchLevel::kExact;
      m.bindings[0] = r;
      m.current_score = rq.score;
      m.max_final_score = rq.score;
      metrics.matches_created.fetch_add(1, std::memory_order_relaxed);
      metrics.matches_completed.fetch_add(1, std::memory_order_relaxed);
      topk.Update(m, /*complete=*/true);
    }
  }

  ins.QueryDone(query_start);
  TopKResult result;
  result.answers = topk.Finalize();
  result.metrics = metrics.Snapshot(wall.ElapsedSeconds());
  result.metrics.adaptive.shards_auto = sync.shards_auto;
  result.metrics.adaptive.chosen_shards = topk.num_shards();
  result.metrics.adaptive.drain_adaptive = sync.drain_adaptive;
  result.metrics.adaptive.drain_max = sync.drain_max;
  return result;
}

}  // namespace whirlpool::exec
