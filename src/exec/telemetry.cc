#include "exec/telemetry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "exec/topk_set.h"
#include "exec/tracer.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace whirlpool::exec {

TelemetryRecorder::TelemetryRecorder(uint64_t interval_us, size_t capacity)
    : interval_us_(interval_us),
      // Decimation pairs adjacent rows, so the ring must hold an even number
      // of them; 4 is the smallest ring that can decimate and keep history.
      capacity_(std::max<size_t>(4, capacity + (capacity & 1))) {
  WP_CHECK(interval_us > 0) << "telemetry interval must be positive";
}

TelemetryRecorder::~TelemetryRecorder() { Stop(); }

void TelemetryRecorder::AddGauge(std::string name, std::function<double()> probe) {
  MutexLock lock(&mu_);
  Series s;
  s.name = std::move(name);
  s.gauge = std::move(probe);
  s.values.reserve(capacity_);
  series_.push_back(std::move(s));
}

void TelemetryRecorder::AddCounter(std::string name, std::function<uint64_t()> probe) {
  MutexLock lock(&mu_);
  Series s;
  s.name = std::move(name);
  s.counter = true;
  s.total = std::move(probe);
  s.values.reserve(capacity_);
  series_.push_back(std::move(s));
}

void TelemetryRecorder::Start(CancelToken* token) {
  WP_CHECK(!started_) << "TelemetryRecorder started twice";
  token_ = token;
  started_ = true;
  thread_ = std::thread([this] { SamplerLoop(); });
}

void TelemetryRecorder::Stop() {
  if (!started_) return;
  {
    MutexLock lock(&mu_);
    if (stop_) return;  // idempotent: a second Stop (destructor) is a no-op
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  // Final sample: a run shorter than one interval still records its end
  // state, and every run's last row reflects the post-quiesce counters.
  SampleNow();
}

void TelemetryRecorder::SampleNow() {
  MutexLock lock(&mu_);
  SampleLocked();
}

uint64_t TelemetryRecorder::ticks() const {
  MutexLock lock(&mu_);
  return ticks_;
}

void TelemetryRecorder::SamplerLoop() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      // Sleep one effective stride (decimation doubles it), waking early
      // only on shutdown. Timed out == take the sample.
      cv_.Wait(mu_, std::chrono::microseconds(interval_us_ * stride_),
               [this]() REQUIRES(mu_) { return stop_; });
      if (stop_) return;
      SampleLocked();
    }
    // Cancellation + chaos outside mu_: Poll can take the kCancel mutex and
    // an armed failpoint can stall or inject an error — neither belongs
    // under the recorder lock. A fired token (deadline or error) shuts the
    // sampler down; the row just taken already recorded the fired state.
    if (token_ != nullptr) {
      if (token_->Poll(failpoint::sites::kTelemetrySample)) return;
    } else {
      WHIRLPOOL_FAILPOINT(failpoint::sites::kTelemetrySample);
    }
  }
}

void TelemetryRecorder::SampleLocked() {
  if (t_ns_.size() == capacity_) DecimateLocked();
  ++ticks_;
  t_ns_.push_back(MonotonicNs());
  for (Series& s : series_) {
    if (s.counter) {
      const uint64_t total = s.total();
      s.values.push_back(static_cast<double>(total - s.prev_total));
      s.prev_total = total;
    } else {
      s.values.push_back(s.gauge());
    }
  }
}

void TelemetryRecorder::DecimateLocked() {
  // Keep the odd-index (newer) row of each adjacent pair: the newest sample
  // survives every decimation and the retained rows stay uniformly spaced
  // at the doubled stride. Counter rows absorb their dropped partner —
  // values[2k] + values[2k+1] is exactly the delta over the merged window —
  // so the series' total mass is invariant (the decimation invariant the
  // tests pin); gauges keep the newer instantaneous value.
  const size_t half = capacity_ / 2;
  for (size_t k = 0; k < half; ++k) t_ns_[k] = t_ns_[2 * k + 1];
  t_ns_.resize(half);
  for (Series& s : series_) {
    for (size_t k = 0; k < half; ++k) {
      s.values[k] = s.counter ? s.values[2 * k] + s.values[2 * k + 1]
                              : s.values[2 * k + 1];
    }
    s.values.resize(half);
  }
  stride_ *= 2;
  ++decimations_;
}

TelemetrySnapshot TelemetryRecorder::Snapshot() const {
  MutexLock lock(&mu_);
  TelemetrySnapshot out;
  out.interval_us = interval_us_;
  out.stride_us = interval_us_ * stride_;
  out.ticks = ticks_;
  out.decimations = decimations_;
  out.t_ns = t_ns_;
  out.series.reserve(series_.size());
  for (const Series& s : series_) {
    out.series.push_back({s.name, s.counter, s.values});
  }
  return out;
}

void RegisterCommonProbes(TelemetryRecorder* recorder, const TopKSet* topk,
                          const ExecMetrics* metrics, const CancelToken* token) {
  recorder->AddGauge("threshold", [topk] {
    // -inf until k answers exist; clamp so the JSON/trace exporters (which
    // have no representation for non-finite numbers) stay faithful to "no
    // threshold yet" = 0 rather than silently mapping a real value.
    const double t = topk->Threshold();
    return std::isfinite(t) ? t : 0.0;
  });
  recorder->AddCounter("created", [metrics] {
    return metrics->matches_created.load(std::memory_order_relaxed);
  });
  recorder->AddCounter("pruned", [metrics] {
    return metrics->matches_pruned.load(std::memory_order_relaxed);
  });
  recorder->AddCounter("completed", [metrics] {
    return metrics->matches_completed.load(std::memory_order_relaxed);
  });
  recorder->AddCounter("server_ops", [metrics] {
    return metrics->server_operations.load(std::memory_order_relaxed);
  });
  recorder->AddGauge("cancelled",
                     [token] { return token->Cancelled() ? 1.0 : 0.0; });
  if (failpoint::Enabled()) {
    recorder->AddCounter("failpoint_triggers", [] {
      uint64_t triggers = 0;
      for (const failpoint::Stats& s : failpoint::Snapshot()) {
        triggers += s.triggers;
      }
      return triggers;
    });
  }
}

void WritePostMortem(std::ostream& os, const std::string& reason,
                     const MetricsSnapshot& metrics) {
  const TelemetrySnapshot& ts = metrics.timeseries;
  os << "=== whirlpool post-mortem: " << reason << " ===\n";
  os << "final: " << metrics.ToString() << "\n";
  os << "queue_peak_depth:";
  for (uint64_t d : metrics.adaptive.queue_peak_depth) os << ' ' << d;
  os << "\ntimeseries: interval_us=" << ts.interval_us
     << " stride_us=" << ts.stride_us << " ticks=" << ts.ticks
     << " decimations=" << ts.decimations << " rows=" << ts.t_ns.size()
     << "\n";
  // Tail of every series: the last kTailRows retained samples, timestamped
  // relative to the first retained sample.
  constexpr size_t kTailRows = 8;
  const size_t rows = ts.t_ns.size();
  const size_t first = rows > kTailRows ? rows - kTailRows : 0;
  const uint64_t t0 = rows == 0 ? 0 : ts.t_ns.front();
  for (const TelemetrySnapshot::Series& s : ts.series) {
    os << "  " << s.name << " (" << (s.counter ? "counter" : "gauge")
       << ") tail:";
    for (size_t i = first; i < rows && i < s.values.size(); ++i) {
      os << " t+" << (ts.t_ns[i] - t0) / 1000 << "us=" << s.values[i];
    }
    os << "\n";
  }
  os << "=== end post-mortem ===\n";
}

void MaybeWritePostMortem(const ExecOptions& options, const CancelToken& token,
                          const MetricsSnapshot& metrics) {
  if (!token.Cancelled()) return;
  std::string reason;
  const Status err = token.error();
  if (!err.ok()) {
    reason = "failed: " + err.ToString();
  } else if (token.DeadlineExpired()) {
    reason = "deadline expired (approximate result)";
  } else {
    reason = "cancelled";
  }
  if (options.postmortem_path.empty()) {
    WritePostMortem(std::cerr, reason, metrics);
    return;
  }
  std::ofstream file(options.postmortem_path, std::ios::binary);
  if (!file) {
    std::cerr << "whirlpool: cannot write post-mortem to "
              << options.postmortem_path << "\n";
    return;
  }
  WritePostMortem(file, reason, metrics);
}

}  // namespace whirlpool::exec
