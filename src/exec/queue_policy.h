// Priority-queue orderings for partial matches (paper Sec 6.1.3): FIFO,
// current score, maximum possible next score, maximum possible final score.
// Priorities are computed at enqueue time (they depend only on the match and
// the queue's server) and ties break by arrival order for determinism.
// Also home to SyncMatchQueue, the blocking batched handoff queue between
// the Whirlpool-M router and server threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "exec/adaptive.h"
#include "exec/options.h"
#include "exec/partial_match.h"
#include "exec/plan.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

/// Priority of `m` for a queue belonging to server `server` (-1 for the
/// router queue, where kMaxNextScore degenerates to kMaxFinalScore since no
/// single "next" server is fixed). Higher = dequeued first.
inline double QueuePriority(const QueryPlan& plan, QueuePolicy policy,
                            const PartialMatch& m, int server) {
  switch (policy) {
    case QueuePolicy::kFifo:
      // Arrival order lives in the integer seq, compared exactly by the
      // policy-aware QueuedMatchLess below. The old -double(seq) encoding
      // collapsed to ties at seq >= 2^53, where the newest-first tie-break
      // silently inverted arrival order.
      return 0.0;
    case QueuePolicy::kCurrentScore:
      return m.current_score;
    case QueuePolicy::kMaxNextScore:
      return server >= 0 ? m.current_score + plan.MaxContribution(server)
                         : m.max_final_score;
    case QueuePolicy::kMaxFinalScore:
      return m.max_final_score;
  }
  WP_CHECK(false) << "unhandled QueuePolicy " << static_cast<int>(policy);
  return 0.0;  // unreachable
}

/// \brief A match with its frozen priority.
struct QueuedMatch {
  double priority;
  PartialMatch match;
  /// Enqueue timestamp (MonotonicNs) for queue-wait instrumentation;
  /// 0 when the run is not collecting latencies or traces.
  uint64_t enqueue_ns = 0;
};

/// Max-heap comparator: higher priority first; ties break toward the most
/// recently created match (depth-first). Ties are pervasive — an exact
/// binding leaves the maximum possible final score unchanged, so a
/// first-created-first order would degenerate into breadth-first processing
/// where every root advances in lock-step and the top-k threshold grows
/// slowly. Preferring the newest match drives promising tuples to
/// completion early, which raises currentTopK and unlocks pruning.
///
/// Policy-aware: under kFifo the ordering is the *integer* seq, oldest
/// first — exact at any magnitude, where a double-encoded -seq priority
/// loses arrival order above 2^53.
struct QueuedMatchLess {
  explicit QueuedMatchLess(QueuePolicy policy = QueuePolicy::kMaxFinalScore)
      : fifo_(policy == QueuePolicy::kFifo) {}

  bool operator()(const QueuedMatch& a, const QueuedMatch& b) const {
    if (fifo_) return a.match.seq > b.match.seq;  // smaller seq dequeues first
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.match.seq < b.match.seq;
  }

 private:
  bool fifo_;
};

/// \brief Max-heap of QueuedMatch over a std::vector, shared by the
/// single-threaded engine queue and the synchronized Whirlpool-M queues.
///
/// Unlike std::priority_queue, Pop() extracts by value with a genuine move:
/// std::pop_heap swings the top element to the back, which is mutable, so no
/// const_cast of top() is needed (moving out of priority_queue::top() — the
/// previous implementation — is undefined behavior).
class MatchHeap {
 public:
  /// The comparator follows `policy`: kFifo orders by integer seq, every
  /// other policy by the frozen double priority (newest-first ties).
  explicit MatchHeap(QueuePolicy policy = QueuePolicy::kMaxFinalScore)
      : less_(policy) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// The heap's comparator, for callers asserting drain order.
  const QueuedMatchLess& less() const { return less_; }

  void Push(QueuedMatch&& qm) {
    heap_.push_back(std::move(qm));
    std::push_heap(heap_.begin(), heap_.end(), less_);
  }

  /// The highest-priority entry. Precondition: !empty().
  const QueuedMatch& Top() const {
    WP_DCHECK(!heap_.empty()) << "Top() on empty MatchHeap";
    return heap_.front();
  }

  /// Max of max_final_score over every queued entry (-inf when empty): the
  /// residual-work bound a deadline-cancelled single-threaded engine reports
  /// for the matches it leaves unprocessed (TopKResult::score_bound).
  double MaxFinalBound() const {
    double bound = -std::numeric_limits<double>::infinity();
    for (const QueuedMatch& qm : heap_) {
      bound = std::max(bound, qm.match.max_final_score);
    }
    return bound;
  }

  /// Removes and returns the highest-priority entry. Precondition: !empty().
  QueuedMatch Pop() {
    WP_DCHECK(!heap_.empty()) << "Pop() on empty MatchHeap";
    std::pop_heap(heap_.begin(), heap_.end(), less_);
    QueuedMatch qm = std::move(heap_.back());
    heap_.pop_back();
    // Heap-order invariant: what we popped dominates the new top.
    WP_DCHECK(heap_.empty() || !less_(qm, heap_.front()))
        << "heap order violated: popped " << qm.priority << " below top "
        << heap_.front().priority;
    return qm;
  }

 private:
  QueuedMatchLess less_;
  std::vector<QueuedMatch> heap_;
};

/// \brief Blocking priority queue with a stop flag, shared between the
/// Whirlpool-M router and server threads. Extraction goes through
/// MatchHeap::Pop (std::pop_heap + move from the mutable back element) —
/// never through a const_cast of a frozen heap top.
///
/// Handoff is batched in both directions to cut the per-match lock/notify
/// cost that dominates queue time in traces: producers publish whole
/// vectors under one lock acquisition with one notify, and consumers drain
/// up to N entries per acquisition (ExecOptions::queue_drain_batch).
class SyncMatchQueue {
 public:
  /// The queue's entries are ordered by `policy` (MatchHeap above): pass
  /// the policy whose priorities the producers compute for this queue.
  explicit SyncMatchQueue(QueuePolicy policy = QueuePolicy::kMaxFinalScore)
      : queue_(policy) {}

  void Push(QueuedMatch&& qm) {
    {
      MutexLock lock(&mu_);
      queue_.Push(std::move(qm));
      NotePeakDepthLocked();
    }
    cv_.NotifyOne();
  }

  /// Publishes every entry of `*batch` under a single lock acquisition with
  /// a single notify, then clears the vector (capacity is retained so
  /// producers can reuse their outbox allocation). No-op on an empty batch.
  void PushBatch(std::vector<QueuedMatch>* batch) {
    if (batch->empty()) return;
    const size_t n = batch->size();
    {
      MutexLock lock(&mu_);
      for (QueuedMatch& qm : *batch) queue_.Push(std::move(qm));
      NotePeakDepthLocked();
    }
    // Chaos site at the publish boundary — between the unlock and the
    // notify, the classic lost-wakeup window. `wake` additionally broadcasts
    // so consumers observe a spurious wakeup with work already visible.
    if (failpoint::Enabled() &&
        failpoint::Hit(failpoint::sites::kQueuePushBatch) ==
            failpoint::Effect::kWake) {
      cv_.NotifyAll();
    }
    // A multi-entry batch can feed several consumers (threads_per_server >
    // 1), so wake them all; a woken consumer with nothing left to drain
    // re-blocks immediately.
    if (n == 1) {
      cv_.NotifyOne();
    } else {
      cv_.NotifyAll();
    }
    batch->clear();
  }

  /// Blocks until a match is available or Stop() was called and the queue is
  /// empty. Returns false on shutdown.
  bool Pop(QueuedMatch* out) {
    MutexLock lock(&mu_);
    ++waiters_;
    cv_.Wait(mu_, [&]() REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    --waiters_;
    if (queue_.empty()) return false;
    *out = queue_.Pop();
    depth_.store(queue_.size(), std::memory_order_relaxed);
    return true;
  }

  /// Blocks until at least one match is available (or shutdown), then drains
  /// up to `max_n` entries into `*out` (cleared first) under the single lock
  /// acquisition. Entries come out in heap order — non-increasing priority —
  /// so per-producer FIFO is preserved whenever the queue policy orders by
  /// arrival (kFifo: integer seq comparison). Returns false only on
  /// stop-and-empty; after Stop() remaining entries are still drained.
  ///
  /// The drain is demand-aware: the backlog is split across this consumer
  /// and every consumer currently blocked on the queue, so a lone consumer
  /// on a deep queue takes the full `max_n` (lock amortization) while N
  /// parallel consumers each take ~depth/N instead of one thread walking
  /// off with the whole backlog and starving its siblings.
  bool PopBatch(std::vector<QueuedMatch>* out, int max_n) {
    return PopBatchImpl(out, max_n, nullptr, 0);
  }

  /// Governor-driven drain (exec/adaptive.h): the batch limit is the
  /// governor's current drain depth, and on the 1-in-kDrainSamplePeriod
  /// sampled cycles the governor measures lock-wait (entry to mutex
  /// acquisition — the cv idle wait for work is excluded) and batch
  /// processing time (delivery to the next PopBatch entry). Non-adaptive
  /// governors pin a static depth and never read a clock.
  bool PopBatch(std::vector<QueuedMatch>* out, DrainGovernor* gov) {
    const uint64_t t0 = gov->BeginPop();
    const bool got = PopBatchImpl(out, gov->drain(), t0 != 0 ? gov : nullptr, t0);
    if (t0 != 0 && got) gov->BatchDelivered();
    return got;
  }

  /// High-water mark of the queue depth (entries present after a push).
  /// Monotone, updated under mu_; lock-free readers see a lower bound.
  size_t depth_peak() const {
    return depth_peak_.load(std::memory_order_relaxed);
  }

  /// Current queue depth, lock-free: a monitoring snapshot for the
  /// telemetry sampler (exec/telemetry.h). All stores happen under mu_ at
  /// push/pop boundaries, so a reader sees some recent depth, never a torn
  /// or invented value.
  size_t Depth() const { return depth_.load(std::memory_order_relaxed); }

  void Stop() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  bool PopBatchImpl(std::vector<QueuedMatch>* out, int max_n,
                    DrainGovernor* gov, uint64_t t0) {
    out->clear();
    // Chaos site at the drain boundary, before the lock: `wake` broadcasts
    // a spurious wakeup at the other waiters (every Wait predicate must
    // tolerate it); sleep/yield here perturb the consumer schedule.
    if (failpoint::Enabled() &&
        failpoint::Hit(failpoint::sites::kQueuePopBatch) ==
            failpoint::Effect::kWake) {
      cv_.NotifyAll();
    }
    MutexLock lock(&mu_);
    if (gov != nullptr) gov->LockAcquired(t0);
    ++waiters_;
    cv_.Wait(mu_, [&]() REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    --waiters_;
    if (queue_.empty()) return false;
    const size_t share = queue_.size() / (static_cast<size_t>(waiters_) + 1);
    const size_t limit =
        std::min(static_cast<size_t>(max_n < 1 ? 1 : max_n),
                 share < 1 ? size_t{1} : share);
    while (!queue_.empty() && out->size() < limit) {
      out->push_back(queue_.Pop());
      // Batch-drain invariant: the drained prefix is in heap order, i.e.
      // the previous entry is not outranked by this one. Under the kFifo
      // policy this is exactly per-producer FIFO.
      WP_DCHECK(out->size() < 2 ||
                !queue_.less()((*out)[out->size() - 2], out->back()))
          << "batch drain broke priority order at entry " << out->size();
    }
    depth_.store(queue_.size(), std::memory_order_relaxed);
    return true;
  }

  /// Raises depth_peak_ to the current queue size and refreshes the live
  /// depth mirror. Caller holds mu_, so the read-compare-store needs no RMW;
  /// readers are monitoring-only.
  void NotePeakDepthLocked() REQUIRES(mu_) {
    depth_.store(queue_.size(), std::memory_order_relaxed);
    if (queue_.size() > depth_peak_.load(std::memory_order_relaxed)) {
      depth_peak_.store(queue_.size(), std::memory_order_relaxed);
    }
  }

  Mutex mu_{LockRank::kQueue, "SyncMatchQueue::mu_"};
  CondVar cv_;
  MatchHeap queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// Consumers currently blocked in Pop/PopBatch; used to split the drain.
  int waiters_ GUARDED_BY(mu_) = 0;
  /// Monotone queue-depth high-water mark; all stores under mu_, read
  /// lock-free by the metrics export (wp-lint ATOMIC_ALLOWLIST).
  std::atomic<size_t> depth_peak_{0};
  /// Live depth mirror: stored under mu_ at every push/pop boundary, read
  /// lock-free by the telemetry sampler (wp-lint ATOMIC_ALLOWLIST).
  std::atomic<size_t> depth_{0};
};

}  // namespace whirlpool::exec
