// Priority-queue orderings for partial matches (paper Sec 6.1.3): FIFO,
// current score, maximum possible next score, maximum possible final score.
// Priorities are computed at enqueue time (they depend only on the match and
// the queue's server) and ties break by arrival order for determinism.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/options.h"
#include "exec/partial_match.h"
#include "exec/plan.h"
#include "util/check.h"

namespace whirlpool::exec {

/// Priority of `m` for a queue belonging to server `server` (-1 for the
/// router queue, where kMaxNextScore degenerates to kMaxFinalScore since no
/// single "next" server is fixed). Higher = dequeued first.
inline double QueuePriority(const QueryPlan& plan, QueuePolicy policy,
                            const PartialMatch& m, int server) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return -static_cast<double>(m.seq);
    case QueuePolicy::kCurrentScore:
      return m.current_score;
    case QueuePolicy::kMaxNextScore:
      return server >= 0 ? m.current_score + plan.MaxContribution(server)
                         : m.max_final_score;
    case QueuePolicy::kMaxFinalScore:
      return m.max_final_score;
  }
  return 0.0;
}

/// \brief A match with its frozen priority.
struct QueuedMatch {
  double priority;
  PartialMatch match;
  /// Enqueue timestamp (MonotonicNs) for queue-wait instrumentation;
  /// 0 when the run is not collecting latencies or traces.
  uint64_t enqueue_ns = 0;
};

/// Max-heap comparator: higher priority first; ties break toward the most
/// recently created match (depth-first). Ties are pervasive — an exact
/// binding leaves the maximum possible final score unchanged, so a
/// first-created-first order would degenerate into breadth-first processing
/// where every root advances in lock-step and the top-k threshold grows
/// slowly. Preferring the newest match drives promising tuples to
/// completion early, which raises currentTopK and unlocks pruning.
struct QueuedMatchLess {
  bool operator()(const QueuedMatch& a, const QueuedMatch& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.match.seq < b.match.seq;
  }
};

/// \brief Max-heap of QueuedMatch over a std::vector, shared by the
/// single-threaded engine queue and the synchronized Whirlpool-M queues.
///
/// Unlike std::priority_queue, Pop() extracts by value with a genuine move:
/// std::pop_heap swings the top element to the back, which is mutable, so no
/// const_cast of top() is needed (moving out of priority_queue::top() — the
/// previous implementation — is undefined behavior).
class MatchHeap {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  void Push(QueuedMatch&& qm) {
    heap_.push_back(std::move(qm));
    std::push_heap(heap_.begin(), heap_.end(), QueuedMatchLess{});
  }

  /// The highest-priority entry. Precondition: !empty().
  const QueuedMatch& Top() const {
    WP_DCHECK(!heap_.empty()) << "Top() on empty MatchHeap";
    return heap_.front();
  }

  /// Removes and returns the highest-priority entry. Precondition: !empty().
  QueuedMatch Pop() {
    WP_DCHECK(!heap_.empty()) << "Pop() on empty MatchHeap";
    std::pop_heap(heap_.begin(), heap_.end(), QueuedMatchLess{});
    QueuedMatch qm = std::move(heap_.back());
    heap_.pop_back();
    // Heap-order invariant: what we popped dominates the new top.
    WP_DCHECK(heap_.empty() || !QueuedMatchLess{}(qm, heap_.front()))
        << "heap order violated: popped " << qm.priority << " below top "
        << heap_.front().priority;
    return qm;
  }

 private:
  std::vector<QueuedMatch> heap_;
};

}  // namespace whirlpool::exec
