// Strong typedefs for the identifier pairs that flow through the tracing
// and instrumentation APIs. RecordSpan(server, seq, ...) used to take two
// adjacent integers, an argument transposition the compiler cannot catch
// (the bugprone-easily-swappable-parameters suppression this replaces);
// wrapping each id in a distinct single-field struct makes a swapped call
// a type error while still compiling down to the raw integer.
#pragma once

#include <cstdint>

namespace whirlpool::exec {

/// \brief A server index in [0, num_servers), or the router (-1).
struct ServerId {
  constexpr explicit ServerId(int v) : value(v) {}
  /// The router / "no specific server" pseudo-id.
  static constexpr ServerId Router() { return ServerId(-1); }
  int value;
};

/// \brief A partial match's creation sequence number (PartialMatch::seq).
struct MatchSeq {
  constexpr explicit MatchSeq(uint64_t v) : value(v) {}
  uint64_t value;
};

}  // namespace whirlpool::exec
