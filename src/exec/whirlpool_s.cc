// Whirlpool-S (paper Sec 6.1.2): the single-threaded adaptive engine. A
// partial match is processed by a server as soon as it is routed to it, so
// there are no server queues — only the router's queue, ordered by maximum
// possible final score (the Upper/MPro discipline: the match with the
// highest possible final score must be processed before a top-k answer can
// be finalized).
#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "exec/adaptive.h"
#include "exec/cancel.h"
#include "exec/engine.h"
#include "exec/queue_policy.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "exec/telemetry.h"
#include "exec/tracer.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

Result<TopKResult> RunWhirlpoolS(const QueryPlan& plan, const ExecOptions& options) {
  WHIRLPOOL_RETURN_NOT_OK(ValidateOptions(options));
  Result<Router> router = Router::Make(plan, options);
  if (!router.ok()) return router.status();
  // ValidateOptions parse-checked the plan; install it for the run's scope.
  failpoint::ScopedConfig failpoints(options.failpoints, options.failpoint_seed);
  WHIRLPOOL_RETURN_NOT_OK(failpoints.status());
  CancelToken token(options.deadline_ms);

  Stopwatch wall;
  ExecMetrics metrics;
  const Instrumentation ins(options.tracer, &metrics, options.collect_latencies);
  const uint64_t query_start = ins.Begin();
  std::atomic<uint64_t> seq{0};
  // Single-threaded: topk_shards = 0 ("auto") resolves to one stripe.
  const ResolvedSync sync = ResolveSyncKnobs(options, /*worker_threads=*/1);
  TopKSet topk(options.k, options.semantics == MatchSemantics::kRelaxed,
               sync.topk_shards);
  if (options.has_frozen_threshold()) topk.FreezeThreshold(options.frozen_threshold);
  if (options.has_min_score_threshold()) {
    topk.SetMinScoreMode(options.min_score_threshold);
  }

  std::unique_ptr<ServerJoinCache> cache;
  if (options.cache_server_joins) {
    cache = std::make_unique<ServerJoinCache>(plan.num_servers());
  }
  ins.NameThread("whirlpool-s");
  MatchHeap queue;
  std::vector<PartialMatch> survivors;
  for (PartialMatch& m : GenerateRootMatches(plan, options, &topk, &metrics, &seq)) {
    const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, m, -1);
    const uint64_t enq = ins.Enqueue(ServerId::Router(), MatchSeq(m.seq));
    queue.Push({prio, std::move(m), enq});
  }

  // MatchHeap is single-threaded state the sampler must never touch; the
  // engine mirrors its size into this atomic once per step instead, and
  // only while a recorder exists. peak_depth is the high-water mark the
  // "adaptive" metrics block reports (satellite of the W-M queue peaks).
  std::atomic<size_t> live_queue_depth{queue.size()};
  size_t peak_depth = queue.size();
  std::unique_ptr<TelemetryRecorder> recorder;
  if (options.telemetry_interval_us > 0) {
    recorder = std::make_unique<TelemetryRecorder>(options.telemetry_interval_us);
    RegisterCommonProbes(recorder.get(), &topk, &metrics, &token);
    recorder->AddGauge("queue_depth.router", [&live_queue_depth] {
      return static_cast<double>(live_queue_depth.load(std::memory_order_relaxed));
    });
    recorder->Start(&token);
  }

  const int bulk = options.bulk_batch;  // ValidateOptions rejected < 1
  while (!queue.empty()) {
    peak_depth = std::max(peak_depth, queue.size());
    if (recorder != nullptr) {
      live_queue_depth.store(queue.size(), std::memory_order_relaxed);
    }
    // Queue boundary: evaluate the step failpoint (schedule perturbation or
    // injected error) and the deadline; on cancellation the remaining queue
    // is abandoned below with its residual score bound.
    if (token.Poll(failpoint::sites::kWsStep)) break;
    QueuedMatch qm = queue.Pop();
    ins.QueueWait(qm.enqueue_ns, ServerId::Router(), MatchSeq(qm.match.seq));
    PartialMatch m = std::move(qm.match);
    // The threshold may have grown since this match was enqueued.
    if (!topk.Alive(m)) {
      metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
      ins.Prune(ServerId::Router(), MatchSeq(m.seq));
      continue;
    }
    const int s = router->NextServer(m, topk.Threshold());
    metrics.routing_decisions.fetch_add(1, std::memory_order_relaxed);
    ins.Route(ServerId(s), MatchSeq(m.seq));
    survivors.clear();
    ProcessAtServer(plan, options, m, s, &topk, &metrics, &seq, &survivors,
                    cache.get(), &ins, &token);
    // Bulk routing (Sec 6.3.3 future work): reuse this decision for queue
    // neighbours that have visited the same servers — they are "similar"
    // matches for which the router would very likely pick the same server.
    for (int extra = 1; extra < bulk && !queue.empty(); ++extra) {
      if (queue.Top().match.visited_mask != m.visited_mask) break;
      QueuedMatch other_qm = queue.Pop();
      ins.QueueWait(other_qm.enqueue_ns, ServerId::Router(),
                    MatchSeq(other_qm.match.seq));
      PartialMatch other = std::move(other_qm.match);
      if (!topk.Alive(other)) {
        metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
        ins.Prune(ServerId::Router(), MatchSeq(other.seq));
        continue;
      }
      ProcessAtServer(plan, options, other, s, &topk, &metrics, &seq, &survivors,
                      cache.get(), &ins, &token);
    }
    for (PartialMatch& ext : survivors) {
      const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, ext, -1);
      const uint64_t enq = ins.Enqueue(ServerId::Router(), MatchSeq(ext.seq));
      queue.Push({prio, std::move(ext), enq});
    }
  }

  // Quiesce the sampler before snapshotting so the snapshot (and its final
  // Stop() sample) sees the finished counters, then build the full metrics
  // snapshot BEFORE the error return: a failed or degraded run still gets
  // its flight-recorder post-mortem.
  if (recorder != nullptr) recorder->Stop();
  ins.QueryDone(query_start);
  MetricsSnapshot snap = metrics.Snapshot(wall.ElapsedSeconds(), plan.num_servers());
  snap.adaptive.shards_auto = sync.shards_auto;
  snap.adaptive.chosen_shards = topk.num_shards();
  snap.adaptive.drain_adaptive = sync.drain_adaptive;
  snap.adaptive.drain_max = sync.drain_max;
  snap.adaptive.queue_peak_depth = {static_cast<uint64_t>(peak_depth)};
  if (recorder != nullptr) {
    snap.timeseries = recorder->Snapshot();
    if (options.tracer != nullptr) options.tracer->AttachCounters(snap.timeseries);
  }
  MaybeWritePostMortem(options, token, snap);
  // An injected error outranks any partial answer set.
  WHIRLPOOL_RETURN_NOT_OK(token.error());
  TopKResult result;
  result.answers = topk.Finalize();
  result.approximate = token.DeadlineExpired();
  result.threshold = topk.LockedThreshold();
  result.score_bound =
      result.answers.empty() ? -std::numeric_limits<double>::infinity()
                             : result.answers.front().score;
  if (result.approximate) {
    // Residual-work bound: anything a completed run could still return is
    // capped by the abandoned queue entries' max possible final scores.
    result.score_bound = std::max(result.score_bound, queue.MaxFinalBound());
  }
  result.metrics = std::move(snap);
  return result;
}

}  // namespace whirlpool::exec
