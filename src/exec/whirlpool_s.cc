// Whirlpool-S (paper Sec 6.1.2): the single-threaded adaptive engine. A
// partial match is processed by a server as soon as it is routed to it, so
// there are no server queues — only the router's queue, ordered by maximum
// possible final score (the Upper/MPro discipline: the match with the
// highest possible final score must be processed before a top-k answer can
// be finalized).
#include <memory>

#include "exec/engine.h"
#include "exec/queue_policy.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

Result<TopKResult> RunWhirlpoolS(const QueryPlan& plan, const ExecOptions& options) {
  Result<Router> router = Router::Make(plan, options);
  if (!router.ok()) return router.status();
  if (options.k == 0) return Status::InvalidArgument("k must be positive");

  Stopwatch wall;
  ExecMetrics metrics;
  std::atomic<uint64_t> seq{0};
  TopKSet topk(options.k, options.semantics == MatchSemantics::kRelaxed);
  if (options.has_frozen_threshold() && options.has_min_score_threshold()) {
    return Status::InvalidArgument(
        "frozen_threshold and min_score_threshold are mutually exclusive");
  }
  if (options.has_frozen_threshold()) topk.FreezeThreshold(options.frozen_threshold);
  if (options.has_min_score_threshold()) {
    topk.SetMinScoreMode(options.min_score_threshold);
  }

  std::unique_ptr<ServerJoinCache> cache;
  if (options.cache_server_joins) {
    cache = std::make_unique<ServerJoinCache>(plan.num_servers());
  }
  MatchPriorityQueue queue;
  std::vector<PartialMatch> survivors;
  for (PartialMatch& m : GenerateRootMatches(plan, options, &topk, &metrics, &seq)) {
    const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, m, -1);
    queue.push({prio, std::move(m)});
  }

  const int bulk = options.bulk_batch < 1 ? 1 : options.bulk_batch;
  while (!queue.empty()) {
    PartialMatch m = std::move(const_cast<QueuedMatch&>(queue.top()).match);
    queue.pop();
    // The threshold may have grown since this match was enqueued.
    if (!topk.Alive(m)) {
      metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int s = router->NextServer(m, topk.Threshold());
    metrics.routing_decisions.fetch_add(1, std::memory_order_relaxed);
    survivors.clear();
    ProcessAtServer(plan, options, m, s, &topk, &metrics, &seq, &survivors,
                    cache.get());
    // Bulk routing (Sec 6.3.3 future work): reuse this decision for queue
    // neighbours that have visited the same servers — they are "similar"
    // matches for which the router would very likely pick the same server.
    for (int extra = 1; extra < bulk && !queue.empty(); ++extra) {
      const QueuedMatch& peek = queue.top();
      if (peek.match.visited_mask != m.visited_mask) break;
      PartialMatch other = std::move(const_cast<QueuedMatch&>(peek).match);
      queue.pop();
      if (!topk.Alive(other)) {
        metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ProcessAtServer(plan, options, other, s, &topk, &metrics, &seq, &survivors,
                      cache.get());
    }
    for (PartialMatch& ext : survivors) {
      const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, ext, -1);
      queue.push({prio, std::move(ext)});
    }
  }

  TopKResult result;
  result.answers = topk.Finalize();
  result.metrics = metrics.Snapshot(wall.ElapsedSeconds(), plan.num_servers());
  return result;
}

}  // namespace whirlpool::exec
