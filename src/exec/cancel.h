// Run-scoped cancellation for the engines (DESIGN.md §12): a CancelToken
// carries an optional deadline (ExecOptions::deadline_ms) and a
// first-error-wins injected-error slot, checked at queue boundaries. On a
// deadline every engine stops cleanly and returns its best-so-far top-k
// flagged `approximate` (TopKResult) with the currentTopK threshold and the
// max-possible-score bound over abandoned work — the paper's approximate
// top-k made operational. On an injected error the run returns the Status.
//
// Thread model: the deadline is fixed at construction (before worker threads
// start); Cancel/Check race freely afterwards. `cancelled_` is a monotonic
// flag (release-published, acquire-checked); the reason fields live under a
// small leaf mutex taken only on the first cancellation and after join.
#pragma once

#include <atomic>
#include <chrono>

#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

class CancelToken {
 public:
  /// `deadline_ms` <= 0 disarms the deadline (the token then only trips on
  /// injected errors). The clock starts here, so construct at run start.
  explicit CancelToken(double deadline_ms)
      : deadline_armed_(deadline_ms > 0),
        deadline_ns_(deadline_armed_
                         ? NowNs() + static_cast<uint64_t>(deadline_ms * 1e6)
                         : 0) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Queue-boundary check: trips the deadline if armed and expired, then
  /// reports whether the run is cancelled (deadline or error). Reads the
  /// clock only while a deadline is armed and not yet tripped.
  bool Check() {
    if (Cancelled()) return true;
    if (deadline_armed_ && NowNs() >= deadline_ns_) {
      MutexLock lock(&mu_);
      deadline_expired_ = true;
      // release: publishes deadline_expired_ before the flag; pairs with the
      // acquire load in Cancelled() so observers see why they were stopped.
      cancelled_.store(true, std::memory_order_release);
    }
    return Cancelled();
  }

  /// First error wins; later calls are no-ops. Never called with engine
  /// locks held (kCancel is a near-leaf rank).
  void CancelError(Status st) {
    MutexLock lock(&mu_);
    if (error_.ok()) error_ = std::move(st);
    // release: publishes error_ before the flag (pairs with Cancelled()'s
    // acquire) so the main thread reads a complete Status after join.
    cancelled_.store(true, std::memory_order_release);
  }

  /// Lock-free: has any cancellation (deadline or error) been requested?
  bool Cancelled() const {
    // acquire: pairs with the release stores above so the reason fields are
    // visible once the flag is.
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Combined failpoint + cancellation poll for an engine queue boundary:
  /// evaluates the site's failpoint (schedule actions run inline; an
  /// injected error cancels this token), then Check()s. True = stop
  /// processing and start abandoning.
  bool Poll(const char* site) {
    if (failpoint::Enabled()) {
      Status st = failpoint::InjectedError(site);
      if (!st.ok()) CancelError(std::move(st));
    }
    return Check();
  }

  /// Valid after the run quiesces (single-threaded engines: after the loop;
  /// Whirlpool-M: after join).
  bool DeadlineExpired() const {
    MutexLock lock(&mu_);
    return deadline_expired_;
  }

  /// The injected error, or OK when the run completed / hit only the
  /// deadline (a deadline is an approximate result, not a failure).
  Status error() const {
    MutexLock lock(&mu_);
    return error_;
  }

 private:
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const bool deadline_armed_;
  const uint64_t deadline_ns_;
  /// Monotonic cancellation flag; reasons are under mu_ (wp-lint
  /// ATOMIC_ALLOWLIST: release/acquire publication documented above).
  std::atomic<bool> cancelled_{false};
  mutable Mutex mu_{LockRank::kCancel, "CancelToken::mu_"};
  bool deadline_expired_ GUARDED_BY(mu_) = false;
  Status error_ GUARDED_BY(mu_);
};

}  // namespace whirlpool::exec
