// A compiled query: the tree pattern bound to a document's tag index and a
// scoring model, with one ServerSpec per non-root pattern node. The plan
// precomputes, per server, the composed chain from the query root
// (Algorithm 1's root predicate), the adjacency needed for the conditional
// pairwise checks, and the statistics the adaptive router uses (expected
// candidates per root, level distribution, expected contribution).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/partial_match.h"
#include "index/tag_index.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "util/status.h"

namespace whirlpool::exec {

using index::TagIndex;
using query::Axis;
using query::ChainStep;
using query::TreePattern;
using score::MatchLevel;
using score::ScoringModel;
using xml::NodeId;
using xml::TagId;

/// \brief Per-server compiled data. Server s corresponds to pattern node
/// s + 1 (node 0 is the root, which seeds the matches).
struct ServerSpec {
  int pattern_node = 0;
  TagId tag = xml::kInvalidTag;
  /// True when the pattern node's tag is "*" (matches any element).
  bool wildcard = false;
  std::optional<std::string> value;
  /// Composed predicate from the query root to this node (Algorithm 1's
  /// "Relaxation with rootNode").
  std::vector<ChainStep> chain_from_root;
  /// Pattern parent and the axis on the edge into this node (single-edge
  /// conditional predicate, checked when both endpoints are bound).
  int pattern_parent = 0;
  Axis axis_from_parent = Axis::kChild;
  /// Pattern children of this node (their servers check the edge when they
  /// bind after us; we check it when we bind after them).
  std::vector<int> pattern_children;

  // ---- Router statistics (estimates; see QueryPlan::Build) ----------------
  /// Average number of candidate bindings under one root candidate.
  double avg_candidates_per_root = 0.0;
  /// P(best level = exact / edge-generalized / promoted) for a candidate.
  double level_prob[3] = {1.0, 0.0, 0.0};
  /// Sum over levels of level_prob * contribution.
  double expected_contribution = 0.0;
};

/// \brief Optional per-binding score override for synthetic experiments
/// (e.g. the Figure 3 motivating example, where each title/location/price
/// binding carries its own hand-assigned score). Returns the contribution of
/// binding `node` at server `server` given its structural `level`.
using ScoreOverride = std::function<double(int server, NodeId node, MatchLevel level)>;

/// \brief Compiled, immutable query plan shared by all engines and threads.
class QueryPlan {
 public:
  /// Compiles `pattern` against `index` with `scoring`. Fails with
  /// InvalidArgument if the pattern has more than kMaxServers + 1 nodes
  /// (the visited-mask width bounds the server count; the root is not a
  /// server). A tag missing from the document is allowed — the query simply
  /// has no candidates at that server.
  /// `compute_estimates` toggles the router-statistics pass (linear in the
  /// number of root candidates).
  static Result<QueryPlan> Build(const TagIndex& index, const TreePattern& pattern,
                                 ScoringModel scoring, bool compute_estimates = true);

  int num_servers() const { return static_cast<int>(servers_.size()); }
  const ServerSpec& server(int s) const { return servers_[static_cast<size_t>(s)]; }
  int ServerForPatternNode(int pattern_node) const { return pattern_node - 1; }

  const TagIndex& index() const { return *index_; }
  const TreePattern& pattern() const { return *pattern_; }
  const ScoringModel& scoring() const { return scoring_; }

  /// Maximum contribution server `s` can add to a match.
  double MaxContribution(int s) const { return max_contribution_[static_cast<size_t>(s)]; }

  /// Sum of MaxContribution over servers NOT in `visited_mask` — the
  /// admissible headroom used for max possible final scores.
  double RemainingMax(uint64_t visited_mask) const;

  /// Headroom for ScoreAggregation::kSumWitnesses: every unvisited server
  /// may contribute (candidate count under `root`) x (exact-level idf).
  /// Admissible because each witness contributes at most the exact idf.
  double RemainingSumMax(NodeId root, uint64_t visited_mask) const;

  /// Candidate count of server `s` under `root` (one binary search).
  uint64_t CandidateCount(NodeId root, int s) const;

  /// Contribution of binding `node` at server `s` with structural `level`.
  double Contribution(int s, NodeId node, MatchLevel level) const;

  /// Installs a per-binding score override. `per_server_max` must upper-bound
  /// the override's values per server (drives max-final scores).
  void SetScoreOverride(ScoreOverride fn, std::vector<double> per_server_max);

  bool has_score_override() const { return static_cast<bool>(score_override_); }

 private:
  QueryPlan() = default;

  const TagIndex* index_ = nullptr;
  const TreePattern* pattern_ = nullptr;
  ScoringModel scoring_;
  std::vector<ServerSpec> servers_;
  std::vector<double> max_contribution_;
  ScoreOverride score_override_;
};

/// \brief Exact number of partial matches a no-pruning (LockStep-NoPrun)
/// evaluation creates for server order `order`, computed analytically from
/// per-root candidate counts: each root contributes 1 (the root match) plus,
/// per stage, the running product of max(1, candidates) — a match spawns one
/// extension per candidate or a single deletion row. Matches the
/// matches_created metric of a real NoPrun run (verified in tests); used as
/// the Table 2 denominator without paying for full enumeration.
uint64_t NoPruningTupleCount(const QueryPlan& plan, const std::vector<int>& order);

}  // namespace whirlpool::exec
