#include "exec/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace whirlpool::exec {

Router::Router(const QueryPlan& plan, const ExecOptions& options, std::vector<int> order)
    : plan_(&plan), strategy_(options.routing), order_(std::move(order)) {}

Result<Router> Router::Make(const QueryPlan& plan, const ExecOptions& options) {
  std::vector<int> order = options.static_order;
  if (order.empty()) {
    order.resize(static_cast<size_t>(plan.num_servers()));
    for (int s = 0; s < plan.num_servers(); ++s) order[static_cast<size_t>(s)] = s;
  }
  if (static_cast<int>(order.size()) != plan.num_servers()) {
    return Status::InvalidArgument("static_order size must equal the number of servers");
  }
  std::vector<char> seen(static_cast<size_t>(plan.num_servers()), 0);
  for (int s : order) {
    if (s < 0 || s >= plan.num_servers() || seen[static_cast<size_t>(s)]) {
      return Status::InvalidArgument("static_order must be a permutation of [0, servers)");
    }
    seen[static_cast<size_t>(s)] = 1;
  }
  return Router(plan, options, std::move(order));
}

double Router::EstimateAlive(const PartialMatch& m, int s, double threshold) const {
  const ServerSpec& spec = plan_->server(s);
  // Exact candidate count for this match's root binding: one binary search
  // in the tag index, much sharper than the global per-root average (the
  // paper suggests selectivity estimation; with Dewey-ordered posting lists
  // the true count is just as cheap).
  const double cands = static_cast<double>(plan_->CandidateCount(m.root_binding(), s));
  // Headroom after this server runs: every other unvisited server may still
  // contribute its maximum.
  const double rest_after =
      m.max_final_score - m.current_score - plan_->MaxContribution(s);
  if (threshold == -std::numeric_limits<double>::infinity()) {
    return cands;
  }
  const score::PredicateScores& ps = plan_->scoring().predicate(spec.pattern_node);
  double survivors = 0.0;
  for (int l = 0; l < 3; ++l) {
    const double ext_max_final = m.current_score + ps.at_level[l] + rest_after;
    if (ext_max_final > threshold) survivors += spec.level_prob[l] * cands;
  }
  if (cands == 0.0) {
    // Outer join: the deletion row survives iff the match can still reach
    // the threshold without this server's contribution.
    survivors = (m.current_score + rest_after > threshold) ? 1.0 : 0.0;
  }
  return survivors;
}

int Router::NextServer(const PartialMatch& m, double threshold) const {
  switch (strategy_) {
    case RoutingStrategy::kStatic: {
      for (int s : order_) {
        if (!m.Visited(s)) return s;
      }
      break;
    }
    case RoutingStrategy::kMaxScore:
    case RoutingStrategy::kMinScore: {
      int best = -1;
      double best_val = 0.0;
      for (int s = 0; s < plan_->num_servers(); ++s) {
        if (m.Visited(s)) continue;
        const double v = plan_->server(s).expected_contribution;
        const bool better = strategy_ == RoutingStrategy::kMaxScore ? v > best_val
                                                                    : v < best_val;
        if (best == -1 || better) {
          best = s;
          best_val = v;
        }
      }
      if (best != -1) return best;
      break;
    }
    case RoutingStrategy::kMinAlive: {
      int best = -1;
      double best_est = 0.0;
      double best_cands = 0.0;
      for (int s = 0; s < plan_->num_servers(); ++s) {
        if (m.Visited(s)) continue;
        const double est = EstimateAlive(m, s, threshold);
        const double cands = plan_->server(s).avg_candidates_per_root;
        if (best == -1 || est < best_est ||
            (est == best_est && cands < best_cands)) {
          best = s;
          best_est = est;
          best_cands = cands;
        }
      }
      if (best != -1) return best;
      break;
    }
  }
  // Precondition violated (complete match); fall back to the lowest
  // unvisited or 0.
  for (int s = 0; s < plan_->num_servers(); ++s) {
    if (!m.Visited(s)) return s;
  }
  return 0;
}

}  // namespace whirlpool::exec
