// Entry point for top-k evaluation: dispatches to Whirlpool-S, Whirlpool-M,
// LockStep or LockStep-NoPrun (paper Sec 6.1.2) over a compiled QueryPlan.
#pragma once

#include <vector>

#include "exec/metrics.h"
#include "exec/options.h"
#include "exec/plan.h"
#include "exec/topk_set.h"
#include "util/status.h"

namespace whirlpool::exec {

/// \brief Result of a top-k evaluation.
struct TopKResult {
  /// The k best answers, highest score first.
  std::vector<Answer> answers;
  MetricsSnapshot metrics;
  /// True when the run stopped at ExecOptions::deadline_ms before the top-k
  /// was final: `answers` is the best-so-far prefix, and `score_bound`
  /// bounds what a completed run could still have found (DESIGN.md §12).
  bool approximate = false;
  /// The currentTopK threshold when the run ended (k-th best recorded score;
  /// -inf while fewer than k roots were recorded).
  double threshold = 0.0;
  /// Upper bound on the final score of ANY answer a completed run could
  /// return: max over the returned answers' scores and the abandoned
  /// matches' max-possible final scores. For an exact run this is just the
  /// best returned score. Callers judge approximate answer quality by
  /// comparing answers[i].score against this bound.
  double score_bound = 0.0;
};

/// \brief Runs the engine selected by `options.engine`.
///
/// Thread-safe with respect to the plan: the same QueryPlan can be reused
/// across runs (it is never mutated by evaluation).
Result<TopKResult> RunTopK(const QueryPlan& plan, const ExecOptions& options);

// Individual engines (exposed for tests; RunTopK is the normal entry).
Result<TopKResult> RunWhirlpoolS(const QueryPlan& plan, const ExecOptions& options);
Result<TopKResult> RunWhirlpoolM(const QueryPlan& plan, const ExecOptions& options);
Result<TopKResult> RunLockStep(const QueryPlan& plan, const ExecOptions& options);

}  // namespace whirlpool::exec
