// Entry point for top-k evaluation: dispatches to Whirlpool-S, Whirlpool-M,
// LockStep or LockStep-NoPrun (paper Sec 6.1.2) over a compiled QueryPlan.
#pragma once

#include <vector>

#include "exec/metrics.h"
#include "exec/options.h"
#include "exec/plan.h"
#include "exec/topk_set.h"
#include "util/status.h"

namespace whirlpool::exec {

/// \brief Result of a top-k evaluation.
struct TopKResult {
  /// The k best answers, highest score first.
  std::vector<Answer> answers;
  MetricsSnapshot metrics;
};

/// \brief Runs the engine selected by `options.engine`.
///
/// Thread-safe with respect to the plan: the same QueryPlan can be reused
/// across runs (it is never mutated by evaluation).
Result<TopKResult> RunTopK(const QueryPlan& plan, const ExecOptions& options);

// Individual engines (exposed for tests; RunTopK is the normal entry).
Result<TopKResult> RunWhirlpoolS(const QueryPlan& plan, const ExecOptions& options);
Result<TopKResult> RunWhirlpoolM(const QueryPlan& plan, const ExecOptions& options);
Result<TopKResult> RunLockStep(const QueryPlan& plan, const ExecOptions& options);

}  // namespace whirlpool::exec
