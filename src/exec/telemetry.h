// Flight-recorder telemetry (DESIGN.md §13): a background sampler thread
// snapshots the live run — lock-free TopKSet::Threshold(), per-queue depth,
// in-flight matches, ExecMetrics counter deltas, adaptive drain depths,
// failpoint triggers, cancellation state — at a configurable interval
// (ExecOptions::telemetry_interval_us) into fixed-capacity ring buffers.
//
// The rings *decimate* instead of wrapping: when full, every other row is
// dropped and the sampling stride doubles, so memory stays bounded while the
// retained rows always cover the whole run at uniform spacing. Counter
// series sum the dropped row into its surviving neighbour (the delta over
// the merged window), so total counter mass is preserved across any number
// of decimations; gauge series keep the newer value of each pair.
//
// Exported three ways: Chrome-trace counter tracks ("ph":"C") merged into
// Tracer::WriteChromeTrace, the "timeseries" block of
// MetricsSnapshot::ToJson, and — when a run ends degraded (deadline,
// cancellation, injected error) — a post-mortem report to stderr or
// ExecOptions::postmortem_path.
//
// Thread model: probes are registered before Start() and must be safe to
// call from the sampler thread concurrently with the run (lock-free reads
// or relaxed atomics). The sampler owns LockRank::kTelemetry, polls the
// run's CancelToken outside its own lock (shutdown on deadline/error fire),
// and carries the `telemetry.sample` failpoint site. When telemetry is off
// (the default) no recorder exists and the engine hot paths pay at most one
// predictable branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.h"
#include "exec/metrics.h"
#include "exec/options.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

class TopKSet;  // exec/topk_set.h

/// \brief Bounded, decimating time-series recorder with an optional
/// background sampler thread.
class TelemetryRecorder {
 public:
  /// Ring capacity (rows per series) before a decimation halves it. 512 rows
  /// at the default 1 ms interval cover ~0.5 s before the first halving; a
  /// run of any length is always covered at 512 * interval / 2^d resolution.
  static constexpr size_t kDefaultCapacity = 512;

  /// `interval_us` is the base sampling interval (must be > 0);
  /// `capacity` rows are kept per series (rounded up to an even minimum so
  /// decimation pairs cleanly).
  explicit TelemetryRecorder(uint64_t interval_us,
                             size_t capacity = kDefaultCapacity);
  ~TelemetryRecorder();  // Stops the sampler if still running.
  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  /// Registers an instantaneous-value probe. Call before Start().
  void AddGauge(std::string name, std::function<double()> probe);
  /// Registers a monotonically-nondecreasing total; the recorder stores the
  /// delta since the previous retained sample. Call before Start().
  void AddCounter(std::string name, std::function<uint64_t()> probe);

  /// Spawns the sampler thread. `token` (may be null in tests) is polled
  /// once per sample, outside the recorder lock: a fired token — deadline or
  /// injected error — shuts the sampler down cleanly, and the
  /// `telemetry.sample` failpoint site is evaluated through it.
  void Start(CancelToken* token);

  /// Stops and joins the sampler (idempotent), then takes one final sample
  /// so the end state of a run shorter than one interval is still recorded.
  void Stop();

  /// Takes one sample synchronously (tests, and Stop()'s final sample).
  void SampleNow();

  /// Samples taken so far (pre-decimation).
  uint64_t ticks() const;

  /// Copies out the retained rows. Safe while the sampler runs (tests);
  /// engines call it after Stop().
  TelemetrySnapshot Snapshot() const;

 private:
  struct Series {
    std::string name;
    bool counter = false;
    std::function<double()> gauge;
    std::function<uint64_t()> total;  ///< counter probe (totals)
    /// Counter total at the last retained sample; deltas never lose mass
    /// because this advances only when a row is actually written.
    uint64_t prev_total = 0;
    std::vector<double> values;
  };

  void SamplerLoop();
  void SampleLocked() REQUIRES(mu_);
  /// Halves every ring: keeps the odd-index (newer) row of each adjacent
  /// pair, summing the pair into it for counter series; doubles the stride.
  void DecimateLocked() REQUIRES(mu_);

  const uint64_t interval_us_;
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kTelemetry, "TelemetryRecorder::mu_"};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t ticks_ GUARDED_BY(mu_) = 0;
  uint64_t stride_ GUARDED_BY(mu_) = 1;  ///< interval multiplier (2^decim.)
  uint64_t decimations_ GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> t_ns_ GUARDED_BY(mu_);
  std::vector<Series> series_ GUARDED_BY(mu_);
  /// Set before the thread starts, const afterwards (sampler-thread reads
  /// need no lock; thread creation is the happens-before edge).
  CancelToken* token_ = nullptr;  // wp-lint: disable(WP002) write-once before thread start
  bool started_ = false;  // wp-lint: disable(WP002) main-thread bookkeeping (Start/Stop only)
  std::thread thread_;  // wp-lint: disable(WP002) main-thread only (Start spawns, Stop joins)
};

/// Registers the probes every engine shares: "threshold" (lock-free
/// TopKSet::Threshold), the created/pruned/completed/server_ops counter
/// deltas, "cancelled" (CancelToken state), and — when a failpoint plan is
/// armed — "failpoint_triggers".
void RegisterCommonProbes(TelemetryRecorder* recorder, const TopKSet* topk,
                          const ExecMetrics* metrics, const CancelToken* token);

/// Writes the flight-recorder post-mortem: the reason, final counters, and
/// the tail of every telemetry series in `metrics.timeseries`.
void WritePostMortem(std::ostream& os, const std::string& reason,
                     const MetricsSnapshot& metrics);

/// Engine epilogue hook: when the run sampled telemetry and ended degraded —
/// deadline expiry, cancellation, or an injected error — writes the
/// post-mortem to options.postmortem_path (stderr when empty). Call after
/// the run quiesced, with `metrics.timeseries` already attached.
void MaybeWritePostMortem(const ExecOptions& options, const CancelToken& token,
                          const MetricsSnapshot& metrics);

}  // namespace whirlpool::exec
