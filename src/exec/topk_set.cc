#include "exec/topk_set.h"

#include <algorithm>

#include "util/check.h"
#include "util/failpoint.h"

namespace whirlpool::exec {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

TopKSet::TopKSet(uint32_t k, bool update_partials, int shards)
    : k_(k), update_partials_(update_partials) {
  const size_t n = static_cast<size_t>(
      shards < 1 ? 1 : (shards > kMaxShards ? kMaxShards : shards));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

void TopKSet::FreezeThreshold(double value) {
  MutexLock lock(&scores_mu_);
  frozen_ = true;
  frozen_value_ = value;
  cached_threshold_.store(value, std::memory_order_relaxed);
}

void TopKSet::SetMinScoreMode(double min_score) {
  MutexLock lock(&scores_mu_);
  min_score_mode_ = true;
  min_score_ = min_score;
  min_score_mode_flag_.store(true, std::memory_order_relaxed);
  cached_threshold_.store(min_score, std::memory_order_relaxed);
}

void TopKSet::RefreshCachedThresholdLocked() {
  // Chaos site under both the shard lock and scores_mu_: a sleep here stalls
  // every concurrent updater and widens the cached-threshold staleness
  // window the lock-free Alive() readers must tolerate.
  WHIRLPOOL_FAILPOINT(failpoint::sites::kTopkThresholdRefresh);
  if (min_score_mode_ || frozen_) return;  // cache pinned by the mode setters
  if (scores_.size() < k_) return;         // still -infinity: set not full
  auto it = scores_.rbegin();
  std::advance(it, k_ - 1);
  const double kth = *it;
  // Monotonicity: per-root scores only grow and entries are never removed,
  // so the k-th best never drops. A violation would make an earlier prune
  // unsound.
  WP_DCHECK(kth >= last_threshold_)
      << "currentTopK regressed from " << last_threshold_ << " to " << kth;
  last_threshold_ = kth;
  // Staleness is one-sided: the cache never runs ahead of the ground truth,
  // so lock-free readers can only under-prune, never over-prune.
  WP_DCHECK(kth >= cached_threshold_.load(std::memory_order_relaxed))
      << "cached threshold " << cached_threshold_.load(std::memory_order_relaxed)
      << " exceeds ground truth " << kth;
  cached_threshold_.store(kth, std::memory_order_relaxed);
}

void TopKSet::Update(const PartialMatch& m, bool complete) {
  // Chaos site before the shard lock: perturbs insert/evict interleaving
  // across shards (one relaxed load when no plan is installed).
  WHIRLPOOL_FAILPOINT(failpoint::sites::kTopkUpdate);
  if (!complete && !update_partials_) return;
  WP_DCHECK(m.bindings.size() == m.levels.size())
      << "corrupt match: " << m.bindings.size() << " bindings vs "
      << m.levels.size() << " levels";
  Shard& shard = ShardFor(m.root_binding());
  MutexLock lock(&shard.mu);
  Entry& e = shard.best[m.root_binding()];
  if (m.current_score > e.score) {
    const double old_score = e.score;
    e.score = m.current_score;
    e.bindings = m.bindings;
    e.levels = m.levels;
    e.complete = complete;
    // The global multiset update nests under the shard lock so two
    // improvements of the same root publish their (old, new) transitions in
    // order (lock order: shard mutex -> scores_mu_).
    MutexLock scores_lock(&scores_mu_);
    if (old_score != kNegInf) {
      scores_.erase(scores_.find(old_score));
    }
    scores_.insert(m.current_score);
    RefreshCachedThresholdLocked();
  } else if (complete && !e.complete && m.current_score == e.score) {
    // Prefer a complete witness at equal score.
    e.bindings = m.bindings;
    e.levels = m.levels;
    e.complete = true;
  }
}

double TopKSet::Threshold() const {
  return cached_threshold_.load(std::memory_order_relaxed);
}

double TopKSet::LockedThreshold() const {
  MutexLock lock(&scores_mu_);
  if (min_score_mode_) return min_score_;
  if (frozen_) return frozen_value_;
  if (scores_.size() < k_) return kNegInf;
  auto it = scores_.rbegin();
  std::advance(it, k_ - 1);
  return *it;
}

bool TopKSet::Alive(const PartialMatch& m) const {
  const double threshold = cached_threshold_.load(std::memory_order_relaxed);
  if (min_score_mode_flag_.load(std::memory_order_relaxed)) {
    // Inclusive: a match that can still exactly reach the bar is wanted.
    return m.max_final_score >= threshold;
  }
  if (threshold == kNegInf) return true;
  return m.max_final_score > threshold;
}

size_t TopKSet::NumRoots() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    n += shard->best.size();
  }
  return n;
}

std::vector<Answer> TopKSet::Finalize() const {
  const bool min_mode = min_score_mode_flag_.load(std::memory_order_relaxed);
  // In min-score mode the cache is pinned to min_score_ by SetMinScoreMode.
  const double min_score = cached_threshold_.load(std::memory_order_relaxed);
  std::vector<Answer> all;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    all.reserve(all.size() + shard->best.size());
    for (const auto& [root, e] : shard->best) {
      if (min_mode && e.score < min_score) continue;
      Answer a;
      a.root = root;
      a.score = e.score;
      a.bindings = e.bindings;
      a.levels = e.levels;
      all.push_back(std::move(a));
    }
  }
  std::sort(all.begin(), all.end(), [](const Answer& a, const Answer& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.root < b.root;
  });
  if (all.size() > k_) all.resize(k_);
  return all;
}

}  // namespace whirlpool::exec
