#include "exec/topk_set.h"

#include <algorithm>

#include "util/check.h"

namespace whirlpool::exec {

TopKSet::TopKSet(uint32_t k, bool update_partials)
    : k_(k), update_partials_(update_partials) {}

void TopKSet::FreezeThreshold(double value) {
  MutexLock lock(&mu_);
  frozen_ = true;
  frozen_value_ = value;
}

void TopKSet::SetMinScoreMode(double min_score) {
  MutexLock lock(&mu_);
  min_score_mode_ = true;
  min_score_ = min_score;
}

void TopKSet::Update(const PartialMatch& m, bool complete) {
  if (!complete && !update_partials_) return;
  WP_DCHECK(m.bindings.size() == m.levels.size())
      << "corrupt match: " << m.bindings.size() << " bindings vs "
      << m.levels.size() << " levels";
  MutexLock lock(&mu_);
  Entry& e = best_[m.root_binding()];
  if (m.current_score > e.score) {
    if (e.score != -std::numeric_limits<double>::infinity()) {
      scores_.erase(scores_.find(e.score));
    }
    e.score = m.current_score;
    e.bindings = m.bindings;
    e.levels = m.levels;
    e.complete = complete;
    scores_.insert(e.score);
  } else if (complete && !e.complete && m.current_score == e.score) {
    // Prefer a complete witness at equal score.
    e.bindings = m.bindings;
    e.levels = m.levels;
    e.complete = true;
  }
}

double TopKSet::ThresholdLocked() const {
  if (min_score_mode_) return min_score_;
  if (frozen_) return frozen_value_;
  if (scores_.size() < k_) return -std::numeric_limits<double>::infinity();
  auto it = scores_.rbegin();
  std::advance(it, k_ - 1);
  // Monotonicity: per-root scores only grow, so the k-th best never drops.
  // A violation would make an earlier prune unsound.
  WP_DCHECK(*it >= last_threshold_)
      << "currentTopK regressed from " << last_threshold_ << " to " << *it;
  last_threshold_ = *it;
  return *it;
}

double TopKSet::Threshold() const {
  MutexLock lock(&mu_);
  return ThresholdLocked();
}

bool TopKSet::Alive(const PartialMatch& m) const {
  MutexLock lock(&mu_);
  if (min_score_mode_) {
    // Inclusive: a match that can still exactly reach the bar is wanted.
    return m.max_final_score >= min_score_;
  }
  double threshold = ThresholdLocked();
  if (threshold == -std::numeric_limits<double>::infinity()) return true;
  return m.max_final_score > threshold;
}

size_t TopKSet::NumRoots() const {
  MutexLock lock(&mu_);
  return best_.size();
}

std::vector<Answer> TopKSet::Finalize() const {
  MutexLock lock(&mu_);
  std::vector<Answer> all;
  all.reserve(best_.size());
  for (const auto& [root, e] : best_) {
    if (min_score_mode_ && e.score < min_score_) continue;
    Answer a;
    a.root = root;
    a.score = e.score;
    a.bindings = e.bindings;
    a.levels = e.levels;
    all.push_back(std::move(a));
  }
  std::sort(all.begin(), all.end(), [](const Answer& a, const Answer& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.root < b.root;
  });
  if (all.size() > k_) all.resize(k_);
  return all;
}

}  // namespace whirlpool::exec
