#include "exec/server.h"

#include <chrono>
#include <thread>

#include "query/matcher.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

void SpinFor(double seconds) {
  if (seconds <= 0) return;
  if (seconds >= 0.0005) {
    // Sleep rather than spin: injected costs must overlap across server
    // threads (that is what gives Whirlpool-M its parallelism in the
    // paper's 1.8 msec/op setting), and OS timer accuracy is fine here.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return;
  }
  Stopwatch sw;
  while (sw.ElapsedSeconds() < seconds) {
    // busy wait; granularity of sleep is too coarse below ~2ms
  }
}

std::vector<PartialMatch> GenerateRootMatches(const QueryPlan& plan,
                                              const ExecOptions& options, TopKSet* topk,
                                              ExecMetrics* metrics,
                                              std::atomic<uint64_t>* seq) {
  std::vector<PartialMatch> out;
  const size_t n = plan.pattern().size();
  const bool complete_at_root = plan.num_servers() == 0;
  for (NodeId r : query::RootCandidates(plan.index(), plan.pattern())) {
    PartialMatch m;
    m.bindings.assign(n, xml::kInvalidNode);
    m.levels.assign(n, MatchLevel::kDeleted);
    m.bindings[0] = r;
    m.levels[0] = MatchLevel::kExact;
    m.current_score = 0.0;
    m.max_final_score = options.aggregation == ScoreAggregation::kSumWitnesses
                            ? plan.RemainingSumMax(r, 0)
                            : plan.RemainingMax(0);
    m.seq = seq->fetch_add(1, std::memory_order_relaxed);
    metrics->matches_created.fetch_add(1, std::memory_order_relaxed);
    topk->Update(m, complete_at_root);
    if (complete_at_root) {
      metrics->matches_completed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (options.semantics == MatchSemantics::kRelaxed && !topk->Alive(m)) {
      // Can only happen with a frozen threshold above the max total score.
      metrics->matches_pruned.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.push_back(std::move(m));
  }
  return out;
}

namespace {

/// Walks up the pattern from `spec.pattern_node` to the nearest node bound
/// in `m` (the root is always bound).
int NearestBoundPatternAncestor(const TreePattern& pattern, const PartialMatch& m,
                                int pattern_node) {
  int p = pattern.node(pattern_node).parent;
  while (p > 0 && m.bindings[static_cast<size_t>(p)] == xml::kInvalidNode) {
    p = pattern.node(p).parent;
  }
  return p < 0 ? 0 : p;
}

}  // namespace

void ProcessAtServer(const QueryPlan& plan, const ExecOptions& options,
                     const PartialMatch& m, int s, TopKSet* topk, ExecMetrics* metrics,
                     std::atomic<uint64_t>* seq, std::vector<PartialMatch>* out_survivors,
                     ServerJoinCache* cache, const Instrumentation* ins,
                     CancelToken* token) {
  static const Instrumentation kDisabled;
  if (ins == nullptr) ins = &kDisabled;
  // Close the server_op span on every return path.
  struct OpSpan {
    const Instrumentation* ins;
    uint64_t start;
    int server;
    uint64_t seq;
    ~OpSpan() { ins->ServerOp(start, ServerId(server), MatchSeq(seq)); }
  } op_span{ins, ins->Begin(), s, m.seq};
  metrics->server_operations.fetch_add(1, std::memory_order_relaxed);
  metrics->per_server_operations[static_cast<size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);
  if (options.op_cost_seconds > 0) SpinFor(options.op_cost_seconds);

  const ServerSpec& spec = plan.server(s);
  const TagIndex& index = plan.index();
  const auto& doc = index.doc();
  const TreePattern& pattern = plan.pattern();
  const size_t qi = static_cast<size_t>(spec.pattern_node);
  // Mask/bindings agreement: the router never re-routes to a visited server,
  // so this server's pattern node must still be unbound.
  WP_DCHECK(m.bindings.size() == pattern.size() &&
            m.levels.size() == pattern.size())
      << "match shape mismatch: " << m.bindings.size() << " bindings, "
      << m.levels.size() << " levels, pattern size " << pattern.size();
  WP_DCHECK(!m.Visited(s)) << "server " << s << " re-processing match "
                           << m.seq << " (mask " << m.visited_mask << ")";
  WP_DCHECK(m.bindings[qi] == xml::kInvalidNode)
      << "unvisited pattern node " << qi << " already bound in match " << m.seq;
  const bool exact = options.semantics == MatchSemantics::kExact;
  const bool prune = options.engine != EngineKind::kLockStepNoPrun;
  const bool sum_mode = options.aggregation == ScoreAggregation::kSumWitnesses;

  // Candidate source: relaxed matches attach anywhere under the ROOT
  // binding (subtree-promotion closure); exact matches must pass through the
  // nearest bound pattern ancestor. Sum-witness aggregation evaluates
  // component predicates root-relative (Def 4.1), so its anchor is always
  // the root.
  NodeId anchor;
  std::vector<ChainStep> anchor_chain;
  if (exact && !sum_mode) {
    int anc = NearestBoundPatternAncestor(pattern, m, spec.pattern_node);
    anchor = m.bindings[static_cast<size_t>(anc)];
    anchor_chain = pattern.Chain(anc, spec.pattern_node);
  } else {
    anchor = m.root_binding();
    anchor_chain = spec.chain_from_root;
  }

  std::vector<NodeId> candidates;
  if (spec.wildcard) {
    candidates = index.Candidates(anchor, index::kWildcardTag, spec.value);
  } else if (spec.tag != xml::kInvalidTag) {
    candidates = spec.value
                     ? index.DescendantsWithTagValue(anchor, spec.tag, *spec.value)
                     : index.DescendantsWithTag(anchor, spec.tag);
  }

  uint64_t emitted = 0;
  auto handle_extension = [&](PartialMatch&& ext) {
    ++emitted;
    WP_DCHECK(ext.Visited(s)) << "extension does not record server " << s;
    WP_DCHECK(ext.max_final_score >= ext.current_score)
        << "max_final_score " << ext.max_final_score
        << " below current_score " << ext.current_score;
    metrics->matches_created.fetch_add(1, std::memory_order_relaxed);
    const bool complete = ext.IsComplete(plan.num_servers());
    topk->Update(ext, complete);
    if (complete) {
      metrics->matches_completed.fetch_add(1, std::memory_order_relaxed);
      ins->Complete(MatchSeq(ext.seq));
      return;
    }
    if (!prune || topk->Alive(ext)) {
      out_survivors->push_back(std::move(ext));
    } else {
      metrics->matches_pruned.fetch_add(1, std::memory_order_relaxed);
      ins->Prune(ServerId(s), MatchSeq(ext.seq));
    }
  };

  if (sum_mode) {
    // One extension accumulating every witness's contribution (Def 4.4
    // with relaxation-graded tf). The binding records the best witness.
    double total = 0.0;
    double best_contrib = -1.0;
    NodeId best_binding = xml::kInvalidNode;
    MatchLevel best_level = MatchLevel::kDeleted;
    for (NodeId c : candidates) {
      metrics->predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
      MatchLevel level = score::ClassifyBinding(index, anchor, c, anchor_chain);
      if (exact && level != MatchLevel::kExact) continue;
      const double contrib = plan.Contribution(s, c, level);
      total += contrib;
      if (contrib > best_contrib) {
        best_contrib = contrib;
        best_binding = c;
        best_level = level;
      }
    }
    if (best_binding == xml::kInvalidNode && exact) return;  // no exact witness
    PartialMatch ext = m;
    ext.bindings[qi] = best_binding;
    ext.levels[qi] = best_binding == xml::kInvalidNode ? MatchLevel::kDeleted
                                                       : best_level;
    ext.visited_mask |= ServerBit(s);
    ext.current_score += total;
    ext.max_final_score =
        ext.current_score + plan.RemainingSumMax(m.root_binding(), ext.visited_mask);
    ext.seq = seq->fetch_add(1, std::memory_order_relaxed);
    handle_extension(std::move(ext));
    return;
  }

  if (cache != nullptr && !exact && !plan.has_score_override()) {
    // Chaos site on the join-cache path, outside every lock: schedule
    // actions perturb hit/miss interleaving; an injected error cancels the
    // run's token and drops this operation (no survivors — the engine
    // unwinds at its next queue-boundary poll). Without a token the error
    // still counts as triggered but cannot propagate, so it is ignored.
    if (failpoint::Enabled()) {
      Status st = failpoint::InjectedError(failpoint::sites::kCacheLookup);
      if (!st.ok()) {
        if (token != nullptr) {
          token->CancelError(std::move(st));
          return;
        }
      }
    }
    // Memoized path: levels for (server, root) are reusable across all
    // tuples of this root.
    auto entry = cache->GetOrCompute(s, m.root_binding(), [&] {
      ServerJoinCache::Entry computed;
      computed.reserve(candidates.size());
      for (NodeId c : candidates) {
        metrics->predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
        computed.push_back({c, score::ClassifyBinding(index, anchor, c, anchor_chain)});
      }
      return computed;
    });
    for (const ServerJoinCache::Binding& b : *entry) {
      PartialMatch ext = m;
      ext.bindings[qi] = b.node;
      ext.levels[qi] = b.level;
      ext.visited_mask |= ServerBit(s);
      ext.current_score += plan.Contribution(s, b.node, b.level);
      ext.max_final_score = ext.current_score + plan.RemainingMax(ext.visited_mask);
      ext.seq = seq->fetch_add(1, std::memory_order_relaxed);
      handle_extension(std::move(ext));
    }
    if (emitted == 0) {
      PartialMatch ext = m;
      ext.levels[qi] = MatchLevel::kDeleted;
      ext.visited_mask |= ServerBit(s);
      ext.max_final_score = ext.current_score + plan.RemainingMax(ext.visited_mask);
      ext.seq = seq->fetch_add(1, std::memory_order_relaxed);
      handle_extension(std::move(ext));
    }
    return;
  }

  for (NodeId c : candidates) {
    metrics->predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
    MatchLevel level;
    if (exact) {
      if (!score::MatchChainExact(index, anchor, c, anchor_chain)) continue;
      // Conditional pairwise predicates against already-bound neighbors
      // (Algorithm 1): the edge to a bound pattern child is checked now; the
      // edge to the parent was covered by the anchor chain when the parent
      // is the anchor, and will be checked by whichever binds later
      // otherwise.
      bool ok = true;
      for (int ch : spec.pattern_children) {
        NodeId cb = m.bindings[static_cast<size_t>(ch)];
        if (cb == xml::kInvalidNode) continue;
        metrics->predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
        const bool holds = pattern.node(ch).axis == Axis::kChild
                               ? doc.IsChild(c, cb)
                               : doc.IsDescendant(c, cb);
        if (!holds) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (spec.pattern_parent > 0) {
        NodeId pb = m.bindings[static_cast<size_t>(spec.pattern_parent)];
        if (pb != xml::kInvalidNode) {
          metrics->predicate_comparisons.fetch_add(1, std::memory_order_relaxed);
          const bool holds = spec.axis_from_parent == Axis::kChild
                                 ? doc.IsChild(pb, c)
                                 : doc.IsDescendant(pb, c);
          if (!holds) continue;
        }
      }
      level = MatchLevel::kExact;
    } else {
      level = score::ClassifyBinding(index, anchor, c, anchor_chain);
    }

    PartialMatch ext = m;
    ext.bindings[qi] = c;
    ext.levels[qi] = level;
    ext.visited_mask |= ServerBit(s);
    ext.current_score += plan.Contribution(s, c, level);
    ext.max_final_score = ext.current_score + plan.RemainingMax(ext.visited_mask);
    ext.seq = seq->fetch_add(1, std::memory_order_relaxed);
    handle_extension(std::move(ext));
  }

  if (emitted == 0 && !exact) {
    // Outer-join deletion row: the node is absent; the match lives on with
    // no contribution from this server.
    PartialMatch ext = m;
    ext.levels[qi] = MatchLevel::kDeleted;
    ext.visited_mask |= ServerBit(s);
    ext.max_final_score = ext.current_score + plan.RemainingMax(ext.visited_mask);
    ext.seq = seq->fetch_add(1, std::memory_order_relaxed);
    handle_extension(std::move(ext));
  }
}

}  // namespace whirlpool::exec
