#include "exec/tracer.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"
#include "util/json.h"

namespace whirlpool::exec {

namespace {

/// Process-unique tracer ids; never reused, so a stale thread-local cache
/// entry can never alias a new Tracer allocated at the same address.
std::atomic<uint64_t> g_next_tracer_id{1};

thread_local uint64_t tl_tracer_id = 0;
thread_local void* tl_buffer = nullptr;

}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(MonotonicNs()) {}

Tracer::Buffer* Tracer::GetBuffer() {
  if (tl_tracer_id == id_) return static_cast<Buffer*>(tl_buffer);
  auto buffer = std::make_unique<Buffer>();
  Buffer* raw = buffer.get();
  {
    MutexLock reg_lock(&mu_);
    raw->tid = static_cast<int>(buffers_.size());
    {
      MutexLock buf_lock(&raw->mu);
      raw->events.reserve(256);
    }
    buffers_.push_back(std::move(buffer));
  }
  tl_tracer_id = id_;
  tl_buffer = raw;
  return raw;
}

void Tracer::RecordSpan(const char* name, ServerId server, MatchSeq match_seq,
                        uint64_t start_ns, uint64_t end_ns) {  // NOLINT(bugprone-easily-swappable-parameters)
  // Chaos site before the buffer lock: a stalled writer here races the live
  // export path (WriteChromeTrace/NumEvents), pinning the export snapshot's
  // locking against concurrent recording under perturbation.
  WHIRLPOOL_FAILPOINT(failpoint::sites::kTracerRecord);
  Buffer* buf = GetBuffer();
  // Uncontended unless an export is concurrently scanning this buffer.
  MutexLock lock(&buf->mu);
  buf->events.push_back({name, start_ns, end_ns - start_ns, match_seq.value,
                         server.value, /*instant=*/false});
}

void Tracer::RecordInstant(const char* name, ServerId server, MatchSeq match_seq) {
  WHIRLPOOL_FAILPOINT(failpoint::sites::kTracerRecord);
  Buffer* buf = GetBuffer();
  MutexLock lock(&buf->mu);
  buf->events.push_back(
      {name, MonotonicNs(), 0, match_seq.value, server.value, /*instant=*/true});
}

void Tracer::SetThreadName(const std::string& name) {
  Buffer* buf = GetBuffer();
  MutexLock lock(&buf->mu);
  buf->name = name;
}

void Tracer::AttachCounters(const TelemetrySnapshot& timeseries) {
  MutexLock lock(&mu_);
  counters_ = timeseries;
}

size_t Tracer::NumEvents() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& b : buffers_) {
    MutexLock buf_lock(&b->mu);
    n += b->events.size();
  }
  return n;
}

namespace {

/// Streams one thread's snapshotted events as trace_event JSON objects
/// (",\n{...}" each, Chrome conventions; `epoch_ns` is the trace's ts zero
/// point). Takes a copied event vector, not the Buffer itself: the export
/// path snapshots under the locks and streams after releasing them, so no
/// lock is (or may be) held here.
void AppendEventsJson(int tid, const std::vector<Tracer::Event>& events,
                      uint64_t epoch_ns, std::ostream& os) {
  for (const Tracer::Event& e : events) {
    // ts is microseconds since tracer construction (Chrome convention).
    const double ts =
        static_cast<double>(e.start_ns - std::min(e.start_ns, epoch_ns)) / 1e3;
    os << ",\n{\"name\":\"" << util::JsonEscape(e.name)
       << "\",\"cat\":\"exec\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << util::JsonNumber(ts);
    if (e.instant) {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      os << ",\"ph\":\"X\",\"dur\":"
         << util::JsonNumber(static_cast<double>(e.dur_ns) / 1e3);
    }
    os << ",\"args\":{\"server\":" << e.server
       << ",\"match_seq\":" << e.match_seq << "}}";
  }
}

/// Streams one telemetry series as Chrome counter events ("ph":"C"): one
/// event per retained sample, rendered by Perfetto as a counter track
/// time-aligned with the spans (shared MonotonicNs clock / epoch).
void AppendCounterTrackJson(const TelemetrySnapshot::Series& series,
                            const std::vector<uint64_t>& t_ns,
                            uint64_t epoch_ns, std::ostream& os) {
  const size_t rows = std::min(series.values.size(), t_ns.size());
  for (size_t i = 0; i < rows; ++i) {
    const double ts =
        static_cast<double>(t_ns[i] - std::min(t_ns[i], epoch_ns)) / 1e3;
    os << ",\n{\"name\":\"" << util::JsonEscape(series.name)
       << "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
       << util::JsonNumber(ts) << ",\"args\":{\"value\":"
       << util::JsonNumber(series.values[i]) << "}}";
  }
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& os) const {
  // Snapshot every buffer under its locks first and stream only after both
  // are released: operator<< may block on the sink (file, pipe), and
  // blocking I/O under kTracer/kTracerBuffer would stall every concurrently
  // recording thread for the duration of the write (WP009).
  struct BufferSnapshot {
    int tid;
    std::string name;
    std::vector<Event> events;
  };
  std::vector<BufferSnapshot> snapshots;
  TelemetrySnapshot counters;
  {
    MutexLock lock(&mu_);
    snapshots.reserve(buffers_.size());
    for (const auto& b : buffers_) {
      MutexLock buf_lock(&b->mu);
      snapshots.push_back({b->tid, b->name, b->events});
    }
    counters = counters_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"whirlpool\"}}";
  for (const BufferSnapshot& snap : snapshots) {
    if (snap.name.empty()) continue;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << snap.tid << ",\"args\":{\"name\":\"" << util::JsonEscape(snap.name)
       << "\"}}";
  }
  for (const BufferSnapshot& snap : snapshots) {
    AppendEventsJson(snap.tid, snap.events, epoch_ns_, os);
  }
  for (const TelemetrySnapshot::Series& s : counters.series) {
    AppendCounterTrackJson(s, counters.t_ns, epoch_ns_, os);
  }
  os << "]}\n";
}

}  // namespace whirlpool::exec
