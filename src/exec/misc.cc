#include <sstream>

#include "exec/partial_match.h"

namespace whirlpool::exec {

std::string PartialMatch::ToString() const {
  std::ostringstream os;
  os << "match{root=" << bindings[0] << " score=" << current_score
     << " max_final=" << max_final_score << " visited=0x" << std::hex << visited_mask
     << std::dec << " [";
  for (size_t i = 1; i < bindings.size(); ++i) {
    if (i > 1) os << ' ';
    if (bindings[i] == xml::kInvalidNode) {
      os << '-';
    } else {
      os << bindings[i] << ':' << score::MatchLevelName(levels[i]);
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace whirlpool::exec
