#include "exec/metrics.h"

#include <sstream>

#include "util/json.h"

namespace whirlpool::exec {

MetricsSnapshot ExecMetrics::Snapshot(double wall_seconds, int num_servers) const {
  MetricsSnapshot s;
  s.server_operations = server_operations.load(std::memory_order_relaxed);
  s.predicate_comparisons = predicate_comparisons.load(std::memory_order_relaxed);
  s.matches_created = matches_created.load(std::memory_order_relaxed);
  s.matches_pruned = matches_pruned.load(std::memory_order_relaxed);
  s.matches_completed = matches_completed.load(std::memory_order_relaxed);
  s.routing_decisions = routing_decisions.load(std::memory_order_relaxed);
  s.wall_seconds = wall_seconds;
  if (num_servers > kMaxServers) num_servers = kMaxServers;
  s.per_server_operations.reserve(static_cast<size_t>(num_servers));
  for (int i = 0; i < num_servers; ++i) {
    s.per_server_operations.push_back(
        per_server_operations[static_cast<size_t>(i)].load(std::memory_order_relaxed));
  }
  s.server_op_latency = server_op_latency.Snapshot();
  s.queue_wait_latency = queue_wait_latency.Snapshot();
  s.query_latency = query_latency.Snapshot();
  if (failpoint::Enabled()) s.failpoints = failpoint::Snapshot();
  return s;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "ops=" << server_operations << " cmps=" << predicate_comparisons
     << " created=" << matches_created << " pruned=" << matches_pruned
     << " completed=" << matches_completed << " routed=" << routing_decisions
     << " wall=" << wall_seconds << "s";
  if (server_op_latency.count > 0) {
    os << " op_min_us=" << server_op_latency.min_us
       << " op_p50us=" << server_op_latency.p50_us
       << " op_p99us=" << server_op_latency.p99_us;
  }
  return os.str();
}

namespace {

void AppendLatencyJson(std::ostringstream& os, const char* name,
                       const util::LatencyStats& s) {
  os << '"' << name << "\":{\"count\":" << s.count
     << ",\"mean_us\":" << util::JsonNumber(s.mean_us)
     << ",\"min_us\":" << util::JsonNumber(s.min_us)
     << ",\"p50_us\":" << util::JsonNumber(s.p50_us)
     << ",\"p95_us\":" << util::JsonNumber(s.p95_us)
     << ",\"p99_us\":" << util::JsonNumber(s.p99_us)
     << ",\"max_us\":" << util::JsonNumber(s.max_us) << "}";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"server_operations\":" << server_operations
     << ",\"predicate_comparisons\":" << predicate_comparisons
     << ",\"matches_created\":" << matches_created
     << ",\"matches_pruned\":" << matches_pruned
     << ",\"matches_completed\":" << matches_completed
     << ",\"routing_decisions\":" << routing_decisions
     << ",\"wall_seconds\":" << util::JsonNumber(wall_seconds)
     << ",\"per_server_operations\":[";
  for (size_t i = 0; i < per_server_operations.size(); ++i) {
    if (i > 0) os << ',';
    os << per_server_operations[i];
  }
  os << "],\"adaptive\":{\"drain_adaptive\":"
     << (adaptive.drain_adaptive ? "true" : "false")
     << ",\"shards_auto\":" << (adaptive.shards_auto ? "true" : "false")
     << ",\"chosen_shards\":" << adaptive.chosen_shards
     << ",\"drain_max\":" << adaptive.drain_max
     << ",\"adjustments\":" << adaptive.adjustments << ",\"consumers\":[";
  for (size_t i = 0; i < adaptive.consumers.size(); ++i) {
    const auto& c = adaptive.consumers[i];
    if (i > 0) os << ',';
    os << "{\"queue\":" << c.queue << ",\"drain\":" << c.drain
       << ",\"lock_wait_ewma_us\":" << util::JsonNumber(c.lock_wait_ewma_us)
       << ",\"process_ewma_us\":" << util::JsonNumber(c.process_ewma_us)
       << ",\"samples\":" << c.samples << "}";
  }
  os << "],\"queue_peak_depth\":[";
  for (size_t i = 0; i < adaptive.queue_peak_depth.size(); ++i) {
    if (i > 0) os << ',';
    os << adaptive.queue_peak_depth[i];
  }
  os << "]},\"failpoints\":[";
  for (size_t i = 0; i < failpoints.size(); ++i) {
    const auto& f = failpoints[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << util::JsonEscape(f.name) << "\",\"spec\":\""
       << util::JsonEscape(f.spec) << "\",\"hits\":" << f.hits
       << ",\"triggers\":" << f.triggers << "}";
  }
  os << "],\"timeseries\":{\"interval_us\":" << timeseries.interval_us
     << ",\"stride_us\":" << timeseries.stride_us
     << ",\"ticks\":" << timeseries.ticks
     << ",\"decimations\":" << timeseries.decimations << ",\"t_us\":[";
  // Time axis relative to the first retained sample, in microseconds.
  const uint64_t t0 = timeseries.t_ns.empty() ? 0 : timeseries.t_ns.front();
  for (size_t i = 0; i < timeseries.t_ns.size(); ++i) {
    if (i > 0) os << ',';
    os << util::JsonNumber(static_cast<double>(timeseries.t_ns[i] - t0) / 1e3);
  }
  os << "],\"series\":[";
  for (size_t i = 0; i < timeseries.series.size(); ++i) {
    const auto& s = timeseries.series[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << util::JsonEscape(s.name) << "\",\"kind\":\""
       << (s.counter ? "counter" : "gauge") << "\",\"values\":[";
    for (size_t j = 0; j < s.values.size(); ++j) {
      if (j > 0) os << ',';
      os << util::JsonNumber(s.values[j]);
    }
    os << "]}";
  }
  os << "]},\"latency\":{";
  AppendLatencyJson(os, "server_op", server_op_latency);
  os << ',';
  AppendLatencyJson(os, "queue_wait", queue_wait_latency);
  os << ',';
  AppendLatencyJson(os, "query", query_latency);
  os << "}}";
  return os.str();
}

}  // namespace whirlpool::exec
