// Execution tracing (observability layer): a Tracer records per-match span
// and instant events (enqueue, queue-wait, server-op, prune, route,
// complete) into thread-local buffers that are merged at export time into
// Chrome trace_event JSON (loadable in about:tracing / Perfetto).
//
// The Instrumentation wrapper is what the engines call. It bundles the
// optional Tracer with the latency histograms in ExecMetrics and compiles
// every hook down to one or two predictable branches when both are disabled
// (the default), so untraced runs pay no measurable overhead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "exec/ids.h"
#include "exec/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

/// Monotonic nanoseconds since an arbitrary (steady-clock) process epoch.
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Collects trace events from many threads with no shared-state
/// contention on the hot path: each thread appends to its own buffer
/// (registered once per thread per tracer under a mutex).
class Tracer {
 public:
  struct Event {
    const char* name;    ///< static string; never freed
    uint64_t start_ns;   ///< MonotonicNs timestamp
    uint64_t dur_ns;     ///< 0 for instant events
    uint64_t match_seq;  ///< the partial match involved (0 if none)
    int server;          ///< server id, -1 for router/none
    bool instant;
  };

  Tracer();
  ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// start_ns/end_ns are one time interval, always sourced from the same
  /// clock read pair — a transposition is caught by the dur_ns underflow,
  /// unlike the server/seq ids (hence their strong types; see exec/ids.h).
  void RecordSpan(const char* name, ServerId server, MatchSeq match_seq,
                  uint64_t start_ns, uint64_t end_ns);  // NOLINT(bugprone-easily-swappable-parameters)
  void RecordInstant(const char* name, ServerId server, MatchSeq match_seq);

  /// Total events recorded so far (merges buffer sizes; call after the run).
  size_t NumEvents() const;

  /// Names the calling thread's track: WriteChromeTrace emits a
  /// "thread_name" metadata event ("ph":"M") so Perfetto labels the track
  /// (router / server N / main) instead of showing a bare tid.
  void SetThreadName(const std::string& name);

  /// Attaches the run's flight-recorder series: WriteChromeTrace renders
  /// every series as a Chrome counter track ("ph":"C") time-aligned with
  /// the spans (same MonotonicNs clock). Call once, after the run quiesces.
  void AttachCounters(const TelemetrySnapshot& timeseries);

  /// Writes every recorded event as Chrome trace_event JSON
  /// ({"traceEvents": [...]}), timestamps relative to tracer construction:
  /// process/thread metadata first, then spans/instants, then any attached
  /// telemetry counter tracks.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  /// One producer thread's event log. `mu` is uncontended on the hot path
  /// (only its owner thread appends); it exists so NumEvents /
  /// WriteChromeTrace may run concurrently with recording (live trace
  /// export) without a data race on the vector.
  struct Buffer {
    Mutex mu{LockRank::kTracerBuffer, "Tracer::Buffer::mu"};
    std::vector<Event> events GUARDED_BY(mu);
    /// Perfetto track label (SetThreadName); empty = unnamed.
    std::string name GUARDED_BY(mu);
    /// Set once at registration (under the registry mu_), then read-only.
    int tid = 0;  // wp-lint: disable(WP002) write-once before publication
  };

  Buffer* GetBuffer() EXCLUDES(mu_);

  const uint64_t id_;        ///< process-unique; keys the thread-local cache
  const uint64_t epoch_ns_;  ///< construction time; trace ts zero point
  /// Registry lock; ranked below the per-thread Buffer locks because
  /// registration and export both take mu_ first, then a Buffer::mu.
  mutable Mutex mu_{LockRank::kTracer, "Tracer::mu_"};
  /// Registration list; each Buffer's contents are guarded by its own mu.
  std::vector<std::unique_ptr<Buffer>> buffers_ GUARDED_BY(mu_);
  /// Telemetry series rendered as counter tracks (AttachCounters).
  TelemetrySnapshot counters_ GUARDED_BY(mu_);
};

/// \brief Per-run instrumentation context: optional tracer + optional
/// latency histograms. Passed by pointer through the engines into
/// ProcessAtServer; a default-constructed instance (or null pointer) is
/// fully disabled.
class Instrumentation {
 public:
  Instrumentation() = default;
  Instrumentation(Tracer* tracer, ExecMetrics* metrics, bool collect_latencies)
      : tracer_(tracer), metrics_(metrics), latencies_(collect_latencies) {}

  /// True when any timing work is needed (the one branch disabled runs pay).
  bool timing() const { return tracer_ != nullptr || latencies_; }

  /// Start timestamp for a span, 0 when disabled.
  uint64_t Begin() const { return timing() ? MonotonicNs() : 0; }

  /// Server operation finished: histogram + "server_op" span.
  void ServerOp(uint64_t start_ns, ServerId server, MatchSeq seq) const {
    if (!timing() || start_ns == 0) return;
    const uint64_t end = MonotonicNs();
    if (latencies_ && metrics_ != nullptr) {
      metrics_->server_op_latency.Record(end - start_ns);
    }
    if (tracer_ != nullptr) {
      tracer_->RecordSpan("server_op", server, seq, start_ns, end);
    }
  }

  /// Match enqueued (into the router or a server queue). Returns the
  /// enqueue timestamp to stash in the queue entry, 0 when disabled.
  uint64_t Enqueue(ServerId server, MatchSeq seq) const {
    if (!timing()) return 0;
    if (tracer_ != nullptr) tracer_->RecordInstant("enqueue", server, seq);
    return MonotonicNs();
  }

  /// Match dequeued: records the time it sat in the queue.
  void QueueWait(uint64_t enqueue_ns, ServerId server, MatchSeq seq) const {
    if (!timing() || enqueue_ns == 0) return;
    const uint64_t now = MonotonicNs();
    if (latencies_ && metrics_ != nullptr) {
      metrics_->queue_wait_latency.Record(now - enqueue_ns);
    }
    if (tracer_ != nullptr) {
      tracer_->RecordSpan("queue_wait", server, seq, enqueue_ns, now);
    }
  }

  /// Labels the calling thread's trace track (no-op untraced). Engines call
  /// it once at the top of each thread loop — router, server N, main — so
  /// Perfetto names the tracks (see Tracer::SetThreadName).
  void NameThread(const std::string& name) const {
    if (tracer_ != nullptr) tracer_->SetThreadName(name);
  }

  /// Routing decision taken: match `seq` goes to `server`.
  void Route(ServerId server, MatchSeq seq) const {
    if (tracer_ != nullptr) tracer_->RecordInstant("route", server, seq);
  }

  /// Match pruned against the top-k threshold.
  void Prune(ServerId server, MatchSeq seq) const {
    if (tracer_ != nullptr) tracer_->RecordInstant("prune", server, seq);
  }

  /// Match completed every server.
  void Complete(MatchSeq seq) const {
    if (tracer_ != nullptr) tracer_->RecordInstant("complete", ServerId::Router(), seq);
  }

  /// End-to-end query latency: histogram + "query" span.
  void QueryDone(uint64_t start_ns) const {
    if (!timing() || start_ns == 0) return;
    const uint64_t end = MonotonicNs();
    if (latencies_ && metrics_ != nullptr) {
      metrics_->query_latency.Record(end - start_ns);
    }
    if (tracer_ != nullptr) {
      tracer_->RecordSpan("query", ServerId::Router(), MatchSeq(0), start_ns, end);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  ExecMetrics* metrics_ = nullptr;
  bool latencies_ = false;
};

}  // namespace whirlpool::exec
