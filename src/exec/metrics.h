// Execution metrics (paper Sec 6.2.3): query execution time, number of
// server operations, number of partial matches created (plus predicate
// comparisons, the Figure 3 measure, and pruning counts), and — when
// latency collection is enabled — log-bucketed histograms of server-op
// time, queue wait, and end-to-end query latency.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/partial_match.h"
#include "util/failpoint.h"
#include "util/histogram.h"

namespace whirlpool::exec {

/// \brief Decisions and observations of the sync-knob controller
/// (exec/adaptive.h): the resolved shard count, each consumer's final drain
/// depth with its lock-wait / processing-time EWMAs, and the queue-depth
/// high-water marks. Default-constructed (all-zero) for engines that ran
/// without a controller.
struct AdaptiveSnapshot {
  /// True when queue_drain_batch == 0 governed the drains online.
  bool drain_adaptive = false;
  /// True when topk_shards == 0 picked the stripe count automatically.
  bool shards_auto = false;
  /// TopKSet stripe count the run actually used.
  int chosen_shards = 0;
  /// Upper drain bound (kAutoDrainMax when adaptive, the static knob else).
  int drain_max = 0;
  /// Total drain-depth changes across all consumers.
  int adjustments = 0;
  struct ConsumerDrain {
    int queue = 0;  ///< server id, or -1 for the router queue
    int drain = 0;  ///< final drain depth
    double lock_wait_ewma_us = 0.0;
    double process_ewma_us = 0.0;
    uint64_t samples = 0;
  };
  std::vector<ConsumerDrain> consumers;
  /// Queue-depth high-water marks: [router, server 0, server 1, ...].
  std::vector<uint64_t> queue_peak_depth;
};

/// \brief Flight-recorder time series (exec/telemetry.h): one shared
/// timestamp axis plus one value row per registered probe, as retained after
/// decimation. Default-constructed (no rows) when the run's sampler was off
/// (ExecOptions::telemetry_interval_us == 0).
struct TelemetrySnapshot {
  /// Configured base sampling interval.
  uint64_t interval_us = 0;
  /// Effective spacing between retained samples: interval_us doubled once
  /// per decimation, so rows stay uniformly spaced over the whole run.
  uint64_t stride_us = 0;
  /// Samples taken by the sampler (before decimation dropped any).
  uint64_t ticks = 0;
  /// Times the rings were halved to stay within capacity.
  uint64_t decimations = 0;
  /// Retained sample times (MonotonicNs, same clock as the tracer), ascending.
  std::vector<uint64_t> t_ns;
  struct Series {
    std::string name;
    /// Counter series hold the delta since the previous retained sample
    /// (decimation sums adjacent pairs, preserving total mass); gauge series
    /// hold the instantaneous value at each retained time.
    bool counter = false;
    std::vector<double> values;  ///< values.size() == t_ns.size()
  };
  std::vector<Series> series;
};

/// \brief Plain-value snapshot of the counters, safe to copy and compare.
struct MetricsSnapshot {
  /// Partial-match-processed-at-a-server events.
  uint64_t server_operations = 0;
  /// Join predicate evaluations (chain classifications / axis checks).
  uint64_t predicate_comparisons = 0;
  /// Partial matches materialized (root matches, extensions, deletion rows).
  uint64_t matches_created = 0;
  /// Matches discarded because they could not reach the top-k set.
  uint64_t matches_pruned = 0;
  /// Matches that completed all servers.
  uint64_t matches_completed = 0;
  /// Adaptive routing decisions taken (a bulk-routed batch counts once).
  uint64_t routing_decisions = 0;
  /// Wall-clock execution time in seconds.
  double wall_seconds = 0.0;
  /// Per-server operation counts (index = server id); sums to
  /// server_operations.
  std::vector<uint64_t> per_server_operations;
  /// Latency percentiles (all-zero unless ExecOptions::collect_latencies
  /// was set for the run).
  util::LatencyStats server_op_latency;
  util::LatencyStats queue_wait_latency;
  util::LatencyStats query_latency;
  /// Sync-knob controller decisions (filled by the engines after the run;
  /// all-zero when no controller was involved).
  AdaptiveSnapshot adaptive;
  /// Per-failpoint hit/trigger counters of the run's installed plan
  /// (util/failpoint.h); empty when no plan was active.
  std::vector<failpoint::Stats> failpoints;
  /// Flight-recorder time series (empty unless the run sampled telemetry).
  TelemetrySnapshot timeseries;

  std::string ToString() const;
  /// One JSON object with every counter, the per-server breakdown and the
  /// p50/p95/p99 latency stats (schema documented in README.md).
  std::string ToJson() const;
};

/// \brief Thread-safe counters incremented by the engines.
struct ExecMetrics {
  std::atomic<uint64_t> server_operations{0};
  std::atomic<uint64_t> predicate_comparisons{0};
  std::atomic<uint64_t> matches_created{0};
  std::atomic<uint64_t> matches_pruned{0};
  std::atomic<uint64_t> matches_completed{0};
  std::atomic<uint64_t> routing_decisions{0};
  /// Per-server operation counters; QueryPlan::Build enforces the
  /// kMaxServers pattern limit, so an in-range server id always has a slot.
  std::array<std::atomic<uint64_t>, kMaxServers> per_server_operations{};
  /// Latency histograms, populated only when the run collects latencies
  /// (see exec/tracer.h — Instrumentation).
  util::LatencyHistogram server_op_latency;
  util::LatencyHistogram queue_wait_latency;
  util::LatencyHistogram query_latency;

  MetricsSnapshot Snapshot(double wall_seconds) const {
    return Snapshot(wall_seconds, 0);
  }

  /// Snapshot with the per-server breakdown sized from the plan
  /// (`num_servers` = QueryPlan::num_servers()).
  MetricsSnapshot Snapshot(double wall_seconds, int num_servers) const;
};

}  // namespace whirlpool::exec
