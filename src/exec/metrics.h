// Execution metrics (paper Sec 6.2.3): query execution time, number of
// server operations, number of partial matches created (plus predicate
// comparisons, the Figure 3 measure, and pruning counts), and — when
// latency collection is enabled — log-bucketed histograms of server-op
// time, queue wait, and end-to-end query latency.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/partial_match.h"
#include "util/histogram.h"

namespace whirlpool::exec {

/// \brief Plain-value snapshot of the counters, safe to copy and compare.
struct MetricsSnapshot {
  /// Partial-match-processed-at-a-server events.
  uint64_t server_operations = 0;
  /// Join predicate evaluations (chain classifications / axis checks).
  uint64_t predicate_comparisons = 0;
  /// Partial matches materialized (root matches, extensions, deletion rows).
  uint64_t matches_created = 0;
  /// Matches discarded because they could not reach the top-k set.
  uint64_t matches_pruned = 0;
  /// Matches that completed all servers.
  uint64_t matches_completed = 0;
  /// Adaptive routing decisions taken (a bulk-routed batch counts once).
  uint64_t routing_decisions = 0;
  /// Wall-clock execution time in seconds.
  double wall_seconds = 0.0;
  /// Per-server operation counts (index = server id); sums to
  /// server_operations.
  std::vector<uint64_t> per_server_operations;
  /// Latency percentiles (all-zero unless ExecOptions::collect_latencies
  /// was set for the run).
  util::LatencyStats server_op_latency;
  util::LatencyStats queue_wait_latency;
  util::LatencyStats query_latency;

  std::string ToString() const;
  /// One JSON object with every counter, the per-server breakdown and the
  /// p50/p95/p99 latency stats (schema documented in README.md).
  std::string ToJson() const;
};

/// \brief Thread-safe counters incremented by the engines.
struct ExecMetrics {
  std::atomic<uint64_t> server_operations{0};
  std::atomic<uint64_t> predicate_comparisons{0};
  std::atomic<uint64_t> matches_created{0};
  std::atomic<uint64_t> matches_pruned{0};
  std::atomic<uint64_t> matches_completed{0};
  std::atomic<uint64_t> routing_decisions{0};
  /// Per-server operation counters; QueryPlan::Build enforces the
  /// kMaxServers pattern limit, so an in-range server id always has a slot.
  std::array<std::atomic<uint64_t>, kMaxServers> per_server_operations{};
  /// Latency histograms, populated only when the run collects latencies
  /// (see exec/tracer.h — Instrumentation).
  util::LatencyHistogram server_op_latency;
  util::LatencyHistogram queue_wait_latency;
  util::LatencyHistogram query_latency;

  MetricsSnapshot Snapshot(double wall_seconds) const {
    return Snapshot(wall_seconds, 0);
  }

  /// Snapshot with the per-server breakdown sized from the plan
  /// (`num_servers` = QueryPlan::num_servers()).
  MetricsSnapshot Snapshot(double wall_seconds, int num_servers) const;
};

}  // namespace whirlpool::exec
