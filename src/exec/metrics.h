// Execution metrics (paper Sec 6.2.3): query execution time, number of
// server operations, number of partial matches created (plus predicate
// comparisons, the Figure 3 measure, and pruning counts).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace whirlpool::exec {

/// \brief Plain-value snapshot of the counters, safe to copy and compare.
struct MetricsSnapshot {
  /// Partial-match-processed-at-a-server events.
  uint64_t server_operations = 0;
  /// Join predicate evaluations (chain classifications / axis checks).
  uint64_t predicate_comparisons = 0;
  /// Partial matches materialized (root matches, extensions, deletion rows).
  uint64_t matches_created = 0;
  /// Matches discarded because they could not reach the top-k set.
  uint64_t matches_pruned = 0;
  /// Matches that completed all servers.
  uint64_t matches_completed = 0;
  /// Adaptive routing decisions taken (a bulk-routed batch counts once).
  uint64_t routing_decisions = 0;
  /// Wall-clock execution time in seconds.
  double wall_seconds = 0.0;
  /// Per-server operation counts (index = server id); sums to
  /// server_operations.
  std::vector<uint64_t> per_server_operations;

  std::string ToString() const;
};

/// \brief Thread-safe counters incremented by the engines.
struct ExecMetrics {
  std::atomic<uint64_t> server_operations{0};
  std::atomic<uint64_t> predicate_comparisons{0};
  std::atomic<uint64_t> matches_created{0};
  std::atomic<uint64_t> matches_pruned{0};
  std::atomic<uint64_t> matches_completed{0};
  std::atomic<uint64_t> routing_decisions{0};
  /// Per-server operation counters; patterns are capped at 32 nodes.
  std::array<std::atomic<uint64_t>, 32> per_server_operations{};

  MetricsSnapshot Snapshot(double wall_seconds) const {
    return Snapshot(wall_seconds, 0);
  }

  MetricsSnapshot Snapshot(double wall_seconds, int num_servers) const {
    MetricsSnapshot s;
    s.server_operations = server_operations.load(std::memory_order_relaxed);
    s.predicate_comparisons = predicate_comparisons.load(std::memory_order_relaxed);
    s.matches_created = matches_created.load(std::memory_order_relaxed);
    s.matches_pruned = matches_pruned.load(std::memory_order_relaxed);
    s.matches_completed = matches_completed.load(std::memory_order_relaxed);
    s.routing_decisions = routing_decisions.load(std::memory_order_relaxed);
    s.wall_seconds = wall_seconds;
    s.per_server_operations.reserve(static_cast<size_t>(num_servers));
    for (int i = 0; i < num_servers && i < 32; ++i) {
      s.per_server_operations.push_back(
          per_server_operations[static_cast<size_t>(i)].load(std::memory_order_relaxed));
    }
    return s;
  }
};

}  // namespace whirlpool::exec
