// Whirlpool-M (paper Sec 6.1.2): the multi-threaded adaptive engine. One
// thread per server (optionally more, the paper's future-work extension),
// one router thread, and the calling thread acts as the "main thread" that
// detects termination: the top-k answer is known when no partial match
// remains in any server queue, the router queue, or in processing.
//
// A simulated processor count (ExecOptions::processor_cap) bounds how many
// server threads do useful work concurrently, reproducing the paper's
// 1/2/4/infinity-processor study (Fig 9) on a single host.
#include <atomic>
#include <thread>

#include "exec/engine.h"
#include "exec/queue_policy.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "exec/tracer.h"
#include "util/mutex.h"
#include "util/semaphore.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

namespace {

/// Blocking priority queue with a stop flag. Extraction goes through
/// MatchHeap::Pop (std::pop_heap + move from the mutable back element) —
/// never through a const_cast of a frozen heap top.
class SyncMatchQueue {
 public:
  void Push(QueuedMatch&& qm) {
    {
      MutexLock lock(&mu_);
      queue_.Push(std::move(qm));
    }
    cv_.NotifyOne();
  }

  /// Blocks until a match is available or Stop() was called and the queue is
  /// empty. Returns false on shutdown.
  bool Pop(QueuedMatch* out) {
    MutexLock lock(&mu_);
    cv_.Wait(mu_, [&]() REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = queue_.Pop();
    return true;
  }

  void Stop() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  MatchHeap queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

/// Tracks the number of live partial matches in the system; main blocks in
/// WaitForDrain until it hits zero.
class InFlightTracker {
 public:
  void Add(uint64_t n) { count_.fetch_add(n, std::memory_order_acq_rel); }

  void Retire() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Taking mu_ orders this notify after a concurrent waiter's predicate
      // check, preventing the lost-wakeup race on the atomic counter.
      MutexLock lock(&mu_);
      cv_.NotifyAll();
    }
  }

  void WaitForDrain() {
    MutexLock lock(&mu_);
    cv_.Wait(mu_, [&] { return count_.load(std::memory_order_acquire) == 0; });
  }

 private:
  std::atomic<uint64_t> count_{0};
  Mutex mu_;
  CondVar cv_;
};

}  // namespace

Result<TopKResult> RunWhirlpoolM(const QueryPlan& plan, const ExecOptions& options) {
  WHIRLPOOL_RETURN_NOT_OK(ValidateOptions(options));
  Result<Router> router = Router::Make(plan, options);
  if (!router.ok()) return router.status();

  Stopwatch wall;
  ExecMetrics metrics;
  const Instrumentation ins(options.tracer, &metrics, options.collect_latencies);
  const uint64_t query_start = ins.Begin();
  std::atomic<uint64_t> seq{0};
  TopKSet topk(options.k, options.semantics == MatchSemantics::kRelaxed);
  if (options.has_frozen_threshold()) topk.FreezeThreshold(options.frozen_threshold);
  if (options.has_min_score_threshold()) {
    topk.SetMinScoreMode(options.min_score_threshold);
  }

  const int num_servers = plan.num_servers();
  ProcessorCap cap(options.processor_cap <= 0 ? ProcessorCap::kUnlimited
                                              : options.processor_cap);
  InFlightTracker in_flight;
  std::unique_ptr<ServerJoinCache> cache;
  if (options.cache_server_joins) {
    cache = std::make_unique<ServerJoinCache>(num_servers);
  }
  SyncMatchQueue router_queue;
  std::vector<SyncMatchQueue> server_queues(static_cast<size_t>(num_servers));

  // Seed the system before starting any thread so a fast drain cannot reach
  // zero prematurely.
  {
    std::vector<PartialMatch> roots =
        GenerateRootMatches(plan, options, &topk, &metrics, &seq);
    in_flight.Add(roots.size());
    for (PartialMatch& m : roots) {
      const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, m, -1);
      const uint64_t enq = ins.Enqueue(-1, m.seq);
      router_queue.Push({prio, std::move(m), enq});
    }
  }

  auto server_loop = [&](int s) {
    QueuedMatch qm;
    std::vector<PartialMatch> survivors;
    while (server_queues[static_cast<size_t>(s)].Pop(&qm)) {
      ins.QueueWait(qm.enqueue_ns, s, qm.match.seq);
      PartialMatch m = std::move(qm.match);
      // Late pruning: the threshold may have grown while queued.
      if (!topk.Alive(m) && options.engine != EngineKind::kLockStepNoPrun) {
        metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
        ins.Prune(s, m.seq);
        in_flight.Retire();
        continue;
      }
      survivors.clear();
      {
        ProcessorCapGuard guard(&cap);
        ProcessAtServer(plan, options, m, s, &topk, &metrics, &seq, &survivors,
                        cache.get(), &ins);
      }
      in_flight.Add(survivors.size());
      for (PartialMatch& ext : survivors) {
        const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, ext, -1);
        const uint64_t enq = ins.Enqueue(-1, ext.seq);
        router_queue.Push({prio, std::move(ext), enq});
      }
      in_flight.Retire();
    }
  };

  auto router_loop = [&] {
    QueuedMatch qm;
    while (router_queue.Pop(&qm)) {
      ins.QueueWait(qm.enqueue_ns, -1, qm.match.seq);
      PartialMatch m = std::move(qm.match);
      if (!topk.Alive(m)) {
        metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
        ins.Prune(-1, m.seq);
        in_flight.Retire();
        continue;
      }
      const int s = router->NextServer(m, topk.Threshold());
      metrics.routing_decisions.fetch_add(1, std::memory_order_relaxed);
      ins.Route(s, m.seq);
      const double prio = QueuePriority(plan, options.queue_policy, m, s);
      const uint64_t enq = ins.Enqueue(s, m.seq);
      server_queues[static_cast<size_t>(s)].Push({prio, std::move(m), enq});
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_servers * options.threads_per_server) + 1);
  for (int s = 0; s < num_servers; ++s) {
    for (int t = 0; t < options.threads_per_server; ++t) {
      threads.emplace_back(server_loop, s);
    }
  }
  threads.emplace_back(router_loop);

  in_flight.WaitForDrain();
  router_queue.Stop();
  for (auto& q : server_queues) q.Stop();
  for (auto& t : threads) t.join();

  ins.QueryDone(query_start);
  TopKResult result;
  result.answers = topk.Finalize();
  result.metrics = metrics.Snapshot(wall.ElapsedSeconds(), plan.num_servers());
  return result;
}

}  // namespace whirlpool::exec
