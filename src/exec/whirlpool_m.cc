// Whirlpool-M (paper Sec 6.1.2): the multi-threaded adaptive engine. One
// thread per server (optionally more, the paper's future-work extension),
// one router thread, and the calling thread acts as the "main thread" that
// detects termination: the top-k answer is known when no partial match
// remains in any server queue, the router queue, or in processing.
//
// Queue handoff is batched (ExecOptions::queue_drain_batch): consumers
// drain up to N matches per lock acquisition and producers publish whole
// vectors with one notify (SyncMatchQueue in queue_policy.h). Every
// consumer's drain depth is owned by a DrainGovernor (exec/adaptive.h):
// with a static knob the governor pins the legacy depths (single-entry
// server drains under a simulated op cost, full batches on the router);
// with queue_drain_batch == 0 it resizes each consumer online from
// observed lock-wait vs processing time. Matches held in a consumer's
// local batch are still counted by the InFlightTracker, so termination
// detection is unaffected by the buffering.
//
// A simulated processor count (ExecOptions::processor_cap) bounds how many
// server threads do useful work concurrently, reproducing the paper's
// 1/2/4/infinity-processor study (Fig 9) on a single host.
#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/adaptive.h"
#include "exec/cancel.h"
#include "exec/engine.h"
#include "exec/queue_policy.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "exec/telemetry.h"
#include "exec/tracer.h"
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/semaphore.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

namespace {

/// Tracks the number of live partial matches in the system; main blocks in
/// WaitForDrain until it hits zero.
class InFlightTracker {
 public:
  // acq_rel: the release side pairs with Retire's fetch_sub so writes that
  // enqueue the new matches happen-before the worker that retires them.
  void Add(uint64_t n) { count_.fetch_add(n, std::memory_order_acq_rel); }

  void Retire() {
    // acq_rel: the release publishes this worker's final writes to the match
    // before the count hits zero; pairs with WaitForDrain's acquire load.
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Taking mu_ orders this notify after a concurrent waiter's predicate
      // check, preventing the lost-wakeup race on the atomic counter.
      MutexLock lock(&mu_);
      cv_.NotifyAll();
    }
  }

  void WaitForDrain() {
    MutexLock lock(&mu_);
    // acquire: pairs with the release in Retire so every retired match's
    // writes are visible to main once the drain completes.
    cv_.Wait(mu_, [&] { return count_.load(std::memory_order_acquire) == 0; });
  }

  /// Instantaneous live-match count; monitoring only (telemetry gauge), so
  /// relaxed is sufficient.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  Mutex mu_{LockRank::kInFlight, "InFlightTracker::mu_"};
  CondVar cv_;
};

}  // namespace

Result<TopKResult> RunWhirlpoolM(const QueryPlan& plan, const ExecOptions& options) {
  WHIRLPOOL_RETURN_NOT_OK(ValidateOptions(options));
  Result<Router> router = Router::Make(plan, options);
  if (!router.ok()) return router.status();
  // ValidateOptions parse-checked the plan; install it for the run's scope.
  failpoint::ScopedConfig failpoints(options.failpoints, options.failpoint_seed);
  WHIRLPOOL_RETURN_NOT_OK(failpoints.status());
  CancelToken token(options.deadline_ms);

  Stopwatch wall;
  ExecMetrics metrics;
  const Instrumentation ins(options.tracer, &metrics, options.collect_latencies);
  const uint64_t query_start = ins.Begin();
  std::atomic<uint64_t> seq{0};
  const int num_servers = plan.num_servers();
  // Resolve the sync knobs' 0 = "auto" sentinels for this run's thread
  // count, and hand every consumer's drain depth to the controller: with a
  // static knob the governors pin the legacy depths (drain 1 on servers
  // under a simulated op cost — multi-entry drains only defer fresher
  // matches and slow pruning — full batches on the router, whose work per
  // match is a few hundred ns regardless); with queue_drain_batch == 0 the
  // governors resize online from observed lock-wait vs processing time.
  const int worker_threads = num_servers * options.threads_per_server + 1;
  const ResolvedSync sync = ResolveSyncKnobs(options, worker_threads);
  DrainController drains(options, sync);
  TopKSet topk(options.k, options.semantics == MatchSemantics::kRelaxed,
               sync.topk_shards);
  if (options.has_frozen_threshold()) topk.FreezeThreshold(options.frozen_threshold);
  if (options.has_min_score_threshold()) {
    topk.SetMinScoreMode(options.min_score_threshold);
  }

  ProcessorCap cap(options.processor_cap == 0 ? ProcessorCap::kUnlimited
                                              : options.processor_cap);
  InFlightTracker in_flight;
  std::unique_ptr<ServerJoinCache> cache;
  if (options.cache_server_joins) {
    cache = std::make_unique<ServerJoinCache>(num_servers);
  }
  // The router queue is always ordered by max-final-score (Upper/MPro);
  // each server queue follows the configured policy — its comparator must
  // match the priorities the router computes for it (integer-seq FIFO under
  // kFifo). Heap-allocated: SyncMatchQueue owns a Mutex and cannot move.
  SyncMatchQueue router_queue(QueuePolicy::kMaxFinalScore);
  std::vector<std::unique_ptr<SyncMatchQueue>> server_queues;
  server_queues.reserve(static_cast<size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    server_queues.push_back(std::make_unique<SyncMatchQueue>(options.queue_policy));
  }

  // Seed the system before starting any thread so a fast drain cannot reach
  // zero prematurely.
  {
    std::vector<PartialMatch> roots =
        GenerateRootMatches(plan, options, &topk, &metrics, &seq);
    in_flight.Add(roots.size());
    std::vector<QueuedMatch> seed;
    seed.reserve(roots.size());
    for (PartialMatch& m : roots) {
      const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, m, -1);
      const uint64_t enq = ins.Enqueue(ServerId::Router(), MatchSeq(m.seq));
      seed.push_back({prio, std::move(m), enq});
    }
    router_queue.PushBatch(&seed);
  }

  // Cancellation (deadline or injected error) must not break termination
  // detection: a cancelled consumer abandons its batches instead of
  // processing them — each abandoned match is retired so in_flight still
  // reaches zero and WaitForDrain returns — while recording the abandoned
  // matches' max possible final scores into its own slot (one slot per
  // thread, written before join; no synchronization needed) so main can
  // report the residual-work bound.
  const auto abandon = [&in_flight](std::vector<QueuedMatch>* batch,
                                    double* bound) {
    for (const QueuedMatch& qm : *batch) {
      *bound = std::max(*bound, qm.match.max_final_score);
      in_flight.Retire();
    }
    batch->clear();
  };

  auto server_loop = [&](int s, DrainGovernor* gov, double* abandoned_bound) {
    ins.NameThread("server " + std::to_string(s));
    std::vector<QueuedMatch> batch;
    std::vector<PartialMatch> survivors;
    std::vector<QueuedMatch> outbox;  // extensions bound for the router
    while (server_queues[static_cast<size_t>(s)]->PopBatch(&batch, gov)) {
      // Queue boundary: drain-site failpoint (schedule perturbation, forced
      // slow-server stall, or injected error) + deadline check.
      if (token.Poll(failpoint::sites::kWmServerDrain)) {
        abandon(&batch, abandoned_bound);
        continue;  // keep draining so the in-flight count can reach zero
      }
      for (QueuedMatch& qm : batch) {
        ins.QueueWait(qm.enqueue_ns, ServerId(s), MatchSeq(qm.match.seq));
        PartialMatch m = std::move(qm.match);
        // Late pruning: the threshold may have grown while queued.
        if (!topk.Alive(m) && options.engine != EngineKind::kLockStepNoPrun) {
          metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
          ins.Prune(ServerId(s), MatchSeq(m.seq));
          in_flight.Retire();
          continue;
        }
        survivors.clear();
        {
          ProcessorCapGuard guard(&cap);
          ProcessAtServer(plan, options, m, s, &topk, &metrics, &seq, &survivors,
                          cache.get(), &ins, &token);
        }
        // Children enter the in-flight count before their parent retires, so
        // the count cannot touch zero while this batch still produces work.
        in_flight.Add(survivors.size());
        for (PartialMatch& ext : survivors) {
          const double prio = QueuePriority(plan, QueuePolicy::kMaxFinalScore, ext, -1);
          const uint64_t enq = ins.Enqueue(ServerId::Router(), MatchSeq(ext.seq));
          outbox.push_back({prio, std::move(ext), enq});
        }
        in_flight.Retire();
        // Flush per match, not per drained batch: one lock/notify still
        // covers all of this match's extensions, but downstream servers see
        // them immediately — holding the outbox across the remaining
        // (potentially slow) matches of the batch would serialize the
        // pipeline the multi-threaded engine exists to overlap.
        router_queue.PushBatch(&outbox);
      }
    }
  };

  auto router_loop = [&](DrainGovernor* gov, double* abandoned_bound) {
    ins.NameThread("router");
    std::vector<QueuedMatch> batch;
    // Per-server outboxes: one publish per destination server per batch.
    std::vector<std::vector<QueuedMatch>> outboxes(static_cast<size_t>(num_servers));
    while (router_queue.PopBatch(&batch, gov)) {
      // Queue boundary: handoff-site failpoint + deadline check (see
      // server_loop above for the abandon contract).
      if (token.Poll(failpoint::sites::kWmRouterHandoff)) {
        abandon(&batch, abandoned_bound);
        continue;
      }
      for (QueuedMatch& qm : batch) {
        ins.QueueWait(qm.enqueue_ns, ServerId::Router(), MatchSeq(qm.match.seq));
        PartialMatch m = std::move(qm.match);
        if (!topk.Alive(m)) {
          metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
          ins.Prune(ServerId::Router(), MatchSeq(m.seq));
          in_flight.Retire();
          continue;
        }
        const int s = router->NextServer(m, topk.Threshold());
        metrics.routing_decisions.fetch_add(1, std::memory_order_relaxed);
        ins.Route(ServerId(s), MatchSeq(m.seq));
        const double prio = QueuePriority(plan, options.queue_policy, m, s);
        const uint64_t enq = ins.Enqueue(ServerId(s), MatchSeq(m.seq));
        outboxes[static_cast<size_t>(s)].push_back({prio, std::move(m), enq});
      }
      for (int s = 0; s < num_servers; ++s) {
        server_queues[static_cast<size_t>(s)]->PushBatch(&outboxes[static_cast<size_t>(s)]);
      }
    }
  };

  // Pre-register every consumer's governor (owned by `drains`, so the
  // pointers are stable) before any thread spawns: the telemetry drain-depth
  // gauges below must capture them before the sampler starts.
  std::vector<DrainGovernor*> governors;
  governors.reserve(static_cast<size_t>(worker_threads));
  for (int s = 0; s < num_servers; ++s) {
    for (int t = 0; t < options.threads_per_server; ++t) {
      governors.push_back(drains.Register(s));
    }
  }
  governors.push_back(drains.Register(DrainController::kRouterQueue));

  ins.NameThread("main");
  // Declared after the queues / tracker / governors its probes read, so it
  // is destroyed (and explicitly stopped, below) before any of them.
  std::unique_ptr<TelemetryRecorder> recorder;
  if (options.telemetry_interval_us > 0) {
    recorder = std::make_unique<TelemetryRecorder>(options.telemetry_interval_us);
    RegisterCommonProbes(recorder.get(), &topk, &metrics, &token);
    recorder->AddGauge("in_flight", [&in_flight] {
      return static_cast<double>(in_flight.count());
    });
    recorder->AddGauge("queue_depth.router", [&router_queue] {
      return static_cast<double>(router_queue.Depth());
    });
    for (int s = 0; s < num_servers; ++s) {
      SyncMatchQueue* q = server_queues[static_cast<size_t>(s)].get();
      recorder->AddGauge("queue_depth.s" + std::to_string(s),
                         [q] { return static_cast<double>(q->Depth()); });
    }
    for (size_t i = 0; i < governors.size(); ++i) {
      const DrainGovernor* gov = governors[i];
      std::string name;
      if (gov->queue_id() == DrainController::kRouterQueue) {
        name = "drain.router";
      } else {
        name = "drain.s" + std::to_string(gov->queue_id());
        // Disambiguate same-server consumers when each server has several.
        if (options.threads_per_server > 1) {
          name += '.' + std::to_string(
                            i % static_cast<size_t>(options.threads_per_server));
        }
      }
      recorder->AddGauge(std::move(name),
                         [gov] { return static_cast<double>(gov->drain()); });
    }
    recorder->Start(&token);
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(worker_threads));
  // One abandoned-work bound slot per thread, exchanged at join time.
  std::vector<double> abandoned_bounds(
      static_cast<size_t>(worker_threads),
      -std::numeric_limits<double>::infinity());
  size_t slot = 0;
  for (int s = 0; s < num_servers; ++s) {
    for (int t = 0; t < options.threads_per_server; ++t) {
      threads.emplace_back(server_loop, s, governors[slot], &abandoned_bounds[slot]);
      ++slot;
    }
  }
  threads.emplace_back(router_loop, governors[slot], &abandoned_bounds[slot]);

  in_flight.WaitForDrain();
  router_queue.Stop();
  for (auto& q : server_queues) q->Stop();
  for (auto& t : threads) t.join();

  // Quiesce the sampler, then build the full metrics snapshot BEFORE the
  // error return: a failed or degraded run still gets its flight-recorder
  // post-mortem (see MaybeWritePostMortem).
  if (recorder != nullptr) recorder->Stop();
  ins.QueryDone(query_start);
  MetricsSnapshot snap = metrics.Snapshot(wall.ElapsedSeconds(), plan.num_servers());
  drains.ExportTo(&snap.adaptive);
  snap.adaptive.queue_peak_depth.push_back(router_queue.depth_peak());
  for (const auto& q : server_queues) {
    snap.adaptive.queue_peak_depth.push_back(q->depth_peak());
  }
  if (recorder != nullptr) {
    snap.timeseries = recorder->Snapshot();
    if (options.tracer != nullptr) options.tracer->AttachCounters(snap.timeseries);
  }
  MaybeWritePostMortem(options, token, snap);
  // An injected error outranks any partial answer set.
  WHIRLPOOL_RETURN_NOT_OK(token.error());
  TopKResult result;
  result.answers = topk.Finalize();
  result.approximate = token.DeadlineExpired();
  result.threshold = topk.LockedThreshold();
  result.score_bound =
      result.answers.empty() ? -std::numeric_limits<double>::infinity()
                             : result.answers.front().score;
  if (result.approximate) {
    for (double b : abandoned_bounds) {
      result.score_bound = std::max(result.score_bound, b);
    }
  }
  result.metrics = std::move(snap);
  return result;
}

}  // namespace whirlpool::exec
