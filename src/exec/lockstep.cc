// LockStep and LockStep-NoPrun (paper Sec 6.1.2): every partial match goes
// through the same server sequence, one server at a time — the static,
// non-adaptive baseline (≈ OptThres from EDBT'02 when pruning is on).
// LockStep-NoPrun additionally disables pruning and is the full-enumeration
// baseline whose matches-created count is the Table 2 denominator.
#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "exec/adaptive.h"
#include "exec/cancel.h"
#include "exec/engine.h"
#include "exec/queue_policy.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "exec/telemetry.h"
#include "exec/tracer.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace whirlpool::exec {

Result<TopKResult> RunLockStep(const QueryPlan& plan, const ExecOptions& options) {
  WHIRLPOOL_RETURN_NOT_OK(ValidateOptions(options));
  // Reuse Router::Make purely to validate static_order.
  Result<Router> router = Router::Make(plan, options);
  if (!router.ok()) return router.status();
  // ValidateOptions parse-checked the plan; install it for the run's scope.
  failpoint::ScopedConfig failpoints(options.failpoints, options.failpoint_seed);
  WHIRLPOOL_RETURN_NOT_OK(failpoints.status());
  CancelToken token(options.deadline_ms);
  const bool prune = options.engine != EngineKind::kLockStepNoPrun;

  std::vector<int> order = options.static_order;
  if (order.empty()) {
    order.resize(static_cast<size_t>(plan.num_servers()));
    for (int s = 0; s < plan.num_servers(); ++s) order[static_cast<size_t>(s)] = s;
  }

  Stopwatch wall;
  ExecMetrics metrics;
  const Instrumentation ins(options.tracer, &metrics, options.collect_latencies);
  const uint64_t query_start = ins.Begin();
  std::atomic<uint64_t> seq{0};
  // Single-threaded: topk_shards = 0 ("auto") resolves to one stripe.
  const ResolvedSync sync = ResolveSyncKnobs(options, /*worker_threads=*/1);
  TopKSet topk(options.k, options.semantics == MatchSemantics::kRelaxed,
               sync.topk_shards);
  if (options.has_frozen_threshold()) topk.FreezeThreshold(options.frozen_threshold);
  if (options.has_min_score_threshold()) {
    topk.SetMinScoreMode(options.min_score_threshold);
  }

  std::unique_ptr<ServerJoinCache> cache;
  if (options.cache_server_joins) {
    cache = std::make_unique<ServerJoinCache>(plan.num_servers());
  }
  ins.NameThread("lockstep");
  std::vector<PartialMatch> current =
      GenerateRootMatches(plan, options, &topk, &metrics, &seq);
  std::vector<PartialMatch> next;

  // The wave vector is single-threaded state the sampler must never touch;
  // mirror its size into an atomic at wave boundaries instead (only while a
  // recorder exists). peak_depth feeds the adaptive queue-peak report.
  std::atomic<size_t> live_wave_size{current.size()};
  size_t peak_depth = current.size();
  std::unique_ptr<TelemetryRecorder> recorder;
  if (options.telemetry_interval_us > 0) {
    recorder = std::make_unique<TelemetryRecorder>(options.telemetry_interval_us);
    RegisterCommonProbes(recorder.get(), &topk, &metrics, &token);
    recorder->AddGauge("wave_size", [&live_wave_size] {
      return static_cast<double>(live_wave_size.load(std::memory_order_relaxed));
    });
    recorder->Start(&token);
  }

  // Residual-work bound over matches abandoned at cancellation.
  double abandoned_bound = -std::numeric_limits<double>::infinity();
  for (int s : order) {
    peak_depth = std::max(peak_depth, current.size());
    if (recorder != nullptr) {
      live_wave_size.store(current.size(), std::memory_order_relaxed);
    }
    // Wave boundary: evaluate the wave failpoint (schedule perturbation or
    // injected error) and the deadline.
    if (token.Poll(failpoint::sites::kLockstepWave)) break;
    // Server priority queue: process the whole wave through this server in
    // policy order (scores in the top-k set grow as the wave progresses, so
    // the order affects pruning).
    std::stable_sort(current.begin(), current.end(),
                     [&](const PartialMatch& a, const PartialMatch& b) {
                       const double pa = QueuePriority(plan, options.queue_policy, a, s);
                       const double pb = QueuePriority(plan, options.queue_policy, b, s);
                       if (pa != pb) return pa > pb;
                       return a.seq < b.seq;
                     });
    next.clear();
    for (size_t i = 0; i < current.size(); ++i) {
      const PartialMatch& m = current[i];
      if (token.Check()) {
        // Abandon the rest of this wave; record what it could still score.
        for (size_t j = i; j < current.size(); ++j) {
          abandoned_bound = std::max(abandoned_bound, current[j].max_final_score);
        }
        break;
      }
      if (prune && !topk.Alive(m)) {
        metrics.matches_pruned.fetch_add(1, std::memory_order_relaxed);
        ins.Prune(ServerId(s), MatchSeq(m.seq));
        continue;
      }
      ProcessAtServer(plan, options, m, s, &topk, &metrics, &seq, &next,
                      cache.get(), &ins, &token);
    }
    current.swap(next);
  }
  if (token.Cancelled()) {
    // Survivors bound for the next wave were abandoned too.
    for (const PartialMatch& m : current) {
      abandoned_bound = std::max(abandoned_bound, m.max_final_score);
    }
  }

  // Quiesce the sampler, then build the full metrics snapshot BEFORE the
  // error return so failed/degraded runs still get their post-mortem.
  if (recorder != nullptr) recorder->Stop();
  ins.QueryDone(query_start);
  MetricsSnapshot snap = metrics.Snapshot(wall.ElapsedSeconds(), plan.num_servers());
  snap.adaptive.shards_auto = sync.shards_auto;
  snap.adaptive.chosen_shards = topk.num_shards();
  snap.adaptive.drain_adaptive = sync.drain_adaptive;
  snap.adaptive.drain_max = sync.drain_max;
  // LockStep has no router queue; the wave high-water mark takes its slot.
  snap.adaptive.queue_peak_depth = {static_cast<uint64_t>(peak_depth)};
  if (recorder != nullptr) {
    snap.timeseries = recorder->Snapshot();
    if (options.tracer != nullptr) options.tracer->AttachCounters(snap.timeseries);
  }
  MaybeWritePostMortem(options, token, snap);
  // An injected error outranks any partial answer set.
  WHIRLPOOL_RETURN_NOT_OK(token.error());
  TopKResult result;
  result.answers = topk.Finalize();
  result.approximate = token.DeadlineExpired();
  result.threshold = topk.LockedThreshold();
  result.score_bound =
      result.answers.empty() ? -std::numeric_limits<double>::infinity()
                             : result.answers.front().score;
  if (result.approximate) {
    result.score_bound = std::max(result.score_bound, abandoned_bound);
  }
  result.metrics = std::move(snap);
  return result;
}

Result<TopKResult> RunTopK(const QueryPlan& plan, const ExecOptions& options) {
  switch (options.engine) {
    case EngineKind::kWhirlpoolS:
      return RunWhirlpoolS(plan, options);
    case EngineKind::kWhirlpoolM:
      return RunWhirlpoolM(plan, options);
    case EngineKind::kLockStep:
    case EngineKind::kLockStepNoPrun:
      return RunLockStep(plan, options);
  }
  return Status::InvalidArgument("unknown engine kind");
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kWhirlpoolS: return "Whirlpool-S";
    case EngineKind::kWhirlpoolM: return "Whirlpool-M";
    case EngineKind::kLockStep: return "LockStep";
    case EngineKind::kLockStepNoPrun: return "LockStep-NoPrun";
  }
  return "?";
}

const char* RoutingStrategyName(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kStatic: return "static";
    case RoutingStrategy::kMaxScore: return "max_score";
    case RoutingStrategy::kMinScore: return "min_score";
    case RoutingStrategy::kMinAlive: return "min_alive_partial_matches";
  }
  return "?";
}

const char* QueuePolicyName(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kCurrentScore: return "current_score";
    case QueuePolicy::kMaxNextScore: return "max_possible_next_score";
    case QueuePolicy::kMaxFinalScore: return "max_possible_final_score";
  }
  return "?";
}

const char* ScoreAggregationName(ScoreAggregation aggregation) {
  switch (aggregation) {
    case ScoreAggregation::kMaxTuple: return "max_tuple";
    case ScoreAggregation::kSumWitnesses: return "sum_witnesses";
  }
  return "?";
}

const char* MatchSemanticsName(MatchSemantics semantics) {
  switch (semantics) {
    case MatchSemantics::kRelaxed: return "relaxed";
    case MatchSemantics::kExact: return "exact";
  }
  return "?";
}

}  // namespace whirlpool::exec
