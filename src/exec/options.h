// Execution options for the top-k engines: which engine, which queue and
// routing policies, match semantics, and the experiment knobs (injected
// per-operation cost, simulated processor count).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/failpoint.h"
#include "util/status.h"

namespace whirlpool::exec {

class Tracer;  // exec/tracer.h

/// Which top-k evaluation algorithm to run (paper Sec 6.1.2).
enum class EngineKind : uint8_t {
  kWhirlpoolS,     ///< single-threaded adaptive (router queue only)
  kWhirlpoolM,     ///< multi-threaded: thread per server + router thread
  kLockStep,       ///< static, one server at a time, with pruning (≈ OptThres)
  kLockStepNoPrun, ///< lock-step without pruning (full enumeration baseline)
};

const char* EngineKindName(EngineKind kind);

/// How the router picks the next server for a partial match (Sec 6.1.4).
enum class RoutingStrategy : uint8_t {
  kStatic,    ///< fixed server permutation (ExecOptions::static_order)
  kMaxScore,  ///< server expected to increase the score the most
  kMinScore,  ///< server expected to increase the score the least
  kMinAlive,  ///< server expected to leave the fewest alive extensions
};

const char* RoutingStrategyName(RoutingStrategy strategy);

/// Server priority-queue ordering (Sec 6.1.3).
enum class QueuePolicy : uint8_t {
  kFifo,          ///< arrival order
  kCurrentScore,  ///< highest current score first
  kMaxNextScore,  ///< current + this server's max contribution, highest first
  kMaxFinalScore, ///< highest maximum possible final score first (default)
};

const char* QueuePolicyName(QueuePolicy policy);

/// Exact vs approximate (relaxed) matching.
enum class MatchSemantics : uint8_t {
  /// Outer-join semantics: every answer is kept with a score reflecting the
  /// relaxation level of each binding (edge generalization, subtree
  /// promotion, leaf deletion).
  kRelaxed,
  /// Inner-join semantics: only embeddings satisfying the original axes;
  /// unmatched tuples die.
  kExact,
};

const char* MatchSemanticsName(MatchSemantics semantics);

/// How a server's bindings contribute to a match's score.
enum class ScoreAggregation : uint8_t {
  /// One extension per candidate binding; an answer's score is its best
  /// tuple (the engine of the paper's Sec 2 example). Default.
  kMaxTuple,
  /// One extension per server accumulating EVERY witness's contribution:
  /// score(answer) = sum over predicates of sum over witnesses of the
  /// witness-level idf — the tf*idf of Definition 4.4 (graded by relaxation
  /// level; restricted to exact semantics it is Def 4.4 verbatim).
  /// Component predicates are evaluated root-relative (Def 4.1), so the
  /// pairwise conditional checks do not apply and no tuple explosion
  /// occurs.
  kSumWitnesses,
};

const char* ScoreAggregationName(ScoreAggregation aggregation);

/// \brief All execution knobs. Defaults mirror the paper's defaults
/// (Table 1 plus the winning policies: max-final queues, min-alive routing).
struct ExecOptions {
  EngineKind engine = EngineKind::kWhirlpoolS;
  uint32_t k = 15;
  MatchSemantics semantics = MatchSemantics::kRelaxed;
  ScoreAggregation aggregation = ScoreAggregation::kMaxTuple;
  RoutingStrategy routing = RoutingStrategy::kMinAlive;
  /// Server visit order for RoutingStrategy::kStatic and the LockStep
  /// engines. Empty = identity order. Must be a permutation of
  /// [0, num_servers).
  std::vector<int> static_order;
  QueuePolicy queue_policy = QueuePolicy::kMaxFinalScore;
  /// Injected cost per server operation, in seconds (Fig 8). 0 = none.
  double op_cost_seconds = 0.0;
  /// Simulated processor count for Whirlpool-M: at most this many server/
  /// router threads make progress concurrently. 0 = unlimited.
  int processor_cap = 0;
  /// Threads sharing each server queue in Whirlpool-M (paper future work).
  int threads_per_server = 1;
  /// Mutex stripes for the shared top-k set's root->score map. Updates of
  /// roots in different stripes proceed concurrently; Threshold()/Alive()
  /// readers are lock-free regardless (cached atomic threshold). 1 = the
  /// pre-striping single-map layout; 0 = auto (picked from the engine's
  /// thread count and hardware_concurrency — exec/adaptive.h).
  int topk_shards = 16;
  /// Maximum matches a Whirlpool-M consumer (server or router thread)
  /// drains from its queue per lock acquisition; producers publish whole
  /// batches with one notify. 1 = the original per-match handoff; 0 =
  /// adaptive (each consumer's depth is resized online in [1, kAutoDrainMax]
  /// from observed lock-wait vs processing time — exec/adaptive.h).
  int queue_drain_batch = 8;
  /// Bulk routing (paper Sec 6.3.3 future work): Whirlpool-S makes one
  /// routing decision for up to this many consecutive queue entries that
  /// share the same set of visited servers. 1 = one decision per match.
  int bulk_batch = 1;
  /// Memoize each server's classified candidate list per root binding
  /// (relaxed max-tuple mode only; see exec/join_cache.h). Off by default
  /// so the paper-faithful work metrics stay comparable.
  bool cache_server_joins = false;
  /// If set (not NaN), the top-k set's pruning threshold is frozen at this
  /// value and never updated — used by the Figure 3 motivating-example bench
  /// to study plan cost as a function of currentTopK.
  double frozen_threshold = std::nan("");
  /// If set (not NaN), run a THRESHOLD query instead of top-k (the paper's
  /// EDBT'02 predecessor): return every answer whose score is at least this
  /// value (k still caps the count; set k large for "all"). Mutually
  /// exclusive with frozen_threshold.
  double min_score_threshold = std::nan("");
  /// Optional execution tracer (non-owning; see exec/tracer.h). Null —
  /// the default — disables tracing entirely: the engines' trace hooks
  /// reduce to a single branch.
  Tracer* tracer = nullptr;
  /// Collect latency histograms (server-op time, queue wait, end-to-end
  /// query latency) into the run's metrics. Off by default because each
  /// sample costs two steady_clock reads per server operation.
  bool collect_latencies = false;
  /// Soft execution deadline in milliseconds; 0 = none. On expiry the engine
  /// stops cleanly at the next queue boundary and returns its best-so-far
  /// answers flagged `approximate` in TopKResult, with the currentTopK
  /// threshold and the max-possible-score bound over the abandoned matches
  /// (DESIGN.md §12). Not honored by the rewriting test baseline.
  double deadline_ms = 0.0;
  /// Failpoint plan installed for the duration of the run —
  /// "name=action(args)[,...]", see util/failpoint.h for the grammar and
  /// DESIGN.md §12 for the instrumented-site table. Empty = none. The
  /// registry is process-global: one plan-carrying run at a time.
  std::string failpoints;
  /// Seed for the plan's probabilistic (p=) activations.
  uint64_t failpoint_seed = 0;
  /// Flight-recorder sampling interval in microseconds (exec/telemetry.h).
  /// 0 — the default — disables the sampler entirely; nonzero spawns one
  /// background thread per run that snapshots the threshold, queue depths,
  /// in-flight count and counter deltas into bounded decimating ring
  /// buffers, exported as the metrics "timeseries" block and as Perfetto
  /// counter tracks in the Chrome trace. CLI: --telemetry (1000 us) or
  /// --telemetry-interval-us=N.
  uint64_t telemetry_interval_us = 0;
  /// Post-mortem destination for degraded runs (deadline, cancellation or
  /// injected error) when telemetry is on: the tail of every series plus
  /// the final counters. Empty = stderr.
  std::string postmortem_path;

  bool has_frozen_threshold() const { return !std::isnan(frozen_threshold); }
  bool has_min_score_threshold() const { return !std::isnan(min_score_threshold); }
};

/// Checks the option combinations every engine must reject, so Whirlpool-S,
/// Whirlpool-M, LockStep and the rewriting baseline fail identically — and
/// before any engine state (router, top-k set, threads) is constructed.
inline Status ValidateOptions(const ExecOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (options.threads_per_server < 1) {
    return Status::InvalidArgument("threads_per_server must be >= 1");
  }
  if (options.topk_shards < 0) {
    return Status::InvalidArgument("topk_shards must be >= 1, or 0 for auto");
  }
  if (options.queue_drain_batch < 0) {
    return Status::InvalidArgument(
        "queue_drain_batch must be >= 1, or 0 for adaptive");
  }
  if (options.bulk_batch < 1) {
    return Status::InvalidArgument("bulk_batch must be >= 1");
  }
  // Negated >= so a NaN cost is rejected too.
  if (!(options.op_cost_seconds >= 0.0)) {
    return Status::InvalidArgument("op_cost_seconds must be >= 0");
  }
  if (options.processor_cap < 0) {
    return Status::InvalidArgument("processor_cap must be >= 0 (0 = unlimited)");
  }
  if (options.has_frozen_threshold() && options.has_min_score_threshold()) {
    return Status::InvalidArgument(
        "frozen_threshold and min_score_threshold are mutually exclusive");
  }
  // Negated >= so a NaN deadline is rejected too.
  if (!(options.deadline_ms >= 0.0)) {
    return Status::InvalidArgument("deadline_ms must be >= 0 (0 = no deadline)");
  }
  // Below ~10 us the sampler thread degenerates into a busy spin that
  // perturbs the run it is meant to observe.
  if (options.telemetry_interval_us != 0 && options.telemetry_interval_us < 10) {
    return Status::InvalidArgument(
        "telemetry_interval_us must be 0 (off) or >= 10");
  }
  if (!options.postmortem_path.empty() && options.telemetry_interval_us == 0) {
    return Status::InvalidArgument(
        "postmortem_path requires telemetry (set telemetry_interval_us)");
  }
  // Parse-check only; the engine installs the plan after validation, so a
  // malformed plan fails identically across engines, before any threads.
  WHIRLPOOL_RETURN_NOT_OK(failpoint::ValidatePlan(options.failpoints));
  return Status::OK();
}

}  // namespace whirlpool::exec
