// Routing decisions (paper Sec 6.1.4): given a partial match, which server
// should process it next? Static permutations, score-based (max_score /
// min_score) and the size-based min_alive_partial_matches strategy that wins
// in the paper's evaluation.
#pragma once

#include <vector>

#include "exec/options.h"
#include "exec/partial_match.h"
#include "exec/plan.h"

namespace whirlpool::exec {

/// \brief Stateless (thread-safe) routing policy dispatcher.
class Router {
 public:
  /// Validates options (static_order must be a permutation when required).
  static Result<Router> Make(const QueryPlan& plan, const ExecOptions& options);

  /// The next unvisited server for `m`. `threshold` is the current
  /// currentTopK value (-infinity while the set is not full). Precondition:
  /// `m` is incomplete.
  int NextServer(const PartialMatch& m, double threshold) const;

  /// Estimated number of alive extensions if `m` were processed at server
  /// `s` now (the min_alive objective; exposed for tests and benches).
  double EstimateAlive(const PartialMatch& m, int s, double threshold) const;

 private:
  Router(const QueryPlan& plan, const ExecOptions& options, std::vector<int> order);

  const QueryPlan* plan_;
  RoutingStrategy strategy_;
  std::vector<int> order_;  // for kStatic
};

}  // namespace whirlpool::exec
