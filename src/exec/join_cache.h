// Per-run memoization of server join results. In relaxed, max-tuple mode a
// server's candidate set and each candidate's relaxation level depend only
// on (server, root binding) — but the tuple explosion sends many partial
// matches with the same root through the same server, re-classifying the
// same candidates each time. Caching the classified list turns the repeat
// visits into hash lookups (enable with ExecOptions::cache_server_joins;
// see bench_ablation_cache for the effect).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "score/scoring.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "xml/document.h"

namespace whirlpool::exec {

/// \brief Thread-safe (server, root) -> classified-candidates cache, one
/// shard (map + mutex) per server. Lives for one engine run.
class ServerJoinCache {
 public:
  /// One classified candidate binding.
  struct Binding {
    xml::NodeId node;
    score::MatchLevel level;
  };
  using Entry = std::vector<Binding>;

  explicit ServerJoinCache(int num_servers)
      : shards_(static_cast<size_t>(num_servers)) {}

  /// Returns the cached entry for (server, root), computing it with
  /// `compute` on first use. The returned pointer stays valid for the
  /// lifetime of the cache. The shard lock is never held across the
  /// `compute` callback (it may re-enter index/scoring code).
  std::shared_ptr<const Entry> GetOrCompute(
      int server, xml::NodeId root, const std::function<Entry()>& compute) {
    Shard& shard = shards_[static_cast<size_t>(server)];
    {
      MutexLock lock(&shard.mu);
      auto it = shard.map.find(root);
      if (it != shard.map.end()) {
        // Relaxed: hits_ is a statistics counter; hits() documents it as
        // approximate under races, so no ordering is bought here.
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    // Compute outside the lock; racing duplicates are harmless (last one
    // wins, both are identical).
    auto entry = std::make_shared<const Entry>(compute());
    MutexLock lock(&shard.mu);
    auto [it, inserted] = shard.map.emplace(root, std::move(entry));
    // Relaxed: same statistics-only counter as the fast path above.
    if (!inserted) hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Number of lookups served from the cache (approximate under races).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    Mutex mu{LockRank::kJoinCache, "ServerJoinCache::Shard::mu"};
    std::unordered_map<xml::NodeId, std::shared_ptr<const Entry>> map
        GUARDED_BY(mu);
  };
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
};

}  // namespace whirlpool::exec
