// The shared top-k set (paper Sec 5.1): the k best candidate answers seen so
// far, at most one per distinct root binding. A newly computed (partial or
// complete) match updates its root's recorded score, and partial matches are
// pruned when their maximum possible final score cannot beat the current
// k-th best score (currentTopK).
//
// In relaxed semantics a partial match's current score is itself an
// achievable answer score (bind this prefix, delete the rest), so partial
// matches legitimately update the set. In exact semantics only complete
// matches do (pass update_partials = false).
//
// Concurrency design (Whirlpool-M hot path):
//  - The root -> best-score map is striped into hash(root) % S shards, each
//    with its own mutex, so concurrent Updates of different roots do not
//    serialize on one lock.
//  - currentTopK is cached in a relaxed std::atomic<double> refreshed under
//    scores_mu_ whenever an insert/evict changes the k-th best score, so
//    Threshold() and Alive() readers take no lock at all. A reader may
//    observe a slightly stale threshold, but staleness is one-sided: the
//    cached value is always <= the locked ground truth (the threshold is
//    monotone non-decreasing in top-k mode), so a stale read can only delay
//    a prune, never cause an incorrect one. Exact-top-k semantics are
//    preserved; LockedThreshold() exposes the ground truth for tests.
//  - scores_mu_ (the global score multiset) is only taken inside Update when
//    a root's best score actually improves, by FreezeThreshold /
//    SetMinScoreMode, and by LockedThreshold. Lock order is shard mutex ->
//    scores_mu_; no path acquires a shard mutex while holding scores_mu_.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/partial_match.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

/// \brief One final answer.
struct Answer {
  NodeId root = xml::kInvalidNode;
  double score = 0.0;
  std::vector<NodeId> bindings;
  std::vector<MatchLevel> levels;
};

/// \brief Thread-safe top-k candidate set.
class TopKSet {
 public:
  /// Hard cap on the stripe count: beyond this, per-shard occupancy is too
  /// low for additional stripes to reduce contention, and construction cost
  /// (one mutex + map per stripe) dominates. The auto-shard picker
  /// (exec/adaptive.h) stays well below this.
  static constexpr int kMaxShards = 256;

  /// \param k          number of answers to return
  /// \param update_partials  whether partial matches update root scores
  ///                         (true for relaxed semantics)
  /// \param shards     number of mutex stripes for the root->score map
  ///                   (ExecOptions::topk_shards; clamped to [1, kMaxShards])
  explicit TopKSet(uint32_t k, bool update_partials = true, int shards = 1);

  /// Freezes the pruning threshold at `value`: Update still records answers
  /// but Threshold() always returns `value`. Used by the Figure 3 bench to
  /// study cost as a function of currentTopK.
  void FreezeThreshold(double value);

  /// Threshold-query mode (the paper's EDBT'02 predecessor: return ALL
  /// answers scoring at least `min_score`, not the k best). Pruning keeps a
  /// match alive iff it can still reach `min_score` (inclusive), and
  /// Finalize() returns every root at or above it (k still caps the count).
  void SetMinScoreMode(double min_score);

  /// Records `m`'s current score for its root (if it improves the root's
  /// best). `complete` marks a fully-processed match; in exact semantics
  /// only complete matches are recorded.
  void Update(const PartialMatch& m, bool complete);

  /// currentTopK: the k-th best per-root score, or -infinity while fewer
  /// than k distinct roots are recorded. Lock-free: reads the cached atomic,
  /// which may lag the locked ground truth but never exceeds it.
  double Threshold() const;

  /// The locked ground-truth threshold, recomputed from the score multiset
  /// under scores_mu_. Threshold() <= LockedThreshold() at all times (the
  /// staleness invariant); exposed for the concurrency stress tests and
  /// diagnostics — engines use the lock-free Threshold().
  double LockedThreshold() const;

  /// Pruning test for a partial match: alive iff the set is not full or
  /// m.max_final_score strictly beats the threshold. (A tie cannot displace
  /// an entry of a full set, so tied matches are pruned — the returned set
  /// is still a valid top-k.) Lock-free, same staleness contract as
  /// Threshold().
  bool Alive(const PartialMatch& m) const;

  /// Number of distinct roots recorded.
  size_t NumRoots() const;

  /// Number of mutex stripes (diagnostics / tests).
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The k best answers, highest score first (ties by root id for
  /// determinism). Call after evaluation has drained.
  std::vector<Answer> Finalize() const;

 private:
  struct Entry {
    double score = -std::numeric_limits<double>::infinity();
    std::vector<NodeId> bindings;
    std::vector<MatchLevel> levels;
    bool complete = false;
  };

  /// One stripe of the root->score map. Heap-allocated (vector of
  /// unique_ptr) because Mutex is not movable.
  struct Shard {
    mutable Mutex mu{LockRank::kTopKShard, "TopKSet::Shard::mu"};
    std::unordered_map<NodeId, Entry> best GUARDED_BY(mu);
  };

  Shard& ShardFor(NodeId root) const { return *shards_[Mix(root) % shards_.size()]; }

  /// Cheap integer hash so striding root-id patterns still spread across
  /// shards (root ids of sibling items can share a fixed stride).
  static size_t Mix(NodeId root) {
    uint64_t x = static_cast<uint64_t>(root) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 32);
  }

  /// Recomputes the k-th best score and publishes it to cached_threshold_.
  /// No-op while frozen / in min-score mode (the cache is pinned there).
  void RefreshCachedThresholdLocked() REQUIRES(scores_mu_);

  const uint32_t k_;
  const bool update_partials_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// The published pruning threshold. Starts at -infinity ("not full"), is
  /// only ever raised in top-k mode (all stores happen under scores_mu_ and
  /// are monotone), and is pinned by FreezeThreshold / SetMinScoreMode.
  /// Relaxed ordering suffices: the value itself is the entire message, and
  /// per-object coherence already guarantees a reader never observes it
  /// going backwards.
  std::atomic<double> cached_threshold_{-std::numeric_limits<double>::infinity()};
  /// Mirrors min_score_mode_ for the lock-free Alive() (inclusive bar).
  std::atomic<bool> min_score_mode_flag_{false};

  mutable Mutex scores_mu_{LockRank::kTopKScores, "TopKSet::scores_mu_"};
  bool frozen_ GUARDED_BY(scores_mu_) = false;
  double frozen_value_ GUARDED_BY(scores_mu_) = 0.0;
  bool min_score_mode_ GUARDED_BY(scores_mu_) = false;
  double min_score_ GUARDED_BY(scores_mu_) = 0.0;
  /// Multiset of per-root best scores; k-th largest is the threshold.
  std::multiset<double> scores_ GUARDED_BY(scores_mu_);
  /// Debug invariant: in top-k mode the threshold is monotone non-decreasing
  /// (scores only improve and entries are never removed), which is what makes
  /// late pruning sound. Checked by WP_DCHECK in RefreshCachedThresholdLocked.
  mutable double last_threshold_ GUARDED_BY(scores_mu_) =
      -std::numeric_limits<double>::infinity();
};

}  // namespace whirlpool::exec
