// The shared top-k set (paper Sec 5.1): the k best candidate answers seen so
// far, at most one per distinct root binding. A newly computed (partial or
// complete) match updates its root's recorded score, and partial matches are
// pruned when their maximum possible final score cannot beat the current
// k-th best score (currentTopK).
//
// In relaxed semantics a partial match's current score is itself an
// achievable answer score (bind this prefix, delete the rest), so partial
// matches legitimately update the set. In exact semantics only complete
// matches do (pass update_partials = false).
#pragma once

#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/partial_match.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

/// \brief One final answer.
struct Answer {
  NodeId root = xml::kInvalidNode;
  double score = 0.0;
  std::vector<NodeId> bindings;
  std::vector<MatchLevel> levels;
};

/// \brief Thread-safe top-k candidate set.
class TopKSet {
 public:
  /// \param k          number of answers to return
  /// \param update_partials  whether partial matches update root scores
  ///                         (true for relaxed semantics)
  explicit TopKSet(uint32_t k, bool update_partials = true);

  /// Freezes the pruning threshold at `value`: Update still records answers
  /// but Threshold() always returns `value`. Used by the Figure 3 bench to
  /// study cost as a function of currentTopK.
  void FreezeThreshold(double value);

  /// Threshold-query mode (the paper's EDBT'02 predecessor: return ALL
  /// answers scoring at least `min_score`, not the k best). Pruning keeps a
  /// match alive iff it can still reach `min_score` (inclusive), and
  /// Finalize() returns every root at or above it (k still caps the count).
  void SetMinScoreMode(double min_score);

  /// Records `m`'s current score for its root (if it improves the root's
  /// best). `complete` marks a fully-processed match; in exact semantics
  /// only complete matches are recorded.
  void Update(const PartialMatch& m, bool complete);

  /// currentTopK: the k-th best per-root score, or -infinity while fewer
  /// than k distinct roots are recorded.
  double Threshold() const;

  /// Pruning test for a partial match: alive iff the set is not full or
  /// m.max_final_score strictly beats the threshold. (A tie cannot displace
  /// an entry of a full set, so tied matches are pruned — the returned set
  /// is still a valid top-k.)
  bool Alive(const PartialMatch& m) const;

  /// Number of distinct roots recorded.
  size_t NumRoots() const;

  /// The k best answers, highest score first (ties by root id for
  /// determinism). Call after evaluation has drained.
  std::vector<Answer> Finalize() const;

 private:
  double ThresholdLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  const uint32_t k_;
  const bool update_partials_;
  bool frozen_ GUARDED_BY(mu_) = false;
  double frozen_value_ GUARDED_BY(mu_) = 0.0;
  bool min_score_mode_ GUARDED_BY(mu_) = false;
  double min_score_ GUARDED_BY(mu_) = 0.0;
  struct Entry {
    double score = -std::numeric_limits<double>::infinity();
    std::vector<NodeId> bindings;
    std::vector<MatchLevel> levels;
    bool complete = false;
  };
  std::unordered_map<NodeId, Entry> best_ GUARDED_BY(mu_);
  /// Multiset of per-root best scores; k-th largest is the threshold.
  std::multiset<double> scores_ GUARDED_BY(mu_);
  /// Debug invariant: in top-k mode the threshold is monotone non-decreasing
  /// (scores only improve and entries are never removed), which is what makes
  /// late pruning sound. Checked by WP_DCHECK in ThresholdLocked.
  mutable double last_threshold_ GUARDED_BY(mu_) =
      -std::numeric_limits<double>::infinity();
};

}  // namespace whirlpool::exec
