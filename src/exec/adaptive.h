// Online contention-aware controller for the engine's own synchronization
// knobs (ROADMAP: adaptive queue_drain_batch, auto topk_shards). The paper's
// thesis — adapt per-match decisions to runtime state (Sec 6.1) — applied to
// the queue handoff itself:
//
//  - Drain depth. Each Whirlpool-M consumer (server or router thread) owns a
//    DrainGovernor that samples one PopBatch cycle in kDrainSamplePeriod,
//    measuring (a) the time to acquire the queue mutex (pure lock
//    contention; the condition-variable idle wait for work is deliberately
//    excluded) and (b) the time the consumer spends processing the drained
//    batch (delivery to next PopBatch entry). Both feed EWMAs, and a
//    multiplicative-increase/multiplicative-decrease rule resizes the
//    consumer's drain depth in [1, drain_max] to keep lock-wait below
//    kDrainTargetRatio of processing time: cheap work under a contended
//    lock widens (amortize the lock), expensive per-item work narrows
//    (preserve the freshness that drives the pruning threshold up). This
//    subsumes the previous hard-coded `op_cost_seconds > 0 ? 1 : N` split
//    in whirlpool_m.cc. Enabled by ExecOptions::queue_drain_batch == 0.
//
//  - Shard count. ExecOptions::topk_shards == 0 picks the TopKSet stripe
//    count from the engine's worker-thread count and
//    std::thread::hardware_concurrency() (see AutoTopKShards).
//
// Decisions and EWMA snapshots are exported through
// MetricsSnapshot::ToJson's "adaptive" block (metrics.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/metrics.h"
#include "exec/options.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace whirlpool::exec {

/// Upper drain bound when ExecOptions::queue_drain_batch == 0 (adaptive).
inline constexpr int kAutoDrainMax = 32;
/// One PopBatch cycle in this many is timed; the rest pay one branch and a
/// counter increment, keeping the uninstrumented hot path unchanged.
inline constexpr int kDrainSamplePeriod = 4;
/// Widen while lock-wait exceeds this fraction of batch processing time.
inline constexpr double kDrainTargetRatio = 0.05;
/// Narrow only below this fraction (hysteresis band against oscillation).
inline constexpr double kDrainLowWater = kDrainTargetRatio / 4;
/// Never narrow while a whole batch processes faster than this: below a few
/// tens of microseconds of work per drain, lock amortization always wins,
/// deferring matches costs nothing, and the ratio signal is dominated by
/// clock-resolution and scheduler noise.
inline constexpr uint64_t kDrainNarrowFloorNs = 20'000;
/// EWMA smoothing factor for the lock-wait / processing-time estimates.
inline constexpr double kDrainEwmaAlpha = 0.3;
/// Samples observed before the first adjustment (EWMA warm-up).
inline constexpr uint64_t kDrainWarmupSamples = 2;

/// ExecOptions::{topk_shards, queue_drain_batch} with the 0 = "auto"
/// sentinels resolved for one engine run.
struct ResolvedSync {
  int topk_shards = 1;
  bool shards_auto = false;
  /// True when drain depth is governed online (queue_drain_batch == 0).
  bool drain_adaptive = false;
  /// Upper drain bound: kAutoDrainMax when adaptive, else the static knob.
  int drain_max = 1;
};

/// TopKSet stripe count for `worker_threads` concurrent engine threads:
/// 1 for single-threaded runs; otherwise twice the effectively-concurrent
/// thread count (capped by std::thread::hardware_concurrency) rounded up to
/// a power of two and to whole 64-byte cache lines of Shard pointers
/// (multiples of 8), clamped to [8, 64]. See DESIGN.md §11.
int AutoTopKShards(int worker_threads);

/// Resolves both knobs for an engine that will run `worker_threads` threads
/// (Whirlpool-M: num_servers * threads_per_server + 1 router;
/// single-threaded engines pass 1).
ResolvedSync ResolveSyncKnobs(const ExecOptions& options, int worker_threads);

class DrainController;

/// \brief Per-consumer drain-depth governor. Owned by a DrainController and
/// driven by exactly one consumer thread through SyncMatchQueue::PopBatch
/// (BeginPop / LockAcquired / BatchDelivered below); drain() and the EWMA
/// accessors are safe from any thread (relaxed atomics — monitoring only).
class DrainGovernor {
 public:
  /// Server id this governor's queue belongs to, or kRouterQueue.
  int queue_id() const { return queue_id_; }
  bool adaptive() const { return adaptive_; }

  /// Current drain depth for the owning consumer's next PopBatch.
  int drain() const { return drain_.load(std::memory_order_relaxed); }

  /// Hook: PopBatch entry. Closes the previous sampled cycle (its
  /// processing interval ends here) and decides whether this cycle is
  /// sampled. Returns the MonotonicNs entry timestamp when sampled, 0
  /// otherwise (including always for non-adaptive governors — no clocks).
  uint64_t BeginPop();

  /// Hook: queue mutex acquired on a sampled cycle; `t0` is BeginPop's
  /// return. Records the lock wait. Called before the cv wait for work, so
  /// idle time never counts as contention.
  void LockAcquired(uint64_t t0);

  /// Hook: a sampled PopBatch is about to return a non-empty batch; opens
  /// the processing interval that the next BeginPop closes.
  void BatchDelivered();

  /// Feeds one (lock-wait, batch-processing) sample into the EWMAs and
  /// applies the MIMD rule: ratio above kDrainTargetRatio doubles the
  /// drain (toward max_drain); ratio below kDrainLowWater with at least
  /// kDrainNarrowFloorNs of batch work halves it (toward 1). Called
  /// internally when a sampled cycle closes; exposed so the control law is
  /// unit-testable without real clocks.
  void RecordSample(uint64_t lock_wait_ns, uint64_t process_ns);

  double lock_wait_ewma_ns() const {
    return lock_wait_ewma_ns_.load(std::memory_order_relaxed);
  }
  double process_ewma_ns() const {
    return process_ewma_ns_.load(std::memory_order_relaxed);
  }
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  friend class DrainController;
  DrainGovernor(int queue_id, bool adaptive, int initial_drain, int max_drain,
                std::atomic<int>* adjustments)
      : queue_id_(queue_id),
        adaptive_(adaptive),
        max_drain_(max_drain),
        drain_(initial_drain),
        adjustments_(adjustments) {}

  const int queue_id_;
  const bool adaptive_;
  const int max_drain_;
  /// Written only by the owning consumer; read lock-free by drain()/export.
  std::atomic<int> drain_;
  /// DrainController::adjustments_ — counted lock-free from consumer
  /// threads.
  std::atomic<int>* const adjustments_;

  // Owning-consumer-thread scratch (never touched cross-thread).
  uint64_t tick_ = 0;
  bool sample_open_ = false;
  uint64_t pending_lock_wait_ns_ = 0;
  uint64_t delivered_ns_ = 0;

  /// Published EWMA state, relaxed: exported into the metrics "adaptive"
  /// block and read by tests; single writer (the owning consumer).
  std::atomic<double> lock_wait_ewma_ns_{0.0};
  std::atomic<double> process_ewma_ns_{0.0};
  std::atomic<uint64_t> samples_{0};
};

/// \brief Owns one DrainGovernor per registered consumer and exports the
/// controller's decisions into a MetricsSnapshot. Register is thread-safe;
/// governors live until the controller is destroyed (after thread join).
class DrainController {
 public:
  /// queue_id for the router queue's consumers.
  static constexpr int kRouterQueue = -1;

  DrainController(const ExecOptions& options, const ResolvedSync& resolved);

  /// Creates the governor for one consumer of queue `queue_id` (a server id
  /// or kRouterQueue). In adaptive mode servers start narrow (drain 1, the
  /// freshness-preserving end) and the router starts wide (router work per
  /// match is a few hundred ns regardless of op cost); in static mode the
  /// governor pins the legacy depths (op_cost_seconds > 0 ? 1 : N servers,
  /// N router) and records no samples.
  DrainGovernor* Register(int queue_id);

  /// Fills `out` with the resolved knobs, final per-consumer drains and
  /// EWMA snapshots. Call after the consumer threads have joined (the
  /// governor EWMAs are relaxed atomics, so a mid-run export is safe but
  /// may mix in-flight samples).
  void ExportTo(AdaptiveSnapshot* out) const;

 private:
  const ResolvedSync resolved_;
  const int static_server_drain_;
  const int static_router_drain_;
  mutable Mutex mu_{LockRank::kAdaptive, "DrainController::mu_"};
  std::vector<std::unique_ptr<DrainGovernor>> governors_ GUARDED_BY(mu_);
  /// Total drain adjustments across all governors; incremented lock-free
  /// from consumer threads inside RecordSample.
  std::atomic<int> adjustments_{0};
};

}  // namespace whirlpool::exec
