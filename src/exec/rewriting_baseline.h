// The rewriting-based evaluation baseline (paper Sec 3, related work):
// instead of encoding relaxations into one outer-join plan, enumerate every
// relaxed query, evaluate them best-score-first, and collect answers. The
// paper cites EDBT'02: "Outer-join plans were shown to be more efficient
// than rewriting-based ones ... due to the exponential number of relaxed
// queries" — this module exists to reproduce that comparison
// (bench_ablation_rewriting).
//
// Enumeration: each non-root pattern node independently takes one of four
// relaxation levels (exact chain / edge-generalized chain / promoted /
// deleted), matching the engine's per-binding level semantics, so the
// baseline's top-k agrees exactly with the adaptive engines (verified in
// tests). That independence is also why there are 4^(n-1) relaxed queries.
#pragma once

#include <cstdint>

#include "exec/engine.h"

namespace whirlpool::exec {

/// \brief Statistics of a rewriting-based run.
struct RewritingStats {
  /// Number of relaxed queries enumerated (4^(n-1)).
  uint64_t queries_enumerated = 0;
  /// Number actually evaluated before the top-k early exit.
  uint64_t queries_evaluated = 0;
  /// Root candidates tested across all evaluated queries.
  uint64_t candidate_checks = 0;
};

/// \brief Evaluates the relaxed top-k query by query rewriting.
///
/// Supports relaxed semantics with max-tuple aggregation (the setting of
/// the paper's comparison); rejects patterns with more than 10 non-root
/// nodes (4^10 ≈ 1M queries — the point of the exercise is that this
/// explodes). Returns the same answers as RunTopK on the same plan.
Result<TopKResult> RunRewritingBaseline(const QueryPlan& plan, const ExecOptions& options,
                                        RewritingStats* stats = nullptr);

}  // namespace whirlpool::exec
