// The server operation (paper Sec 5.2.1): extend one partial match with
// every binding of the server's pattern node at once (outer join), classify
// each binding's relaxation level, assign incremental scores, and check each
// extension against the top-k set. Shared by all engines; the engines only
// differ in scheduling.
#pragma once

#include <atomic>
#include <vector>

#include "exec/cancel.h"
#include "exec/join_cache.h"
#include "exec/metrics.h"
#include "exec/options.h"
#include "exec/partial_match.h"
#include "exec/plan.h"
#include "exec/topk_set.h"
#include "exec/tracer.h"

namespace whirlpool::exec {

/// \brief Seeds the evaluation: one partial match per root candidate.
/// In relaxed semantics each root is also recorded in the top-k set (its
/// everything-deleted completion is a valid answer of score 0).
std::vector<PartialMatch> GenerateRootMatches(const QueryPlan& plan,
                                              const ExecOptions& options, TopKSet* topk,
                                              ExecMetrics* metrics,
                                              std::atomic<uint64_t>* seq);

/// \brief Processes `m` at server `s`: joins, scores, prunes.
///
/// Complete extensions are folded into `topk` and not returned; surviving
/// incomplete extensions are appended to `out_survivors` (ready for
/// routing). Pruned and dead extensions are counted in `metrics`.
/// `cache` (optional) memoizes classified candidates per (server, root) —
/// only consulted in relaxed, max-tuple, non-override mode, where results
/// depend on nothing else. `ins` (optional) records the operation's span,
/// its latency histogram sample, and prune/complete trace events. `token`
/// (optional) receives the `cache.lookup` failpoint's injected error — the
/// operation then returns early with no survivors, which callers handle
/// like an empty extension set (the run unwinds via the cancelled token).
void ProcessAtServer(const QueryPlan& plan, const ExecOptions& options,
                     const PartialMatch& m, int s, TopKSet* topk, ExecMetrics* metrics,
                     std::atomic<uint64_t>* seq, std::vector<PartialMatch>* out_survivors,
                     ServerJoinCache* cache = nullptr,
                     const Instrumentation* ins = nullptr,
                     CancelToken* token = nullptr);

/// Busy-waits for `seconds` (used to inject synthetic per-operation cost;
/// sleeps when the cost is long enough for the OS timer to be accurate).
void SpinFor(double seconds);

}  // namespace whirlpool::exec
