// A partial match: one tuple flowing through the Whirlpool servers. Holds a
// binding (or deletion marker) per pattern node, the relaxation level each
// binding satisfies, the set of servers already visited, and the two scores
// that drive scheduling and pruning: the current score and the maximum
// possible final score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "score/scoring.h"
#include "xml/document.h"

namespace whirlpool::exec {

using score::MatchLevel;
using xml::NodeId;

/// \brief One tuple in the system. Copyable; extensions are copies with one
/// more binding.
struct PartialMatch {
  /// Binding per pattern node (index 0 = root). kInvalidNode means the
  /// node's server has not run yet, or ran and deleted the node — disambiguate
  /// with visited_mask / levels.
  std::vector<NodeId> bindings;
  /// Relaxation level per pattern node. kDeleted both for not-yet-visited and
  /// deleted; visited_mask tells them apart.
  std::vector<MatchLevel> levels;
  /// Bit s set = server s (pattern node s+1) has processed this match.
  uint32_t visited_mask = 0;
  double current_score = 0.0;
  double max_final_score = 0.0;
  /// Monotone creation sequence number; FIFO queue order and tie-breaking.
  uint64_t seq = 0;

  /// True when every server has run.
  bool IsComplete(int num_servers) const {
    return visited_mask == ((num_servers >= 32) ? ~0u : ((1u << num_servers) - 1));
  }

  bool Visited(int server) const { return (visited_mask >> server) & 1u; }

  NodeId root_binding() const { return bindings[0]; }

  std::string ToString() const;
};

}  // namespace whirlpool::exec
