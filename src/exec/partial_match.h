// A partial match: one tuple flowing through the Whirlpool servers. Holds a
// binding (or deletion marker) per pattern node, the relaxation level each
// binding satisfies, the set of servers already visited, and the two scores
// that drive scheduling and pruning: the current score and the maximum
// possible final score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "score/scoring.h"
#include "xml/document.h"

namespace whirlpool::exec {

using score::MatchLevel;
using xml::NodeId;

/// Maximum number of servers (non-root pattern nodes) a query may have —
/// the width of PartialMatch::visited_mask. QueryPlan::Build rejects larger
/// patterns with InvalidArgument, so engine code may assume server ids fit.
inline constexpr int kMaxServers = 64;

/// The visited-mask bit for server `s`. Precondition: 0 <= s < kMaxServers
/// (guaranteed by the QueryPlan size check).
inline constexpr uint64_t ServerBit(int s) { return uint64_t{1} << s; }

/// \brief One tuple in the system. Copyable; extensions are copies with one
/// more binding.
struct PartialMatch {
  /// Binding per pattern node (index 0 = root). kInvalidNode means the
  /// node's server has not run yet, or ran and deleted the node — disambiguate
  /// with visited_mask / levels.
  std::vector<NodeId> bindings;
  /// Relaxation level per pattern node. kDeleted both for not-yet-visited and
  /// deleted; visited_mask tells them apart.
  std::vector<MatchLevel> levels;
  /// Bit s set = server s (pattern node s+1) has processed this match.
  uint64_t visited_mask = 0;
  double current_score = 0.0;
  double max_final_score = 0.0;
  /// Monotone creation sequence number; FIFO queue order and tie-breaking.
  uint64_t seq = 0;

  /// True when every server has run.
  bool IsComplete(int num_servers) const {
    return visited_mask == ((num_servers >= kMaxServers)
                                ? ~uint64_t{0}
                                : (ServerBit(num_servers) - 1));
  }

  bool Visited(int server) const { return (visited_mask >> server) & 1u; }

  NodeId root_binding() const { return bindings[0]; }

  std::string ToString() const;
};

}  // namespace whirlpool::exec
