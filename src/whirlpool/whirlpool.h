// Umbrella header: the full public API of the Whirlpool library.
//
// Quickstart:
//
//   #include "whirlpool/whirlpool.h"
//   using namespace whirlpool;
//
//   auto doc = xml::ParseDocument(xml_text).value();        // parse
//   index::TagIndex idx(*doc);                               // index
//   auto pattern = query::ParseXPath("//item[./name]").value();
//   auto scoring = score::ScoringModel::ComputeTfIdf(
//       idx, pattern, score::Normalization::kSparse);        // score
//   auto plan = exec::QueryPlan::Build(idx, pattern, scoring).value();
//   exec::ExecOptions options;
//   options.k = 10;
//   auto result = exec::RunTopK(plan, options).value();      // evaluate
//   for (const auto& a : result.answers) { ... }
#pragma once

// wp-lint: disable-file(WP004) umbrella header: includes ARE the interface

#include "exec/engine.h"
#include "exec/join_cache.h"
#include "exec/metrics.h"
#include "exec/options.h"
#include "exec/partial_match.h"
#include "exec/plan.h"
#include "exec/rewriting_baseline.h"
#include "exec/routing.h"
#include "exec/server.h"
#include "exec/topk_set.h"
#include "exec/tracer.h"
#include "index/tag_index.h"
#include "query/matcher.h"
#include "query/tree_pattern.h"
#include "score/scoring.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "xml/dewey.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/snapshot.h"
