// The heterogeneous bookstore of the paper's Figure 1 (three books with
// different structure from different online sellers) plus a scalable
// generator of similarly heterogeneous book collections for the examples.
#pragma once

#include <cstdint>
#include <memory>

#include "xml/document.h"

namespace whirlpool::xmlgen {

/// \brief Exactly the three books of Figure 1:
///  (a) book/title, book/info/publisher/name, book/info/isbn,
///      book/info/price                                        — exact match
///  (b) book/title, book/publisher/{name,location}, book/isbn  — flat variant
///  (c) book/info/{title,isbn,location}, book/reviews          — title nested,
///      publisher info missing
std::unique_ptr<xml::Document> Figure1Bookstore();

/// Options for the scalable heterogeneous collection.
struct BookstoreOptions {
  uint64_t seed = 7;
  int num_books = 100;
  /// Probability a book follows Figure 1(a)'s schema; remaining mass splits
  /// between (b)-like and (c)-like schemas.
  double p_schema_a = 0.4;
  double p_schema_b = 0.35;
};

/// \brief Generates `num_books` books randomly drawn from the three Figure-1
/// schema shapes, with titles/authors/prices from small vocabularies so
/// value predicates have selective and non-selective variants.
std::unique_ptr<xml::Document> GenerateBookstore(const BookstoreOptions& options);

}  // namespace whirlpool::xmlgen
