#include "xmlgen/xmark.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace whirlpool::xmlgen {

namespace {

using xml::Document;
using xml::NodeId;

const char* const kWords[] = {
    "auction",  "vintage", "rare",     "mint",   "boxed",   "signed",  "limited",
    "edition",  "classic", "antique",  "modern", "pristine", "refurbished",
    "wooden",   "silver",  "golden",   "ceramic", "leather", "crystal", "marble",
    "painting", "clock",   "camera",   "radio",  "guitar",  "violin",  "atlas",
    "folio",    "map",     "print",    "poster", "stamp",   "coin",    "medal",
    "lamp",     "vase",    "mirror",   "chair",  "table",   "cabinet", "desk",
    "excellent","good",    "fair",     "worn",   "restored","original","complete",
    "shipping", "insured", "tracked",  "express","standard","economy", "global",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

const char* const kKeywords[] = {
    "bargain", "collector", "authentic", "certified", "appraised",
    "estate",  "heirloom",  "provenance", "museum",   "archive",
};
constexpr size_t kNumKeywords = sizeof(kKeywords) / sizeof(kKeywords[0]);

const char* const kRegions[] = {"africa", "asia", "australia", "europe",
                                "namerica", "samerica"};
constexpr size_t kNumRegions = sizeof(kRegions) / sizeof(kRegions[0]);

const char* const kFirstNames[] = {"alice", "bharat", "chen", "dara", "emeka",
                                   "fatima", "goran", "hana", "ivan", "june"};
const char* const kLastNames[] = {"okafor", "smith", "tanaka", "garcia", "novak",
                                  "haddad", "kim", "olsen", "rossi", "zhang"};

class XMarkBuilder {
 public:
  explicit XMarkBuilder(const XMarkOptions& options)
      : options_(options), rng_(options.seed) {
    options_.max_mails = std::max(1, options_.max_mails);
    options_.max_incategory = std::max(0, options_.max_incategory);
    options_.max_parlist_depth = std::clamp(options_.max_parlist_depth, 1, 8);
  }

  std::unique_ptr<Document> Build() {
    doc_ = std::make_unique<Document>();
    NodeId site = doc_->AddChild(doc_->root(), "site");

    NodeId categories = doc_->AddChild(site, "categories");
    NodeId regions = doc_->AddChild(site, "regions");
    std::vector<NodeId> region_nodes;
    for (const char* r : kRegions) region_nodes.push_back(doc_->AddChild(regions, r));
    NodeId people = doc_->AddChild(site, "people");
    NodeId open_auctions = doc_->AddChild(site, "open_auctions");
    NodeId closed_auctions = doc_->AddChild(site, "closed_auctions");

    // A fixed base of categories so incategory references mean something.
    for (int i = 0; i < 12; ++i) AddCategory(categories, i);

    size_t bytes = 0;
    int serial = 0;
    while (bytes < options_.target_bytes) {
      const size_t before = doc_->num_nodes();
      NodeId region = region_nodes[rng_.Uniform(region_nodes.size())];
      AddItem(region, serial);
      if (serial % 3 == 0) AddPerson(people, serial);
      if (serial % 4 == 0) AddOpenAuction(open_auctions, serial);
      if (serial % 7 == 0) AddClosedAuction(closed_auctions, serial);
      ++serial;
      // Rough per-node byte estimate avoids recomputing ApproxContentBytes
      // (O(n)) every iteration: tags+text average ~24 bytes serialized.
      bytes += (doc_->num_nodes() - before) * 24;
    }

    doc_->Finalize();
    return std::move(doc_);
  }

 private:
  std::string Words(int lo, int hi) {
    int n = static_cast<int>(rng_.UniformRange(lo, hi));
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out.push_back(' ');
      out += kWords[rng_.Zipf(kNumWords, 0.8)];
    }
    return out;
  }

  void AddCategory(NodeId categories, int i) {
    NodeId cat = doc_->AddChild(categories, "category");
    NodeId id = doc_->AddChild(cat, "@id");
    doc_->SetText(id, "category" + std::to_string(i));
    NodeId name = doc_->AddChild(cat, "name");
    doc_->SetText(name, Words(1, 3));
    NodeId descr = doc_->AddChild(cat, "description");
    AddText(descr, /*allow_parlist=*/false, 0);
  }

  /// A <text> block: character data plus optional bold/keyword/emph children
  /// and (rarely) an embedded parlist — the edge-generalization fodder.
  void AddText(NodeId parent, bool allow_parlist, int depth) {
    NodeId text = doc_->AddChild(parent, "text");
    doc_->SetText(text, Words(4, 14));
    if (rng_.Chance(options_.p_bold_in_text)) {
      NodeId b = doc_->AddChild(text, "bold");
      doc_->SetText(b, Words(1, 3));
    }
    if (rng_.Chance(options_.p_keyword_in_text)) {
      NodeId kw = doc_->AddChild(text, "keyword");
      doc_->SetText(kw, kKeywords[rng_.Zipf(kNumKeywords, 0.7)]);
    }
    if (rng_.Chance(options_.p_emph_in_text)) {
      NodeId e = doc_->AddChild(text, "emph");
      doc_->SetText(e, Words(1, 2));
    }
    if (allow_parlist && depth < options_.max_parlist_depth &&
        rng_.Chance(options_.p_parlist_in_text)) {
      AddParlist(text, depth + 1);
    }
  }

  void AddParlist(NodeId parent, int depth) {
    NodeId parlist = doc_->AddChild(parent, "parlist");
    const int items = static_cast<int>(rng_.UniformRange(1, 3));
    for (int i = 0; i < items; ++i) {
      NodeId listitem = doc_->AddChild(parlist, "listitem");
      if (depth < options_.max_parlist_depth && rng_.Chance(options_.p_nested_parlist)) {
        AddParlist(listitem, depth + 1);
      } else {
        AddText(listitem, /*allow_parlist=*/false, depth);
      }
    }
  }

  void AddDescription(NodeId parent) {
    NodeId descr = doc_->AddChild(parent, "description");
    if (rng_.Chance(options_.p_parlist_in_description)) {
      AddParlist(descr, 1);
    } else {
      AddText(descr, /*allow_parlist=*/true, 1);
    }
  }

  void AddItem(NodeId region, int serial) {
    NodeId item = doc_->AddChild(region, "item");
    NodeId id = doc_->AddChild(item, "@id");
    doc_->SetText(id, "item" + std::to_string(serial));

    NodeId location = doc_->AddChild(item, "location");
    doc_->SetText(location, Words(1, 2));
    NodeId quantity = doc_->AddChild(item, "quantity");
    doc_->SetText(quantity, std::to_string(rng_.UniformRange(1, 5)));
    if (rng_.Chance(options_.p_item_name)) {
      NodeId name = doc_->AddChild(item, "name");
      doc_->SetText(name, Words(2, 5));
    }
    NodeId payment = doc_->AddChild(item, "payment");
    doc_->SetText(payment, Words(1, 3));

    AddDescription(item);

    NodeId shipping = doc_->AddChild(item, "shipping");
    doc_->SetText(shipping, Words(1, 4));

    const int cats = static_cast<int>(rng_.UniformRange(0, options_.max_incategory));
    for (int i = 0; i < cats; ++i) {
      NodeId inc = doc_->AddChild(item, "incategory");
      NodeId cat = doc_->AddChild(inc, "@category");
      doc_->SetText(cat, "category" + std::to_string(rng_.Uniform(12)));
    }

    if (rng_.Chance(options_.p_mailbox)) {
      NodeId mailbox = doc_->AddChild(item, "mailbox");
      const int mails = static_cast<int>(rng_.UniformRange(1, options_.max_mails));
      for (int i = 0; i < mails; ++i) {
        NodeId mail = doc_->AddChild(mailbox, "mail");
        NodeId from = doc_->AddChild(mail, "from");
        doc_->SetText(from, PersonName());
        NodeId to = doc_->AddChild(mail, "to");
        doc_->SetText(to, PersonName());
        NodeId date = doc_->AddChild(mail, "date");
        doc_->SetText(date, Date());
        AddText(mail, /*allow_parlist=*/true, 1);
      }
    }
  }

  void AddPerson(NodeId people, int serial) {
    NodeId person = doc_->AddChild(people, "person");
    NodeId id = doc_->AddChild(person, "@id");
    doc_->SetText(id, "person" + std::to_string(serial));
    NodeId name = doc_->AddChild(person, "name");
    doc_->SetText(name, PersonName());
    NodeId email = doc_->AddChild(person, "emailaddress");
    doc_->SetText(email, "mailto:user" + std::to_string(serial) + "@example.com");
    if (rng_.Chance(0.5)) {
      NodeId profile = doc_->AddChild(person, "profile");
      NodeId interest = doc_->AddChild(profile, "interest");
      NodeId cat = doc_->AddChild(interest, "@category");
      doc_->SetText(cat, "category" + std::to_string(rng_.Uniform(12)));
    }
  }

  void AddOpenAuction(NodeId auctions, int serial) {
    NodeId auction = doc_->AddChild(auctions, "open_auction");
    NodeId id = doc_->AddChild(auction, "@id");
    doc_->SetText(id, "open_auction" + std::to_string(serial));
    NodeId initial = doc_->AddChild(auction, "initial");
    doc_->SetText(initial, Price());
    const int bidders = static_cast<int>(rng_.UniformRange(0, 3));
    for (int i = 0; i < bidders; ++i) {
      NodeId bidder = doc_->AddChild(auction, "bidder");
      NodeId date = doc_->AddChild(bidder, "date");
      doc_->SetText(date, Date());
      NodeId increase = doc_->AddChild(bidder, "increase");
      doc_->SetText(increase, Price());
    }
    NodeId annotation = doc_->AddChild(auction, "annotation");
    NodeId descr = doc_->AddChild(annotation, "description");
    AddText(descr, /*allow_parlist=*/true, 1);
  }

  void AddClosedAuction(NodeId auctions, int serial) {
    NodeId auction = doc_->AddChild(auctions, "closed_auction");
    NodeId id = doc_->AddChild(auction, "@id");
    doc_->SetText(id, "closed_auction" + std::to_string(serial));
    NodeId price = doc_->AddChild(auction, "price");
    doc_->SetText(price, Price());
    NodeId date = doc_->AddChild(auction, "date");
    doc_->SetText(date, Date());
    NodeId quantity = doc_->AddChild(auction, "quantity");
    doc_->SetText(quantity, std::to_string(rng_.UniformRange(1, 3)));
  }

  std::string PersonName() {
    return std::string(kFirstNames[rng_.Uniform(10)]) + " " + kLastNames[rng_.Uniform(10)];
  }

  std::string Date() {
    return std::to_string(rng_.UniformRange(1998, 2004)) + "-" +
           std::to_string(rng_.UniformRange(1, 12)) + "-" +
           std::to_string(rng_.UniformRange(1, 28));
  }

  std::string Price() {
    return std::to_string(rng_.UniformRange(1, 999)) + "." +
           std::to_string(rng_.UniformRange(0, 99));
  }

  XMarkOptions options_;
  Rng rng_;
  std::unique_ptr<Document> doc_;
};

}  // namespace

std::unique_ptr<xml::Document> GenerateXMark(const XMarkOptions& options) {
  XMarkBuilder builder(options);
  return builder.Build();
}

}  // namespace whirlpool::xmlgen
