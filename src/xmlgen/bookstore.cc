#include "xmlgen/bookstore.h"

#include "util/rng.h"

namespace whirlpool::xmlgen {

namespace {
using xml::Document;
using xml::NodeId;

NodeId Child(Document* d, NodeId p, const char* tag, const char* text = nullptr) {
  NodeId n = d->AddChild(p, tag);
  if (text != nullptr) d->SetText(n, text);
  return n;
}
}  // namespace

std::unique_ptr<xml::Document> Figure1Bookstore() {
  auto doc = std::make_unique<Document>();
  NodeId root = doc->root();

  // Book (a): the exact match for /book[./title='wodehouse' and
  // ./info/publisher/name='psmith'].
  {
    NodeId book = Child(doc.get(), root, "book");
    Child(doc.get(), book, "title", "wodehouse");
    NodeId info = Child(doc.get(), book, "info");
    NodeId publisher = Child(doc.get(), info, "publisher");
    Child(doc.get(), publisher, "name", "psmith");
    Child(doc.get(), info, "isbn", "1234");
    Child(doc.get(), info, "price", "48.95");
  }

  // Book (b): publisher directly under book (not under info).
  {
    NodeId book = Child(doc.get(), root, "book");
    Child(doc.get(), book, "title", "wodehouse");
    NodeId publisher = Child(doc.get(), book, "publisher");
    Child(doc.get(), publisher, "name", "psmith");
    Child(doc.get(), publisher, "location", "london");
    Child(doc.get(), book, "isbn", "1234");
  }

  // Book (c): title nested under info; no publisher at all.
  {
    NodeId book = Child(doc.get(), root, "book");
    NodeId info = Child(doc.get(), book, "info");
    Child(doc.get(), info, "title", "wodehouse");
    Child(doc.get(), info, "isbn", "1234");
    Child(doc.get(), info, "location", "london");
    Child(doc.get(), book, "reviews");
    Child(doc.get(), info, "price", "48.95");
  }

  doc->Finalize();
  return doc;
}

std::unique_ptr<xml::Document> GenerateBookstore(const BookstoreOptions& options) {
  auto doc = std::make_unique<Document>();
  Rng rng(options.seed);
  NodeId root = doc->root();

  static const char* const kTitles[] = {"wodehouse", "leave it to psmith",
                                        "right ho jeeves", "the code of the woosters",
                                        "summer lightning", "heavy weather"};
  static const char* const kPublishers[] = {"psmith", "penguin", "herbert jenkins",
                                            "doubleday", "vintage"};
  static const char* const kLocations[] = {"london", "new york", "paris", "berlin"};

  for (int i = 0; i < options.num_books; ++i) {
    const char* title = kTitles[rng.Zipf(6, 0.9)];
    const char* publisher = kPublishers[rng.Zipf(5, 0.9)];
    const char* location = kLocations[rng.Uniform(4)];
    std::string isbn = std::to_string(1000 + i);
    std::string price = std::to_string(rng.UniformRange(5, 99)) + "." +
                        std::to_string(rng.UniformRange(0, 99));

    NodeId book = Child(doc.get(), root, "book");
    const double u = rng.NextDouble();
    if (u < options.p_schema_a) {
      Child(doc.get(), book, "title", title);
      NodeId info = Child(doc.get(), book, "info");
      NodeId pub = Child(doc.get(), info, "publisher");
      Child(doc.get(), pub, "name", publisher);
      Child(doc.get(), info, "isbn", isbn.c_str());
      Child(doc.get(), info, "price", price.c_str());
    } else if (u < options.p_schema_a + options.p_schema_b) {
      Child(doc.get(), book, "title", title);
      NodeId pub = Child(doc.get(), book, "publisher");
      Child(doc.get(), pub, "name", publisher);
      Child(doc.get(), pub, "location", location);
      Child(doc.get(), book, "isbn", isbn.c_str());
      if (rng.Chance(0.5)) Child(doc.get(), book, "price", price.c_str());
    } else {
      NodeId info = Child(doc.get(), book, "info");
      Child(doc.get(), info, "title", title);
      Child(doc.get(), info, "isbn", isbn.c_str());
      Child(doc.get(), info, "location", location);
      if (rng.Chance(0.6)) Child(doc.get(), info, "price", price.c_str());
      Child(doc.get(), book, "reviews");
    }
  }

  doc->Finalize();
  return doc;
}

}  // namespace whirlpool::xmlgen
