// From-scratch XMark-style document generator (substitute for the original
// XMark tool, which is not available offline; see DESIGN.md Sec 2). Produces
// auction-site documents with the structural features the paper's queries
// and relaxations exercise:
//   - recursive `parlist` under item descriptions (enables edge
//     generalization: some parlists are direct children of description,
//     some are nested deeper),
//   - optional `incategory`, `name`, `mailbox` on items (enables leaf
//     deletion),
//   - `text` shared between description content and mail bodies (enables
//     subtree promotion),
//   - surrounding realistic structure (regions, categories, people,
//     auctions) so tag indexes and selectivities behave like a real corpus.
// Output is deterministic for a given seed and scales to a target byte size.
#pragma once

#include <cstdint>
#include <memory>

#include "xml/document.h"

namespace whirlpool::xmlgen {

/// Generator knobs. Defaults are tuned so that Q1-Q3 (paper Sec 6.2.1) have
/// a healthy mix of exact, edge-generalized, promoted and deleted matches.
struct XMarkOptions {
  uint64_t seed = 42;
  /// Approximate serialized size to aim for. The generator adds whole items
  /// (plus proportional people/categories/auctions) until this is reached.
  size_t target_bytes = 1 << 20;  // ~1 MB

  // Structural probabilities.
  double p_item_name = 0.92;             ///< item has a <name>
  double p_mailbox = 0.70;               ///< item has a <mailbox>
  double p_parlist_in_description = 0.45;///< description starts with parlist (else text)
  double p_nested_parlist = 0.35;        ///< a listitem recurses into another parlist
  double p_parlist_in_text = 0.12;       ///< a text block embeds a parlist (edge-gen fodder)
  double p_bold_in_text = 0.45;          ///< text has a <bold> child
  double p_keyword_in_text = 0.40;       ///< text has a <keyword> child
  double p_emph_in_text = 0.35;          ///< text has an <emph> child
  int max_mails = 4;                     ///< mails per mailbox: 1..max_mails
  int max_incategory = 4;                ///< incategory per item: 0..max_incategory
  int max_parlist_depth = 4;             ///< recursion cap
};

/// \brief Generates a finalized document. Never fails; clamps insane options.
std::unique_ptr<xml::Document> GenerateXMark(const XMarkOptions& options);

}  // namespace whirlpool::xmlgen
