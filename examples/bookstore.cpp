// The paper's motivating scenario (Sec 1-2): querying structurally
// heterogeneous books from different online sellers. Demonstrates
//  - exact matching finds only schema-identical books,
//  - relaxed matching ranks all books by structural similarity,
//  - the answer-level tf*idf scorer of Definition 4.4.
//
//   ./bookstore [num_books]
#include <cstdio>
#include <cstdlib>

#include "whirlpool/whirlpool.h"
#include "xmlgen/bookstore.h"

using namespace whirlpool;

namespace {

void RunQuery(const index::TagIndex& idx, const query::TreePattern& pattern,
              exec::MatchSemantics semantics, uint32_t k) {
  auto scoring =
      score::ScoringModel::ComputeTfIdf(idx, pattern, score::Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, pattern, scoring);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  exec::ExecOptions options;
  options.k = k;
  options.semantics = semantics;
  auto result = exec::RunTopK(*plan, options);
  if (!result.ok()) {
    std::fprintf(stderr, "exec error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s matching: %zu answer(s)\n",
              exec::MatchSemanticsName(semantics), result->answers.size());
  int rank = 1;
  for (const auto& a : result->answers) {
    std::printf("  #%d score=%.3f  levels:", rank++, a.score);
    for (size_t qi = 1; qi < pattern.size(); ++qi) {
      std::printf(" %s=%s", pattern.node(static_cast<int>(qi)).tag.c_str(),
                  score::MatchLevelName(a.levels[qi]));
    }
    std::printf("\n");
  }
  std::printf("  work: %s\n\n", result->metrics.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Part 1: the exact Figure 1 collection.
  std::printf("=== Figure 1 bookstore (3 heterogeneous books) ===\n\n");
  auto fig1 = xmlgen::Figure1Bookstore();
  std::printf("%s\n", xml::SerializeDocument(*fig1).c_str());
  index::TagIndex fig1_idx(*fig1);

  auto q = query::ParseXPath(
      "/book[./title='wodehouse' and ./info/publisher/name='psmith']");
  if (!q.ok()) {
    std::fprintf(stderr, "query error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query (Fig 2a): %s\n\n", q->ToString().c_str());
  RunQuery(fig1_idx, *q, exec::MatchSemantics::kExact, 3);
  RunQuery(fig1_idx, *q, exec::MatchSemantics::kRelaxed, 3);

  // Part 2: a larger generated heterogeneous collection.
  int num_books = argc > 1 ? std::atoi(argv[1]) : 500;
  std::printf("=== Generated bookstore (%d books, 3 schema families) ===\n\n",
              num_books);
  xmlgen::BookstoreOptions gen;
  gen.num_books = num_books;
  auto store = xmlgen::GenerateBookstore(gen);
  index::TagIndex idx(*store);

  auto q2 = query::ParseXPath(
      "/book[./title='leave it to psmith' and ./info/publisher/name and ./info/price]");
  if (!q2.ok()) return 1;
  std::printf("query: %s\n\n", q2->ToString().c_str());
  RunQuery(idx, *q2, exec::MatchSemantics::kExact, 5);
  RunQuery(idx, *q2, exec::MatchSemantics::kRelaxed, 5);

  // Part 3: answer-level tf*idf (Def 4.4) over the exact query.
  auto q3 = query::ParseXPath("/book[./title and ./publisher/name]");
  if (!q3.ok()) return 1;
  score::TfIdfScorer scorer(idx, *q3);
  std::printf("=== Def 4.4 tf*idf over %s ===\n", q3->ToString().c_str());
  std::printf("idf(title)=%.4f idf(publisher)=%.4f idf(name)=%.4f\n",
              scorer.Idf(1), scorer.Idf(2), scorer.Idf(3));
  double best = 0;
  xml::NodeId best_book = xml::kInvalidNode;
  for (xml::NodeId b : idx.Nodes("book")) {
    double s = scorer.Score(b);
    if (s > best) {
      best = s;
      best_book = b;
    }
  }
  if (best_book != xml::kInvalidNode) {
    std::printf("best Def-4.4 answer scores %.4f:\n%s", best,
                xml::SerializeSubtree(*store, best_book, 1).c_str());
  }
  return 0;
}
