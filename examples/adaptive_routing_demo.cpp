// Why adaptivity matters (paper Sec 2 + 6.3.1): runs one query under every
// routing strategy and every static permutation, showing that
//  - static plans differ widely in work,
//  - the adaptive min_alive router matches or beats the best static plan in
//    partial matches created, without knowing the best order in advance.
//
//   ./adaptive_routing_demo [target_kb] [k]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "whirlpool/whirlpool.h"
#include "xmlgen/xmark.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  const size_t target_kb = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 256;
  const uint32_t k = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 15;

  xmlgen::XMarkOptions gen;
  gen.seed = 7;
  gen.target_bytes = target_kb << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);

  const char* xpath = "//item[./description/parlist and ./mailbox/mail/text]";
  auto pattern = query::ParseXPath(xpath);
  if (!pattern.ok()) {
    std::fprintf(stderr, "query error: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  auto scoring =
      score::ScoringModel::ComputeTfIdf(idx, *pattern, score::Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  if (!plan.ok()) return 1;

  std::printf("query: %s  (k=%u, %zu items)\n\n", xpath, k, idx.Nodes("item").size());

  auto run = [&](exec::ExecOptions options) {
    auto r = exec::RunTopK(*plan, options);
    if (!r.ok()) {
      std::fprintf(stderr, "exec error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    return r->metrics;
  };

  // Every static permutation of the servers.
  std::vector<int> order(static_cast<size_t>(plan->num_servers()));
  std::iota(order.begin(), order.end(), 0);
  std::printf("static permutations (Whirlpool-S):\n");
  uint64_t best_ops = ~0ull, worst_ops = 0;
  std::vector<int> best_order;
  do {
    exec::ExecOptions options;
    options.routing = exec::RoutingStrategy::kStatic;
    options.static_order = order;
    options.k = k;
    auto m = run(options);
    std::printf("  order [");
    for (size_t i = 0; i < order.size(); ++i) {
      std::printf("%s%s", i ? " " : "",
                  pattern->node(plan->server(order[i]).pattern_node).tag.c_str());
    }
    std::printf("]: ops=%llu created=%llu\n",
                static_cast<unsigned long long>(m.server_operations),
                static_cast<unsigned long long>(m.matches_created));
    if (m.server_operations < best_ops) {
      best_ops = m.server_operations;
      best_order = order;
    }
    worst_ops = std::max(worst_ops, m.server_operations);
  } while (std::next_permutation(order.begin(), order.end()));

  std::printf("\nbest static: %llu ops; worst static: %llu ops (%.2fx spread)\n\n",
              static_cast<unsigned long long>(best_ops),
              static_cast<unsigned long long>(worst_ops),
              static_cast<double>(worst_ops) / static_cast<double>(best_ops));

  std::printf("adaptive strategies (Whirlpool-S):\n");
  for (exec::RoutingStrategy strategy :
       {exec::RoutingStrategy::kMaxScore, exec::RoutingStrategy::kMinScore,
        exec::RoutingStrategy::kMinAlive}) {
    exec::ExecOptions options;
    options.routing = strategy;
    options.k = k;
    auto m = run(options);
    std::printf("  %-26s ops=%llu created=%llu (%.2fx best static)\n",
                exec::RoutingStrategyName(strategy),
                static_cast<unsigned long long>(m.server_operations),
                static_cast<unsigned long long>(m.matches_created),
                static_cast<double>(m.server_operations) /
                    static_cast<double>(best_ops));
  }
  return 0;
}
