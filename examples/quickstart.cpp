// Quickstart: parse a small XML catalog, run a relaxed top-k XPath query,
// and print ranked answers with their per-predicate relaxation levels.
//
//   ./quickstart
#include <cstdio>

#include "whirlpool/whirlpool.h"

using namespace whirlpool;

int main() {
  const char* xml_text = R"(
    <catalog>
      <book>
        <title>leave it to psmith</title>
        <info><publisher><name>herbert jenkins</name></publisher>
              <price>12.50</price></info>
      </book>
      <book>
        <title>right ho jeeves</title>
        <publisher><name>herbert jenkins</name></publisher>
      </book>
      <book>
        <info><title>summer lightning</title><price>9.99</price></info>
      </book>
      <book>
        <title>the code of the woosters</title>
      </book>
    </catalog>)";

  // 1. Parse the document (any well-formed XML; attributes become @-tagged
  //    children).
  auto doc = xml::ParseDocument(xml_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. Index it: per-tag posting lists in document order.
  index::TagIndex idx(**doc);

  // 3. Parse the query. The tree pattern asks for books with a title child,
  //    a publisher name under an info child, and a price under info.
  auto pattern = query::ParseXPath(
      "/book[./title and ./info/publisher/name and ./info/price]");
  if (!pattern.ok()) {
    std::fprintf(stderr, "query error: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  std::printf("query pattern: %s\n\n", pattern->ToString().c_str());

  // 4. Compute the XML tf*idf scoring model (paper Sec 4) with per-predicate
  //    (sparse) normalization.
  auto scoring =
      score::ScoringModel::ComputeTfIdf(idx, *pattern, score::Normalization::kSparse);
  std::printf("scoring model:\n%s\n", scoring.ToString(*pattern).c_str());

  // 5. Compile the plan and run the default adaptive engine (Whirlpool-S
  //    with min-alive routing).
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  exec::ExecOptions options;
  options.k = 3;
  auto result = exec::RunTopK(*plan, options);
  if (!result.ok()) {
    std::fprintf(stderr, "exec error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 6. Print the ranked answers.
  std::printf("top-%u answers (relaxed matching):\n", options.k);
  int rank = 1;
  for (const auto& a : result->answers) {
    std::printf("#%d  score=%.3f  book:\n", rank++, a.score);
    for (size_t qi = 1; qi < pattern->size(); ++qi) {
      std::printf("    %-10s -> %s\n",
                  pattern->node(static_cast<int>(qi)).tag.c_str(),
                  score::MatchLevelName(a.levels[qi]));
    }
    std::printf("%s", xml::SerializeSubtree(**doc, a.root, 2).c_str());
  }
  std::printf("metrics: %s\n", result->metrics.ToString().c_str());
  return 0;
}
