// Top-k over an XMark-style auction corpus: the paper's evaluation scenario.
// Generates a document, runs the three paper queries Q1-Q3 under every
// engine, and prints answers plus work metrics side by side.
//
//   ./auction_topk [target_kb] [k]
#include <cstdio>
#include <cstdlib>

#include "whirlpool/whirlpool.h"
#include "xmlgen/xmark.h"

using namespace whirlpool;

namespace {

const char* const kQueries[] = {
    "//item[./description/parlist]",
    "//item[./description/parlist and ./mailbox/mail/text]",
    "//item[./mailbox/mail/text[./bold and ./keyword] and ./name and ./incategory]",
};

}  // namespace

int main(int argc, char** argv) {
  const size_t target_kb = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 512;
  const uint32_t k = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 15;

  std::printf("generating ~%zu KB XMark document...\n", target_kb);
  xmlgen::XMarkOptions gen;
  gen.seed = 42;
  gen.target_bytes = target_kb << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);
  std::printf("document: %zu nodes, %zu items, ~%zu KB\n\n", doc->num_nodes(),
              idx.Nodes("item").size(), doc->ApproxContentBytes() >> 10);

  for (int qi = 0; qi < 3; ++qi) {
    auto pattern = query::ParseXPath(kQueries[qi]);
    if (!pattern.ok()) {
      std::fprintf(stderr, "Q%d parse error: %s\n", qi + 1,
                   pattern.status().ToString().c_str());
      return 1;
    }
    auto scoring =
        score::ScoringModel::ComputeTfIdf(idx, *pattern, score::Normalization::kSparse);
    auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
    if (!plan.ok()) {
      std::fprintf(stderr, "Q%d plan error: %s\n", qi + 1,
                   plan.status().ToString().c_str());
      return 1;
    }

    std::printf("=== Q%d: %s (k=%u) ===\n", qi + 1, kQueries[qi], k);
    std::printf("%-16s %10s %10s %10s %10s %9s\n", "engine", "ops", "cmps",
                "created", "pruned", "time(ms)");
    double top_score = -1;
    for (exec::EngineKind kind :
         {exec::EngineKind::kWhirlpoolS, exec::EngineKind::kWhirlpoolM,
          exec::EngineKind::kLockStep, exec::EngineKind::kLockStepNoPrun}) {
      exec::ExecOptions options;
      options.engine = kind;
      options.k = k;
      auto result = exec::RunTopK(*plan, options);
      if (!result.ok()) {
        std::fprintf(stderr, "exec error: %s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& m = result->metrics;
      std::printf("%-16s %10llu %10llu %10llu %10llu %9.2f\n",
                  exec::EngineKindName(kind),
                  static_cast<unsigned long long>(m.server_operations),
                  static_cast<unsigned long long>(m.predicate_comparisons),
                  static_cast<unsigned long long>(m.matches_created),
                  static_cast<unsigned long long>(m.matches_pruned),
                  m.wall_seconds * 1e3);
      if (top_score < 0 && !result->answers.empty()) {
        top_score = result->answers[0].score;
      }
    }
    std::printf("best answer score: %.4f\n\n", top_score);
  }
  return 0;
}
