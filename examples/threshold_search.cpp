// Threshold queries vs top-k (paper Sec 3 related work: the EDBT'02
// predecessor returned all answers above a score threshold, while Whirlpool
// returns the k best). This example runs both modes over one corpus and
// shows how the threshold controls the answer count and the pruning work,
// including a per-server operation breakdown.
//
//   ./threshold_search [target_kb]
#include <cstdio>
#include <cstdlib>

#include "whirlpool/whirlpool.h"
#include "xmlgen/xmark.h"

using namespace whirlpool;

int main(int argc, char** argv) {
  const size_t target_kb = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 256;
  xmlgen::XMarkOptions gen;
  gen.seed = 42;
  gen.target_bytes = target_kb << 10;
  auto doc = xmlgen::GenerateXMark(gen);
  index::TagIndex idx(*doc);

  const char* xpath = "//item[./description/parlist and ./mailbox/mail/text]";
  auto pattern = query::ParseXPath(xpath);
  if (!pattern.ok()) {
    std::fprintf(stderr, "query error: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  auto scoring =
      score::ScoringModel::ComputeTfIdf(idx, *pattern, score::Normalization::kSparse);
  auto plan = exec::QueryPlan::Build(idx, *pattern, scoring);
  if (!plan.ok()) return 1;
  const double max_score = scoring.MaxTotalScore();
  std::printf("query: %s\n%zu items; max possible score %.2f\n\n", xpath,
              idx.Nodes("item").size(), max_score);

  // Part 1: classic top-k.
  std::printf("--- top-k mode ---\n");
  for (uint32_t k : {3u, 15u}) {
    exec::ExecOptions options;
    options.k = k;
    auto r = exec::RunTopK(*plan, options);
    if (!r.ok()) return 1;
    std::printf("k=%-3u -> %zu answers, kth score %.3f, %llu ops, %llu pruned\n", k,
                r->answers.size(),
                r->answers.empty() ? 0.0 : r->answers.back().score,
                static_cast<unsigned long long>(r->metrics.server_operations),
                static_cast<unsigned long long>(r->metrics.matches_pruned));
  }

  // Part 2: threshold mode — "give me everything scoring at least T".
  std::printf("\n--- threshold mode ---\n");
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    exec::ExecOptions options;
    options.k = 1000000;
    options.min_score_threshold = fraction * max_score;
    auto r = exec::RunTopK(*plan, options);
    if (!r.ok()) return 1;
    std::printf("T=%.2f (%.0f%% of max) -> %zu answers, %llu ops, %llu pruned\n",
                options.min_score_threshold, fraction * 100, r->answers.size(),
                static_cast<unsigned long long>(r->metrics.server_operations),
                static_cast<unsigned long long>(r->metrics.matches_pruned));
  }

  // Part 3: per-server workload breakdown for the half-max threshold.
  std::printf("\n--- per-server operations (T = %.2f) ---\n", 0.5 * max_score);
  exec::ExecOptions options;
  options.k = 1000000;
  options.min_score_threshold = 0.5 * max_score;
  auto r = exec::RunTopK(*plan, options);
  if (!r.ok()) return 1;
  for (int s = 0; s < plan->num_servers(); ++s) {
    std::printf("  %-12s %llu ops\n",
                pattern->node(plan->server(s).pattern_node).tag.c_str(),
                static_cast<unsigned long long>(
                    r->metrics.per_server_operations[static_cast<size_t>(s)]));
  }
  return 0;
}
